//! Minimal offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Implements the surface this workspace's tests use: the [`Strategy`]
//! trait with `prop_map`, [`Just`], integer ranges, fixed-size arrays of
//! strategies, `collection::{vec, btree_set}`, weighted `prop_oneof!`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Generation only — **no shrinking**. Each test case is generated from a
//! deterministic seed derived from the test name and case index, so a CI
//! failure reproduces locally by running the same test.

/// Deterministic source of randomness for value generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(state: u64) -> Self {
        TestRng { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; modulo reduction is fine here.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below: empty bound");
        self.next_u64() % bound
    }
}

/// A generator of values of type `Self::Value`, mirroring
/// `proptest::strategy::Strategy` (without shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing exactly one value, mirroring `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128).wrapping_add(draw as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128).wrapping_add(draw as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Fixed-size arrays of strategies generate arrays of values, mirroring
/// proptest's array support.
impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Weighted union of boxed strategies — the expansion target of
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! weights are all zero"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut draw = rng.below(total);
        for (w, strat) in &self.arms {
            if draw < *w as u64 {
                return strat.generate(rng);
            }
            draw -= *w as u64;
        }
        unreachable!("weighted draw out of range")
    }
}

/// Box a strategy for use inside [`Union`]; used by `prop_oneof!`.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Size specification for collection strategies, mirroring
/// `proptest::collection::SizeRange`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "collection size range is empty");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "collection size range is empty");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`. Like crates-io proptest, the
    /// requested size is an upper bound: duplicate draws collapse.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case, produced by `prop_assert!` / `prop_assert_eq!`.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives the generate-and-check loop for one `proptest!` test function.
pub struct TestRunner {
    config: ProptestConfig,
    name_seed: u64,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            config,
            name_seed: h,
        }
    }

    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    pub fn rng_for_case(&self, case: u32) -> TestRng {
        TestRng::from_seed(self.name_seed ^ ((case as u64) << 32 | 0x5bd1_e995))
    }
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::boxed($strat))),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?} == {:?}` at {}:{}",
            lhs, rhs, file!(), line!()
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let runner = $crate::TestRunner::new(config, concat!(module_path!(), "::", stringify!($name)));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed:\n{}",
                        case + 1, runner.cases(), stringify!($name), e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let strat = (0i64..10).prop_map(|v| v * 2);
        let mut rng = TestRng::from_seed(42);
        for _ in 0..1000 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((0..20).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_respects_zero_weight_avoidance() {
        let strat = prop_oneof![
            3 => (0i64..4).prop_map(Some),
            1 => Just(None),
        ];
        let mut rng = TestRng::from_seed(7);
        let draws: Vec<_> = (0..2000)
            .map(|_| Strategy::generate(&strat, &mut rng))
            .collect();
        let nones = draws.iter().filter(|d| d.is_none()).count();
        // Weight 1-in-4: expect roughly 500 Nones out of 2000.
        assert!(nones > 300 && nones < 700, "got {nones} Nones");
    }

    #[test]
    fn collections_respect_size_bounds() {
        let strat = crate::collection::vec(0i64..5, 2..=6);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..500 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..=6).contains(&v.len()));
        }
        let sets = crate::collection::btree_set(0i64..50, 0..8);
        for _ in 0..500 {
            let s = Strategy::generate(&sets, &mut rng);
            assert!(s.len() < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself: multiple args, weighted values.
        #[test]
        fn macro_roundtrip(a in 0i64..100, b in crate::collection::vec(0i64..10, 0..5)) {
            prop_assert!((0..100).contains(&a));
            prop_assert!(b.len() < 5);
            prop_assert_eq!(b.iter().filter(|_| true).count(), b.len());
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(a in 0i64..10) {
                prop_assert!(a > 100, "a = {} is not > 100", a);
            }
        }
        always_fails();
    }
}
