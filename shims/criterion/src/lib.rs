//! Minimal offline stand-in for the `criterion` crate (see `shims/README.md`).
//!
//! Implements the surface this workspace's benches use: [`Criterion`],
//! [`Criterion::benchmark_group`] with `sample_size` / `measurement_time` /
//! `warm_up_time`, `bench_function`, [`Bencher::iter`], [`black_box`], and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Like crates-io criterion, a `harness = false` bench binary only runs its
//! timing loops when invoked with `--bench` (as `cargo bench` does); under
//! `cargo test` each benchmark body executes exactly once as a smoke test.
//! Output is a plain mean-per-iteration line per benchmark — no statistics,
//! no HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Whether the process was started in bench mode (`cargo bench` passes
/// `--bench` to `harness = false` targets; `cargo test` does not).
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Accepted for drop-in compatibility; the shim has no CLI options
    /// beyond the `--bench` mode flag, which is read per-run.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&id, self.warm_up_time, self.measurement_time, f);
        self
    }

    /// No-op: the shim prints per-benchmark lines as it goes.
    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'c> {
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes its timing loop from
    /// `measurement_time` alone.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.warm_up_time, self.measurement_time, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark(
    id: &str,
    warm_up: Duration,
    measurement: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    if !bench_mode() {
        // Test mode (`cargo test`): one iteration, no timing output.
        let mut b = Bencher {
            iters_per_call: 1,
            total_iters: 0,
            total_time: Duration::ZERO,
        };
        f(&mut b);
        println!("{id}: ok (smoke, 1 iteration)");
        return;
    }

    // Calibrate: run single iterations during warm-up to estimate cost.
    let mut b = Bencher {
        iters_per_call: 1,
        total_iters: 0,
        total_time: Duration::ZERO,
    };
    let warm_start = Instant::now();
    while warm_start.elapsed() < warm_up {
        f(&mut b);
    }
    let per_iter = if b.total_iters > 0 {
        b.total_time.as_nanos() / b.total_iters as u128
    } else {
        0
    };
    // Aim for ~50 timed calls within the measurement window.
    let iters_per_call = ((measurement.as_nanos() / 50).checked_div(per_iter.max(1)))
        .unwrap_or(1)
        .clamp(1, 1_000_000) as u64;

    let mut b = Bencher {
        iters_per_call,
        total_iters: 0,
        total_time: Duration::ZERO,
    };
    let start = Instant::now();
    while start.elapsed() < measurement {
        f(&mut b);
    }
    let mean_ns = if b.total_iters > 0 {
        b.total_time.as_nanos() as f64 / b.total_iters as f64
    } else {
        f64::NAN
    };
    println!(
        "{id}: mean {:.1} ns/iter ({} iterations)",
        mean_ns, b.total_iters
    );
}

pub struct Bencher {
    iters_per_call: u64,
    total_iters: u64,
    total_time: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters_per_call {
            black_box(f());
        }
        self.total_time += start.elapsed();
        self.total_iters += self.iters_per_call;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_bench_once() {
        // Not invoked with --bench, so this must take one iteration, not
        // the full measurement window.
        let mut c = Criterion::default();
        let mut calls = 0u64;
        let mut group = c.benchmark_group("g");
        group.measurement_time(Duration::from_secs(60));
        group.bench_function("b", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn bencher_accumulates_iterations() {
        let mut b = Bencher {
            iters_per_call: 10,
            total_iters: 0,
            total_time: Duration::ZERO,
        };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(n, 10);
        assert_eq!(b.total_iters, 10);
    }
}
