//! Minimal offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Implements exactly the surface this workspace uses: a seedable
//! deterministic generator (`rngs::StdRng`), `SeedableRng::seed_from_u64`,
//! and `Rng::{gen_range, gen_bool}` over integer and float ranges.
//!
//! The generator is SplitMix64 — deterministic, fast, and good enough for
//! workload generation, but not a statistical match for crates-io `rand`.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics on an empty range, like crates-io `rand`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p must be in [0, 1], got {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled from, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Map a raw `u64` to a uniform float in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo reduction: biased for astronomically large spans,
                // fine for workload generation.
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                self.start.wrapping_add((wide % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type.
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    return wide as $t;
                }
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                lo.wrapping_add((wide % span) as $t)
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, usize, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange for core::ops::Range<f32> {
    type Output = f32;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64), stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&y));
            let f = rng.gen_range(0.25f64..=4.0);
            assert!((0.25..=4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
