//! The [`Optimizer`] facade: one builder-style entry point that runs the
//! full pipeline `SQL text → parse/bind → Query → memo DP → Optimized`.
//!
//! ```
//! use dpnext::{Algorithm, Optimizer};
//!
//! let opt = Optimizer::new(Algorithm::EaPrune)
//!     .optimize_sql(
//!         "select n.n_name, count(*) \
//!          from nation n join supplier s on n.n_nationkey = s.s_nationkey \
//!          group by n.n_name",
//!     )
//!     .unwrap();
//! assert!(opt.plan.cost.is_finite());
//! ```

use dpnext_catalog::{tpch_catalog, Catalog};
use dpnext_core::{
    optimize_into, optimize_with, Algorithm, DominanceKind, Memo, OptimizeOptions, Optimized,
};
use dpnext_query::Query;
use dpnext_sql::{plan as bind_sql, BoundQuery, SqlError};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Builder-style facade over the whole workspace: pick an algorithm, tune
/// the dominance criterion and stats rendering, then optimize [`Query`]
/// values or SQL text in one call.
///
/// The catalog used for SQL binding defaults to the TPC-H schema
/// ([`dpnext_catalog::tpch_catalog`]) and is built lazily on the first
/// `optimize_sql` call; supply your own with [`Optimizer::with_catalog`].
///
/// Every method takes `&self` and the catalog is held behind an [`Arc`],
/// so one configured `Optimizer` can be shared across threads (it is
/// `Send + Sync`) — the property the `dpnext-serve` service layer builds
/// on. Binding SQL does not mutate the catalog: the same text against
/// the same catalog always binds to bit-identical attribute ids.
#[derive(Debug, Clone)]
pub struct Optimizer {
    algorithm: Algorithm,
    dominance: DominanceKind,
    explain: bool,
    threads: usize,
    plan_budget: u64,
    deadline: Option<Duration>,
    memory_budget: u64,
    fault_unit_delay: Option<Duration>,
    catalog: OnceLock<Arc<Catalog>>,
}

impl Optimizer {
    /// A facade running `algorithm` with the paper's defaults: `Full`
    /// dominance pruning and EXPLAIN/stats rendering enabled. The
    /// enumeration engine uses all available cores by default; see
    /// [`Optimizer::threads`].
    pub fn new(algorithm: Algorithm) -> Optimizer {
        Optimizer {
            algorithm,
            dominance: DominanceKind::Full,
            explain: true,
            threads: 0,
            plan_budget: 0,
            deadline: None,
            memory_budget: 0,
            fault_unit_delay: None,
            catalog: OnceLock::new(),
        }
    }

    /// Override the dominance criterion used by [`Algorithm::EaPrune`]
    /// (the weaker kinds prune harder but can lose the optimal plan).
    pub fn dominance(mut self, kind: DominanceKind) -> Optimizer {
        self.dominance = kind;
        self
    }

    /// Switch the algorithm while keeping every other knob (catalog,
    /// dominance, threads, budgets). The serving layer uses this to
    /// re-route a circuit-broken shape onto the adaptive greedy rung
    /// without rebuilding its configuration.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Optimizer {
        self.algorithm = algorithm;
        self
    }

    /// Worker threads for the enumeration engine: `1` runs the exact
    /// sequential path, `0` (the default) resolves to the machine's
    /// available parallelism. Plan costs, class contents, dominance
    /// outcomes and `plans_built` are bit-identical for every setting —
    /// only wall-clock time changes.
    pub fn threads(mut self, threads: usize) -> Optimizer {
        self.threads = threads;
        self
    }

    /// Plan budget for [`Algorithm::Adaptive`]: the maximum number of
    /// plans the search may build across its exact → linearized → greedy
    /// degradation ladder. `0` (the default) uses
    /// `dpnext_adaptive::DEFAULT_PLAN_BUDGET`; requests below the greedy
    /// floor are clamped up so a valid plan always fits. The stats on the
    /// result prove the cap: `memo.plan_budget` is the effective budget
    /// and `plans_built` never exceeds it. Ignored by the exact
    /// algorithms.
    pub fn plan_budget(mut self, budget: u64) -> Optimizer {
        self.plan_budget = budget;
        self
    }

    /// Wall-clock deadline per optimization. A deadline turns *any*
    /// algorithm choice into the adaptive degradation ladder
    /// (`dpnext_adaptive::optimize_adaptive`): the exact engines have no
    /// abort points, so honoring a deadline means riding the abortable
    /// budgeted enumeration — the run degrades exact → partial-exact →
    /// linearized → greedy as the clock runs out and always returns a
    /// structurally valid plan, with `memo.degradation` recording why.
    /// Overshoot past the deadline is bounded by one enumeration work
    /// unit. `None` (the default) changes nothing: unconstrained runs are
    /// bit-identical to an optimizer without the knob.
    pub fn deadline(mut self, deadline: Option<Duration>) -> Optimizer {
        self.deadline = deadline;
        self
    }

    /// Per-request memory budget in bytes of live memo state
    /// ([`dpnext_core::Memo::live_bytes`]). Like a deadline, a non-zero
    /// budget turns *any* algorithm choice into the adaptive degradation
    /// ladder: the exact engines have no abort points, so honoring the
    /// budget means riding the abortable budgeted enumeration — the run
    /// degrades the moment live bytes reach the budget (overshoot bounded
    /// by one work unit's plans) and always returns a structurally valid
    /// plan, with `memo.degradation.memory_aborted` recording why. `0`
    /// (the default) changes nothing: unconstrained runs stay
    /// bit-identical.
    pub fn memory_budget(mut self, bytes: u64) -> Optimizer {
        self.memory_budget = bytes;
        self
    }

    /// Fault-injection hook: busy-wait this long before every enumeration
    /// work unit of a budgeted/adaptive run, simulating a pathologically
    /// slow enumeration. Exists so deadline/degradation paths are testable
    /// deterministically (see `robustness_smoke`); never set in production.
    pub fn fault_unit_delay(mut self, delay: Option<Duration>) -> Optimizer {
        self.fault_unit_delay = delay;
        self
    }

    /// Toggle EXPLAIN rendering on the result (disable for benchmarking
    /// loops; the memo statistics are always collected).
    pub fn explain(mut self, on: bool) -> Optimizer {
        self.explain = on;
        self
    }

    /// Bind SQL against this catalog instead of the TPC-H default.
    pub fn with_catalog(self, catalog: Catalog) -> Optimizer {
        self.with_shared_catalog(Arc::new(catalog))
    }

    /// Like [`Optimizer::with_catalog`], but sharing an existing
    /// [`Arc`]-held catalog (several optimizers, or an optimizer and a
    /// serving layer, can point at the same statistics).
    pub fn with_shared_catalog(mut self, catalog: Arc<Catalog>) -> Optimizer {
        self.catalog = OnceLock::from(catalog);
        self
    }

    /// The catalog SQL is bound against (the TPC-H schema, instantiated
    /// on first use, unless [`Optimizer::with_catalog`] supplied one).
    pub fn catalog(&self) -> &Arc<Catalog> {
        self.catalog.get_or_init(|| Arc::new(tpch_catalog()))
    }

    /// Optimize an already-constructed [`Query`].
    pub fn optimize(&self, query: &Query) -> Optimized {
        let opts = self.options();
        match self.algorithm {
            // The budgeted ladder lives above dpnext-core (see the crate
            // layering note on `Algorithm::Adaptive`), so the facade is
            // the dispatch point. Deadline- and memory-budget-bearing
            // requests also route here: only the ladder can abort
            // mid-enumeration.
            Algorithm::Adaptive => dpnext_adaptive::optimize_adaptive(query, &opts),
            _ if self.deadline.is_some() || self.memory_budget != 0 => {
                dpnext_adaptive::optimize_adaptive(query, &opts)
            }
            algo => optimize_with(query, algo, &opts),
        }
    }

    /// Full pipeline from SQL text: parse, bind, optimize.
    pub fn optimize_sql(&self, sql: &str) -> Result<Optimized, SqlError> {
        self.optimize_sql_bound(sql).map(|(_, opt)| opt)
    }

    /// Like [`Optimizer::optimize_sql`], additionally returning the bound
    /// query (table occurrences, output column names) for callers that
    /// execute the plan or generate data.
    pub fn optimize_sql_bound(&self, sql: &str) -> Result<(BoundQuery, Optimized), SqlError> {
        let bound = bind_sql(sql, self.catalog())?;
        let optimized = self.optimize(&bound.query);
        Ok((bound, optimized))
    }

    /// [`Optimizer::optimize`] running inside a caller-supplied [`Memo`]
    /// (see [`dpnext_core::optimize_into`]): results and statistics are
    /// bit-identical to a fresh run, only the arena allocation is reused.
    ///
    /// [`Algorithm::Adaptive`] manages its own memos inside the budget
    /// ladder, so for that variant the supplied memo is reset but left
    /// empty and the call behaves exactly like [`Optimizer::optimize`].
    pub fn optimize_pooled(&self, query: &Query, memo: &mut Memo) -> Optimized {
        let opts = self.options();
        match self.algorithm {
            Algorithm::Adaptive => {
                memo.reset();
                dpnext_adaptive::optimize_adaptive(query, &opts)
            }
            _ if self.deadline.is_some() || self.memory_budget != 0 => {
                memo.reset();
                dpnext_adaptive::optimize_adaptive(query, &opts)
            }
            algo => optimize_into(query, algo, &opts, memo),
        }
    }

    fn options(&self) -> OptimizeOptions {
        OptimizeOptions {
            dominance: self.dominance,
            explain: self.explain,
            threads: self.threads,
            plan_budget: self.plan_budget,
            deadline: self.deadline,
            memory_budget: self.memory_budget,
            fault_unit_delay: self.fault_unit_delay,
        }
    }
}
