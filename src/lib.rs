//! Facade crate re-exporting the dpnext workspace, plus the [`Optimizer`]
//! entry point running the full pipeline `SQL text → parse/bind → Query →
//! memo DP → Optimized` in one call.

pub use dpnext_adaptive as adaptive;
pub use dpnext_algebra as algebra;
pub use dpnext_catalog as catalog;
pub use dpnext_conflict as conflict;
pub use dpnext_core as core;
pub use dpnext_cost as cost;
pub use dpnext_hypergraph as hypergraph;
pub use dpnext_keys as keys;
pub use dpnext_query as query;
pub use dpnext_sql as sql;
pub use dpnext_workload as workload;

mod optimizer;

pub use dpnext_core::{
    AdaptiveMode, Algorithm, Degradation, DominanceKind, Memo, MemoStats, Optimized,
};
pub use optimizer::Optimizer;
