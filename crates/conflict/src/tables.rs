//! Operator reordering property tables: associativity, l-asscom and
//! r-asscom (Moerkotte, Fender & Eich, SIGMOD 2013 — cited as \[7\]).
//!
//! The entries assume **null-rejecting predicates that reference both
//! operands**, which is what every predicate in this system is (attribute
//! comparisons with SQL semantics: a NULL never satisfies the predicate).
//! Under that assumption the footnoted entries of the published table are
//! unconditionally valid, and every remaining `false` is required — the
//! executor-backed property tests in `tests/` exercise exactly these
//! entries against real data.
//!
//! The groupjoin rows/columns follow the same derivations: the groupjoin
//! aggregates the empty bag to `count = 0` while NULL-padding yields NULL,
//! so it never reorders across a padding side.

use dpnext_query::OpKind;

fn idx(op: OpKind) -> usize {
    match op {
        OpKind::Join => 0,
        OpKind::Semi => 1,
        OpKind::Anti => 2,
        OpKind::LeftOuter => 3,
        OpKind::FullOuter => 4,
        OpKind::GroupJoin => 5,
    }
}

/// `assoc(◦a, ◦b)`: `(e1 ◦a e2) ◦b e3 ≡ e1 ◦a (e2 ◦b e3)`.
#[rustfmt::skip]
const ASSOC: [[bool; 6]; 6] = [
    // b:   ⋈      ⋉      ▷      ⟕      ⟗      Z
    /*⋈*/ [true,  true,  true,  true,  false, true ],
    /*⋉*/ [false, false, false, false, false, false],
    /*▷*/ [false, false, false, false, false, false],
    /*⟕*/ [false, false, false, true,  false, false],
    /*⟗*/ [false, false, false, true,  true,  false],
    /*Z*/ [false, false, false, false, false, false],
];

/// `l-asscom(◦a, ◦b)`: `(e1 ◦a e2) ◦b e3 ≡ (e1 ◦b e3) ◦a e2`
/// (predicate of `◦b` references `e1` and `e3`).
#[rustfmt::skip]
const L_ASSCOM: [[bool; 6]; 6] = [
    // b:   ⋈      ⋉      ▷      ⟕      ⟗      Z
    /*⋈*/ [true,  true,  true,  true,  false, true ],
    /*⋉*/ [true,  true,  true,  true,  false, true ],
    /*▷*/ [true,  true,  true,  true,  false, true ],
    /*⟕*/ [true,  true,  true,  true,  true,  true ],
    /*⟗*/ [false, false, false, true,  true,  false],
    /*Z*/ [true,  true,  true,  true,  false, true ],
];

/// `r-asscom(◦a, ◦b)`: `e1 ◦a (e2 ◦b e3) ≡ e2 ◦b (e1 ◦a e3)`
/// (predicate of `◦a` references `e1` and `e3`).
#[rustfmt::skip]
const R_ASSCOM: [[bool; 6]; 6] = [
    // b:   ⋈      ⋉      ▷      ⟕      ⟗      Z
    /*⋈*/ [true,  false, false, false, false, false],
    /*⋉*/ [false, false, false, false, false, false],
    /*▷*/ [false, false, false, false, false, false],
    /*⟕*/ [false, false, false, false, false, false],
    /*⟗*/ [false, false, false, false, true,  false],
    /*Z*/ [false, false, false, false, false, false],
];

/// `assoc(a, b)`: may `(e1 a e2) b e3` be rewritten to `e1 a (e2 b e3)`?
pub fn assoc(a: OpKind, b: OpKind) -> bool {
    ASSOC[idx(a)][idx(b)]
}

/// `l-asscom(a, b)`: may the left arguments be exchanged?
pub fn l_asscom(a: OpKind, b: OpKind) -> bool {
    L_ASSCOM[idx(a)][idx(b)]
}

/// `r-asscom(a, b)`: may the right arguments be exchanged?
pub fn r_asscom(a: OpKind, b: OpKind) -> bool {
    R_ASSCOM[idx(a)][idx(b)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use OpKind::*;

    #[test]
    fn inner_join_is_fully_reorderable_with_itself() {
        assert!(assoc(Join, Join));
        assert!(l_asscom(Join, Join));
        assert!(r_asscom(Join, Join));
    }

    #[test]
    fn outerjoin_barriers() {
        // The classic barriers that make naive reordering incorrect.
        assert!(!assoc(Join, FullOuter));
        assert!(!assoc(FullOuter, Join));
        assert!(!assoc(LeftOuter, Join));
        assert!(assoc(LeftOuter, LeftOuter));
        assert!(assoc(FullOuter, FullOuter));
        assert!(assoc(FullOuter, LeftOuter));
        assert!(!assoc(LeftOuter, FullOuter));
    }

    #[test]
    fn l_asscom_symmetry_classes() {
        // l-asscom is symmetric in its arguments for this operator set
        // wherever both entries are defined the same way.
        assert!(l_asscom(LeftOuter, FullOuter));
        assert!(l_asscom(FullOuter, LeftOuter));
        assert!(!l_asscom(Join, FullOuter));
        assert!(!l_asscom(FullOuter, Join));
    }

    #[test]
    fn semijoin_never_associates() {
        for b in [Join, Semi, Anti, LeftOuter, FullOuter, GroupJoin] {
            assert!(!assoc(Semi, b));
            assert!(!assoc(Anti, b));
        }
    }

    #[test]
    fn r_asscom_is_sparse() {
        let ops = [Join, Semi, Anti, LeftOuter, FullOuter, GroupJoin];
        let mut count = 0;
        for a in ops {
            for b in ops {
                if r_asscom(a, b) {
                    count += 1;
                }
            }
        }
        assert_eq!(2, count); // (⋈,⋈) and (⟗,⟗)
    }

    #[test]
    fn groupjoin_blocked_by_padding() {
        assert!(!l_asscom(GroupJoin, FullOuter));
        assert!(!l_asscom(FullOuter, GroupJoin));
        assert!(l_asscom(GroupJoin, LeftOuter));
        assert!(l_asscom(LeftOuter, GroupJoin));
        assert!(assoc(Join, GroupJoin));
        assert!(!assoc(LeftOuter, GroupJoin));
    }
}
