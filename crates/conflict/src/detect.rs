//! The conflict detector: computes SES/TES and conflict rules for every
//! operator of the initial tree and derives the query hypergraph
//! (components 2 and 3 of the plan generator, §4.1).
//!
//! This follows the CD approach of \[7\]: reordering conflicts are encoded
//! (a) in the hyperedge `(L-TES, R-TES)` handed to the DPhyp enumerator and
//! (b) in conflict rules `A → B` ("if the plan set touches `A` it must
//! contain all of `B`") checked by [`OperatorInfo::applicable`].

use crate::tables::{assoc, l_asscom, r_asscom};
use dpnext_algebra::{AggCall, AttrId, JoinPred};
use dpnext_hypergraph::{Hyperedge, Hypergraph, NodeSet};
use dpnext_query::{OpKind, OpTree, Query};
use std::collections::HashMap;

/// A conflict rule `when → then`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictRule {
    pub when: NodeSet,
    pub then: NodeSet,
}

/// Everything the plan generator needs to know about one operator of the
/// initial tree.
#[derive(Debug, Clone)]
pub struct OperatorInfo {
    pub op: OpKind,
    pub pred: JoinPred,
    pub sel: f64,
    pub gj_aggs: Vec<AggCall>,
    /// Relations of the left / right subtree in the initial tree.
    pub left_rels: NodeSet,
    pub right_rels: NodeSet,
    /// Syntactic eligibility sets per side.
    pub ses_left: NodeSet,
    pub ses_right: NodeSet,
    /// Total eligibility sets per side (`TES ∩ T(left/right)`).
    pub l_tes: NodeSet,
    pub r_tes: NodeSet,
    pub rules: Vec<ConflictRule>,
}

/// How an operator may be applied to a csg-cmp-pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applicability {
    No,
    /// `(s1, s2)` as given (s1 is the operator's left input).
    Normal,
    /// Only with the arguments swapped (commutative operators).
    Swapped,
    /// Both orientations are valid (commutative operators).
    Both,
}

impl OperatorInfo {
    /// The applicability test (Fig. 5, line 5) for the pair `(s1, s2)`.
    pub fn applicable(&self, s1: NodeSet, s2: NodeSet) -> Applicability {
        let s = s1.union(s2);
        for rule in &self.rules {
            if rule.when.intersects(s) && !rule.then.is_subset_of(s) {
                return Applicability::No;
            }
        }
        let normal_split = self.l_tes.is_subset_of(s1) && self.r_tes.is_subset_of(s2);
        let swapped_split = self.l_tes.is_subset_of(s2) && self.r_tes.is_subset_of(s1);
        if self.op.is_commutative() {
            // Commutativity makes the physical orientation free: as long as
            // the TES constraint is satisfiable in either assignment, both
            // (s1 ◦ s2) and (s2 ◦ s1) are valid plans (Fig. 5, lines 6–8).
            if normal_split || swapped_split {
                Applicability::Both
            } else {
                Applicability::No
            }
        } else if normal_split {
            Applicability::Normal
        } else if swapped_split {
            // The operator's left input must be the set containing L-TES:
            // apply it as (s2 ◦ s1).
            Applicability::Swapped
        } else {
            Applicability::No
        }
    }
}

/// The result of conflict detection: per-operator info plus the query
/// hypergraph whose edges are the `(L-TES, R-TES)` hypernodes.
#[derive(Debug, Clone)]
pub struct ConflictedQuery {
    pub ops: Vec<OperatorInfo>,
    pub graph: Hypergraph,
}

/// Run conflict detection on a query's initial operator tree.
pub fn detect(query: &Query) -> ConflictedQuery {
    let origins = query.attr_origins();
    let origin = |a: AttrId| -> NodeSet {
        *origins
            .get(&a)
            .unwrap_or_else(|| panic!("unknown attribute {a}"))
    };

    // Collect operators bottom-up, remembering each subtree's operators.
    let mut ops: Vec<OperatorInfo> = Vec::new();
    // For each tree node (by post-order index) the operator indices below it.
    collect(&query.tree, &origin, &mut ops);

    let mut graph = Hypergraph::new(query.table_count());
    for (i, op) in ops.iter().enumerate() {
        graph.add_edge(Hyperedge::new(op.l_tes, op.r_tes, i));
    }
    ConflictedQuery { ops, graph }
}

/// Recursive walk; returns (relations, operator indices) of the subtree.
fn collect(
    tree: &OpTree,
    origin: &impl Fn(AttrId) -> NodeSet,
    ops: &mut Vec<OperatorInfo>,
) -> (NodeSet, Vec<usize>) {
    match tree {
        OpTree::Rel(i) => (NodeSet::single(*i), Vec::new()),
        OpTree::Binary {
            op,
            pred,
            sel,
            gj_aggs,
            left,
            right,
        } => {
            let (lrels, lops) = collect(left, origin, ops);
            let (rrels, rops) = collect(right, origin, ops);

            // SES: relations syntactically required by the predicate (and,
            // for groupjoins, by the aggregate arguments).
            let mut ses_left = NodeSet::EMPTY;
            for a in pred.left_attrs() {
                ses_left = ses_left.union(origin(a));
            }
            let mut ses_right = NodeSet::EMPTY;
            for a in pred.right_attrs() {
                ses_right = ses_right.union(origin(a));
            }
            for call in gj_aggs {
                for a in call.referenced() {
                    ses_right = ses_right.union(origin(a));
                }
            }
            // Degenerate predicates: anchor each side somewhere so the
            // hyperedge is well-formed.
            if ses_left.is_empty() {
                ses_left = NodeSet::single(lrels.min());
            }
            if ses_right.is_empty() {
                ses_right = NodeSet::single(rrels.min());
            }

            let mut l_tes = ses_left;
            let mut r_tes = ses_right;
            let mut rules: Vec<ConflictRule> = Vec::new();

            // Conflicts with operators in the left subtree (CR-1 / CR-2).
            for &ai in &lops {
                let a = &ops[ai];
                if !assoc(a.op, *op) {
                    rules.push(ConflictRule {
                        when: a.right_rels,
                        then: a.left_rels,
                    });
                }
                if !l_asscom(a.op, *op) {
                    rules.push(ConflictRule {
                        when: a.left_rels,
                        then: a.right_rels,
                    });
                }
            }
            // Conflicts with operators in the right subtree (CR-3 / CR-4).
            for &ai in &rops {
                let a = &ops[ai];
                if !assoc(*op, a.op) {
                    rules.push(ConflictRule {
                        when: a.left_rels,
                        then: a.right_rels,
                    });
                }
                if !r_asscom(*op, a.op) {
                    rules.push(ConflictRule {
                        when: a.right_rels,
                        then: a.left_rels,
                    });
                }
            }

            // Simplify rules that force whole sides into the TES (this is
            // the standard rule-absorption step: a rule whose `when` side
            // already intersects the TES can be folded into it).
            loop {
                let mut changed = false;
                rules.retain(|r| {
                    let tes = l_tes.union(r_tes);
                    if r.when.intersects(tes) && !r.then.is_subset_of(tes) {
                        // Fold: extend the side-TES containing `when`.
                        let extend = r.then;
                        if r.when.intersects(lrels) {
                            l_tes = l_tes.union(extend.intersect(lrels));
                            r_tes = r_tes.union(extend.intersect(rrels));
                        } else {
                            r_tes = r_tes.union(extend.intersect(rrels));
                            l_tes = l_tes.union(extend.intersect(lrels));
                        }
                        changed = true;
                        return false;
                    }
                    !(r.when.intersects(tes) && r.then.is_subset_of(tes))
                });
                if !changed {
                    break;
                }
            }
            // TES sides stay within their subtrees.
            l_tes = l_tes.intersect(lrels);
            r_tes = r_tes.intersect(rrels);

            let info = OperatorInfo {
                op: *op,
                pred: pred.clone(),
                sel: *sel,
                gj_aggs: gj_aggs.clone(),
                left_rels: lrels,
                right_rels: rrels,
                ses_left,
                ses_right,
                l_tes,
                r_tes,
                rules,
            };
            ops.push(info);
            let mut myops = lops;
            myops.extend(rops);
            myops.push(ops.len() - 1);
            (lrels.union(rrels), myops)
        }
    }
}

/// Find the operators applicable to a csg-cmp-pair, with orientation.
/// Returns `(op index, swapped)` entries.
pub fn applicable_ops(cq: &ConflictedQuery, s1: NodeSet, s2: NodeSet) -> Vec<(usize, bool)> {
    let mut out = Vec::new();
    applicable_ops_into(cq, s1, s2, &mut out);
    out
}

/// [`applicable_ops`] into a caller-provided scratch buffer: the plan
/// generator calls this once per csg-cmp-pair, so the enumeration hot path
/// must not allocate here. `out` is cleared first.
pub fn applicable_ops_into(
    cq: &ConflictedQuery,
    s1: NodeSet,
    s2: NodeSet,
    out: &mut Vec<(usize, bool)>,
) {
    out.clear();
    for e in cq.graph.connecting_edges(s1, s2) {
        let op = &cq.ops[e.label];
        match op.applicable(s1, s2) {
            Applicability::No => {}
            Applicability::Normal => out.push((e.label, false)),
            Applicability::Swapped => out.push((e.label, true)),
            Applicability::Both => {
                out.push((e.label, false));
                out.push((e.label, true));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
}

/// Statistics over the conflict representation (useful for tests and
/// diagnostics).
pub fn conflict_stats(cq: &ConflictedQuery) -> HashMap<&'static str, usize> {
    let mut m = HashMap::new();
    m.insert("operators", cq.ops.len());
    m.insert("rules", cq.ops.iter().map(|o| o.rules.len()).sum());
    m.insert(
        "complex_edges",
        cq.ops
            .iter()
            .filter(|o| o.l_tes.len() > 1 || o.r_tes.len() > 1)
            .count(),
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnext_algebra::AttrId;
    use dpnext_query::QueryTable;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn tables(n: usize) -> Vec<QueryTable> {
        (0..n)
            .map(|i| QueryTable::new(format!("r{i}"), vec![a(i as u32)], 10.0))
            .collect()
    }

    /// r0 ⋈ r1 ⋈ r2 — all inner: everything freely reorderable.
    #[test]
    fn inner_chain_has_no_conflicts() {
        let tree = OpTree::binary(
            OpKind::Join,
            JoinPred::eq(a(1), a(2)),
            OpTree::binary(
                OpKind::Join,
                JoinPred::eq(a(0), a(1)),
                OpTree::rel(0),
                OpTree::rel(1),
            ),
            OpTree::rel(2),
        );
        let q = Query::new(tables(3), tree, None);
        let cq = detect(&q);
        assert_eq!(2, cq.ops.len());
        assert!(cq.ops.iter().all(|o| o.rules.is_empty()));
        assert!(cq
            .ops
            .iter()
            .all(|o| o.l_tes.len() == 1 && o.r_tes.len() == 1));
        // All three "bushy" combinations of the top join are reachable.
        let top = &cq.ops[1];
        assert_eq!(
            Applicability::Both,
            top.applicable(NodeSet::single(1), NodeSet::single(2))
        );
    }

    /// (r0 ⋈ r1) ⟗ r2: the inner join must not be pulled above the full
    /// outerjoin (assoc(⋈, ⟗) = false ⇒ rule).
    #[test]
    fn full_outer_blocks_join_pullup() {
        let tree = OpTree::binary(
            OpKind::FullOuter,
            JoinPred::eq(a(1), a(2)),
            OpTree::binary(
                OpKind::Join,
                JoinPred::eq(a(0), a(1)),
                OpTree::rel(0),
                OpTree::rel(1),
            ),
            OpTree::rel(2),
        );
        let q = Query::new(tables(3), tree, None);
        let cq = detect(&q);
        let outer = cq.ops.iter().find(|o| o.op == OpKind::FullOuter).unwrap();
        // Applying ⟗ on ({1}, {2}) would leave r0 to be joined above: must
        // be rejected.
        assert_eq!(
            Applicability::No,
            outer.applicable(NodeSet::single(1), NodeSet::single(2)),
        );
        // The full set on the left is fine.
        assert_ne!(
            Applicability::No,
            outer.applicable(NodeSet::from_iter([0, 1]), NodeSet::single(2)),
        );
    }

    /// r0 ⟕ (r1 ⟕ r2) — left outerjoins are associative; both plans valid.
    #[test]
    fn left_outer_chain_associative() {
        let tree = OpTree::binary(
            OpKind::LeftOuter,
            JoinPred::eq(a(0), a(1)),
            OpTree::rel(0),
            OpTree::binary(
                OpKind::LeftOuter,
                JoinPred::eq(a(1), a(2)),
                OpTree::rel(1),
                OpTree::rel(2),
            ),
        );
        let q = Query::new(tables(3), tree, None);
        let cq = detect(&q);
        let top = cq.ops.iter().find(|o| o.right_rels.len() == 2).unwrap();
        // ({0}, {1}): applying the top ⟕ early — allowed by assoc(⟕,⟕).
        assert_eq!(
            Applicability::Normal,
            top.applicable(NodeSet::single(0), NodeSet::single(1))
        );
        // With the pair given the other way round, the operator must be
        // applied with swapped arguments (it is not commutative).
        assert_eq!(
            Applicability::Swapped,
            top.applicable(NodeSet::single(1), NodeSet::single(0))
        );
    }

    /// The introductory query shape: (n_s ⋈ s) ⟗ (n_c ⋈ c).
    #[test]
    fn intro_query_edges() {
        // tables: 0 = ns, 1 = s, 2 = nc, 3 = c
        let tree = OpTree::binary(
            OpKind::FullOuter,
            JoinPred::eq(a(0), a(2)),
            OpTree::binary(
                OpKind::Join,
                JoinPred::eq(a(0), a(1)),
                OpTree::rel(0),
                OpTree::rel(1),
            ),
            OpTree::binary(
                OpKind::Join,
                JoinPred::eq(a(2), a(3)),
                OpTree::rel(2),
                OpTree::rel(3),
            ),
        );
        let q = Query::new(tables(4), tree, None);
        let cq = detect(&q);
        assert_eq!(3, cq.ops.len());
        let outer = cq.ops.iter().find(|o| o.op == OpKind::FullOuter).unwrap();
        // The inner joins must complete before the outer join on each side.
        assert_eq!(
            Applicability::No,
            outer.applicable(NodeSet::single(0), NodeSet::single(2)),
        );
        assert_ne!(
            Applicability::No,
            outer.applicable(NodeSet::from_iter([0, 1]), NodeSet::from_iter([2, 3])),
        );
        // Commutative: both orientations valid on the full sides.
        assert_eq!(
            Applicability::Both,
            outer.applicable(NodeSet::from_iter([0, 1]), NodeSet::from_iter([2, 3])),
        );
    }

    #[test]
    fn applicable_ops_helper() {
        let tree = OpTree::binary(
            OpKind::Join,
            JoinPred::eq(a(0), a(1)),
            OpTree::rel(0),
            OpTree::rel(1),
        );
        let q = Query::new(tables(2), tree, None);
        let cq = detect(&q);
        let found = applicable_ops(&cq, NodeSet::single(0), NodeSet::single(1));
        assert_eq!(vec![(0, false), (0, true)], found);
        assert!(applicable_ops(&cq, NodeSet::single(0), NodeSet::EMPTY).is_empty());
    }

    #[test]
    fn stats() {
        let tree = OpTree::binary(
            OpKind::Join,
            JoinPred::eq(a(0), a(1)),
            OpTree::rel(0),
            OpTree::rel(1),
        );
        let q = Query::new(tables(2), tree, None);
        let cq = detect(&q);
        let s = conflict_stats(&cq);
        assert_eq!(1, s["operators"]);
        assert_eq!(0, s["rules"]);
    }
}
