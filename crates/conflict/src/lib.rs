//! # dpnext-conflict
//!
//! The conflict detector substrate (\[7\] in the paper): encodes which
//! reorderings of inner joins, outerjoins, semijoins, antijoins and
//! groupjoins are valid, via operator property tables, TES computation and
//! conflict rules, and exposes the `Applicable` test used by every plan
//! generator (§4.1, component 3).

pub mod detect;
pub mod tables;

pub use detect::{
    applicable_ops, applicable_ops_into, conflict_stats, detect, Applicability, ConflictRule,
    ConflictedQuery, OperatorInfo,
};
pub use tables::{assoc, l_asscom, r_asscom};
