//! Semantic validation of the reordering property tables: every entry
//! marked `true` in `assoc` / `l-asscom` / `r-asscom` is an *equivalence
//! claim* — here each claimed-true entry is checked on random relations by
//! executing both sides. (False entries are conservative: they only shrink
//! the search space, so they need no semantic proof.)
//!
//! Relations: `e1(a1, j1, h1)`, `e2(a2, j2, k2)`, `e3(a3, j3)`.
//! Predicates: `p_a : j1 = j2` (e1–e2), `p_bc : k2 = j3` (e2–e3),
//! `p_bl : h1 = j3` (e1–e3). All are null rejecting, matching the
//! side conditions under which the table entries hold.

use dpnext_algebra::ops::{
    anti_join, full_outer_join, groupjoin, inner_join, left_outer_join, semi_join,
};
use dpnext_algebra::{AggCall, AttrId, JoinPred, Relation, Value};
use dpnext_conflict::{assoc, l_asscom, r_asscom};
use dpnext_query::OpKind;
use proptest::prelude::*;

const A1: AttrId = AttrId(0);
const J1: AttrId = AttrId(1);
const H1: AttrId = AttrId(2);
const A2: AttrId = AttrId(10);
const J2: AttrId = AttrId(11);
const K2: AttrId = AttrId(12);
const A3: AttrId = AttrId(20);
const J3: AttrId = AttrId(21);
/// Groupjoin output attributes (distinct per operator position).
const GJ_A: AttrId = AttrId(30);
const GJ_B: AttrId = AttrId(31);

fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => (0i64..3).prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

fn rel(attrs: [AttrId; 3], max_rows: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec([small_value(), small_value(), small_value()], 0..=max_rows).prop_map(
        move |rows| {
            Relation::from_rows(
                attrs.to_vec(),
                rows.into_iter().map(|r| r.to_vec()).collect(),
            )
        },
    )
}

/// Apply `op` with the given predicate; groupjoins count their partners
/// into `gj_out`.
fn apply(op: OpKind, l: &Relation, r: &Relation, pred: &JoinPred, gj_out: AttrId) -> Relation {
    match op {
        OpKind::Join => inner_join(l, r, pred),
        OpKind::Semi => semi_join(l, r, pred),
        OpKind::Anti => anti_join(l, r, pred),
        OpKind::LeftOuter => left_outer_join(l, r, pred, &vec![]),
        OpKind::FullOuter => full_outer_join(l, r, pred, &vec![], &vec![]),
        OpKind::GroupJoin => groupjoin(l, r, pred, &[AggCall::count_star(gj_out)]),
    }
}

const OPS: [OpKind; 6] = [
    OpKind::Join,
    OpKind::Semi,
    OpKind::Anti,
    OpKind::LeftOuter,
    OpKind::FullOuter,
    OpKind::GroupJoin,
];

/// The right input of `◦b` in the assoc shape `e1 ◦a (e2 ◦b e3)` must
/// still expose `e2`'s attributes for `p_a`; ops that drop or replace the
/// right side keep `e2` because it is their *left* input there.
fn assoc_sides_executable(a: OpKind, b: OpKind) -> bool {
    // On the LHS (e1 ◦a e2) ◦b e3, p_bc references k2: ◦a must preserve
    // its right input's attributes.
    let _ = b;
    a.preserves_right()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every `assoc(a, b) = true` entry holds:
    /// `(e1 a e2) b e3 ≡ e1 a (e2 b e3)`.
    #[test]
    fn assoc_true_entries_hold(r1 in rel([A1, J1, H1], 5),
                               r2 in rel([A2, J2, K2], 5),
                               r3 in rel([A3, J3, A3.offset()], 5)) {
        let pa = JoinPred::eq(J1, J2);
        let pb = JoinPred::eq(K2, J3);
        for a in OPS {
            for b in OPS {
                if !assoc(a, b) {
                    continue;
                }
                prop_assert!(
                    assoc_sides_executable(a, b),
                    "assoc({a:?},{b:?}) = true but the shape is not executable"
                );
                let lhs = apply(b, &apply(a, &r1, &r2, &pa, GJ_A), &r3, &pb, GJ_B);
                let rhs = apply(a, &r1, &apply(b, &r2, &r3, &pb, GJ_B), &pa, GJ_A);
                prop_assert!(
                    lhs.bag_eq(&rhs),
                    "assoc({a:?},{b:?}) violated:\nlhs:\n{lhs}\nrhs:\n{rhs}"
                );
            }
        }
    }

    /// Every `l-asscom(a, b) = true` entry holds:
    /// `(e1 a e2) b e3 ≡ (e1 b e3) a e2`.
    #[test]
    fn l_asscom_true_entries_hold(r1 in rel([A1, J1, H1], 5),
                                  r2 in rel([A2, J2, K2], 5),
                                  r3 in rel([A3, J3, A3.offset()], 5)) {
        let pa = JoinPred::eq(J1, J2);
        let pb = JoinPred::eq(H1, J3);
        for a in OPS {
            for b in OPS {
                if !l_asscom(a, b) {
                    continue;
                }
                let lhs = apply(b, &apply(a, &r1, &r2, &pa, GJ_A), &r3, &pb, GJ_B);
                let rhs = apply(a, &apply(b, &r1, &r3, &pb, GJ_B), &r2, &pa, GJ_A);
                prop_assert!(
                    lhs.bag_eq(&rhs),
                    "l-asscom({a:?},{b:?}) violated:\nlhs:\n{lhs}\nrhs:\n{rhs}"
                );
            }
        }
    }

    /// Every `r-asscom(a, b) = true` entry holds:
    /// `e1 a (e2 b e3) ≡ e2 b (e1 a e3)`.
    #[test]
    fn r_asscom_true_entries_hold(r1 in rel([A1, J1, H1], 5),
                                  r2 in rel([A2, J2, K2], 5),
                                  r3 in rel([A3, J3, A3.offset()], 5)) {
        let pa = JoinPred::eq(H1, J3);
        let pb = JoinPred::eq(K2, J3);
        for a in OPS {
            for b in OPS {
                if !r_asscom(a, b) {
                    continue;
                }
                let lhs = apply(a, &r1, &apply(b, &r2, &r3, &pb, GJ_B), &pa, GJ_A);
                let rhs = apply(b, &r2, &apply(a, &r1, &r3, &pa, GJ_A), &pb, GJ_B);
                prop_assert!(
                    lhs.bag_eq(&rhs),
                    "r-asscom({a:?},{b:?}) violated:\nlhs:\n{lhs}\nrhs:\n{rhs}"
                );
            }
        }
    }
}

/// Helper trait: one extra distinct attribute for the 3-column builder.
trait Offset {
    fn offset(self) -> AttrId;
}
impl Offset for AttrId {
    fn offset(self) -> AttrId {
        AttrId(self.0 + 5)
    }
}

/// Documented counterexamples for a few *false* entries, pinning that the
/// table is not needlessly conservative there.
#[test]
fn false_entries_have_counterexamples() {
    // assoc(⋈, ⟗) = false: (e1 ⋈ e2) ⟗ e3 keeps unmatched e3 tuples with
    // NULL-padded e1∘e2, while e1 ⋈ (e2 ⟗ e3) drops them through the
    // null-rejecting p_a.
    let r1 = Relation::from_ints(vec![A1, J1, H1], &[&[Some(1), Some(9), Some(0)]]);
    let r2 = Relation::from_ints(vec![A2, J2, K2], &[&[Some(1), Some(9), Some(9)]]);
    let r3 = Relation::from_ints(vec![A3, J3, AttrId(25)], &[&[Some(7), Some(3), Some(0)]]);
    let pa = JoinPred::eq(J1, J2);
    let pb = JoinPred::eq(K2, J3);
    let lhs = full_outer_join(&inner_join(&r1, &r2, &pa), &r3, &pb, &vec![], &vec![]);
    let rhs = inner_join(&r1, &full_outer_join(&r2, &r3, &pb, &vec![], &vec![]), &pa);
    assert!(
        !lhs.bag_eq(&rhs),
        "expected a counterexample for assoc(⋈,⟗)"
    );

    // l-asscom(⋈, ⟗) = false: unmatched e3 tuples survive on the LHS only.
    let pb_l = JoinPred::eq(H1, J3);
    let lhs = full_outer_join(&inner_join(&r1, &r2, &pa), &r3, &pb_l, &vec![], &vec![]);
    let rhs = inner_join(
        &full_outer_join(&r1, &r3, &pb_l, &vec![], &vec![]),
        &r2,
        &pa,
    );
    assert!(
        !lhs.bag_eq(&rhs),
        "expected a counterexample for l-asscom(⋈,⟗)"
    );

    // assoc(⟕, ⋈) = false: the join result of the RHS retains e1 tuples
    // the LHS drops.
    let r2b = Relation::from_ints(vec![A2, J2, K2], &[&[Some(1), Some(4), Some(3)]]);
    let lhs = inner_join(&left_outer_join(&r1, &r2b, &pa, &vec![]), &r3, &pb);
    let rhs = left_outer_join(&r1, &inner_join(&r2b, &r3, &pb), &pa, &vec![]);
    assert!(
        !lhs.bag_eq(&rhs),
        "expected a counterexample for assoc(⟕,⋈)"
    );
}
