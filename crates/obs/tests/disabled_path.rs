//! The disabled path must be free: with tracing off, `span` /
//! `emit_span` and the metric hot paths must not allocate at all.
//!
//! This file holds exactly one test so the counting global allocator
//! sees no interference from parallel test threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracing_and_metric_hot_paths_allocate_nothing() {
    dpnext_obs::set_trace_level(dpnext_obs::TraceLevel::Off);

    // Warm up everything that lazily allocates on first touch, so the
    // measured window sees only the steady-state hot paths.
    let gauge = dpnext_obs::global_live_bytes();
    let counter = dpnext_obs::Counter::new();
    let histogram = dpnext_obs::Histogram::new();
    gauge.add(1);
    gauge.sub(1);
    {
        let mut warm = dpnext_obs::span("warmup");
        warm.tag_u64("i", 0);
    }
    dpnext_obs::emit_span("warmup.emit", 1, &[("a", 1)]);

    let before = ALLOCS.load(Ordering::SeqCst);
    for i in 0..1_000u64 {
        let mut s = dpnext_obs::span("test.disabled");
        s.tag_u64("i", i);
        s.tag_str("kind", "noop");
        assert!(!s.is_recording());
        drop(s);
        dpnext_obs::emit_span("test.disabled.emit", i, &[("i", i), ("j", i * 2)]);
        counter.inc();
        counter.add(i);
        histogram.observe(i);
        gauge.add(i);
        gauge.sub(i);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        before, after,
        "disabled tracing / metric hot paths must not allocate"
    );
    assert_eq!(
        dpnext_obs::spans_opened(),
        dpnext_obs::spans_closed(),
        "inert spans must not count as opened"
    );
}
