//! Lock-free metrics: counters, gauges and log2-bucket histograms, a
//! process registry that names them, and Prometheus text exposition.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: one per power of two of `u64` plus the
/// zero bucket. Bucket `i` (for `i < 64`) holds values `<= 2^i - 1`; the
/// top bucket is unbounded (`+Inf`).
pub const HIST_BUCKETS: usize = 65;

/// A monotonically increasing count — one relaxed atomic add to bump.
#[derive(Debug, Default)]
pub struct Counter {
    cell: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Add one and return the *previous* count — an atomic sequence
    /// number for callers that index per-event state (e.g. deterministic
    /// fault schedules) off the same cell they count with.
    #[inline]
    pub fn fetch_inc(&self) -> u64 {
        self.cell.fetch_add(1, Ordering::Relaxed)
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down, with a high-water mark. `sub`
/// saturates at zero (a CAS loop) so a racy over-release cannot wrap the
/// gauge to `u64::MAX` and panic downstream consumers.
#[derive(Debug, Default)]
pub struct Gauge {
    cell: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value (peak is raised if exceeded).
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Raise by `n` (peak is raised if exceeded).
    #[inline]
    pub fn add(&self, n: u64) {
        let now = self.cell.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Lower by `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        let mut cur = self.cell.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .cell
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Highest value ever held (monotone).
    #[inline]
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Which bucket a value lands in: `0 → 0`, otherwise the position of the
/// highest set bit plus one, so bucket `i` spans `[2^(i-1), 2^i - 1]`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Upper bound of bucket `i` as a Prometheus `le` label value.
fn bucket_le(i: usize) -> String {
    if i >= HIST_BUCKETS - 1 {
        "+Inf".to_string()
    } else {
        // 2^i - 1; for i = 0 this is the zero bucket (le="0").
        ((1u128 << i) - 1).to_string()
    }
}

/// A fixed log2-bucket histogram: `observe` is a `leading_zeros` and
/// three relaxed atomic adds — lock-free, allocation-free, always on.
/// Log2 buckets give ~±50% quantile resolution across the full `u64`
/// range, which is plenty to tell a 2 ms p99 from a 200 ms one.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the buckets and totals. Taken cell-by-cell
    /// without a lock, so under concurrent writes the copy can be a few
    /// observations torn — fine for monitoring, which is its only use.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile estimation.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (bucket `i` holds `<= 2^i - 1`;
    /// the last bucket is unbounded).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 < q <= 1.0`), i.e. an over-estimate by at most one bucket
    /// width. Returns 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return if i >= HIST_BUCKETS - 1 {
                    u64::MAX
                } else {
                    ((1u128 << i) - 1) as u64
                };
            }
        }
        u64::MAX
    }

    /// The median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Exact mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The kind of a registered metric (drives the Prometheus `# TYPE` line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone count.
    Counter,
    /// Up/down value.
    Gauge,
    /// Log2-bucket distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A point-in-time value in a [`MetricsSnapshot`].
// Snapshot values exist only on the cold render/inspection path, so the
// 500-byte bucket array is better inline than behind one more allocation
// per scraped series.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// A counter's count.
    Counter(u64),
    /// A gauge's value and high-water mark.
    Gauge {
        /// Current value.
        value: u64,
        /// Highest value ever held.
        peak: u64,
    },
    /// A histogram's buckets and totals.
    Histogram(HistogramSnapshot),
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn kind(&self) -> MetricKind {
        match self {
            Handle::Counter(_) => MetricKind::Counter,
            Handle::Gauge(_) => MetricKind::Gauge,
            Handle::Histogram(_) => MetricKind::Histogram,
        }
    }

    fn snapshot(&self) -> MetricValue {
        match self {
            Handle::Counter(c) => MetricValue::Counter(c.get()),
            Handle::Gauge(g) => MetricValue::Gauge {
                value: g.get(),
                peak: g.peak(),
            },
            Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
        }
    }
}

struct Entry {
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, &'static str)>,
    handle: Handle,
}

/// Names a set of metric handles and renders point-in-time snapshots.
///
/// Registration is idempotent on `(name, labels)`: asking twice returns
/// the same handle, so components can register lazily without
/// coordination. Names, help strings and label values are all
/// `&'static str` — label cardinality is bounded at compile time by
/// construction (enum-derived values, never request data).
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &'static str)],
        make: impl FnOnce() -> Handle,
        kind: MetricKind,
    ) -> Handle {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            assert_eq!(
                kind,
                e.handle.kind(),
                "metric {name} re-registered with a different kind"
            );
            return match &e.handle {
                Handle::Counter(c) => Handle::Counter(c.clone()),
                Handle::Gauge(g) => Handle::Gauge(g.clone()),
                Handle::Histogram(h) => Handle::Histogram(h.clone()),
            };
        }
        let handle = make();
        let clone = match &handle {
            Handle::Counter(c) => Handle::Counter(c.clone()),
            Handle::Gauge(g) => Handle::Gauge(g.clone()),
            Handle::Histogram(h) => Handle::Histogram(h.clone()),
        };
        entries.push(Entry {
            name,
            help,
            labels: labels.to_vec(),
            handle,
        });
        clone
    }

    /// Register (or fetch) an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a labeled counter.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &'static str)],
    ) -> Arc<Counter> {
        match self.get_or_insert(
            name,
            help,
            labels,
            || Handle::Counter(Arc::new(Counter::new())),
            MetricKind::Counter,
        ) {
            Handle::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Register an existing counter handle (a component-owned cell the
    /// service exposes, e.g. the plan cache's hit counter). Idempotent
    /// like the other registrations; if `(name, labels)` is already
    /// present the registered handle wins and is returned.
    pub fn register_counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &'static str)],
        counter: Arc<Counter>,
    ) -> Arc<Counter> {
        match self.get_or_insert(
            name,
            help,
            labels,
            || Handle::Counter(counter),
            MetricKind::Counter,
        ) {
            Handle::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Register (or fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a labeled gauge.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &'static str)],
    ) -> Arc<Gauge> {
        match self.get_or_insert(
            name,
            help,
            labels,
            || Handle::Gauge(Arc::new(Gauge::new())),
            MetricKind::Gauge,
        ) {
            Handle::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Register an existing gauge handle (e.g. [`global_live_bytes`],
    /// which must be shared between the core engine and the registry).
    /// Idempotent like the other registrations; if `(name, labels)` is
    /// already present the registered handle wins and is returned.
    pub fn register_gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &'static str)],
        gauge: Arc<Gauge>,
    ) -> Arc<Gauge> {
        match self.get_or_insert(
            name,
            help,
            labels,
            || Handle::Gauge(gauge),
            MetricKind::Gauge,
        ) {
            Handle::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Register (or fetch) an unlabeled histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Register (or fetch) a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &'static str)],
    ) -> Arc<Histogram> {
        match self.get_or_insert(
            name,
            help,
            labels,
            || Handle::Histogram(Arc::new(Histogram::new())),
            MetricKind::Histogram,
        ) {
            Handle::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Point-in-time snapshot of every registered metric, grouped by
    /// family (same name, different labels) in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().unwrap();
        let mut families: Vec<FamilySnapshot> = Vec::new();
        for e in entries.iter() {
            let value = e.handle.snapshot();
            match families.iter_mut().find(|f| f.name == e.name) {
                Some(f) => f.series.push((e.labels.clone(), value)),
                None => families.push(FamilySnapshot {
                    name: e.name,
                    help: e.help,
                    kind: e.handle.kind(),
                    series: vec![(e.labels.clone(), value)],
                }),
            }
        }
        MetricsSnapshot { families }
    }
}

/// One metric family (a name plus every label combination under it).
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Help text.
    pub help: &'static str,
    /// Kind of every series in the family.
    pub kind: MetricKind,
    /// `(labels, value)` per series, in registration order.
    pub series: Vec<(Vec<(&'static str, &'static str)>, MetricValue)>,
}

/// A point-in-time snapshot of a whole [`Registry`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Every family, in first-registration order.
    pub families: Vec<FamilySnapshot>,
}

fn render_labels(out: &mut String, labels: &[(&str, &str)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
}

impl MetricsSnapshot {
    /// The family named `name`, if present.
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Sum of a counter family across all its label sets (0 if absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.family(name)
            .map(|f| {
                f.series
                    .iter()
                    .map(|(_, v)| match v {
                        MetricValue::Counter(c) => *c,
                        _ => 0,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Render in Prometheus text exposition format (v0.0.4): `# HELP` /
    /// `# TYPE` per family, then one sample line per series. Histograms
    /// expand to cumulative `_bucket{le=...}` lines (empty buckets are
    /// skipped — cumulative counts are unchanged by them — with the
    /// `+Inf` bucket always present), plus `_sum` and `_count`. Gauges
    /// also emit a companion `<name>_peak` gauge with the high-water
    /// mark. Output always ends with a newline.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(2048);
        for f in &self.families {
            out.push_str("# HELP ");
            out.push_str(f.name);
            out.push(' ');
            out.push_str(f.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(f.name);
            out.push(' ');
            out.push_str(f.kind.as_str());
            out.push('\n');
            for (labels, value) in &f.series {
                match value {
                    MetricValue::Counter(c) => {
                        out.push_str(f.name);
                        render_labels(&mut out, labels, None);
                        out.push(' ');
                        out.push_str(&c.to_string());
                        out.push('\n');
                    }
                    MetricValue::Gauge { value, .. } => {
                        out.push_str(f.name);
                        render_labels(&mut out, labels, None);
                        out.push(' ');
                        out.push_str(&value.to_string());
                        out.push('\n');
                    }
                    MetricValue::Histogram(h) => {
                        let mut cum = 0u64;
                        for (i, &b) in h.buckets.iter().enumerate() {
                            cum += b;
                            if b == 0 && i < HIST_BUCKETS - 1 {
                                continue;
                            }
                            out.push_str(f.name);
                            out.push_str("_bucket");
                            let le = bucket_le(i);
                            render_labels(&mut out, labels, Some(("le", &le)));
                            out.push(' ');
                            out.push_str(&cum.to_string());
                            out.push('\n');
                        }
                        out.push_str(f.name);
                        out.push_str("_sum");
                        render_labels(&mut out, labels, None);
                        out.push(' ');
                        out.push_str(&h.sum.to_string());
                        out.push('\n');
                        out.push_str(f.name);
                        out.push_str("_count");
                        render_labels(&mut out, labels, None);
                        out.push(' ');
                        out.push_str(&h.count.to_string());
                        out.push('\n');
                    }
                }
            }
            // Companion peak gauge, emitted as its own family.
            if f.kind == MetricKind::Gauge {
                out.push_str("# HELP ");
                out.push_str(f.name);
                out.push_str("_peak High-water mark of ");
                out.push_str(f.name);
                out.push('\n');
                out.push_str("# TYPE ");
                out.push_str(f.name);
                out.push_str("_peak gauge\n");
                for (labels, value) in &f.series {
                    if let MetricValue::Gauge { peak, .. } = value {
                        out.push_str(f.name);
                        out.push_str("_peak");
                        render_labels(&mut out, labels, None);
                        out.push(' ');
                        out.push_str(&peak.to_string());
                        out.push('\n');
                    }
                }
            }
        }
        out
    }
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse one sample line into `(metric_name, le_label, value)`.
fn parse_sample(line: &str) -> Result<(String, Option<String>, f64), String> {
    let mut le = None;
    let (name_part, value_part) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label set: {line}"))?;
            if close < brace {
                return Err(format!("malformed label set: {line}"));
            }
            let labels = &line[brace + 1..close];
            for pair in labels.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("label without '=': {line}"))?;
                if !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                    return Err(format!("unquoted label value: {line}"));
                }
                if !valid_metric_name(k) {
                    return Err(format!("bad label name {k:?}: {line}"));
                }
                if k == "le" {
                    le = Some(v[1..v.len() - 1].to_string());
                }
            }
            (&line[..brace], line[close + 1..].trim())
        }
        None => {
            let sp = line
                .find(' ')
                .ok_or_else(|| format!("sample without value: {line}"))?;
            (&line[..sp], line[sp + 1..].trim())
        }
    };
    let name = name_part.trim();
    if !valid_metric_name(name) {
        return Err(format!("bad metric name {name:?}"));
    }
    let value: f64 = value_part
        .parse()
        .map_err(|_| format!("unparseable value {value_part:?} on line: {line}"))?;
    Ok((name.to_string(), le, value))
}

/// Lint a Prometheus text exposition: every sample's metric must have a
/// preceding `# TYPE`, names and labels must be well-formed, values must
/// parse, histogram `_bucket` series must be cumulative with a final
/// `+Inf` equal to `_count`, and the text must end with a newline.
/// Returns the first problem found.
pub fn lint_prometheus_text(text: &str) -> Result<(), String> {
    if text.is_empty() {
        return Err("empty exposition".to_string());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".to_string());
    }
    let mut typed: Vec<(String, String)> = Vec::new(); // (name, kind)
                                                       // per histogram base name: (last cumulative, saw +Inf, +Inf value)
    let mut hist: Vec<(String, u64, bool, u64)> = Vec::new();
    let mut counts: Vec<(String, u64)> = Vec::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or("");
            let kind = it.next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(format!("bad TYPE name: {line}"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("bad TYPE kind: {line}"));
            }
            typed.push((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free comment
        }
        let (name, le, value) = parse_sample(line)?;
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(&name);
        let is_hist_series = typed.iter().any(|(n, k)| n == base && k == "histogram");
        let declared = typed.iter().any(|(n, _)| n == &name) || is_hist_series;
        if !declared {
            return Err(format!("sample for undeclared metric {name:?}"));
        }
        if is_hist_series && name.ends_with("_bucket") {
            let le = le.ok_or_else(|| format!("_bucket without le label: {line}"))?;
            let v = value as u64;
            match hist.iter_mut().find(|(n, ..)| n == base) {
                Some((_, last, saw_inf, inf_v)) => {
                    if v < *last {
                        return Err(format!("non-cumulative buckets for {base}"));
                    }
                    *last = v;
                    if le == "+Inf" {
                        *saw_inf = true;
                        *inf_v = v;
                    }
                }
                None => hist.push((base.to_string(), v, le == "+Inf", v)),
            }
        }
        if is_hist_series && name.ends_with("_count") {
            counts.push((base.to_string(), value as u64));
        }
    }
    for (base, _, saw_inf, inf_v) in &hist {
        if !saw_inf {
            return Err(format!("histogram {base} missing +Inf bucket"));
        }
        match counts.iter().find(|(n, _)| n == base) {
            Some((_, c)) if c == inf_v => {}
            Some((_, c)) => {
                return Err(format!(
                    "histogram {base}: +Inf bucket {inf_v} != _count {c}"
                ));
            }
            None => return Err(format!("histogram {base} missing _count")),
        }
    }
    Ok(())
}

/// The process-wide live-bytes gauge the core engine samples into at
/// work-unit granularity (mid-run memory visibility between pool
/// check-in boundaries). Shared as a static so `dpnext-core` can update
/// it without depending on any serving-layer registry; the service
/// registers this same handle under `dpnext_live_bytes_midrun`.
pub fn global_live_bytes() -> Arc<Gauge> {
    static G: OnceLock<Arc<Gauge>> = OnceLock::new();
    G.get_or_init(|| Arc::new(Gauge::new())).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(5, c.get());

        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(7, g.get());
        assert_eq!(10, g.peak());
        g.sub(100);
        assert_eq!(0, g.get(), "sub saturates at zero");
        g.set(42);
        assert_eq!(42, g.peak());
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(0, bucket_index(0));
        assert_eq!(1, bucket_index(1));
        assert_eq!(2, bucket_index(2));
        assert_eq!(2, bucket_index(3));
        assert_eq!(3, bucket_index(4));
        assert_eq!(63, bucket_index((1u64 << 63) - 1));
        assert_eq!(64, bucket_index(1u64 << 63));
        assert_eq!(64, bucket_index(u64::MAX));
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::new();
        // 90 fast observations (~1000ns) and 10 slow (~1_000_000ns).
        for _ in 0..90 {
            h.observe(1000);
        }
        for _ in 0..10 {
            h.observe(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(100, s.count);
        assert_eq!(90 * 1000 + 10 * 1_000_000, s.sum);
        // 1000 lands in bucket 10 (le 1023); 1_000_000 in bucket 20.
        assert_eq!(1023, s.p50());
        assert_eq!(1023, s.p90());
        assert_eq!((1u64 << 20) - 1, s.p99());
        assert!((s.mean() - 100_900.0).abs() < 1e-9);
        assert_eq!(0, HistogramSnapshot::default().quantile(0.5));
    }

    #[test]
    fn registry_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("dpnext_test_total", "test");
        let b = r.counter("dpnext_test_total", "test");
        a.inc();
        assert_eq!(1, b.get(), "same (name, labels) must share one cell");
        let l1 = r.counter_with("dpnext_test_total", "test", &[("rung", "exact")]);
        l1.add(3);
        let snap = r.snapshot();
        assert_eq!(4, snap.counter_total("dpnext_test_total"));
        assert_eq!(1, snap.families.len(), "labeled series join the family");
        assert_eq!(2, snap.families[0].series.len());
    }

    #[test]
    fn shared_gauge_registration() {
        let r = Registry::new();
        let g = global_live_bytes();
        let reg = r.register_gauge("dpnext_live_bytes_midrun", "live bytes", &[], g.clone());
        g.set(123);
        assert_eq!(123, reg.get());
        let again = r.register_gauge(
            "dpnext_live_bytes_midrun",
            "live bytes",
            &[],
            Arc::new(Gauge::new()),
        );
        assert_eq!(
            123,
            again.get(),
            "second registration returns the first handle"
        );
        g.set(0);
    }

    #[test]
    fn render_text_passes_lint() {
        let r = Registry::new();
        r.counter("dpnext_requests_total", "Requests.").add(7);
        r.gauge("dpnext_queue_depth", "Waiters.").set(2);
        let h = r.histogram_with(
            "dpnext_latency_nanos",
            "Request latency.",
            &[("path", "serve")],
        );
        h.observe(0);
        h.observe(900);
        h.observe(u64::MAX);
        let text = r.snapshot().render_text();
        lint_prometheus_text(&text).expect("rendered text must lint clean");
        assert!(text.contains("# TYPE dpnext_latency_nanos histogram\n"));
        assert!(text.contains("dpnext_latency_nanos_bucket{path=\"serve\",le=\"0\"} 1\n"));
        assert!(text.contains("dpnext_latency_nanos_bucket{path=\"serve\",le=\"1023\"} 2\n"));
        assert!(text.contains("dpnext_latency_nanos_bucket{path=\"serve\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("dpnext_latency_nanos_count{path=\"serve\"} 3\n"));
        assert!(text.contains("dpnext_queue_depth 2\n"));
        assert!(text.contains("dpnext_queue_depth_peak 2\n"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn lint_rejects_malformed_text() {
        assert!(lint_prometheus_text("").is_err());
        assert!(lint_prometheus_text("no_newline 1").is_err());
        assert!(lint_prometheus_text("undeclared_metric 1\n").is_err());
        assert!(
            lint_prometheus_text("# TYPE m counter\nm{l=unquoted} 1\n").is_err(),
            "label values must be quoted"
        );
        assert!(
            lint_prometheus_text(
                "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n"
            )
            .is_err(),
            "buckets must be cumulative"
        );
        assert!(
            lint_prometheus_text("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\n")
                .is_err(),
            "+Inf must equal _count"
        );
        assert!(lint_prometheus_text("# TYPE m counter\nm 1\n").is_ok());
    }
}
