//! The span/event tracing core: monotonic timestamps, a pluggable sink,
//! and a disabled path that costs one atomic load.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// How much the tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceLevel {
    /// Record nothing. [`span`] returns an inert guard without reading
    /// the clock or allocating — the production default.
    Off,
    /// Record spans and deliver them to the installed sink on close.
    Spans,
}

static LEVEL: AtomicU8 = AtomicU8::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static SPANS_OPENED: AtomicU64 = AtomicU64::new(0);
static SPANS_CLOSED: AtomicU64 = AtomicU64::new(0);
static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);

/// The process-wide monotonic epoch every span timestamp is relative to
/// (pinned on first use, so timestamps across threads are comparable).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (monotonic).
pub fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Set the global trace level. Spans already in flight close normally
/// (their open is always balanced by a close); spans created while `Off`
/// stay inert even if the level rises before they drop.
pub fn set_trace_level(level: TraceLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global trace level.
pub fn trace_level() -> TraceLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => TraceLevel::Off,
        _ => TraceLevel::Spans,
    }
}

/// Whether spans are currently recorded — one relaxed atomic load, the
/// whole cost of instrumented code when tracing is off.
#[inline]
pub fn tracing_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) != 0
}

/// Install the global sink closed spans are delivered to (replacing any
/// previous one). The sink alone records nothing — raise the level with
/// [`set_trace_level`] too.
pub fn install_sink(sink: Arc<dyn TraceSink>) {
    *SINK.write().unwrap() = Some(sink);
}

/// Remove and return the installed sink, if any.
pub fn clear_sink() -> Option<Arc<dyn TraceSink>> {
    SINK.write().unwrap().take()
}

/// Spans opened since process start (only counted while tracing is on).
pub fn spans_opened() -> u64 {
    SPANS_OPENED.load(Ordering::Relaxed)
}

/// Spans closed since process start. Every opened span closes when its
/// guard drops — even on a panic unwinding through it — so after
/// quiescence `spans_opened() == spans_closed()`; the `obs_smoke` CI
/// binary fails hard when they disagree (a leaked guard or a span held
/// across a request boundary).
pub fn spans_closed() -> u64 {
    SPANS_CLOSED.load(Ordering::Relaxed)
}

/// One tag value on a span.
#[derive(Debug, Clone, PartialEq)]
pub enum TagValue {
    /// An unsigned integer (ids, byte counts, hashes).
    U64(u64),
    /// A static string (enum-like outcomes: rung names, abort causes).
    Str(&'static str),
    /// An owned string, for values only known at runtime (e.g. a
    /// degradation cause list). Allocates — only attach while recording.
    Text(String),
}

impl std::fmt::Display for TagValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TagValue::U64(v) => write!(f, "{v}"),
            TagValue::Str(s) => f.write_str(s),
            TagValue::Text(s) => f.write_str(s),
        }
    }
}

/// A closed span, as delivered to a [`TraceSink`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread (0 = a root span).
    pub parent: u64,
    /// Static span name (see the taxonomy in `docs/OBSERVABILITY.md`).
    pub name: &'static str,
    /// Start, in nanoseconds since the process trace epoch (monotonic).
    pub start_nanos: u64,
    /// End, same clock. `end_nanos - start_nanos` is the duration.
    pub end_nanos: u64,
    /// Tags attached while the span was open, in attachment order.
    pub tags: Vec<(&'static str, TagValue)>,
}

impl SpanRecord {
    /// The span duration in nanoseconds.
    pub fn dur_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }

    /// The first tag named `key`, if any.
    pub fn tag(&self, key: &str) -> Option<&TagValue> {
        self.tags.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Render as one line-protocol JSON object (the `JsonLinesSink`
    /// format): `{"id":..,"parent":..,"name":"..","start_ns":..,
    /// "dur_ns":..,"tags":{..}}`.
    pub fn render_json_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"tags\":{{",
            self.id,
            self.parent,
            self.name,
            self.start_nanos,
            self.dur_nanos()
        );
        for (i, (k, v)) in self.tags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match v {
                TagValue::U64(n) => {
                    let _ = write!(out, "\"{k}\":{n}");
                }
                TagValue::Str(s) => {
                    let _ = write!(out, "\"{k}\":\"{}\"", escape_json(s));
                }
                TagValue::Text(s) => {
                    let _ = write!(out, "\"{k}\":\"{}\"", escape_json(s));
                }
            }
        }
        out.push_str("}}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Where closed spans go. Implementations must be cheap and must never
/// panic — a sink runs inside guard drops on every instrumented path.
pub trait TraceSink: Send + Sync {
    /// Deliver one closed span.
    fn record(&self, span: &SpanRecord);
}

thread_local! {
    /// Innermost open span on this thread (0 = none) — how child spans
    /// find their parent without any cross-thread coordination.
    static CURRENT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

struct SpanData {
    id: u64,
    parent: u64,
    name: &'static str,
    start_nanos: u64,
    tags: Vec<(&'static str, TagValue)>,
}

/// An open span guard: closes (and delivers to the sink) on drop, even
/// while a panic unwinds through it. Inert — zero-allocation, no clock —
/// when created with tracing off.
pub struct Span {
    data: Option<Box<SpanData>>,
}

/// Open a span. With tracing off this is one relaxed atomic load and an
/// inert guard; with tracing on it reads the monotonic clock, allocates
/// the record and links into the thread's span stack.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !tracing_enabled() {
        return Span { data: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    SPANS_OPENED.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT.with(|c| c.replace(id));
    Span {
        data: Some(Box::new(SpanData {
            id,
            parent,
            name,
            start_nanos: now_nanos(),
            tags: Vec::new(),
        })),
    }
}

/// Record an already-measured interval as a closed span (start back-dated
/// by `dur_nanos` from now), parented under the calling thread's current
/// span. This is how the layered engine turns its existing
/// `worker_nanos`/`replay_nanos` phase timers into per-stratum spans
/// without double-instrumenting the hot loop. No-op when tracing is off.
pub fn emit_span(name: &'static str, dur_nanos: u64, tags: &[(&'static str, u64)]) {
    if !tracing_enabled() {
        return;
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    SPANS_OPENED.fetch_add(1, Ordering::Relaxed);
    let end = now_nanos();
    let record = SpanRecord {
        id,
        parent: CURRENT.with(|c| c.get()),
        name,
        start_nanos: end.saturating_sub(dur_nanos),
        end_nanos: end,
        tags: tags.iter().map(|&(k, v)| (k, TagValue::U64(v))).collect(),
    };
    SPANS_CLOSED.fetch_add(1, Ordering::Relaxed);
    if let Some(sink) = SINK.read().unwrap().as_ref() {
        sink.record(&record);
    }
}

impl Span {
    /// Whether this span actually records (tracing was on at creation).
    /// Gate any tag computation that would itself allocate on this.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.data.is_some()
    }

    /// Attach an integer tag (no-op on an inert span).
    #[inline]
    pub fn tag_u64(&mut self, key: &'static str, value: u64) {
        if let Some(d) = self.data.as_mut() {
            d.tags.push((key, TagValue::U64(value)));
        }
    }

    /// Attach a static-string tag (no-op on an inert span).
    #[inline]
    pub fn tag_str(&mut self, key: &'static str, value: &'static str) {
        if let Some(d) = self.data.as_mut() {
            d.tags.push((key, TagValue::Str(value)));
        }
    }

    /// Attach an owned-string tag (no-op on an inert span; the string is
    /// only worth building after [`Span::is_recording`]).
    pub fn tag_text(&mut self, key: &'static str, value: String) {
        if let Some(d) = self.data.as_mut() {
            d.tags.push((key, TagValue::Text(value)));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else {
            return;
        };
        CURRENT.with(|c| c.set(data.parent));
        let record = SpanRecord {
            id: data.id,
            parent: data.parent,
            name: data.name,
            start_nanos: data.start_nanos,
            end_nanos: now_nanos(),
            tags: data.tags,
        };
        SPANS_CLOSED.fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = SINK.read().unwrap().as_ref() {
            sink.record(&record);
        }
    }
}

/// A bounded in-memory sink: keeps the most recent `capacity` spans.
/// The test sink — cheap, inspectable, never grows without bound.
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<SpanRecord>>,
}

impl RingSink {
    /// A ring keeping at most `capacity` spans (oldest evicted first).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// Copy of the current contents, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// Drain and return the current contents, oldest first.
    pub fn take(&self) -> Vec<SpanRecord> {
        self.buf.lock().unwrap().drain(..).collect()
    }

    /// Spans currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RingSink {
    fn record(&self, span: &SpanRecord) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(span.clone());
    }
}

/// A line-protocol JSON sink: one [`SpanRecord::render_json_line`] object
/// per line, for CI trace artifacts (`OBS_trace.jsonl`). Write errors
/// are swallowed (a sink must never panic mid-drop); call
/// [`JsonLinesSink::flush`] and check the result at shutdown.
pub struct JsonLinesSink<W: Write + Send> {
    out: Mutex<W>,
}

impl JsonLinesSink<io::BufWriter<std::fs::File>> {
    /// A sink writing to a freshly created (truncated) file.
    pub fn create(path: &str) -> io::Result<Self> {
        Ok(JsonLinesSink::new(io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> JsonLinesSink<W> {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }

    /// Flush the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().unwrap().flush()
    }
}

impl<W: Write + Send> TraceSink for JsonLinesSink<W> {
    fn record(&self, span: &SpanRecord) {
        let line = span.render_json_line();
        let mut out = self.out.lock().unwrap();
        let _ = writeln!(out, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trace tests mutate process-global state (level + sink), so
    /// they serialize on one mutex instead of racing each other.
    fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn disabled_span_is_inert() {
        let _guard = trace_lock();
        set_trace_level(TraceLevel::Off);
        let opened = spans_opened();
        let mut s = span("test.inert");
        assert!(!s.is_recording());
        s.tag_u64("k", 1);
        drop(s);
        emit_span("test.inert.emit", 123, &[("k", 1)]);
        assert_eq!(opened, spans_opened(), "inert spans must not be counted");
    }

    #[test]
    fn spans_nest_and_record() {
        let _guard = trace_lock();
        let ring = Arc::new(RingSink::new(16));
        install_sink(ring.clone());
        set_trace_level(TraceLevel::Spans);
        {
            let mut root = span("test.root");
            root.tag_u64("n", 6);
            {
                let mut child = span("test.child");
                child.tag_str("outcome", "completed");
            }
            emit_span("test.synthetic", 1_000, &[("pairs", 3)]);
        }
        set_trace_level(TraceLevel::Off);
        clear_sink();
        let spans = ring.take();
        assert_eq!(3, spans.len());
        // Children close before their parent: child, synthetic, root.
        assert_eq!("test.child", spans[0].name);
        assert_eq!("test.synthetic", spans[1].name);
        assert_eq!("test.root", spans[2].name);
        let root_id = spans[2].id;
        assert_eq!(root_id, spans[0].parent, "child must parent to root");
        assert_eq!(root_id, spans[1].parent, "emit must parent to root");
        assert_eq!(Some(&TagValue::U64(6)), spans[2].tag("n"));
        assert_eq!(Some(&TagValue::Str("completed")), spans[0].tag("outcome"));
        assert!(spans[1].dur_nanos() >= 1_000);
        assert_eq!(spans_opened(), spans_closed());
    }

    #[test]
    fn span_closes_during_unwind() {
        let _guard = trace_lock();
        let ring = Arc::new(RingSink::new(16));
        install_sink(ring.clone());
        set_trace_level(TraceLevel::Spans);
        let unwound = std::panic::catch_unwind(|| {
            let _s = span("test.unwound");
            panic!("injected");
        });
        set_trace_level(TraceLevel::Off);
        clear_sink();
        assert!(unwound.is_err());
        assert!(
            ring.take().iter().any(|s| s.name == "test.unwound"),
            "a span guard must close on unwind"
        );
        assert_eq!(spans_opened(), spans_closed());
    }

    #[test]
    fn json_line_escapes_and_shapes() {
        let rec = SpanRecord {
            id: 7,
            parent: 0,
            name: "x",
            start_nanos: 10,
            end_nanos: 25,
            tags: vec![
                ("n", TagValue::U64(3)),
                ("cause", TagValue::Text("a\"b".to_string())),
            ],
        };
        assert_eq!(
            "{\"id\":7,\"parent\":0,\"name\":\"x\",\"start_ns\":10,\"dur_ns\":15,\
             \"tags\":{\"n\":3,\"cause\":\"a\\\"b\"}}",
            rec.render_json_line()
        );
    }

    #[test]
    fn ring_sink_bounds_capacity() {
        let ring = RingSink::new(2);
        for i in 0..5u64 {
            ring.record(&SpanRecord {
                id: i + 1,
                parent: 0,
                name: "r",
                start_nanos: i,
                end_nanos: i,
                tags: Vec::new(),
            });
        }
        let spans = ring.snapshot();
        assert_eq!(2, spans.len());
        assert_eq!(3, spans[0].start_nanos, "oldest spans evicted first");
    }
}
