//! # dpnext-obs
//!
//! The in-tree observability layer: **span tracing** and **metrics** for
//! the optimizer and its serving layer, std-only with no crates.io
//! dependencies (same discipline as the fxhash and shim work — the build
//! box has no registry access).
//!
//! ## Tracing
//!
//! A [`Span`] is a named, monotonically timestamped interval with a
//! bounded set of tags, closed (and delivered to the installed
//! [`TraceSink`]) when its guard drops. Spans nest through a thread-local
//! parent id, so a request trace reconstructs as a tree:
//!
//! ```text
//! serve.request                       shape_hash=0x7c1f cache_hit=0
//! ├─ serve.cache_probe
//! ├─ serve.admission                  (duration = queue wait)
//! └─ serve.optimize
//!    └─ adaptive.optimize             n=30 budget=50000
//!       ├─ adaptive.rung.greedy
//!       ├─ adaptive.rung.exact        outcome=budget-aborted
//!       └─ adaptive.rung.linearized   outcome=completed
//! ```
//!
//! Tracing is **off by default** and the disabled path is deliberately
//! cheap: [`span`] performs one relaxed atomic load and returns an inert
//! guard — **zero allocations, no clock read, no lock** — so
//! instrumented code is bit-identical in behavior and unmeasurable in
//! cost when tracing is off (pinned by the `disabled_path` regression
//! test with a counting allocator). Enable with
//! [`set_trace_level`]`(`[`TraceLevel::Spans`]`)` and install a sink:
//! [`RingSink`] for tests, [`JsonLinesSink`] for CI artifacts.
//!
//! ## Metrics
//!
//! [`Counter`], [`Gauge`] and [`Histogram`] are lock-free `AtomicU64`
//! cells; histograms use fixed log2 buckets, so `observe` is two atomic
//! adds and a `leading_zeros`. A [`Registry`] names the handles (label
//! sets bounded by enum keys — never unbounded user input) and renders
//! point-in-time snapshots in Prometheus text format
//! ([`MetricsSnapshot::render_text`], checked by
//! [`lint_prometheus_text`]). Unlike tracing, metric updates are always
//! on: one relaxed atomic op costs nanoseconds, allocates nothing and
//! cannot change optimizer behavior.

#![warn(missing_docs)]

mod metrics;
mod trace;

pub use metrics::{
    global_live_bytes, lint_prometheus_text, Counter, FamilySnapshot, Gauge, Histogram,
    HistogramSnapshot, MetricKind, MetricValue, MetricsSnapshot, Registry, HIST_BUCKETS,
};
pub use trace::{
    clear_sink, emit_span, install_sink, now_nanos, set_trace_level, span, spans_closed,
    spans_opened, trace_level, tracing_enabled, JsonLinesSink, RingSink, Span, SpanRecord,
    TagValue, TraceLevel, TraceSink,
};
