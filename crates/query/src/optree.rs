//! Initial operator trees: the parsed query shape handed to the plan
//! generator (and the canonical, unoptimized execution plan).

use dpnext_algebra::{AggCall, AlgExpr, AttrId, JoinPred};
use dpnext_hypergraph::NodeSet;
use std::fmt;

/// The binary operators a query tree may contain (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Inner join `⋈`.
    Join,
    /// Left outerjoin `⟕`.
    LeftOuter,
    /// Full outerjoin `⟗`.
    FullOuter,
    /// Left semijoin `⋉`.
    Semi,
    /// Left antijoin `▷`.
    Anti,
    /// Left groupjoin `Z` with its own aggregation vector `F̄`.
    GroupJoin,
}

impl OpKind {
    /// Commutative operators may have their arguments swapped (Fig. 5,
    /// line 7).
    pub fn is_commutative(self) -> bool {
        matches!(self, OpKind::Join | OpKind::FullOuter)
    }

    /// Does the operator's result contain the attributes of the right
    /// input? Semijoin, antijoin and groupjoin only preserve the left side.
    pub fn preserves_right(self) -> bool {
        matches!(self, OpKind::Join | OpKind::LeftOuter | OpKind::FullOuter)
    }

    /// Can the operator produce NULL-padded tuples on the given side?
    pub fn pads_left(self) -> bool {
        matches!(self, OpKind::FullOuter)
    }

    pub fn pads_right(self) -> bool {
        matches!(self, OpKind::LeftOuter | OpKind::FullOuter)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Join => "⋈",
            OpKind::LeftOuter => "⟕",
            OpKind::FullOuter => "⟗",
            OpKind::Semi => "⋉",
            OpKind::Anti => "▷",
            OpKind::GroupJoin => "Z",
        };
        f.write_str(s)
    }
}

/// The initial operator tree. Leaves index into the query's table list.
#[derive(Debug, Clone)]
pub enum OpTree {
    /// A table occurrence (index into [`crate::Query::tables`]).
    Rel(usize),
    Binary {
        op: OpKind,
        /// Join predicate, canonicalized: left terms reference the left
        /// subtree, right terms the right subtree.
        pred: JoinPred,
        /// Estimated selectivity of `pred` (used by cardinality estimation;
        /// the workload generator draws it at random, §5).
        sel: f64,
        /// Aggregation vector of a groupjoin; empty otherwise.
        gj_aggs: Vec<AggCall>,
        left: Box<OpTree>,
        right: Box<OpTree>,
    },
}

impl OpTree {
    pub fn rel(i: usize) -> OpTree {
        OpTree::Rel(i)
    }

    pub fn binary(op: OpKind, pred: JoinPred, left: OpTree, right: OpTree) -> OpTree {
        OpTree::Binary {
            op,
            pred,
            sel: 1.0,
            gj_aggs: Vec::new(),
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn binary_sel(op: OpKind, pred: JoinPred, sel: f64, left: OpTree, right: OpTree) -> OpTree {
        OpTree::Binary {
            op,
            pred,
            sel,
            gj_aggs: Vec::new(),
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn groupjoin(pred: JoinPred, aggs: Vec<AggCall>, left: OpTree, right: OpTree) -> OpTree {
        OpTree::Binary {
            op: OpKind::GroupJoin,
            pred,
            sel: 1.0,
            gj_aggs: aggs,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Override the selectivity of the topmost operator.
    pub fn with_sel(mut self, s: f64) -> OpTree {
        if let OpTree::Binary { sel, .. } = &mut self {
            *sel = s;
        }
        self
    }

    /// Set of table occurrences below this node (`T(T)` in Fig. 6).
    pub fn relations(&self) -> NodeSet {
        match self {
            OpTree::Rel(i) => NodeSet::single(*i),
            OpTree::Binary { left, right, .. } => left.relations().union(right.relations()),
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.relations().len()
    }

    /// Number of binary operators.
    pub fn operator_count(&self) -> usize {
        match self {
            OpTree::Rel(_) => 0,
            OpTree::Binary { left, right, .. } => {
                1 + left.operator_count() + right.operator_count()
            }
        }
    }

    /// Visit every binary operator bottom-up.
    pub fn visit_ops<'a>(&'a self, f: &mut impl FnMut(&'a OpTree)) {
        if let OpTree::Binary { left, right, .. } = self {
            left.visit_ops(f);
            right.visit_ops(f);
            f(self);
        }
    }

    /// Compile this tree verbatim into an executable algebra expression,
    /// resolving leaves through `scan_name`.
    pub fn to_alg(&self, scan_name: &impl Fn(usize) -> String) -> AlgExpr {
        match self {
            OpTree::Rel(i) => AlgExpr::scan(scan_name(*i)),
            OpTree::Binary {
                op,
                pred,
                gj_aggs,
                left,
                right,
                ..
            } => {
                let l = Box::new(left.to_alg(scan_name));
                let r = Box::new(right.to_alg(scan_name));
                let pred = pred.clone();
                match op {
                    OpKind::Join => AlgExpr::InnerJoin {
                        left: l,
                        right: r,
                        pred,
                    },
                    OpKind::LeftOuter => AlgExpr::LeftOuterJoin {
                        left: l,
                        right: r,
                        pred,
                        defaults: vec![],
                    },
                    OpKind::FullOuter => AlgExpr::FullOuterJoin {
                        left: l,
                        right: r,
                        pred,
                        d1: vec![],
                        d2: vec![],
                    },
                    OpKind::Semi => AlgExpr::SemiJoin {
                        left: l,
                        right: r,
                        pred,
                    },
                    OpKind::Anti => AlgExpr::AntiJoin {
                        left: l,
                        right: r,
                        pred,
                    },
                    OpKind::GroupJoin => AlgExpr::GroupJoin {
                        left: l,
                        right: r,
                        pred,
                        aggs: gj_aggs.clone(),
                        empty_defaults: vec![],
                    },
                }
            }
        }
    }

    /// All attributes made visible by this subtree, given per-table
    /// attribute lists (right sides of ⋉/▷ vanish, groupjoins add their
    /// aggregate outputs).
    pub fn visible_attrs(&self, table_attrs: &impl Fn(usize) -> Vec<AttrId>) -> Vec<AttrId> {
        match self {
            OpTree::Rel(i) => table_attrs(*i),
            OpTree::Binary {
                op,
                gj_aggs,
                left,
                right,
                ..
            } => {
                let mut out = left.visible_attrs(table_attrs);
                match op {
                    OpKind::Semi | OpKind::Anti => {}
                    OpKind::GroupJoin => out.extend(gj_aggs.iter().map(|a| a.out)),
                    _ => out.extend(right.visible_attrs(table_attrs)),
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_properties() {
        assert!(OpKind::Join.is_commutative());
        assert!(OpKind::FullOuter.is_commutative());
        assert!(!OpKind::LeftOuter.is_commutative());
        assert!(!OpKind::Semi.preserves_right());
        assert!(OpKind::LeftOuter.pads_right());
        assert!(!OpKind::LeftOuter.pads_left());
        assert!(OpKind::FullOuter.pads_left());
    }

    #[test]
    fn relations_and_counts() {
        let t = OpTree::binary(
            OpKind::Join,
            JoinPred::eq(AttrId(0), AttrId(1)),
            OpTree::rel(0),
            OpTree::binary(
                OpKind::LeftOuter,
                JoinPred::eq(AttrId(1), AttrId(2)),
                OpTree::rel(1),
                OpTree::rel(2),
            ),
        );
        assert_eq!(3, t.leaf_count());
        assert_eq!(2, t.operator_count());
        assert_eq!(NodeSet::full(3), t.relations());
    }

    #[test]
    fn visit_is_bottom_up() {
        let t = OpTree::binary(
            OpKind::Join,
            JoinPred::eq(AttrId(0), AttrId(1)),
            OpTree::binary(
                OpKind::Semi,
                JoinPred::eq(AttrId(0), AttrId(2)),
                OpTree::rel(0),
                OpTree::rel(2),
            ),
            OpTree::rel(1),
        );
        let mut ops = vec![];
        t.visit_ops(&mut |n| {
            if let OpTree::Binary { op, .. } = n {
                ops.push(*op);
            }
        });
        assert_eq!(vec![OpKind::Semi, OpKind::Join], ops);
    }

    #[test]
    fn visible_attrs_drops_semijoin_right() {
        let attrs = |i: usize| vec![AttrId(i as u32)];
        let t = OpTree::binary(
            OpKind::Semi,
            JoinPred::eq(AttrId(0), AttrId(1)),
            OpTree::rel(0),
            OpTree::rel(1),
        );
        assert_eq!(vec![AttrId(0)], t.visible_attrs(&attrs));
    }
}
