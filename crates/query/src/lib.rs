//! # dpnext-query
//!
//! Query representation for the `dpnext` optimizer: table occurrences with
//! embedded statistics, initial operator trees over the join operators of
//! §2.2, and normalized grouping specifications.

pub mod optree;
pub mod query;
pub mod table;

pub use optree::{OpKind, OpTree};
pub use query::{GroupSpec, Query};
pub use table::QueryTable;
