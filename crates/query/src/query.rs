//! The query: tables + initial operator tree + grouping specification.

use crate::optree::{OpKind, OpTree};
use crate::table::QueryTable;
use dpnext_algebra::{AggCall, AggKind, AlgExpr, AttrGen, AttrId, Expr};
use dpnext_hypergraph::{FxHashMap, NodeSet};

/// The grouping part of a query: `select G, F(…) … group by G`.
///
/// Aggregation vectors are stored *normalized*: `avg` is decomposed into
/// `sum`/`count` partials recombined by a post-grouping map (§2.1 treats
/// `avg` exactly this way), so the optimizer only ever sees aggregates
/// whose decomposability is a simple per-function property.
#[derive(Debug, Clone, Default)]
pub struct GroupSpec {
    /// Grouping attributes `G`.
    pub group_by: Vec<AttrId>,
    /// Normalized aggregation vector `F`.
    pub aggs: Vec<AggCall>,
    /// Post-grouping computed columns (e.g. `avg = sum / countNN`).
    pub post: Vec<(AttrId, Expr)>,
    /// Final output attributes (grouping attrs + user-visible aggregates).
    pub output: Vec<AttrId>,
}

impl GroupSpec {
    /// Build a normalized spec from user-level aggregates.
    pub fn new(group_by: Vec<AttrId>, user_aggs: Vec<AggCall>, gen: &mut AttrGen) -> Self {
        let mut aggs = Vec::with_capacity(user_aggs.len());
        let mut post = Vec::new();
        let mut output: Vec<AttrId> = group_by.clone();
        for call in user_aggs {
            output.push(call.out);
            if call.kind == AggKind::Avg {
                let arg = call.arg.clone().expect("avg needs an argument");
                let s = gen.fresh();
                let c = gen.fresh();
                aggs.push(AggCall::new(s, AggKind::Sum, arg.clone()));
                aggs.push(AggCall::new(c, AggKind::Count, arg));
                post.push((call.out, Expr::attr(s).div(Expr::attr(c))));
            } else {
                aggs.push(call);
            }
        }
        GroupSpec {
            group_by,
            aggs,
            post,
            output,
        }
    }
}

/// A complete query.
#[derive(Debug, Clone)]
pub struct Query {
    pub tables: Vec<QueryTable>,
    pub tree: OpTree,
    /// `None` for pure join-ordering queries without grouping.
    pub grouping: Option<GroupSpec>,
}

impl Query {
    pub fn new(tables: Vec<QueryTable>, tree: OpTree, grouping: Option<GroupSpec>) -> Self {
        let q = Query {
            tables,
            tree,
            grouping,
        };
        q.validate();
        q
    }

    /// Number of table occurrences.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Map every attribute to the node set that must be present for the
    /// attribute to exist: table attributes map to their occurrence,
    /// groupjoin outputs to the relations of the groupjoin's subtree.
    pub fn attr_origins(&self) -> FxHashMap<AttrId, NodeSet> {
        let mut origins = FxHashMap::default();
        for (i, t) in self.tables.iter().enumerate() {
            for &a in &t.attrs {
                origins.insert(a, NodeSet::single(i));
            }
        }
        self.tree.visit_ops(&mut |node| {
            if let OpTree::Binary {
                op: OpKind::GroupJoin,
                gj_aggs,
                left,
                right,
                ..
            } = node
            {
                let set = left.relations().union(right.relations());
                for call in gj_aggs {
                    origins.insert(call.out, set);
                }
            }
        });
        origins
    }

    /// The table occurrence providing `attr`, if it is a base attribute.
    pub fn table_of_attr(&self, attr: AttrId) -> Option<usize> {
        self.tables.iter().position(|t| t.has_attr(attr))
    }

    /// The canonical (unoptimized) executable plan: the initial operator
    /// tree followed by the top grouping, post map and output projection —
    /// exactly how a system without grouping reordering would run it.
    pub fn canonical_plan(&self) -> AlgExpr {
        let scan_name = |i: usize| self.tables[i].alias.clone();
        let mut plan = self.tree.to_alg(&scan_name);
        if let Some(g) = &self.grouping {
            plan = AlgExpr::GroupBy {
                input: Box::new(plan),
                attrs: g.group_by.clone(),
                aggs: g.aggs.clone(),
            };
            if !g.post.is_empty() {
                plan = AlgExpr::Map {
                    input: Box::new(plan),
                    exts: g.post.clone(),
                };
            }
            plan = AlgExpr::Project {
                input: Box::new(plan),
                attrs: g.output.clone(),
                dedup: false,
            };
        }
        plan
    }

    /// Sanity checks: unique aliases, predicate sides match subtrees,
    /// grouping attributes visible at the top.
    fn validate(&self) {
        let mut aliases: Vec<&str> = self.tables.iter().map(|t| t.alias.as_str()).collect();
        aliases.sort_unstable();
        aliases
            .windows(2)
            .for_each(|w| assert_ne!(w[0], w[1], "duplicate table alias {}", w[0]));

        let origins = self.attr_origins();
        let table_attrs = |i: usize| self.tables[i].attrs.clone();
        self.tree.visit_ops(&mut |node| {
            if let OpTree::Binary {
                pred,
                left,
                right,
                gj_aggs,
                ..
            } = node
            {
                let lrels = left.relations();
                let rrels = right.relations();
                for &a in &pred.left_attrs() {
                    let org = origins
                        .get(&a)
                        .unwrap_or_else(|| panic!("unknown attr {a}"));
                    assert!(
                        org.is_subset_of(lrels),
                        "pred attr {a} not from left subtree"
                    );
                }
                for &a in &pred.right_attrs() {
                    let org = origins
                        .get(&a)
                        .unwrap_or_else(|| panic!("unknown attr {a}"));
                    assert!(
                        org.is_subset_of(rrels),
                        "pred attr {a} not from right subtree"
                    );
                }
                for call in gj_aggs {
                    for a in call.referenced() {
                        let org = origins
                            .get(&a)
                            .unwrap_or_else(|| panic!("unknown attr {a}"));
                        assert!(
                            org.is_subset_of(rrels),
                            "groupjoin aggregate attr {a} not from right subtree"
                        );
                    }
                }
            }
        });

        if let Some(g) = &self.grouping {
            let visible = self.tree.visible_attrs(&table_attrs);
            for &a in &g.group_by {
                assert!(
                    visible.contains(&a),
                    "grouping attr {a} not visible at query top"
                );
            }
            for call in &g.aggs {
                for a in call.referenced() {
                    assert!(
                        visible.contains(&a),
                        "aggregate attr {a} not visible at query top"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnext_algebra::{JoinPred, Relation};

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn two_table_query() -> Query {
        let t0 = QueryTable::new("r", vec![a(0), a(1)], 3.0).with_key(vec![a(0)]);
        let t1 = QueryTable::new("s", vec![a(2), a(3)], 3.0);
        let tree = OpTree::binary(
            OpKind::Join,
            JoinPred::eq(a(1), a(2)),
            OpTree::rel(0),
            OpTree::rel(1),
        );
        let mut gen = AttrGen::new(100);
        let spec = GroupSpec::new(
            vec![a(0)],
            vec![AggCall::new(a(50), AggKind::Sum, Expr::attr(a(3)))],
            &mut gen,
        );
        Query::new(vec![t0, t1], tree, Some(spec))
    }

    #[test]
    fn canonical_plan_executes() {
        let q = two_table_query();
        let mut db = dpnext_algebra::Database::new();
        db.insert(
            "r",
            Relation::from_ints(
                vec![a(0), a(1)],
                &[&[Some(1), Some(7)], &[Some(2), Some(8)]],
            ),
        );
        db.insert(
            "s",
            Relation::from_ints(
                vec![a(2), a(3)],
                &[&[Some(7), Some(10)], &[Some(7), Some(20)]],
            ),
        );
        let res = q.canonical_plan().eval(&db);
        let expect = Relation::from_ints(vec![a(0), a(50)], &[&[Some(1), Some(30)]]);
        assert!(res.bag_eq(&expect));
    }

    #[test]
    fn avg_is_normalized() {
        let mut gen = AttrGen::new(100);
        let spec = GroupSpec::new(
            vec![a(0)],
            vec![AggCall::new(a(50), AggKind::Avg, Expr::attr(a(3)))],
            &mut gen,
        );
        assert_eq!(2, spec.aggs.len());
        assert!(spec.aggs.iter().all(|c| c.kind != AggKind::Avg));
        assert_eq!(1, spec.post.len());
        assert_eq!(a(50), spec.post[0].0);
        assert_eq!(vec![a(0), a(50)], spec.output);
    }

    #[test]
    fn attr_origins_for_tables() {
        let q = two_table_query();
        let origins = q.attr_origins();
        assert_eq!(NodeSet::single(0), origins[&a(1)]);
        assert_eq!(NodeSet::single(1), origins[&a(3)]);
        assert_eq!(Some(1), q.table_of_attr(a(2)));
    }

    #[test]
    #[should_panic(expected = "not from left subtree")]
    fn validation_rejects_swapped_pred() {
        let t0 = QueryTable::new("r", vec![a(0)], 1.0);
        let t1 = QueryTable::new("s", vec![a(1)], 1.0);
        // Predicate sides are swapped relative to the subtrees.
        let tree = OpTree::binary(
            OpKind::Join,
            JoinPred::eq(a(1), a(0)),
            OpTree::rel(0),
            OpTree::rel(1),
        );
        Query::new(vec![t0, t1], tree, None);
    }

    #[test]
    #[should_panic(expected = "duplicate table alias")]
    fn validation_rejects_duplicate_alias() {
        let t0 = QueryTable::new("r", vec![a(0)], 1.0);
        let t1 = QueryTable::new("r", vec![a(1)], 1.0);
        let tree = OpTree::binary(
            OpKind::Join,
            JoinPred::eq(a(0), a(1)),
            OpTree::rel(0),
            OpTree::rel(1),
        );
        Query::new(vec![t0, t1], tree, None);
    }

    #[test]
    #[should_panic(expected = "not visible")]
    fn validation_rejects_grouping_on_semijoin_right() {
        let t0 = QueryTable::new("r", vec![a(0)], 1.0);
        let t1 = QueryTable::new("s", vec![a(1)], 1.0);
        let tree = OpTree::binary(
            OpKind::Semi,
            JoinPred::eq(a(0), a(1)),
            OpTree::rel(0),
            OpTree::rel(1),
        );
        let mut gen = AttrGen::new(100);
        let spec = GroupSpec::new(vec![a(1)], vec![], &mut gen);
        Query::new(vec![t0, t1], tree, Some(spec));
    }
}
