//! Table occurrences within a query.

use dpnext_algebra::AttrId;

/// One occurrence of a base relation in a query (self-joins give several
/// occurrences of the same catalog relation, each with fresh attributes —
/// like `nation ns` / `nation nc` in the paper's introductory query).
///
/// Statistics are embedded so the optimizer never needs to reach back into
/// a catalog.
#[derive(Debug, Clone)]
pub struct QueryTable {
    /// Unique alias within the query; also the scan name in the database.
    pub alias: String,
    /// Attributes provided by this occurrence (`A(e)`).
    pub attrs: Vec<AttrId>,
    /// Estimated cardinality |e|.
    pub card: f64,
    /// Estimated distinct-value counts, aligned with `attrs`.
    pub distinct: Vec<f64>,
    /// Candidate keys declared in the schema (each a set of attributes).
    /// SQL key declarations also imply duplicate-freeness (§3.2 remark).
    pub keys: Vec<Vec<AttrId>>,
}

impl QueryTable {
    pub fn new(alias: impl Into<String>, attrs: Vec<AttrId>, card: f64) -> Self {
        let n = attrs.len();
        QueryTable {
            alias: alias.into(),
            attrs,
            card,
            distinct: vec![card; n],
            keys: Vec::new(),
        }
    }

    pub fn with_distinct(mut self, distinct: Vec<f64>) -> Self {
        assert_eq!(distinct.len(), self.attrs.len());
        self.distinct = distinct;
        self
    }

    pub fn with_key(mut self, key: Vec<AttrId>) -> Self {
        for a in &key {
            assert!(self.attrs.contains(a), "key attribute not in table");
        }
        self.keys.push(key);
        self
    }

    /// Distinct count for one of this table's attributes.
    pub fn distinct_of(&self, attr: AttrId) -> f64 {
        let i = self
            .attrs
            .iter()
            .position(|&a| a == attr)
            .expect("attribute not in table");
        self.distinct[i]
    }

    pub fn has_attr(&self, attr: AttrId) -> bool {
        self.attrs.contains(&attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    #[test]
    fn construction_and_lookup() {
        let t = QueryTable::new("r", vec![a(0), a(1)], 100.0)
            .with_distinct(vec![100.0, 10.0])
            .with_key(vec![a(0)]);
        assert_eq!(10.0, t.distinct_of(a(1)));
        assert!(t.has_attr(a(0)));
        assert!(!t.has_attr(a(2)));
        assert_eq!(1, t.keys.len());
    }

    #[test]
    #[should_panic(expected = "key attribute not in table")]
    fn key_must_exist() {
        QueryTable::new("r", vec![a(0)], 1.0).with_key(vec![a(9)]);
    }
}
