//! The robustness layer end to end: panic isolation with memo
//! quarantine under a deterministic fault schedule, deadline degradation
//! at the service level, and the guarantee that unconstrained requests
//! are untouched by either mechanism.

use dpnext::{Algorithm as A, Optimizer};
use dpnext_serve::{Fault, FaultInjector, OptimizerService, ServeError, ServiceConfig};
use dpnext_workload::{generate_query, GenConfig, Topology};
use std::time::Duration;

fn quiet_optimizer(algo: A) -> Optimizer {
    Optimizer::new(algo).threads(1).explain(false)
}

/// N requests with K injected panics: exactly N−K succeed, every panic
/// is contained to its own request, every memo live during a panic is
/// quarantined, and the pool never re-issues a poisoned memo.
#[test]
fn fault_hammer_survives_and_quarantines() {
    let n_requests = 64u64;
    let inj = FaultInjector::new(0xBEEF, 250_000, 0, Duration::ZERO);
    let expected_panics = (0..n_requests)
        .filter(|&i| inj.fault_for(i) == Fault::Panic)
        .count() as u64;
    assert!(
        expected_panics > 0,
        "seed must schedule at least one fault for the test to mean anything"
    );
    // Cache off so every request actually runs the optimizer (and can
    // fault); pool on so quarantine has a free list to protect.
    let service = OptimizerService::with_config(
        quiet_optimizer(A::EaPrune),
        ServiceConfig {
            cache_capacity: 0,
            pool_capacity: 4,
            deadline: None,
            ..ServiceConfig::default()
        },
    )
    .with_fault_injection(inj);

    // The injected panics are expected: keep them off the test output.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (mut ok, mut panicked) = (0u64, 0u64);
    for i in 0..n_requests {
        let q = generate_query(&GenConfig::paper(3 + (i as usize % 3)), i);
        match service.optimize(&q) {
            Ok(r) => {
                ok += 1;
                assert!(!r.cache_hit);
            }
            Err(ServeError::Panicked(msg)) => {
                panicked += 1;
                assert!(msg.contains("injected fault"), "unexpected panic: {msg}");
            }
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }
    std::panic::set_hook(prev);

    assert_eq!(n_requests - expected_panics, ok);
    assert_eq!(expected_panics, panicked);
    let stats = service.stats();
    assert_eq!(n_requests, stats.requests);
    assert_eq!(expected_panics, stats.panics);
    assert_eq!(expected_panics, stats.pool.quarantined);
    // Each request checked out exactly one memo; reuses can only come
    // from cleanly parked memos, so a quarantine always forces the next
    // checkout to construct fresh — never to inherit poisoned state.
    assert_eq!(n_requests, stats.pool.created + stats.pool.reused);
    assert!(
        stats.pool.created <= expected_panics + 1,
        "sequential load must only re-create after a quarantine \
         (created {} for {} panics)",
        stats.pool.created,
        expected_panics
    );
    assert_eq!(0, stats.pool.rejected_invalid);
}

/// A deadline-pressured request returns a valid degraded plan (not an
/// error), is counted, and is kept out of the plan cache so a later
/// uncontended arrival re-optimizes.
#[test]
fn deadline_pressured_requests_degrade_and_skip_the_cache() {
    let q = generate_query(&GenConfig::topology(30, Topology::Star), 2);
    let service = OptimizerService::with_config(
        quiet_optimizer(A::EaPrune),
        ServiceConfig {
            cache_capacity: 1024,
            pool_capacity: 4,
            deadline: Some(Duration::from_millis(10)),
            ..ServiceConfig::default()
        },
    );
    let r = service.optimize(&q).expect("degradation is not an error");
    assert!(!r.cache_hit);
    assert!(
        r.result.memo.degradation.deadline_aborted,
        "a 30-relation star cannot finish exact DP in 10ms"
    );
    let stats = service.stats();
    assert_eq!(1, stats.deadline_degraded);
    assert_eq!(0, stats.cache.entries, "degraded plans must not be cached");
    let r2 = service.optimize(&q).expect("degradation is not an error");
    assert!(
        !r2.cache_hit,
        "a degraded plan must not serve later arrivals"
    );
}

/// An injected slow enumeration under a service deadline rides the
/// degradation ladder instead of blowing the latency budget.
#[test]
fn slow_fault_rides_the_degradation_ladder() {
    let inj = FaultInjector::new(1, 0, 1_000_000, Duration::from_micros(200));
    let q = generate_query(&GenConfig::topology(10, Topology::Chain), 0);
    let service = OptimizerService::with_config(
        quiet_optimizer(A::EaPrune),
        ServiceConfig {
            cache_capacity: 0,
            pool_capacity: 2,
            deadline: Some(Duration::from_millis(5)),
            ..ServiceConfig::default()
        },
    )
    .with_fault_injection(inj);
    let r = service
        .optimize(&q)
        .expect("slow requests degrade, not fail");
    assert!(
        r.result.memo.degradation.deadline_aborted,
        "200µs per work unit under a 5ms deadline must abort on the clock"
    );
    assert_eq!(1, service.stats().deadline_degraded);
}

/// With no deadline configured, the robustness layer is inert: the
/// service's result is bit-identical to a cold facade run of the same
/// algorithm, with no degradation attributed to the clock.
#[test]
fn unconstrained_requests_stay_bit_identical() {
    let q = generate_query(&GenConfig::topology(30, Topology::Star), 2);
    let opt = quiet_optimizer(A::Adaptive);
    let cold = opt.optimize(&q);
    let service = OptimizerService::with_config(
        opt,
        ServiceConfig {
            cache_capacity: 16,
            pool_capacity: 2,
            deadline: None,
            ..ServiceConfig::default()
        },
    );
    let served = service.optimize(&q).expect("no faults injected");
    assert_eq!(
        cold.plan.cost.to_bits(),
        served.result.plan.cost.to_bits(),
        "deadline-free serving must not perturb the plan"
    );
    assert_eq!(cold.plans_built, served.result.plans_built);
    assert!(!served.result.memo.degradation.deadline_aborted);
    assert_eq!(0, service.stats().deadline_degraded);
}
