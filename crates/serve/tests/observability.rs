//! PR 10 observability acceptance at the service level: tracing must be
//! a pure observer (traced runs bit-identical to untraced, every span
//! closed), the registry must reconcile exactly with [`ServiceStats`]
//! under concurrent load, the scrape endpoint must serve lint-clean
//! Prometheus text, and the overload retry hint must come from measured
//! service times within its documented bounds.

use dpnext::{Algorithm as A, Degradation, MemoStats, Optimized, Optimizer};
use dpnext_obs::{lint_prometheus_text, MetricValue, RingSink, TraceLevel};
use dpnext_serve::{OptimizerService, ServeError, ServiceConfig};
use dpnext_workload::{generate_query, request_mix, GenConfig, MixConfig, Topology};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier, Mutex, OnceLock};
use std::time::Duration;

/// Tracing level, sink and the span-open/close counters are process
/// globals: every test in this binary serializes on this lock so one
/// test's open spans never leak into another's bookkeeping.
fn trace_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn locked() -> std::sync::MutexGuard<'static, ()> {
    trace_lock().lock().unwrap_or_else(|e| e.into_inner())
}

/// The run-deterministic subset of [`MemoStats`] (drops the wall-clock
/// `worker_nanos` / `replay_nanos` instrumentation).
#[allow(clippy::type_complexity)]
fn det_stats(s: &MemoStats) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64, Degradation) {
    (
        s.arena_plans,
        s.arena_peak,
        s.peak_class_width,
        s.prune_attempts,
        s.prune_rejected,
        s.prune_evicted,
        s.layers,
        s.peak_layer_pairs,
        s.plan_budget,
        s.degradation,
    )
}

fn assert_bit_identical(cold: &Optimized, traced: &Optimized, what: &str) {
    assert_eq!(
        cold.plan.cost.to_bits(),
        traced.plan.cost.to_bits(),
        "{what}: cost"
    );
    assert_eq!(
        cold.plan.card.to_bits(),
        traced.plan.card.to_bits(),
        "{what}: card"
    );
    assert_eq!(cold.plans_built, traced.plans_built, "{what}: plans_built");
    assert_eq!(
        det_stats(&cold.memo),
        det_stats(&traced.memo),
        "{what}: memo stats"
    );
    assert_eq!(cold.explain, traced.explain, "{what}: explain");
}

/// Tracing must observe, never steer: re-running the golden parity grid
/// with a sink installed yields bit-identical plans and stats, every
/// span opened during the run is closed by the end of it, and the
/// expected span names appear with sane parentage.
#[test]
fn traced_golden_grid_is_bit_identical_and_every_span_closes() {
    let _guard = locked();
    let mut grid = Vec::new();
    for n in 2..=5 {
        for seed in 0..=4 {
            grid.push((GenConfig::oracle(n), seed));
        }
    }
    for n in 3..=6 {
        for seed in 1000..=1002 {
            grid.push((GenConfig::paper(n), seed));
        }
    }

    // Untraced references from a plain facade.
    let optimizer = Optimizer::new(A::EaPrune);
    let cold: Vec<Optimized> = grid
        .iter()
        .map(|(cfg, seed)| optimizer.optimize(&generate_query(cfg, *seed)))
        .collect();

    let sink = Arc::new(RingSink::new(4096));
    dpnext_obs::install_sink(sink.clone());
    dpnext_obs::set_trace_level(TraceLevel::Spans);
    let open_before = dpnext_obs::spans_opened() - dpnext_obs::spans_closed();

    let service = OptimizerService::new(Optimizer::new(A::EaPrune));
    for ((cfg, seed), cold) in grid.iter().zip(&cold) {
        let what = format!("n={} seed={seed}", cfg.n_relations);
        let query = generate_query(cfg, *seed);
        let served = service.optimize(&query).expect("no faults injected");
        assert_bit_identical(cold, &served.result, &what);
    }

    dpnext_obs::set_trace_level(TraceLevel::Off);
    dpnext_obs::clear_sink();
    let open_after = dpnext_obs::spans_opened() - dpnext_obs::spans_closed();
    assert_eq!(
        open_before, open_after,
        "every span opened during the traced grid must be closed"
    );

    let spans = sink.take();
    let roots: Vec<_> = spans.iter().filter(|s| s.name == "serve.request").collect();
    assert_eq!(grid.len(), roots.len(), "one serve.request root per call");
    for name in ["serve.cache_probe", "serve.admission", "serve.optimize"] {
        let children: Vec<_> = spans.iter().filter(|s| s.name == name).collect();
        assert_eq!(grid.len(), children.len(), "one {name} per cache miss");
        for child in children {
            assert!(
                roots.iter().any(|r| r.id == child.parent),
                "{name} span must be parented to a serve.request"
            );
        }
    }
    assert!(
        spans.iter().all(|s| s.end_nanos >= s.start_nanos),
        "span clocks must be monotone"
    );
}

/// The acceptance identity of the tentpole: after a 4-thread hammer,
/// the registry's histograms and counters agree *exactly* with
/// [`ServiceStats`] — same cells, no sampling, no drift — and the
/// rendered text passes the Prometheus format lint.
#[test]
fn hammer_histograms_reconcile_exactly_with_stats() {
    let _guard = locked();
    let threads = 4;
    let per_thread = 32;
    let mix = request_mix(&MixConfig::hot(6, 4), threads * per_thread, 99);
    let service = Arc::new(OptimizerService::new(Optimizer::new(A::EaPrune)));

    std::thread::scope(|scope| {
        for t in 0..threads {
            let service = &service;
            let mix = &mix;
            scope.spawn(move || {
                let chunk = &mix.schedule()[t * per_thread..(t + 1) * per_thread];
                for &shape in chunk {
                    service
                        .optimize(&mix.shapes()[shape])
                        .expect("no faults injected");
                }
            });
        }
    });

    let stats = service.stats();
    let snapshot = service.registry().snapshot();
    let total = (threads * per_thread) as u64;
    assert_eq!(total, stats.requests);
    assert_eq!(
        total,
        snapshot.counter_total("dpnext_requests_total"),
        "registry and stats must share the request cell"
    );
    assert_eq!(
        stats.cache.hits,
        snapshot.counter_total("dpnext_cache_hits_total")
    );
    assert_eq!(
        stats.cache.misses,
        snapshot.counter_total("dpnext_cache_misses_total")
    );
    assert_eq!(
        stats.gate.admitted,
        snapshot.counter_total("dpnext_gate_admitted_total")
    );

    let hist = |name: &str| match snapshot
        .family(name)
        .unwrap_or_else(|| panic!("{name} missing"))
        .series[0]
        .1
    {
        MetricValue::Histogram(ref h) => *h,
        ref other => panic!("{name}: expected a histogram, got {other:?}"),
    };
    let latency = hist("dpnext_request_latency_nanos");
    assert_eq!(
        total, latency.count,
        "every optimize() return observes request latency exactly once"
    );
    let queue_wait = hist("dpnext_queue_wait_nanos");
    assert_eq!(
        stats.gate.admitted, queue_wait.count,
        "every admitted request observes queue wait exactly once"
    );
    let service_time = hist("dpnext_service_time_nanos");
    let completed = stats.gate.admitted - stats.panics;
    assert_eq!(
        completed, service_time.count,
        "every completed optimizer run observes service time exactly once"
    );
    assert_eq!(completed, hist("dpnext_plans_built").count);
    assert_eq!(completed, hist("dpnext_live_bytes_peak").count);
    let rung_total = snapshot.counter_total("dpnext_rung_total");
    assert_eq!(
        completed, rung_total,
        "every completed run lands on exactly one ladder rung"
    );
    assert!(
        latency.quantile(0.99) >= latency.quantile(0.5),
        "quantiles must be monotone"
    );

    let text = service.metrics_text();
    lint_prometheus_text(&text).expect("rendered exposition must lint clean");
}

/// The scrape endpoint end to end: bind an ephemeral port, scrape
/// `/metrics` and `/stats.json` over real TCP, and check both the
/// format lint and that the numbers match the service.
#[test]
fn scrape_endpoint_serves_lint_clean_text_and_stats_json() {
    let _guard = locked();
    let service = Arc::new(OptimizerService::with_config(
        Optimizer::new(A::EaPrune),
        ServiceConfig {
            metrics_addr: Some("127.0.0.1:0".parse().unwrap()),
            ..ServiceConfig::default()
        },
    ));
    for seed in 0..3 {
        let q = generate_query(&GenConfig::paper(4), seed);
        service.optimize(&q).expect("no faults injected");
    }
    let server = service
        .serve_metrics()
        .expect("metrics_addr is configured")
        .expect("bind 127.0.0.1:0");
    let addr = server.local_addr();

    let get = |path: &str| {
        let mut conn = TcpStream::connect(addr).expect("connect scrape endpoint");
        conn.write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header/body split");
        (head.to_string(), body.to_string())
    };

    let (head, body) = get("/metrics");
    assert!(head.starts_with("HTTP/1.0 200"), "bad status: {head}");
    lint_prometheus_text(&body).expect("scraped exposition must lint clean");
    assert!(
        body.contains("dpnext_requests_total 3"),
        "scrape must reflect the served requests"
    );

    let (head, body) = get("/stats.json");
    assert!(head.starts_with("HTTP/1.0 200"), "bad status: {head}");
    assert_eq!(service.stats().render_json(), body.trim_end());
    assert!(body.contains("\"requests\":3"));

    let (head, _) = get("/nope");
    assert!(head.starts_with("HTTP/1.0 404"), "bad status: {head}");
    server.stop();
}

/// The overload retry hint rides measured service times: once
/// completions exist, a rejected arrival's hint is p50 × line within
/// [1 ms, 5 s]; before any completion it falls back to 10 ms per
/// queued request.
#[test]
fn retry_hint_is_measured_and_bounded() {
    let _guard = locked();
    let service = Arc::new(OptimizerService::with_config(
        Optimizer::new(A::EaPrune).threads(1).explain(false),
        ServiceConfig {
            cache_capacity: 0, // every request must reach the gate
            max_concurrent: 1,
            max_queued: 0,
            ..ServiceConfig::default()
        },
    ));

    // Phase 1: sequential completions populate the service-time
    // histogram.
    for seed in 0..3 {
        let q = generate_query(&GenConfig::paper(5), seed);
        service.optimize(&q).expect("uncontended requests admit");
    }

    // Phase 2: a synchronized burst over the 1-slot gate must reject
    // someone, and every hint must come from the measured-p50 path.
    const N: usize = 8;
    let barrier = Arc::new(Barrier::new(N));
    let hints: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let service = service.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    let q = generate_query(&GenConfig::topology(9, Topology::Clique), i as u64);
                    barrier.wait();
                    match service.optimize(&q) {
                        Ok(_) => None,
                        Err(ServeError::Overloaded { retry_after_hint }) => Some(retry_after_hint),
                        Err(e) => panic!("unexpected error kind: {e}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("no escaping panics"))
            .collect()
    });
    assert!(
        !hints.is_empty(),
        "8 simultaneous arrivals over a 1+0 gate must reject someone"
    );
    for hint in hints {
        assert!(
            hint >= Duration::from_millis(1),
            "hint below the floor: {hint:?}"
        );
        assert!(
            hint <= Duration::from_secs(5),
            "hint above the ceiling: {hint:?}"
        );
    }
}
