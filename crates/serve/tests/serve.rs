//! Service-level correctness: cached results must be bit-identical to
//! cold optimizations across the golden parity grid, epoch bumps must
//! invalidate, counters must stay consistent under concurrent load, and
//! pooled memo reuse must not leak state between runs.

use dpnext::{Algorithm as A, Degradation, MemoStats, Optimized, Optimizer};
use dpnext_serve::{OptimizerService, ServiceConfig};
use dpnext_workload::{generate_query, request_mix, GenConfig, MixConfig};
use std::sync::Arc;

/// The run-deterministic subset of [`MemoStats`] (drops the wall-clock
/// `worker_nanos` / `replay_nanos` instrumentation).
#[allow(clippy::type_complexity)]
fn det_stats(s: &MemoStats) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64, Degradation) {
    (
        s.arena_plans,
        s.arena_peak,
        s.peak_class_width,
        s.prune_attempts,
        s.prune_rejected,
        s.prune_evicted,
        s.layers,
        s.peak_layer_pairs,
        s.plan_budget,
        s.degradation,
    )
}

fn assert_bit_identical(cold: &Optimized, served: &Optimized, what: &str) {
    assert_eq!(
        cold.plan.cost.to_bits(),
        served.plan.cost.to_bits(),
        "{what}: cost"
    );
    assert_eq!(
        cold.plan.card.to_bits(),
        served.plan.card.to_bits(),
        "{what}: card"
    );
    assert_eq!(cold.plans_built, served.plans_built, "{what}: plans_built");
    assert_eq!(
        cold.retained_plans, served.retained_plans,
        "{what}: retained"
    );
    assert_eq!(
        det_stats(&cold.memo),
        det_stats(&served.memo),
        "{what}: memo stats"
    );
    assert_eq!(cold.explain, served.explain, "{what}: explain");
}

/// The 160-cell golden parity grid (same workloads and seeds as
/// `dpnext-core`'s parity suite): oracle n 2–5 × seeds 0–4 and paper
/// n 3–6 × seeds 1000–1002, across all five exact algorithms.
fn golden_grid() -> Vec<(GenConfig, u64)> {
    let mut grid = Vec::new();
    for n in 2..=5 {
        for seed in 0..=4 {
            grid.push((GenConfig::oracle(n), seed));
        }
    }
    for n in 3..=6 {
        for seed in 1000..=1002 {
            grid.push((GenConfig::paper(n), seed));
        }
    }
    grid
}

#[test]
fn golden_grid_cached_equals_cold() {
    for algo in [A::DPhyp, A::H1, A::H2(1.03), A::EaAll, A::EaPrune] {
        let service = OptimizerService::new(Optimizer::new(algo));
        for (cfg, seed) in golden_grid() {
            let what = format!("{} n={} seed={seed}", algo.name(), cfg.n_relations);
            let query = generate_query(&cfg, seed);
            let cold = service.optimizer().optimize(&query);
            let first = service.optimize(&query).expect("no faults injected");
            assert!(!first.cache_hit, "{what}: first request must miss");
            let second = service.optimize(&query).expect("no faults injected");
            assert!(second.cache_hit, "{what}: repeat request must hit");
            assert!(
                Arc::ptr_eq(&first.result, &second.result),
                "{what}: hit must return the published result"
            );
            assert_bit_identical(&cold, &first.result, &what);
        }
    }
}

#[test]
fn epoch_bump_forces_reoptimization() {
    let service = OptimizerService::new(Optimizer::new(A::EaPrune));
    let query = generate_query(&GenConfig::paper(4), 7);

    let r1 = service.optimize(&query).expect("no faults injected");
    let r2 = service.optimize(&query).expect("no faults injected");
    assert!(!r1.cache_hit);
    assert!(r2.cache_hit);
    assert_eq!(0, r1.epoch);

    let new_epoch = service.bump_stats_epoch();
    assert_eq!(1, new_epoch);

    let r3 = service.optimize(&query).expect("no faults injected");
    assert!(!r3.cache_hit, "epoch bump must force a miss");
    assert_eq!(1, r3.epoch);
    let r4 = service.optimize(&query).expect("no faults injected");
    assert!(r4.cache_hit, "the new epoch re-populates the cache");
    assert_bit_identical(&r1.result, &r3.result, "across epochs");

    let stats = service.stats();
    assert_eq!(4, stats.requests);
    assert_eq!(2, stats.cache.hits);
    assert_eq!(2, stats.cache.misses);
}

#[test]
fn concurrent_hammer_consistent_counters() {
    let threads = 4;
    let per_thread = 32;
    let mix = request_mix(&MixConfig::hot(6, 4), threads * per_thread, 99);
    let service = Arc::new(OptimizerService::new(Optimizer::new(A::EaPrune)));

    // Cold references, one per shape, from an identically configured
    // facade run outside the service.
    let refs: Vec<Optimized> = mix
        .shapes()
        .iter()
        .map(|q| service.optimizer().optimize(q))
        .collect();

    std::thread::scope(|scope| {
        for t in 0..threads {
            let service = &service;
            let mix = &mix;
            let refs = &refs;
            scope.spawn(move || {
                let chunk = &mix.schedule()[t * per_thread..(t + 1) * per_thread];
                for &shape in chunk {
                    let served = service
                        .optimize(&mix.shapes()[shape])
                        .expect("no faults injected");
                    assert_eq!(
                        refs[shape].plan.cost.to_bits(),
                        served.result.plan.cost.to_bits(),
                        "shape {shape}: served plan diverged from cold reference"
                    );
                    assert_eq!(refs[shape].plans_built, served.result.plans_built);
                }
            });
        }
    });

    let stats = service.stats();
    let total = (threads * per_thread) as u64;
    assert_eq!(total, stats.requests);
    assert_eq!(
        total,
        stats.cache.hits + stats.cache.misses,
        "every request is exactly one hit or one miss"
    );
    // Concurrent first arrivals of one shape may each miss, but the
    // cache converges: entries never exceed the distinct shapes served.
    let distinct = {
        let mut seen: Vec<usize> = mix.schedule().to_vec();
        seen.sort_unstable();
        seen.dedup();
        seen.len() as u64
    };
    assert!(stats.cache.misses >= distinct);
    assert!(stats.cache.entries <= distinct);
    assert!(stats.cache.hits > 0, "hot mix must produce hits");
}

#[test]
fn pooled_reoptimize_reports_fresh_stats() {
    // Cache off, pool on: every request runs the optimizer inside the
    // recycled memo. Any rollback/prune state leaking across reuses
    // would show up as diverging MemoStats.
    let service = OptimizerService::with_config(
        Optimizer::new(A::EaPrune),
        ServiceConfig {
            cache_capacity: 0,
            pool_capacity: 4,
            deadline: None,
            ..ServiceConfig::default()
        },
    );
    let queries: Vec<_> = (0..8)
        .map(|seed| generate_query(&GenConfig::paper(3 + (seed as usize % 4)), seed))
        .collect();
    let fresh: Vec<Optimized> = queries
        .iter()
        .map(|q| service.optimizer().optimize(q))
        .collect();

    // Twice over the set, so every query also runs in a memo previously
    // used by a *different* query.
    for round in 0..2 {
        for (i, q) in queries.iter().enumerate() {
            let served = service.optimize(q).expect("no faults injected");
            assert!(!served.cache_hit);
            assert_bit_identical(
                &fresh[i],
                &served.result,
                &format!("round {round} query {i}"),
            );
        }
    }

    let stats = service.stats();
    assert_eq!(
        1, stats.pool.created,
        "sequential load must reuse one memo after warmup"
    );
    assert_eq!(15, stats.pool.reused);
    assert!(stats.pool.arena_peak_capacity > 0);
}

#[test]
fn sql_requests_share_cache_entries() {
    let service = OptimizerService::new(Optimizer::new(A::EaPrune));
    // Same bound query, different SQL spelling (whitespace).
    let a = service
        .optimize_sql(
            "select n.n_name, count(*) from nation n join supplier s \
             on n.n_nationkey = s.s_nationkey group by n.n_name",
        )
        .unwrap();
    let b = service
        .optimize_sql(
            "select n.n_name, count(*)   from nation n join supplier s \
             on n.n_nationkey = s.s_nationkey   group by n.n_name",
        )
        .unwrap();
    assert!(!a.cache_hit);
    assert!(b.cache_hit, "identically bound SQL must share the entry");
    assert!(service.optimize_sql("select broken from").is_err());
}
