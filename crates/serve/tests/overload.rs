//! The resource-governance layer end to end: bounded admission under a
//! synchronized burst, the per-shape circuit breaker tripping and
//! recovering under windowed memory-pressure faults, load shedding as
//! the byte ledger approaches its cap, and quarantined footprints
//! staying accounted at the service level.

use dpnext::{Algorithm as A, Optimizer};
use dpnext_serve::{FaultInjector, OptimizerService, ServeError, ServiceConfig};
use dpnext_workload::{generate_query, GenConfig, Topology};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn quiet_optimizer(algo: A) -> Optimizer {
    Optimizer::new(algo).threads(1).explain(false)
}

/// The acceptance identity: a synchronized burst of N requests over an
/// admission cap of 4 (2 concurrent + 2 queued) splits exactly into
/// admitted successes and fast `Overloaded` rejections — no request is
/// lost, none panics, and the wait queue never grows past its bound.
#[test]
fn burst_over_admission_cap_rejects_fast_and_serves_the_rest() {
    const N: usize = 16;
    let service = Arc::new(OptimizerService::with_config(
        quiet_optimizer(A::EaPrune),
        ServiceConfig {
            cache_capacity: 0, // every request must reach the gate
            pool_capacity: 4,
            max_concurrent: 2,
            max_queued: 2,
            ..ServiceConfig::default()
        },
    ));
    let barrier = Arc::new(Barrier::new(N));
    let handles: Vec<_> = (0..N)
        .map(|i| {
            let service = service.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                // Distinct shapes (cache off anyway) big enough that the
                // admitted runs overlap the rejected arrivals.
                let q = generate_query(&GenConfig::topology(9, Topology::Clique), i as u64);
                barrier.wait();
                match service.optimize(&q) {
                    Ok(r) => {
                        assert!(r.result.plan.cost.is_finite());
                        (1u64, 0u64)
                    }
                    Err(ServeError::Overloaded { retry_after_hint }) => {
                        assert!(retry_after_hint > Duration::ZERO);
                        (0, 1)
                    }
                    Err(e) => panic!("unexpected error kind: {e}"),
                }
            })
        })
        .collect();
    let (mut ok, mut rejected) = (0u64, 0u64);
    for h in handles {
        let (o, r) = h.join().expect("no escaping panics");
        ok += o;
        rejected += r;
    }
    assert_eq!(N as u64, ok + rejected, "every request must be accounted");
    assert!(
        rejected >= 1,
        "16 simultaneous arrivals over a 2+2 gate must reject someone"
    );
    let stats = service.stats();
    assert_eq!(0, stats.panics);
    assert_eq!(rejected, stats.gate.rejected);
    assert_eq!(ok, stats.gate.admitted);
    assert!(
        stats.gate.queued_peak <= 2,
        "wait queue grew past its bound: {}",
        stats.gate.queued_peak
    );
}

/// Breaker lifecycle under windowed memory-pressure faults: two
/// consecutive memory aborts of one shape trip its breaker, the next
/// arrival is served from the greedy rung, and once the fault window
/// passes a half-open probe closes the breaker again.
#[test]
fn breaker_trips_open_serves_and_recovers() {
    // Requests 0 and 1 run under a 1-byte injected budget (guaranteed
    // memory abort); everything after runs clean.
    let inj = FaultInjector::new(0, 0, 0, Duration::ZERO)
        .with_memory_pressure(1_000_000, 1)
        .with_window(0, 2);
    let service = OptimizerService::with_config(
        quiet_optimizer(A::EaPrune),
        ServiceConfig {
            cache_capacity: 0, // every arrival must consult the breaker
            pool_capacity: 4,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(10),
            ..ServiceConfig::default()
        },
    )
    .with_fault_injection(inj);
    let q = generate_query(&GenConfig::paper(6), 7);

    // Two pressured failures: the second trips the breaker.
    for _ in 0..2 {
        let r = service.optimize(&q).expect("degradation is not an error");
        assert!(r.result.plan.cost.is_finite());
    }
    let stats = service.stats();
    assert_eq!(2, stats.memory_degraded);
    assert_eq!(1, stats.breaker.trips);

    // Open: served from the greedy rung, still a valid plan.
    let r = service.optimize(&q).expect("open serving is not an error");
    assert!(r.result.plan.cost.is_finite());
    assert!(!r.cache_hit);
    assert_eq!(1, service.stats().breaker.open_served);

    // Cooldown passes, the fault window is over: the next arrival runs
    // as the half-open probe at full quality, succeeds, and closes the
    // breaker.
    std::thread::sleep(Duration::from_millis(15));
    let probe = service.optimize(&q).expect("probe runs clean");
    assert!(probe.result.plan.cost.is_finite());
    let stats = service.stats();
    assert_eq!(1, stats.breaker.probes);
    assert_eq!(1, stats.breaker.closes);
    assert_eq!(0, stats.breaker.reopens);
    assert_eq!(0, stats.breaker.open_shapes, "breaker must be closed again");
    assert_eq!(2, stats.memory_degraded, "clean runs add no degradations");
    assert_eq!(0, stats.panics);
}

/// Above [`dpnext_serve::SHED_UTILIZATION`] of the memory cap, admitted
/// requests run under tightened budgets: they degrade (valid plans,
/// counted as shed + memory-degraded) instead of growing the ledger
/// further.
#[test]
fn shed_policy_tightens_budgets_near_the_cap() {
    let service = OptimizerService::with_config(
        quiet_optimizer(A::EaPrune),
        ServiceConfig {
            cache_capacity: 0,
            pool_capacity: 4,
            memory_cap_bytes: 1, // any parked footprint saturates the cap
            ..ServiceConfig::default()
        },
    );
    // First request: empty ledger, no shedding, parks its memo.
    let q0 = generate_query(&GenConfig::paper(5), 0);
    service.optimize(&q0).expect("unconstrained run");
    let stats = service.stats();
    assert_eq!(0, stats.shed);
    assert!(stats.ledger.bytes > 0, "parked memo must stay registered");

    // Second request: utilization is far past the threshold — the shed
    // policy imposes a (tiny) effective memory budget and the request
    // degrades down the ladder instead of failing.
    let q1 = generate_query(&GenConfig::paper(5), 1);
    let r = service
        .optimize(&q1)
        .expect("shedding degrades, never fails");
    assert!(r.result.plan.cost.is_finite());
    let stats = service.stats();
    assert_eq!(1, stats.shed);
    assert_eq!(1, stats.memory_degraded);
    assert_eq!(0, stats.panics);
}

/// Service-level regression for the quarantine accounting fix: a panic
/// destroys the request's memo, and its footprint is *released and
/// tallied* by the ledger — it no longer vanishes from the books.
#[test]
fn quarantined_footprints_stay_on_the_ledger_books() {
    let inj = FaultInjector::new(0, 1_000_000, 0, Duration::ZERO).with_window(1, 2);
    let service = OptimizerService::with_config(
        quiet_optimizer(A::EaPrune),
        ServiceConfig {
            cache_capacity: 0,
            pool_capacity: 4,
            ..ServiceConfig::default()
        },
    )
    .with_fault_injection(inj);
    let q = generate_query(&GenConfig::paper(5), 3);
    service.optimize(&q).expect("request 0 runs clean");
    let parked = service.stats().ledger.bytes;
    assert!(parked > 0);

    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = service.optimize(&q);
    std::panic::set_hook(prev);
    assert!(matches!(err, Err(ServeError::Panicked(_))));

    let stats = service.stats();
    assert_eq!(1, stats.pool.quarantined);
    // The panicked request had checked out the parked memo, so the
    // quarantine destroyed exactly that footprint: the ledger releases
    // it in full and tallies it — nothing vanishes, nothing lingers.
    assert_eq!(
        parked, stats.ledger.quarantined_bytes,
        "the destroyed footprint must be tallied"
    );
    assert_eq!(
        0, stats.ledger.bytes,
        "quarantine must release the destroyed memo's registered bytes"
    );
}
