//! # dpnext-serve
//!
//! Optimizer-as-a-service: a concurrent frontend over the
//! [`dpnext::Optimizer`] facade for workloads that optimize many queries
//! back to back — potentially from many threads at once.
//!
//! The service adds two layers the one-shot facade does not have:
//!
//! * a **plan cache** ([`PlanCache`]) keyed on the canonical shape of
//!   the query ([`QueryShape`]) plus a catalog/statistics *epoch*, so a
//!   repeated query returns its previously optimized plan without
//!   running the DP at all, and
//! * a **memo arena pool** ([`MemoPool`]) so cache-missing
//!   optimizations reuse the plan arena of an earlier run instead of
//!   re-allocating it ([`dpnext_core::optimize_into`]).
//!
//! Both layers are observable: hit/miss/eviction counters on the cache,
//! created/reused/high-water counters on the pool, all surfaced by
//! [`OptimizerService::stats`].
//!
//! On top sits a **robustness layer** (PR 8): every optimizer call runs
//! inside `catch_unwind`, so a panic is contained to its request — the
//! request's memo is **quarantined** (destroyed, never parked back into
//! the pool) and only that caller sees [`ServeError::Panicked`]; an
//! optional per-request **deadline** ([`ServiceConfig::deadline`]) rides
//! the adaptive degradation ladder, so a pressured request returns a
//! valid-but-degraded plan instead of timing out; and a seeded
//! [`FaultInjector`] makes both paths deterministically testable in CI.
//!
//! PR 9 adds **resource governance** (the `govern` types): a per-request
//! **memory budget** ([`ServiceConfig::memory_budget`]) that aborts
//! enumeration when live memo bytes cross it (same ladder, new
//! `memory_aborted` cause); a process-wide **byte ledger**
//! ([`ResourceLedger`]) across pooled *and* checked-out memos —
//! quarantined footprints are released and tallied, never lost — with a
//! load-shed policy that tightens effective deadlines/budgets as the
//! ledger approaches [`ServiceConfig::memory_cap_bytes`]; a bounded
//! **admission gate** ([`AdmissionGate`]) rejecting excess arrivals fast
//! with [`ServeError::Overloaded`] and a retry hint; and a per-shape
//! **circuit breaker** ([`ShapeBreaker`]) that serves repeatedly failing
//! shapes from the greedy rung until a half-open probe succeeds.
//!
//! PR 10 makes all of it **observable** (see `docs/OBSERVABILITY.md`):
//! every counter above lives in a [`dpnext_obs::Registry`] cell shared
//! with [`ServiceStats`] — the two can never disagree — alongside
//! latency / queue-wait / byte **histograms**; the request path emits
//! **trace spans** (`serve.request` down to `engine.stratum.*`) when a
//! [`dpnext_obs::TraceSink`] is installed, and is span-free and
//! allocation-free when not; an opt-in **scrape endpoint**
//! ([`MetricsServer`], [`ServiceConfig::metrics_addr`]) serves
//! `/metrics` (Prometheus text) and `/stats.json` from one blocking
//! thread; and the overload retry hint is now *measured* — p50 of the
//! service-time histogram times the gate's line length — instead of a
//! fixed per-request guess.
//!
//! ## Quickstart
//!
//! ```
//! use dpnext::{Algorithm, Optimizer};
//! use dpnext_serve::OptimizerService;
//! use std::sync::Arc;
//!
//! // Wrap a configured facade; Arc it to share across worker threads.
//! let service = Arc::new(OptimizerService::new(Optimizer::new(Algorithm::EaPrune)));
//!
//! let sql = "select n.n_name, count(*) \
//!            from nation n join supplier s on n.n_nationkey = s.s_nationkey \
//!            group by n.n_name";
//! let cold = service.optimize_sql(sql).unwrap();
//! let warm = service.optimize_sql(sql).unwrap();
//!
//! assert!(!cold.cache_hit);
//! assert!(warm.cache_hit);
//! // The cached result is the same plan, bit for bit.
//! assert_eq!(
//!     cold.result.plan.cost.to_bits(),
//!     warm.result.plan.cost.to_bits(),
//! );
//! ```
//!
//! ## Cache-key semantics
//!
//! The key is the *bound query*, not the SQL text: two texts that bind
//! to the same tables, predicates, cardinalities and grouping share one
//! entry (binding is deterministic since the catalog is never mutated
//! by it). Statistics changes are **not** detected — after updating
//! catalog statistics out of band, call
//! [`OptimizerService::bump_stats_epoch`], which moves every new lookup
//! to a fresh epoch and turns the first arrival of each shape into a
//! miss. Superseded entries age out of the FIFO shards.

#![warn(missing_docs)]

mod cache;
mod fault;
mod fingerprint;
mod govern;
mod pool;
mod scrape;
mod service;

pub use cache::{CacheKey, CacheStats, PlanCache};
pub use fault::{BurstSchedule, Fault, FaultInjector};
pub use fingerprint::{fingerprint_query, QueryShape};
pub use govern::{
    AdmissionGate, BreakerDecision, BreakerStats, GatePermit, GateStats, LedgerStats,
    ResourceLedger, ShapeBreaker,
};
pub use pool::{MemoPool, PoolStats, PooledMemo};
pub use scrape::MetricsServer;
pub use service::{
    OptimizerService, ServeError, ServeResult, ServiceConfig, ServiceStats, SHED_UTILIZATION,
};
