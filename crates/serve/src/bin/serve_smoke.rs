//! Service-throughput smoke for CI: hammer a shared [`OptimizerService`]
//! for a fixed request count and fail (exit non-zero via panic) on any
//! inconsistency — counter mismatches, cached/cold divergence, pool
//! re-allocation after warmup, or a cached-hit path slower than 10× the
//! cold path. Runs in a few seconds; CI wraps it in `timeout`.

use dpnext::{Algorithm, Optimized, Optimizer};
use dpnext_serve::{OptimizerService, ServiceConfig};
use dpnext_workload::{generate_query, request_mix, GenConfig, MixConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const N: usize = 6;
const SEED: u64 = 42;
const THROUGHPUT_REQUESTS: usize = 64;
const HAMMER_THREADS: usize = 4;
const HAMMER_PER_THREAD: usize = 48;

fn main() {
    throughput_check();
    pool_warmup_check();
    hammer_check();
    println!("serve_smoke: OK");
}

/// Cached-hit path must beat the cold path by at least 10× plans/s on a
/// repeated shape (in practice the gap is orders of magnitude: a map
/// probe vs a full n=6 DP).
fn throughput_check() {
    let query = generate_query(&GenConfig::paper(N), SEED);

    let cold = OptimizerService::with_config(
        Optimizer::new(Algorithm::EaPrune).threads(1).explain(false),
        ServiceConfig {
            cache_capacity: 0,
            pool_capacity: 0,
            deadline: None,
            ..ServiceConfig::default()
        },
    );
    let cold_pps = plans_per_sec(&cold, &query, THROUGHPUT_REQUESTS);

    let cached =
        OptimizerService::new(Optimizer::new(Algorithm::EaPrune).threads(1).explain(false));
    cached.optimize(&query).unwrap(); // warm: the one and only miss
    let cached_pps = plans_per_sec(&cached, &query, THROUGHPUT_REQUESTS);

    let stats = cached.stats();
    assert_eq!(
        THROUGHPUT_REQUESTS as u64, stats.cache.hits,
        "warmed repeated shape must always hit"
    );
    assert!(
        cached_pps >= 10.0 * cold_pps,
        "cached-hit path too slow: {cached_pps:.0} plans/s vs cold {cold_pps:.0} plans/s"
    );
    println!(
        "serve_smoke: throughput cold={:.0} cached={:.0} plans/s ({:.0}x)",
        cold_pps,
        cached_pps,
        cached_pps / cold_pps.max(1.0)
    );
}

fn plans_per_sec(service: &OptimizerService, query: &dpnext_query::Query, requests: usize) -> f64 {
    let start = Instant::now();
    let mut plans = 0u64;
    for _ in 0..requests {
        plans += service.optimize(query).unwrap().result.plans_built;
    }
    plans as f64 / start.elapsed().as_secs_f64().max(1e-12)
}

/// After one warmup pass, a steady sequential load must never construct
/// another memo — the arena pool's high-water mark proves allocation
/// reuse.
fn pool_warmup_check() {
    let service = OptimizerService::with_config(
        Optimizer::new(Algorithm::EaPrune).threads(1).explain(false),
        ServiceConfig {
            cache_capacity: 0,
            pool_capacity: 4,
            deadline: None,
            ..ServiceConfig::default()
        },
    );
    let mix = request_mix(&MixConfig::uniform(8, N), 8, SEED);
    for (_, query) in mix.iter() {
        service.optimize(query).unwrap();
    }
    let created_after_warmup = service.stats().pool.created;
    for _ in 0..3 {
        for (_, query) in mix.iter() {
            service.optimize(query).unwrap();
        }
    }
    let stats = service.stats();
    assert_eq!(
        created_after_warmup, stats.pool.created,
        "pool allocated a new arena after warmup"
    );
    println!(
        "serve_smoke: pool created={} reused={} arena_peak_capacity={}",
        stats.pool.created, stats.pool.reused, stats.pool.arena_peak_capacity
    );
}

/// Concurrent hammer: mixed hit/miss traffic from several threads, every
/// response checked against a cold reference, counters consistent.
fn hammer_check() {
    let total = HAMMER_THREADS * HAMMER_PER_THREAD;
    let mix = request_mix(&MixConfig::hot(6, 4), total, SEED);
    let service = Arc::new(OptimizerService::new(
        Optimizer::new(Algorithm::EaPrune).explain(false),
    ));
    let refs: Vec<Optimized> = mix
        .shapes()
        .iter()
        .map(|q| service.optimizer().optimize(q))
        .collect();

    let errors = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..HAMMER_THREADS {
            let (service, mix, refs, errors) = (&service, &mix, &refs, &errors);
            scope.spawn(move || {
                let chunk = &mix.schedule()[t * HAMMER_PER_THREAD..(t + 1) * HAMMER_PER_THREAD];
                for &shape in chunk {
                    let served = service
                        .optimize(&mix.shapes()[shape])
                        .expect("no faults injected");
                    if served.result.plan.cost.to_bits() != refs[shape].plan.cost.to_bits()
                        || served.result.plans_built != refs[shape].plans_built
                    {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    assert_eq!(0, errors.load(Ordering::Relaxed), "served plans diverged");
    let stats = service.stats();
    assert_eq!(total as u64, stats.requests);
    assert_eq!(
        total as u64,
        stats.cache.hits + stats.cache.misses,
        "hit/miss counters inconsistent"
    );
    println!(
        "serve_smoke: hammer requests={} hits={} misses={} entries={}",
        stats.requests, stats.cache.hits, stats.cache.misses, stats.cache.entries
    );
}
