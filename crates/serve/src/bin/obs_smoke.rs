//! Observability smoke for CI: run a faulted 100-request mix against a
//! traced, metered, scrape-served [`OptimizerService`] and fail hard
//! (exit non-zero via panic) on any observability defect — an unclosed
//! span, a registry counter disagreeing with
//! [`ServiceStats`](dpnext_serve::ServiceStats), a histogram count that
//! does not reconcile with the request accounting, or scraped text
//! failing the Prometheus format lint.
//!
//! Usage: `obs_smoke [--trace-out PATH]`. The full span stream is
//! archived as JSON lines (default `OBS_trace.jsonl`) so CI can keep a
//! trace artifact next to `BENCH_smoke.json`. Runs in a few seconds; CI
//! wraps it in `timeout`.

use dpnext::{Algorithm, Optimizer};
use dpnext_obs::{lint_prometheus_text, JsonLinesSink, MetricValue, TraceLevel};
use dpnext_serve::{FaultInjector, OptimizerService, ServeError, ServiceConfig};
use dpnext_workload::{request_mix, MixConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 6;
const SEED: u64 = 42;
const THREADS: usize = 4;
const PER_THREAD: usize = 25;
const TOTAL: usize = THREADS * PER_THREAD;
/// Shapes in the request mix: wide enough that a good share of the 100
/// requests miss the cache and reach the fault schedule (hits bypass
/// it), narrow enough that hits still happen.
const SHAPES: usize = 32;
/// Injected fault rates (per million requests): enough that the 100
/// requests deterministically exercise the panic, slow and
/// memory-pressure paths, few enough that most requests complete.
const PANIC_PPM: u32 = 150_000;
const SLOW_PPM: u32 = 100_000;
const PRESSURE_PPM: u32 = 150_000;
const PRESSURE_BUDGET: u64 = 48 << 10;

fn main() {
    // Injected panics are expected traffic; everything else must stay
    // loud. (Even a silenced escaped panic still aborts the process —
    // the hook only controls the message, not the unwinding.)
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected fault"));
        if !injected {
            prev(info);
        }
    }));

    let mut trace_out = "OBS_trace.jsonl".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace-out" => trace_out = it.next().expect("missing value for --trace-out"),
            other => panic!("unknown flag {other} (supported: --trace-out PATH)"),
        }
    }

    let sink = Arc::new(JsonLinesSink::create(&trace_out).expect("create trace artifact"));
    dpnext_obs::install_sink(sink.clone());
    dpnext_obs::set_trace_level(TraceLevel::Spans);

    let service = Arc::new(
        OptimizerService::with_config(
            Optimizer::new(Algorithm::EaPrune).threads(1).explain(false),
            ServiceConfig {
                pool_capacity: THREADS,
                deadline: Some(Duration::from_millis(50)),
                max_concurrent: THREADS,
                max_queued: THREADS,
                metrics_addr: Some("127.0.0.1:0".parse().unwrap()),
                ..ServiceConfig::default()
            },
        )
        .with_fault_injection(
            FaultInjector::new(SEED, PANIC_PPM, SLOW_PPM, Duration::from_micros(50))
                .with_memory_pressure(PRESSURE_PPM, PRESSURE_BUDGET),
        ),
    );
    let server = service
        .serve_metrics()
        .expect("metrics_addr is configured")
        .expect("bind scrape endpoint");

    // The faulted mix: hot traffic from 4 client threads, every outcome
    // tallied so the endpoint's counters can be reconciled exactly.
    let mix = request_mix(&MixConfig::uniform(SHAPES, N), TOTAL, SEED);
    let ok = AtomicU64::new(0);
    let hits = AtomicU64::new(0);
    let panicked = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (service, mix, ok, hits, panicked, rejected) =
                (&service, &mix, &ok, &hits, &panicked, &rejected);
            scope.spawn(move || {
                let chunk = &mix.schedule()[t * PER_THREAD..(t + 1) * PER_THREAD];
                for &shape in chunk {
                    match service.optimize(&mix.shapes()[shape]) {
                        Ok(r) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            hits.fetch_add(r.cache_hit as u64, Ordering::Relaxed);
                        }
                        Err(ServeError::Panicked(_)) => {
                            panicked.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::Overloaded { .. }) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error kind: {e}"),
                    }
                }
            });
        }
    });
    let (ok, hits) = (ok.load(Ordering::Relaxed), hits.load(Ordering::Relaxed));
    let panicked = panicked.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    assert_eq!(
        TOTAL as u64,
        ok + panicked + rejected,
        "every request must resolve"
    );
    assert!(
        panicked > 0,
        "15% panic rate over the cache-missing requests went unseen"
    );
    assert!(hits > 0, "repeated shapes must produce cache hits");

    // 1. Span hygiene: everything opened during the run must be closed.
    assert_eq!(
        dpnext_obs::spans_opened(),
        dpnext_obs::spans_closed(),
        "unclosed spans after the faulted mix"
    );

    // 2. Counters must reconcile exactly with what the clients saw and
    //    with ServiceStats (same cells by construction, so any drift here
    //    is a bookkeeping bug on the request path).
    let stats = service.stats();
    assert_eq!(TOTAL as u64, stats.requests, "request counter drifted");
    assert_eq!(panicked, stats.panics, "panic counter drifted");
    assert_eq!(rejected, stats.gate.rejected, "rejection counter drifted");
    assert_eq!(hits, stats.cache.hits, "cache-hit counter drifted");
    let snapshot = service.registry().snapshot();
    assert_eq!(
        stats.requests,
        snapshot.counter_total("dpnext_requests_total")
    );
    assert_eq!(stats.panics, snapshot.counter_total("dpnext_panics_total"));
    assert_eq!(
        stats.cache.hits,
        snapshot.counter_total("dpnext_cache_hits_total")
    );
    assert_eq!(
        stats.gate.admitted,
        snapshot.counter_total("dpnext_gate_admitted_total")
    );

    // 3. Histogram totals: latency counts every return, queue wait every
    //    admission, service time every completed run.
    let hist_count = |name: &str| {
        let family = snapshot
            .family(name)
            .unwrap_or_else(|| panic!("{name} missing from the registry"));
        match family.series[0].1 {
            MetricValue::Histogram(ref h) => h.count,
            ref other => panic!("{name}: expected a histogram, got {other:?}"),
        }
    };
    assert_eq!(
        TOTAL as u64,
        hist_count("dpnext_request_latency_nanos"),
        "latency histogram must observe every request exactly once"
    );
    assert_eq!(
        stats.gate.admitted,
        hist_count("dpnext_queue_wait_nanos"),
        "queue-wait histogram must observe every admitted request"
    );
    assert_eq!(
        stats.gate.admitted - stats.panics,
        hist_count("dpnext_service_time_nanos"),
        "service-time histogram must observe every completed run"
    );

    // 4. The scrape endpoint end to end: real TCP, lint-clean text that
    //    carries the same numbers.
    let text = http_get(&server, "/metrics");
    lint_prometheus_text(&text).expect("scraped /metrics must lint clean");
    let expect = format!("dpnext_requests_total {}", stats.requests);
    assert!(
        text.lines().any(|l| l == expect),
        "scraped text must carry the request total ({expect})"
    );
    let json = http_get(&server, "/stats.json");
    assert_eq!(
        stats.render_json(),
        json.trim_end(),
        "/stats.json must serve the current ServiceStats"
    );

    dpnext_obs::set_trace_level(TraceLevel::Off);
    dpnext_obs::clear_sink();
    sink.flush().expect("flush trace artifact");
    server.stop();
    println!(
        "obs_smoke: OK — {TOTAL} requests ({ok} ok / {panicked} panicked / {rejected} rejected, \
         {hits} cache hits), spans balanced, counters reconciled, trace archived"
    );
}

fn http_get(server: &dpnext_serve::MetricsServer, path: &str) -> String {
    let mut conn = TcpStream::connect(server.local_addr()).expect("connect scrape endpoint");
    conn.write_all(format!("GET {path} HTTP/1.0\r\nHost: smoke\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    assert!(head.starts_with("HTTP/1.0 200"), "GET {path}: {head}");
    body.to_string()
}
