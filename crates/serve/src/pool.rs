//! The memo arena pool: recycle plan-arena allocations across runs.

use dpnext::Memo;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Point-in-time pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Memos constructed from scratch. Once the pool is warmed up (as
    /// many parked memos as concurrent workers), this stops growing —
    /// the acceptance signal that steady-state serving allocates no new
    /// arenas.
    pub created: u64,
    /// Checkouts served from a parked memo (allocation reuse).
    pub reused: u64,
    /// Memos currently parked in the pool.
    pub pooled: u64,
    /// High-water mark of parked memos.
    pub pooled_peak: u64,
    /// Largest arena capacity (in plans) ever returned to the pool —
    /// the steady-state per-memo allocation footprint.
    pub arena_peak_capacity: u64,
}

/// A pool of reusable [`Memo`]s.
///
/// [`MemoPool::checkout`] hands out a parked memo when one is available
/// (its arena allocation intact) and constructs a fresh one otherwise;
/// dropping the [`PooledMemo`] parks it again, up to `capacity` parked
/// memos. The optimizer [`Memo::reset`]s the memo before every run, so
/// results are bit-identical whether the memo is fresh or recycled.
///
/// `capacity` = 0 disables pooling: every checkout constructs, every
/// return drops — the knob the unpooled benchmark cells use.
///
/// ```
/// use dpnext_serve::MemoPool;
///
/// let pool = MemoPool::new(8);
/// {
///     let _memo = pool.checkout(); // fresh construction
/// } // parked on drop
/// let _memo = pool.checkout(); // reused, no new arena
/// let stats = pool.stats();
/// assert_eq!((1, 1), (stats.created, stats.reused));
/// ```
pub struct MemoPool {
    free: Mutex<Vec<Memo>>,
    capacity: usize,
    created: AtomicU64,
    reused: AtomicU64,
    pooled_peak: AtomicU64,
    arena_peak_capacity: AtomicU64,
}

impl MemoPool {
    /// A pool parking at most `capacity` idle memos (0 disables pooling).
    pub fn new(capacity: usize) -> MemoPool {
        MemoPool {
            free: Mutex::new(Vec::new()),
            capacity,
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            pooled_peak: AtomicU64::new(0),
            arena_peak_capacity: AtomicU64::new(0),
        }
    }

    /// Whether pooling is enabled (a non-zero capacity was configured).
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Take a memo out of the pool, constructing one if none is parked.
    pub fn checkout(&self) -> PooledMemo<'_> {
        let parked = if self.enabled() {
            self.free.lock().unwrap().pop()
        } else {
            None
        };
        let memo = match parked {
            Some(m) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                m
            }
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                Memo::new()
            }
        };
        PooledMemo {
            memo: Some(memo),
            pool: self,
        }
    }

    fn park(&self, memo: Memo) {
        self.arena_peak_capacity
            .fetch_max(memo.arena_capacity() as u64, Ordering::Relaxed);
        if !self.enabled() {
            return;
        }
        let mut free = self.free.lock().unwrap();
        if free.len() < self.capacity {
            free.push(memo);
            let len = free.len() as u64;
            drop(free);
            self.pooled_peak.fetch_max(len, Ordering::Relaxed);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            created: self.created.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            pooled: self.free.lock().unwrap().len() as u64,
            pooled_peak: self.pooled_peak.load(Ordering::Relaxed),
            arena_peak_capacity: self.arena_peak_capacity.load(Ordering::Relaxed),
        }
    }
}

/// A checked-out [`Memo`]; derefs to the memo and parks it back into
/// the pool on drop.
pub struct PooledMemo<'p> {
    memo: Option<Memo>,
    pool: &'p MemoPool,
}

impl Deref for PooledMemo<'_> {
    type Target = Memo;

    fn deref(&self) -> &Memo {
        self.memo.as_ref().expect("present until drop")
    }
}

impl DerefMut for PooledMemo<'_> {
    fn deref_mut(&mut self) -> &mut Memo {
        self.memo.as_mut().expect("present until drop")
    }
}

impl Drop for PooledMemo<'_> {
    fn drop(&mut self) {
        if let Some(memo) = self.memo.take() {
            self.pool.park(memo);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_then_steady_state() {
        let pool = MemoPool::new(4);
        drop(pool.checkout());
        let after_warmup = pool.stats().created;
        for _ in 0..10 {
            drop(pool.checkout());
        }
        let stats = pool.stats();
        assert_eq!(after_warmup, stats.created, "steady state re-created");
        assert_eq!(10, stats.reused);
        assert_eq!(1, stats.pooled);
    }

    #[test]
    fn capacity_bounds_parked_memos() {
        let pool = MemoPool::new(2);
        let (a, b, c) = (pool.checkout(), pool.checkout(), pool.checkout());
        drop(a);
        drop(b);
        drop(c); // over capacity: dropped, not parked
        let stats = pool.stats();
        assert_eq!(3, stats.created);
        assert_eq!(2, stats.pooled);
        assert_eq!(2, stats.pooled_peak);
    }

    #[test]
    fn reset_shrink_releases_outlier_arena_capacity() {
        use dpnext::Optimizer;
        use dpnext_core::Algorithm;
        use dpnext_workload::{generate_query, GenConfig};

        // One EA-All outlier pins a five-figure arena on the pooled memo;
        // the decaying high-water shrink in `Memo::reset` must then release
        // that footprint across a steady stream of small queries instead
        // of carrying it forever. This pins the shrink behavior: if reset
        // ever goes back to unconditional capacity retention, the final
        // bound below fails.
        let pool = MemoPool::new(1);
        let opt = Optimizer::new(Algorithm::EaAll).threads(1).explain(false);
        let big = generate_query(&GenConfig::paper(6), 42);
        let small = generate_query(&GenConfig::paper(3), 42);

        let outlier_cap = {
            let mut memo = pool.checkout();
            opt.optimize_pooled(&big, &mut memo);
            memo.arena_capacity()
        };
        assert!(
            outlier_cap > 2048,
            "outlier run too small to exercise the shrink (capacity {outlier_cap})"
        );

        for _ in 0..12 {
            let mut memo = pool.checkout();
            opt.optimize_pooled(&small, &mut memo);
        }
        let (settled_cap, stats) = {
            let mut memo = pool.checkout();
            opt.optimize_pooled(&small, &mut memo);
            (memo.arena_capacity(), pool.stats())
        };
        assert!(
            settled_cap <= 2048,
            "arena capacity {settled_cap} still pinned after 12 small runs \
             (outlier was {outlier_cap})"
        );
        // The pool served every post-warmup request from the single parked
        // memo — the shrink happened in place, not by re-construction.
        assert_eq!(1, stats.created);
        assert_eq!(13, stats.reused);
        // The peak counter deliberately keeps the outlier: it reports the
        // worst footprint ever parked, not the current one.
        assert!(stats.arena_peak_capacity >= outlier_cap as u64);
    }

    #[test]
    fn disabled_pool_never_parks() {
        let pool = MemoPool::new(0);
        drop(pool.checkout());
        drop(pool.checkout());
        let stats = pool.stats();
        assert_eq!(2, stats.created);
        assert_eq!((0, 0), (stats.reused, stats.pooled));
    }
}
