//! The memo arena pool: recycle plan-arena allocations across runs.

use crate::govern::ResourceLedger;
use dpnext::Memo;
use dpnext_obs::{Counter, Gauge, Registry};
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};

/// Point-in-time pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Memos constructed from scratch. Once the pool is warmed up (as
    /// many parked memos as concurrent workers), this stops growing —
    /// the acceptance signal that steady-state serving allocates no new
    /// arenas.
    pub created: u64,
    /// Checkouts served from a parked memo (allocation reuse).
    pub reused: u64,
    /// Memos currently parked in the pool.
    pub pooled: u64,
    /// High-water mark of parked memos.
    pub pooled_peak: u64,
    /// Largest arena capacity (in plans) ever returned to the pool —
    /// the steady-state per-memo allocation footprint.
    pub arena_peak_capacity: u64,
    /// Memos destroyed instead of parked because they were live during a
    /// panic ([`PooledMemo::quarantine`], or a drop while the thread was
    /// unwinding). A quarantined memo is never handed out again.
    pub quarantined: u64,
    /// Memos discarded at check-in because they failed the structural
    /// validation ([`dpnext::Memo::check_invariants`]) — a half-reset or
    /// corrupted memo must never be reused silently. Debug builds panic
    /// instead of counting.
    pub rejected_invalid: u64,
}

/// A pool of reusable [`Memo`]s.
///
/// [`MemoPool::checkout`] hands out a parked memo when one is available
/// (its arena allocation intact) and constructs a fresh one otherwise;
/// dropping the [`PooledMemo`] parks it again, up to `capacity` parked
/// memos. The optimizer [`Memo::reset`]s the memo before every run, so
/// results are bit-identical whether the memo is fresh or recycled.
///
/// `capacity` = 0 disables pooling: every checkout constructs, every
/// return drops — the knob the unpooled benchmark cells use.
///
/// ```
/// use dpnext_serve::MemoPool;
///
/// let pool = MemoPool::new(8);
/// {
///     let _memo = pool.checkout(); // fresh construction
/// } // parked on drop
/// let _memo = pool.checkout(); // reused, no new arena
/// let stats = pool.stats();
/// assert_eq!((1, 1), (stats.created, stats.reused));
/// ```
pub struct MemoPool {
    free: Mutex<Vec<Memo>>,
    capacity: usize,
    ledger: Option<Arc<ResourceLedger>>,
    // Registry-backed cells (PR 10): `PoolStats` and the metrics registry
    // read the same cells. `pooled` mirrors the free-list length (its
    // peak is the old `pooled_peak`); `arena_capacity` holds the last
    // parked arena capacity (its peak is `arena_peak_capacity`).
    created: Arc<Counter>,
    reused: Arc<Counter>,
    pooled: Arc<Gauge>,
    arena_capacity: Arc<Gauge>,
    quarantined: Arc<Counter>,
    rejected_invalid: Arc<Counter>,
}

impl MemoPool {
    /// A pool parking at most `capacity` idle memos (0 disables pooling).
    pub fn new(capacity: usize) -> MemoPool {
        MemoPool {
            free: Mutex::new(Vec::new()),
            capacity,
            ledger: None,
            created: Arc::new(Counter::new()),
            reused: Arc::new(Counter::new()),
            pooled: Arc::new(Gauge::new()),
            arena_capacity: Arc::new(Gauge::new()),
            quarantined: Arc::new(Counter::new()),
            rejected_invalid: Arc::new(Counter::new()),
        }
    }

    /// Expose this pool's cells in `registry` (under `dpnext_pool_*`).
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter(
            "dpnext_pool_created_total",
            "Memos constructed from scratch.",
            &[],
            self.created.clone(),
        );
        registry.register_counter(
            "dpnext_pool_reused_total",
            "Checkouts served from a parked memo.",
            &[],
            self.reused.clone(),
        );
        registry.register_gauge(
            "dpnext_pool_parked",
            "Memos currently parked in the pool.",
            &[],
            self.pooled.clone(),
        );
        registry.register_gauge(
            "dpnext_pool_arena_capacity_plans",
            "Arena capacity (plans) of the most recently parked memo.",
            &[],
            self.arena_capacity.clone(),
        );
        registry.register_counter(
            "dpnext_pool_quarantined_total",
            "Memos destroyed instead of parked after a panic.",
            &[],
            self.quarantined.clone(),
        );
        registry.register_counter(
            "dpnext_pool_rejected_invalid_total",
            "Memos discarded at check-in for failing structural validation.",
            &[],
            self.rejected_invalid.clone(),
        );
    }

    /// Like [`MemoPool::new`], registering every memo footprint —
    /// parked *and* checked out — with a shared [`ResourceLedger`].
    ///
    /// Accounting happens at pool boundaries: checkout registers a fresh
    /// memo's footprint (a parked memo is already registered), check-in
    /// re-measures the memo after its run, and every exit path —
    /// over-capacity discard, check-in rejection, **quarantine** — releases
    /// the registered bytes. Quarantined footprints are additionally
    /// tallied in [`crate::LedgerStats::quarantined_bytes`], so a panic
    /// never makes bytes silently vanish from the global accounting.
    pub fn with_ledger(capacity: usize, ledger: Arc<ResourceLedger>) -> MemoPool {
        let mut pool = MemoPool::new(capacity);
        pool.ledger = Some(ledger);
        pool
    }

    /// Whether pooling is enabled (a non-zero capacity was configured).
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Take a memo out of the pool, constructing one if none is parked.
    pub fn checkout(&self) -> PooledMemo<'_> {
        let parked = if self.enabled() {
            self.free.lock().unwrap().pop()
        } else {
            None
        };
        let (memo, fresh) = match parked {
            Some(m) => {
                self.reused.inc();
                self.pooled.sub(1);
                (m, false)
            }
            None => {
                self.created.inc();
                (Memo::new(), true)
            }
        };
        // A parked memo is already registered with the ledger (at its
        // check-in footprint); only a fresh construction adds bytes.
        let accounted = memo.footprint_bytes();
        if fresh {
            if let Some(ledger) = &self.ledger {
                ledger.add(accounted);
            }
        }
        PooledMemo {
            memo: Some(memo),
            accounted,
            pool: self,
        }
    }

    fn park(&self, memo: Memo, accounted: u64) {
        // Check-in validation: a memo whose structural invariants broke
        // mid-run (half reset, classes referencing truncated plans) must
        // never be reused silently. Debug builds fail loudly; release
        // builds discard the memo and count the rejection.
        if let Err(violation) = memo.check_invariants() {
            debug_assert!(false, "memo failed check-in validation: {violation}");
            self.rejected_invalid.inc();
            self.release(accounted);
            return;
        }
        // `set` raises the gauge's peak, which is the stat reported as
        // `arena_peak_capacity`.
        self.arena_capacity.set(memo.arena_capacity() as u64);
        if !self.enabled() {
            self.release(accounted);
            return;
        }
        let mut free = self.free.lock().unwrap();
        if free.len() < self.capacity {
            // Re-measure: the run may have grown (or reset-shrunk) the
            // arena since checkout. The parked memo stays registered at
            // its new footprint until the next checkout re-adopts it.
            let parked_footprint = memo.footprint_bytes();
            free.push(memo);
            drop(free);
            self.pooled.add(1);
            if let Some(ledger) = &self.ledger {
                ledger.add(parked_footprint);
                ledger.sub(accounted);
            }
        } else {
            drop(free);
            self.release(accounted);
        }
    }

    fn release(&self, accounted: u64) {
        if let Some(ledger) = &self.ledger {
            ledger.sub(accounted);
        }
    }

    fn quarantine_memo(&self, memo: &Memo, accounted: u64) {
        self.quarantined.inc();
        if let Some(ledger) = &self.ledger {
            // The footprint being destroyed right now (the run may have
            // grown it past the checked-out estimate) goes on the
            // quarantine tally; the ledger releases what was registered.
            ledger.record_quarantined(memo.footprint_bytes());
            ledger.sub(accounted);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            created: self.created.get(),
            reused: self.reused.get(),
            pooled: self.free.lock().unwrap().len() as u64,
            pooled_peak: self.pooled.peak(),
            arena_peak_capacity: self.arena_capacity.peak(),
            quarantined: self.quarantined.get(),
            rejected_invalid: self.rejected_invalid.get(),
        }
    }
}

/// A checked-out [`Memo`]; derefs to the memo and parks it back into
/// the pool on drop.
pub struct PooledMemo<'p> {
    memo: Option<Memo>,
    /// Footprint bytes this checkout holds registered in the pool's
    /// ledger (the memo's footprint as of checkout; growth during the
    /// run is settled at check-in).
    accounted: u64,
    pool: &'p MemoPool,
}

impl Deref for PooledMemo<'_> {
    type Target = Memo;

    fn deref(&self) -> &Memo {
        self.memo.as_ref().expect("present until drop")
    }
}

impl DerefMut for PooledMemo<'_> {
    fn deref_mut(&mut self) -> &mut Memo {
        self.memo.as_mut().expect("present until drop")
    }
}

impl PooledMemo<'_> {
    /// Destroy this memo instead of parking it: the poison path for a
    /// memo that was live while the optimizer panicked. Its DP state may
    /// be arbitrarily torn (a panic can interrupt any arena/class
    /// mutation), so it never re-enters the free list — the next checkout
    /// constructs fresh. Counted in [`PoolStats::quarantined`].
    pub fn quarantine(mut self) {
        if let Some(memo) = self.memo.take() {
            self.pool.quarantine_memo(&memo, self.accounted);
        }
    }
}

impl Drop for PooledMemo<'_> {
    fn drop(&mut self) {
        if let Some(memo) = self.memo.take() {
            // Defense in depth: a memo dropped while its thread unwinds
            // was live during the panic — quarantine it even if the owner
            // forgot to. (The service's catch_unwind path calls
            // `quarantine` explicitly; this catches everyone else.)
            if std::thread::panicking() {
                self.pool.quarantine_memo(&memo, self.accounted);
                return;
            }
            self.pool.park(memo, self.accounted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_then_steady_state() {
        let pool = MemoPool::new(4);
        drop(pool.checkout());
        let after_warmup = pool.stats().created;
        for _ in 0..10 {
            drop(pool.checkout());
        }
        let stats = pool.stats();
        assert_eq!(after_warmup, stats.created, "steady state re-created");
        assert_eq!(10, stats.reused);
        assert_eq!(1, stats.pooled);
    }

    #[test]
    fn capacity_bounds_parked_memos() {
        let pool = MemoPool::new(2);
        let (a, b, c) = (pool.checkout(), pool.checkout(), pool.checkout());
        drop(a);
        drop(b);
        drop(c); // over capacity: dropped, not parked
        let stats = pool.stats();
        assert_eq!(3, stats.created);
        assert_eq!(2, stats.pooled);
        assert_eq!(2, stats.pooled_peak);
    }

    #[test]
    fn reset_shrink_releases_outlier_arena_capacity() {
        use dpnext::Optimizer;
        use dpnext_core::Algorithm;
        use dpnext_workload::{generate_query, GenConfig};

        // One EA-All outlier pins a five-figure arena on the pooled memo;
        // the decaying high-water shrink in `Memo::reset` must then release
        // that footprint across a steady stream of small queries instead
        // of carrying it forever. This pins the shrink behavior: if reset
        // ever goes back to unconditional capacity retention, the final
        // bound below fails.
        let pool = MemoPool::new(1);
        let opt = Optimizer::new(Algorithm::EaAll).threads(1).explain(false);
        let big = generate_query(&GenConfig::paper(6), 42);
        let small = generate_query(&GenConfig::paper(3), 42);

        let outlier_cap = {
            let mut memo = pool.checkout();
            opt.optimize_pooled(&big, &mut memo);
            memo.arena_capacity()
        };
        assert!(
            outlier_cap > 2048,
            "outlier run too small to exercise the shrink (capacity {outlier_cap})"
        );

        for _ in 0..12 {
            let mut memo = pool.checkout();
            opt.optimize_pooled(&small, &mut memo);
        }
        let (settled_cap, stats) = {
            let mut memo = pool.checkout();
            opt.optimize_pooled(&small, &mut memo);
            (memo.arena_capacity(), pool.stats())
        };
        assert!(
            settled_cap <= 2048,
            "arena capacity {settled_cap} still pinned after 12 small runs \
             (outlier was {outlier_cap})"
        );
        // The pool served every post-warmup request from the single parked
        // memo — the shrink happened in place, not by re-construction.
        assert_eq!(1, stats.created);
        assert_eq!(13, stats.reused);
        // The peak counter deliberately keeps the outlier: it reports the
        // worst footprint ever parked, not the current one.
        assert!(stats.arena_peak_capacity >= outlier_cap as u64);
    }

    #[test]
    fn quarantined_memo_is_never_handed_out_again() {
        let pool = MemoPool::new(4);
        pool.checkout().quarantine();
        let stats = pool.stats();
        assert_eq!(1, stats.quarantined);
        assert_eq!(0, stats.pooled, "quarantined memo must not be parked");
        drop(pool.checkout());
        let stats = pool.stats();
        assert_eq!(
            2, stats.created,
            "post-quarantine checkout must construct fresh"
        );
        assert_eq!(0, stats.reused);
    }

    #[test]
    fn drop_during_panic_quarantines() {
        let pool = MemoPool::new(4);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _memo = pool.checkout();
            panic!("injected: drop during unwind");
        }));
        assert!(unwound.is_err());
        let stats = pool.stats();
        assert_eq!(1, stats.quarantined);
        assert_eq!(0, stats.pooled);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "check-in validation"))]
    fn invalid_memo_is_rejected_at_check_in() {
        use dpnext::Optimizer;
        use dpnext_core::Algorithm;
        use dpnext_workload::{generate_query, GenConfig};

        let pool = MemoPool::new(2);
        let q = generate_query(&GenConfig::paper(3), 1);
        let opt = Optimizer::new(Algorithm::EaPrune).threads(1).explain(false);
        {
            let mut memo = pool.checkout();
            opt.optimize_pooled(&q, &mut memo);
            // Corrupt the memo: the classes now reference plans past the
            // arena end, exactly the half-reset shape check-in must catch.
            memo.truncate(0);
        } // drop -> park -> validation (panics in debug builds)
        let stats = pool.stats();
        assert_eq!(1, stats.rejected_invalid);
        assert_eq!(0, stats.pooled, "invalid memo must not be parked");
        drop(pool.checkout());
        assert_eq!(2, pool.stats().created);
    }

    #[test]
    fn ledger_tracks_parked_and_live_footprints() {
        use dpnext::Optimizer;
        use dpnext_core::Algorithm;
        use dpnext_workload::{generate_query, GenConfig};

        let ledger = Arc::new(ResourceLedger::new(0));
        let pool = MemoPool::with_ledger(2, ledger.clone());
        let q = generate_query(&GenConfig::paper(4), 7);
        let opt = Optimizer::new(Algorithm::EaPrune).threads(1).explain(false);
        let parked_footprint = {
            let mut memo = pool.checkout();
            opt.optimize_pooled(&q, &mut memo);
            memo.footprint_bytes()
        }; // parked: stays registered at its post-run footprint
        assert!(parked_footprint > 0);
        assert_eq!(
            parked_footprint,
            ledger.bytes(),
            "a parked memo must stay registered at its check-in footprint"
        );
        {
            let _live = pool.checkout(); // re-adopts the parked bytes
            assert_eq!(parked_footprint, ledger.bytes());
        }
        assert_eq!(parked_footprint, ledger.bytes());
    }

    #[test]
    fn quarantine_releases_ledger_bytes_and_tallies_them() {
        // The regression this pins: a quarantined memo's footprint used to
        // vanish from the accounting entirely — destroyed without a trace.
        // Now the ledger releases the registered bytes *and* records them
        // in `quarantined_bytes`.
        use dpnext::Optimizer;
        use dpnext_core::Algorithm;
        use dpnext_workload::{generate_query, GenConfig};

        let ledger = Arc::new(ResourceLedger::new(0));
        let pool = MemoPool::with_ledger(4, ledger.clone());
        let q = generate_query(&GenConfig::paper(4), 7);
        let opt = Optimizer::new(Algorithm::EaPrune).threads(1).explain(false);
        let destroyed = {
            let mut memo = pool.checkout();
            opt.optimize_pooled(&q, &mut memo);
            let fp = memo.footprint_bytes();
            memo.quarantine();
            fp
        };
        assert!(destroyed > 0);
        let stats = ledger.stats();
        assert_eq!(0, stats.bytes, "quarantine must release registered bytes");
        assert_eq!(
            destroyed, stats.quarantined_bytes,
            "the destroyed footprint must be tallied, not vanish"
        );
        assert_eq!(1, pool.stats().quarantined);
    }

    #[test]
    fn disabled_pool_never_parks() {
        let pool = MemoPool::new(0);
        drop(pool.checkout());
        drop(pool.checkout());
        let stats = pool.stats();
        assert_eq!(2, stats.created);
        assert_eq!((0, 0), (stats.reused, stats.pooled));
    }
}
