//! Deterministic seeded fault injection for the service request path.
//!
//! The panic-isolation and deadline-degradation paths of
//! [`crate::OptimizerService`] only earn their keep if they are exercised
//! — in CI, on every commit, not just when production misbehaves. A
//! [`FaultInjector`] decides per request (by its zero-based index in the
//! service's request counter) whether to inject a **panic** inside the
//! optimizer call or a **slow enumeration** (an artificial per-work-unit
//! busy-wait that forces deadline-pressured requests down the degradation
//! ladder). Decisions are a pure function of `(seed, request index)`, so a
//! test can precompute exactly which of its N requests will fault and
//! assert the service survives all of them.

use std::time::Duration;

/// The fault injected into one request (or [`Fault::None`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault: the request runs the optimizer untouched.
    None,
    /// Panic inside the optimizer call (after the memo was checked out),
    /// exercising `catch_unwind` isolation and memo quarantine.
    Panic,
    /// Run the optimizer with an injected per-work-unit delay, simulating
    /// a pathologically slow enumeration. Combined with a service
    /// deadline this forces the request down the degradation ladder.
    Slow,
    /// Run the optimizer under an artificially tiny memory budget
    /// ([`FaultInjector::pressure_budget_bytes`]), simulating a request
    /// arriving while the process is out of memory headroom. Forces the
    /// request down the degradation ladder via `memory_aborted` and — on
    /// repeat for one shape — trips its circuit breaker.
    MemoryPressure,
}

/// Seeded per-request fault schedule; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    seed: u64,
    panic_per_million: u32,
    slow_per_million: u32,
    pressure_per_million: u32,
    slow_unit_delay: Duration,
    pressure_budget_bytes: u64,
    /// Faults fire only for request indices in `[start, end)`; `None` =
    /// always armed. Lets a test inject a burst of faults and then assert
    /// the system *recovers* (breakers close) once the window passes.
    window: Option<(u64, u64)>,
}

/// SplitMix64 finalizer: one well-mixed word per input.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// A schedule drawing from `seed`: each request independently panics
    /// with probability `panic_per_million / 1e6`, runs slow (with
    /// `slow_unit_delay` injected per enumeration work unit) with
    /// probability `slow_per_million / 1e6`, and runs clean otherwise.
    /// The two rates must sum to at most 1 000 000.
    pub fn new(
        seed: u64,
        panic_per_million: u32,
        slow_per_million: u32,
        slow_unit_delay: Duration,
    ) -> FaultInjector {
        assert!(
            panic_per_million as u64 + slow_per_million as u64 <= 1_000_000,
            "fault rates exceed 100%"
        );
        FaultInjector {
            seed,
            panic_per_million,
            slow_per_million,
            pressure_per_million: 0,
            slow_unit_delay,
            pressure_budget_bytes: 0,
            window: None,
        }
    }

    /// Additionally inject [`Fault::MemoryPressure`] with probability
    /// `pressure_per_million / 1e6`: the faulted request runs under a
    /// memory budget of `budget_bytes` live memo bytes. All three rates
    /// together must still sum to at most 1 000 000.
    pub fn with_memory_pressure(
        mut self,
        pressure_per_million: u32,
        budget_bytes: u64,
    ) -> FaultInjector {
        assert!(
            self.panic_per_million as u64
                + self.slow_per_million as u64
                + pressure_per_million as u64
                <= 1_000_000,
            "fault rates exceed 100%"
        );
        assert!(budget_bytes > 0, "pressure budget must be non-zero");
        self.pressure_per_million = pressure_per_million;
        self.pressure_budget_bytes = budget_bytes;
        self
    }

    /// Restrict the schedule to request indices in `[start, end)`;
    /// requests outside the window always run clean. The recovery half of
    /// the overload smoke lives on this: inject faults for the first K
    /// requests, then assert breakers close once the window passes.
    pub fn with_window(mut self, start: u64, end: u64) -> FaultInjector {
        assert!(start < end, "empty fault window");
        self.window = Some((start, end));
        self
    }

    /// The fault injected into request number `request` (the service's
    /// zero-based request counter). Pure: tests precompute the schedule.
    pub fn fault_for(&self, request: u64) -> Fault {
        if let Some((start, end)) = self.window {
            if request < start || request >= end {
                return Fault::None;
            }
        }
        let draw = (mix(self.seed ^ mix(request)) % 1_000_000) as u32;
        if draw < self.panic_per_million {
            Fault::Panic
        } else if draw < self.panic_per_million + self.slow_per_million {
            Fault::Slow
        } else if draw < self.panic_per_million + self.slow_per_million + self.pressure_per_million
        {
            Fault::MemoryPressure
        } else {
            Fault::None
        }
    }

    /// The per-work-unit delay a [`Fault::Slow`] request runs under.
    pub fn slow_unit_delay(&self) -> Duration {
        self.slow_unit_delay
    }

    /// The live-byte budget a [`Fault::MemoryPressure`] request runs under.
    pub fn pressure_budget_bytes(&self) -> u64 {
        self.pressure_budget_bytes
    }
}

/// A deterministic burst arrival schedule: requests arrive in bursts of
/// `burst_size` separated by `gap`. Pure arithmetic — the overload smoke
/// and tests derive each request's arrival offset from its index instead
/// of sleeping on a wall clock they cannot control.
#[derive(Debug, Clone, Copy)]
pub struct BurstSchedule {
    burst_size: u64,
    gap: Duration,
}

impl BurstSchedule {
    /// Bursts of `burst_size` requests (≥ 1), `gap` apart.
    pub fn new(burst_size: u64, gap: Duration) -> BurstSchedule {
        assert!(burst_size > 0, "empty burst");
        BurstSchedule { burst_size, gap }
    }

    /// When request number `request` arrives, as an offset from the start
    /// of the run: every request of burst `k = request / burst_size`
    /// arrives together at `k * gap`.
    pub fn arrival_offset(&self, request: u64) -> Duration {
        self.gap * (request / self.burst_size) as u32
    }

    /// The burst index request number `request` belongs to.
    pub fn burst_of(&self, request: u64) -> u64 {
        request / self.burst_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_respects_rates() {
        let inj = FaultInjector::new(7, 100_000, 100_000, Duration::from_micros(10));
        let first: Vec<Fault> = (0..1000).map(|i| inj.fault_for(i)).collect();
        let again: Vec<Fault> = (0..1000).map(|i| inj.fault_for(i)).collect();
        assert_eq!(first, again);
        let panics = first.iter().filter(|f| **f == Fault::Panic).count();
        let slows = first.iter().filter(|f| **f == Fault::Slow).count();
        // 10% each over 1000 draws: both must land well within [2%, 25%].
        assert!((20..=250).contains(&panics), "panic count {panics}");
        assert!((20..=250).contains(&slows), "slow count {slows}");
    }

    #[test]
    fn zero_rates_never_fault() {
        let inj = FaultInjector::new(3, 0, 0, Duration::ZERO);
        assert!((0..10_000).all(|i| inj.fault_for(i) == Fault::None));
    }

    #[test]
    #[should_panic(expected = "exceed 100%")]
    fn overfull_rates_are_rejected() {
        FaultInjector::new(0, 600_000, 600_000, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "exceed 100%")]
    fn overfull_pressure_rate_is_rejected() {
        FaultInjector::new(0, 500_000, 400_000, Duration::ZERO)
            .with_memory_pressure(200_000, 1 << 16);
    }

    #[test]
    fn memory_pressure_draws_and_window_gating() {
        let inj = FaultInjector::new(11, 0, 0, Duration::ZERO)
            .with_memory_pressure(500_000, 64 * 1024)
            .with_window(100, 200);
        assert_eq!(64 * 1024, inj.pressure_budget_bytes());
        assert!(
            (0..100).all(|i| inj.fault_for(i) == Fault::None),
            "faults before the window"
        );
        assert!(
            (200..400).all(|i| inj.fault_for(i) == Fault::None),
            "faults after the window"
        );
        let pressured = (100..200)
            .filter(|i| inj.fault_for(*i) == Fault::MemoryPressure)
            .count();
        // 50% over 100 in-window draws: well within [20%, 80%].
        assert!((20..=80).contains(&pressured), "pressure count {pressured}");
    }

    #[test]
    fn burst_schedule_is_pure_arithmetic() {
        let sched = BurstSchedule::new(4, Duration::from_millis(10));
        assert_eq!(Duration::ZERO, sched.arrival_offset(3));
        assert_eq!(Duration::from_millis(10), sched.arrival_offset(4));
        assert_eq!(Duration::from_millis(20), sched.arrival_offset(11));
        assert_eq!(
            (0, 1, 2),
            (sched.burst_of(3), sched.burst_of(4), sched.burst_of(11))
        );
    }
}
