//! Deterministic seeded fault injection for the service request path.
//!
//! The panic-isolation and deadline-degradation paths of
//! [`crate::OptimizerService`] only earn their keep if they are exercised
//! — in CI, on every commit, not just when production misbehaves. A
//! [`FaultInjector`] decides per request (by its zero-based index in the
//! service's request counter) whether to inject a **panic** inside the
//! optimizer call or a **slow enumeration** (an artificial per-work-unit
//! busy-wait that forces deadline-pressured requests down the degradation
//! ladder). Decisions are a pure function of `(seed, request index)`, so a
//! test can precompute exactly which of its N requests will fault and
//! assert the service survives all of them.

use std::time::Duration;

/// The fault injected into one request (or [`Fault::None`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault: the request runs the optimizer untouched.
    None,
    /// Panic inside the optimizer call (after the memo was checked out),
    /// exercising `catch_unwind` isolation and memo quarantine.
    Panic,
    /// Run the optimizer with an injected per-work-unit delay, simulating
    /// a pathologically slow enumeration. Combined with a service
    /// deadline this forces the request down the degradation ladder.
    Slow,
}

/// Seeded per-request fault schedule; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    seed: u64,
    panic_per_million: u32,
    slow_per_million: u32,
    slow_unit_delay: Duration,
}

/// SplitMix64 finalizer: one well-mixed word per input.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// A schedule drawing from `seed`: each request independently panics
    /// with probability `panic_per_million / 1e6`, runs slow (with
    /// `slow_unit_delay` injected per enumeration work unit) with
    /// probability `slow_per_million / 1e6`, and runs clean otherwise.
    /// The two rates must sum to at most 1 000 000.
    pub fn new(
        seed: u64,
        panic_per_million: u32,
        slow_per_million: u32,
        slow_unit_delay: Duration,
    ) -> FaultInjector {
        assert!(
            panic_per_million as u64 + slow_per_million as u64 <= 1_000_000,
            "fault rates exceed 100%"
        );
        FaultInjector {
            seed,
            panic_per_million,
            slow_per_million,
            slow_unit_delay,
        }
    }

    /// The fault injected into request number `request` (the service's
    /// zero-based request counter). Pure: tests precompute the schedule.
    pub fn fault_for(&self, request: u64) -> Fault {
        let draw = (mix(self.seed ^ mix(request)) % 1_000_000) as u32;
        if draw < self.panic_per_million {
            Fault::Panic
        } else if draw < self.panic_per_million + self.slow_per_million {
            Fault::Slow
        } else {
            Fault::None
        }
    }

    /// The per-work-unit delay a [`Fault::Slow`] request runs under.
    pub fn slow_unit_delay(&self) -> Duration {
        self.slow_unit_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_respects_rates() {
        let inj = FaultInjector::new(7, 100_000, 100_000, Duration::from_micros(10));
        let first: Vec<Fault> = (0..1000).map(|i| inj.fault_for(i)).collect();
        let again: Vec<Fault> = (0..1000).map(|i| inj.fault_for(i)).collect();
        assert_eq!(first, again);
        let panics = first.iter().filter(|f| **f == Fault::Panic).count();
        let slows = first.iter().filter(|f| **f == Fault::Slow).count();
        // 10% each over 1000 draws: both must land well within [2%, 25%].
        assert!((20..=250).contains(&panics), "panic count {panics}");
        assert!((20..=250).contains(&slows), "slow count {slows}");
    }

    #[test]
    fn zero_rates_never_fault() {
        let inj = FaultInjector::new(3, 0, 0, Duration::ZERO);
        assert!((0..10_000).all(|i| inj.fault_for(i) == Fault::None));
    }

    #[test]
    #[should_panic(expected = "exceed 100%")]
    fn overfull_rates_are_rejected() {
        FaultInjector::new(0, 600_000, 600_000, Duration::ZERO);
    }
}
