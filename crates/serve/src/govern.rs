//! Resource governance for the serving layer: a process-wide byte
//! ledger, a bounded admission gate, and a per-shape circuit breaker.
//!
//! The three pieces bound the three ways heavy traffic kills an
//! optimizer service:
//!
//! * **[`ResourceLedger`]** — global memory accounting. Every memo the
//!   pool knows about (parked *or* checked out) is registered by its
//!   [`dpnext::Memo::footprint_bytes`]; the service's load-shed policy
//!   tightens effective deadlines and memory budgets as the ledger
//!   approaches its cap, so pressure degrades plan quality before it
//!   degrades availability. Quarantined memos are released from the
//!   ledger the moment they are destroyed and tallied in
//!   [`LedgerStats::quarantined_bytes`] — they no longer silently
//!   vanish from the accounting.
//! * **[`AdmissionGate`]** — bounded concurrency. At most
//!   `max_concurrent` requests optimize at once and at most `max_queued`
//!   wait for a slot; everyone else is rejected *fast* with
//!   [`crate::ServeError::Overloaded`] and a retry hint, instead of
//!   piling onto an unbounded queue until every caller times out.
//! * **[`ShapeBreaker`]** — per-shape circuit breaking. A query shape
//!   (the exact [`crate::QueryShape`] fingerprint) that repeatedly
//!   panics or aborts on deadline/memory trips its breaker **open**:
//!   subsequent arrivals of that shape are served straight from the
//!   greedy rung (cheap, never consults the clock) so one pathological
//!   shape cannot poison throughput for everyone. After a cooldown one
//!   arrival runs as a **half-open probe** at full quality; success
//!   closes the breaker, failure re-opens it.

use crate::fingerprint::QueryShape;
use dpnext_obs::{Counter, Gauge, Registry};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Point-in-time counters of a [`ResourceLedger`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerStats {
    /// Bytes currently registered (parked + checked-out memo footprints).
    pub bytes: u64,
    /// High-water mark of registered bytes.
    pub peak: u64,
    /// The configured cap (0 = uncapped; the shed policy never engages).
    pub cap: u64,
    /// Cumulative footprint bytes destroyed via memo quarantine. A
    /// quarantined memo is subtracted from `bytes` exactly when it is
    /// dropped, and its footprint lands here — the regression guard for
    /// quarantines silently vanishing from pool accounting.
    pub quarantined_bytes: u64,
}

/// Process-wide byte accounting across pooled and live memos.
///
/// Registration happens at pool boundaries (checkout registers a fresh
/// memo, check-in re-measures a parked one), so the ledger learns about
/// arena growth at request granularity; per-request memory budgets bound
/// the in-flight growth between those points.
#[derive(Debug, Default)]
pub struct ResourceLedger {
    // Registry-backed cells (PR 10): the gauge's built-in high-water mark
    // replaces the old separate `peak` atomic.
    bytes: Arc<Gauge>,
    cap: u64,
    quarantined_bytes: Arc<Counter>,
}

impl ResourceLedger {
    /// A ledger with a soft cap of `cap` bytes (0 = uncapped). The cap is
    /// the shed policy's reference point, not a hard allocation limit —
    /// enforcement is the per-request memory budget.
    pub fn new(cap: u64) -> ResourceLedger {
        ResourceLedger {
            cap,
            ..ResourceLedger::default()
        }
    }

    /// The configured cap (0 = uncapped).
    pub fn cap(&self) -> u64 {
        self.cap
    }

    /// Expose this ledger's cells in `registry` (under `dpnext_ledger_*`;
    /// the byte gauge's `_peak` companion carries the high-water mark).
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_gauge(
            "dpnext_ledger_bytes",
            "Memo bytes registered process-wide (parked + checked out).",
            &[],
            self.bytes.clone(),
        );
        registry.register_counter(
            "dpnext_ledger_quarantined_bytes_total",
            "Footprint bytes destroyed via memo quarantine.",
            &[],
            self.quarantined_bytes.clone(),
        );
    }

    /// Register `bytes` more.
    pub fn add(&self, bytes: u64) {
        self.bytes.add(bytes);
    }

    /// Release `bytes` (saturating — a release can never drive the
    /// ledger negative even if an estimate drifted).
    pub fn sub(&self, bytes: u64) {
        self.bytes.sub(bytes);
    }

    /// Tally a quarantined memo's destroyed footprint.
    pub fn record_quarantined(&self, bytes: u64) {
        self.quarantined_bytes.add(bytes);
    }

    /// Bytes currently registered.
    pub fn bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Registered bytes as a fraction of the cap; 0.0 when uncapped.
    pub fn utilization(&self) -> f64 {
        if self.cap == 0 {
            return 0.0;
        }
        self.bytes() as f64 / self.cap as f64
    }

    /// Current counters.
    pub fn stats(&self) -> LedgerStats {
        LedgerStats {
            bytes: self.bytes(),
            peak: self.bytes.peak(),
            cap: self.cap,
            quarantined_bytes: self.quarantined_bytes.get(),
        }
    }
}

/// Point-in-time counters of an [`AdmissionGate`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Requests that received a permit (immediately or after queueing).
    pub admitted: u64,
    /// Requests rejected fast because both the concurrency slots and the
    /// queue were full.
    pub rejected: u64,
    /// High-water mark of concurrently queued requests — bounded by
    /// `max_queued` by construction; the overload smoke asserts it.
    pub queued_peak: u64,
}

#[derive(Debug, Default)]
struct GateState {
    active: usize,
    queued: usize,
}

/// A bounded admission gate: at most `max_concurrent` permits out at
/// once, at most `max_queued` waiters; everyone else is turned away
/// immediately with a retry hint.
#[derive(Debug)]
pub struct AdmissionGate {
    max_concurrent: usize,
    max_queued: usize,
    state: Mutex<GateState>,
    slot_freed: Condvar,
    admitted: Arc<Counter>,
    rejected: Arc<Counter>,
    /// Mirrors `GateState::queued` (updated under the same lock); its
    /// peak is the reported `queued_peak`.
    queued: Arc<Gauge>,
}

/// An admission permit; releasing it (drop) frees the slot and wakes one
/// queued waiter.
#[derive(Debug)]
pub struct GatePermit<'g> {
    gate: &'g AdmissionGate,
}

impl AdmissionGate {
    /// A gate admitting `max_concurrent` requests at once (0 = unlimited,
    /// the gate never blocks or rejects) with a wait queue of `max_queued`.
    pub fn new(max_concurrent: usize, max_queued: usize) -> AdmissionGate {
        AdmissionGate {
            max_concurrent,
            max_queued,
            state: Mutex::new(GateState::default()),
            slot_freed: Condvar::new(),
            admitted: Arc::new(Counter::new()),
            rejected: Arc::new(Counter::new()),
            queued: Arc::new(Gauge::new()),
        }
    }

    /// Expose this gate's cells in `registry` (under `dpnext_gate_*`).
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter(
            "dpnext_gate_admitted_total",
            "Requests that received an admission permit.",
            &[],
            self.admitted.clone(),
        );
        registry.register_counter(
            "dpnext_gate_rejected_total",
            "Requests rejected fast at a saturated gate.",
            &[],
            self.rejected.clone(),
        );
        registry.register_gauge(
            "dpnext_gate_queued",
            "Requests currently waiting for an admission slot.",
            &[],
            self.queued.clone(),
        );
    }

    /// Try to enter: a permit when a slot is free (or frees up while we
    /// are one of the `max_queued` waiters), or `Err(line_length)` when
    /// the gate is saturated — the number of requests currently active
    /// plus queued (at least 1). The *service* turns the line length into
    /// a retry hint from its measured service-time histogram (p50 × line),
    /// so the hint tracks how fast the line actually drains; standalone
    /// gate users can apply any back-off policy they like to the raw
    /// length.
    pub fn admit(&self) -> Result<GatePermit<'_>, u32> {
        let mut state = self.state.lock().unwrap();
        if self.max_concurrent == 0 || state.active < self.max_concurrent {
            state.active += 1;
            self.admitted.inc();
            return Ok(GatePermit { gate: self });
        }
        if state.queued >= self.max_queued {
            self.rejected.inc();
            let line = (state.active + state.queued) as u32;
            return Err(line.max(1));
        }
        state.queued += 1;
        self.queued.add(1);
        while state.active >= self.max_concurrent {
            state = self.slot_freed.wait(state).unwrap();
        }
        state.queued -= 1;
        self.queued.sub(1);
        state.active += 1;
        self.admitted.inc();
        Ok(GatePermit { gate: self })
    }

    /// Current counters.
    pub fn stats(&self) -> GateStats {
        GateStats {
            admitted: self.admitted.get(),
            rejected: self.rejected.get(),
            queued_peak: self.queued.peak(),
        }
    }
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().unwrap();
        state.active -= 1;
        drop(state);
        self.gate.slot_freed.notify_one();
    }
}

/// Point-in-time counters of a [`ShapeBreaker`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Closed → open transitions (the failure threshold was reached).
    pub trips: u64,
    /// Half-open probes that failed and re-opened the breaker.
    pub reopens: u64,
    /// Requests served from the greedy rung because their shape's breaker
    /// was open.
    pub open_served: u64,
    /// Arrivals promoted to half-open probes (full-quality attempts after
    /// the cooldown).
    pub probes: u64,
    /// Breakers closed by a successful probe.
    pub closes: u64,
    /// Shapes currently open or half-open.
    pub open_shapes: u64,
}

/// What the breaker tells the service to do with one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Run at full quality and report the outcome.
    Closed,
    /// Serve from the greedy rung; do not report (degraded runs say
    /// nothing about whether the shape still fails at full quality).
    Open,
    /// Run at full quality as the half-open probe and report with
    /// `probe = true` — success closes the breaker, failure re-opens it.
    Probe,
}

#[derive(Debug)]
enum EntryState {
    Closed { fails: u32 },
    Open { until: Instant },
    HalfOpen,
}

/// A per-shape circuit breaker keyed by the exact [`QueryShape`]
/// fingerprint. `threshold` consecutive failures (panics or
/// deadline/memory aborts) trip a shape open for `cooldown`; open shapes
/// are served from the greedy rung until a half-open probe succeeds.
#[derive(Debug)]
pub struct ShapeBreaker {
    threshold: u32,
    cooldown: Duration,
    states: Mutex<HashMap<QueryShape, EntryState>>,
    trips: Arc<Counter>,
    reopens: Arc<Counter>,
    open_served: Arc<Counter>,
    probes: Arc<Counter>,
    closes: Arc<Counter>,
}

impl ShapeBreaker {
    /// A breaker tripping after `threshold` consecutive failures of one
    /// shape (0 disables the breaker entirely), staying open for
    /// `cooldown` before allowing a half-open probe.
    pub fn new(threshold: u32, cooldown: Duration) -> ShapeBreaker {
        ShapeBreaker {
            threshold,
            cooldown,
            states: Mutex::new(HashMap::new()),
            trips: Arc::new(Counter::new()),
            reopens: Arc::new(Counter::new()),
            open_served: Arc::new(Counter::new()),
            probes: Arc::new(Counter::new()),
            closes: Arc::new(Counter::new()),
        }
    }

    /// Expose this breaker's cells in `registry` (under
    /// `dpnext_breaker_*`, one `event` label per transition kind).
    pub fn register_metrics(&self, registry: &Registry) {
        for (event, cell) in [
            ("trip", &self.trips),
            ("reopen", &self.reopens),
            ("open_served", &self.open_served),
            ("probe", &self.probes),
            ("close", &self.closes),
        ] {
            registry.register_counter(
                "dpnext_breaker_events_total",
                "Circuit-breaker transitions and degraded servings by kind.",
                &[("event", event)],
                cell.clone(),
            );
        }
    }

    /// Whether the breaker is armed.
    pub fn enabled(&self) -> bool {
        self.threshold > 0
    }

    /// Route one arrival of `shape`. Only failing shapes occupy map
    /// entries (successes remove theirs), so the map stays proportional
    /// to the set of currently misbehaving shapes, not the whole
    /// workload.
    pub fn decide(&self, shape: &QueryShape) -> BreakerDecision {
        if !self.enabled() {
            return BreakerDecision::Closed;
        }
        let mut states = self.states.lock().unwrap();
        match states.get_mut(shape) {
            None | Some(EntryState::Closed { .. }) => BreakerDecision::Closed,
            Some(entry @ EntryState::Open { .. }) => {
                let EntryState::Open { until } = *entry else {
                    unreachable!()
                };
                if Instant::now() < until {
                    self.open_served.inc();
                    BreakerDecision::Open
                } else {
                    *entry = EntryState::HalfOpen;
                    self.probes.inc();
                    BreakerDecision::Probe
                }
            }
            Some(EntryState::HalfOpen) => {
                // A probe is already in flight; stay on the cheap rung.
                self.open_served.inc();
                BreakerDecision::Open
            }
        }
    }

    /// Report the outcome of a full-quality run of `shape` (never called
    /// for [`BreakerDecision::Open`] servings). A success clears the
    /// shape; a failure counts toward the trip threshold, or — for a
    /// probe — re-opens immediately.
    pub fn report(&self, shape: &QueryShape, probe: bool, success: bool) {
        if !self.enabled() {
            return;
        }
        let mut states = self.states.lock().unwrap();
        if success {
            if states.remove(shape).is_some() && probe {
                self.closes.inc();
            }
            return;
        }
        let until = Instant::now() + self.cooldown;
        if probe {
            states.insert(shape.clone(), EntryState::Open { until });
            self.reopens.inc();
            return;
        }
        let entry = states
            .entry(shape.clone())
            .or_insert(EntryState::Closed { fails: 0 });
        match entry {
            EntryState::Closed { fails } => {
                *fails += 1;
                if *fails >= self.threshold {
                    *entry = EntryState::Open { until };
                    self.trips.inc();
                }
            }
            // A non-probe failure while open/half-open (e.g. a racing
            // full-quality run that started before the trip): keep the
            // breaker open, restart the cooldown.
            EntryState::Open { .. } | EntryState::HalfOpen => {
                *entry = EntryState::Open { until };
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> BreakerStats {
        let open_shapes = self
            .states
            .lock()
            .unwrap()
            .values()
            .filter(|s| !matches!(s, EntryState::Closed { .. }))
            .count() as u64;
        BreakerStats {
            trips: self.trips.get(),
            reopens: self.reopens.get(),
            open_served: self.open_served.get(),
            probes: self.probes.get(),
            closes: self.closes.get(),
            open_shapes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnext_workload::{generate_query, GenConfig};

    #[test]
    fn ledger_add_sub_peak() {
        let ledger = ResourceLedger::new(1000);
        ledger.add(600);
        ledger.add(300);
        ledger.sub(400);
        let s = ledger.stats();
        assert_eq!(500, s.bytes);
        assert_eq!(900, s.peak);
        assert!((ledger.utilization() - 0.5).abs() < 1e-12);
        ledger.sub(10_000); // saturates, never wraps
        assert_eq!(0, ledger.bytes());
    }

    #[test]
    fn gate_unlimited_never_rejects() {
        let gate = AdmissionGate::new(0, 0);
        let a = gate.admit().unwrap();
        let b = gate.admit().unwrap();
        drop((a, b));
        let s = gate.stats();
        assert_eq!((2, 0), (s.admitted, s.rejected));
    }

    #[test]
    fn gate_rejects_over_cap_and_queue() {
        let gate = AdmissionGate::new(1, 0);
        let held = gate.admit().unwrap();
        let err = gate.admit();
        assert!(err.is_err(), "second admit must be rejected fast");
        drop(held);
        assert!(gate.admit().is_ok(), "slot freed on permit drop");
        let s = gate.stats();
        assert_eq!((2, 1), (s.admitted, s.rejected));
    }

    #[test]
    fn breaker_trips_probes_and_closes() {
        let shape = crate::fingerprint_query(&generate_query(&GenConfig::paper(3), 1));
        let breaker = ShapeBreaker::new(2, Duration::from_millis(20));
        assert_eq!(BreakerDecision::Closed, breaker.decide(&shape));
        breaker.report(&shape, false, false);
        assert_eq!(BreakerDecision::Closed, breaker.decide(&shape));
        breaker.report(&shape, false, false); // second consecutive failure: trip
        assert_eq!(BreakerDecision::Open, breaker.decide(&shape));
        assert_eq!(1, breaker.stats().trips);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(BreakerDecision::Probe, breaker.decide(&shape));
        // While the probe is in flight, other arrivals stay degraded.
        assert_eq!(BreakerDecision::Open, breaker.decide(&shape));
        breaker.report(&shape, true, true);
        assert_eq!(BreakerDecision::Closed, breaker.decide(&shape));
        let s = breaker.stats();
        assert_eq!((1, 1, 0), (s.probes, s.closes, s.open_shapes));
    }

    #[test]
    fn breaker_failed_probe_reopens() {
        let shape = crate::fingerprint_query(&generate_query(&GenConfig::paper(3), 2));
        let breaker = ShapeBreaker::new(1, Duration::from_millis(10));
        breaker.report(&shape, false, false);
        assert_eq!(BreakerDecision::Open, breaker.decide(&shape));
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(BreakerDecision::Probe, breaker.decide(&shape));
        breaker.report(&shape, true, false);
        assert_eq!(BreakerDecision::Open, breaker.decide(&shape));
        assert_eq!(1, breaker.stats().reopens);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let shape = crate::fingerprint_query(&generate_query(&GenConfig::paper(3), 3));
        let breaker = ShapeBreaker::new(2, Duration::from_millis(10));
        breaker.report(&shape, false, false);
        breaker.report(&shape, false, true); // success clears the streak
        breaker.report(&shape, false, false);
        assert_eq!(
            BreakerDecision::Closed,
            breaker.decide(&shape),
            "non-consecutive failures must not trip"
        );
    }
}
