//! The scrape endpoint: one blocking thread serving the service's
//! metrics registry over plain HTTP/1.0.
//!
//! Deliberately minimal — a [`std::net::TcpListener`], no framework, no
//! keep-alive, no TLS. Two routes:
//!
//! * `GET /metrics` — the registry in Prometheus text exposition format
//!   ([`OptimizerService::metrics_text`]).
//! * `GET /stats.json` — [`ServiceStats`](crate::ServiceStats) as JSON.
//!
//! The endpoint is opt-in (see
//! [`ServiceConfig::metrics_addr`](crate::ServiceConfig::metrics_addr))
//! and entirely out of band: the request path of the service never
//! touches it, and a wedged scraper can at worst stall this one thread
//! for the read timeout.

use crate::OptimizerService;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long one connection may take to deliver its request line before
/// the server gives up on it.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

/// Handle to a running scrape endpoint. Dropping it (or calling
/// [`MetricsServer::stop`]) shuts the server down and joins its thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` and serve `service`'s metrics from a dedicated
    /// thread. Use port 0 for an ephemeral port; the bound address is
    /// available via [`MetricsServer::local_addr`].
    pub fn spawn(
        service: Arc<OptimizerService>,
        addr: SocketAddr,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("dpnext-metrics".to_string())
            .spawn(move || serve_loop(&listener, &service, &thread_stop))?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shut the server down and join its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // accept() has no timeout; a throwaway connection wakes it so it
        // observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(listener: &TcpListener, service: &OptimizerService, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Accept errors (e.g. a connection reset before accept) are not
        // fatal to the endpoint; per-connection I/O errors even less so.
        if let Ok(mut conn) = conn {
            let _ = handle_conn(&mut conn, service);
        }
    }
}

fn handle_conn(conn: &mut TcpStream, service: &OptimizerService) -> std::io::Result<()> {
    conn.set_read_timeout(Some(READ_TIMEOUT))?;
    // Read until the header-terminating blank line (clients may split
    // the request across writes), EOF, or a size bound.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        let n = conn.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= 8192 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let path = request.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            service.metrics_text(),
        ),
        "/stats.json" => ("200 OK", "application/json", service.stats().render_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics or /stats.json\n".to_string(),
        ),
    };
    write!(
        conn,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    conn.flush()
}
