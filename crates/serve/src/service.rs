//! The optimizer service: cache, pool and resource governance wired
//! around a shared [`Optimizer`].

use crate::cache::{CacheKey, CacheStats, PlanCache};
use crate::fault::{Fault, FaultInjector};
use crate::fingerprint::fingerprint_query;
use crate::govern::{
    AdmissionGate, BreakerDecision, BreakerStats, GateStats, LedgerStats, ResourceLedger,
    ShapeBreaker,
};
use crate::pool::{MemoPool, PoolStats};
use dpnext::{Algorithm, Optimized, Optimizer};
use dpnext_query::Query;
use dpnext_sql::{plan as bind_sql, BoundQuery, SqlError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Ledger utilization at which the load-shed policy engages: above this
/// fraction of [`ServiceConfig::memory_cap_bytes`], admitted requests run
/// under tightened deadlines and memory budgets so memory pressure
/// degrades plan quality before it degrades availability.
pub const SHED_UTILIZATION: f64 = 0.75;

/// Capacity knobs of an [`OptimizerService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Total plans the cache may hold; 0 disables caching.
    pub cache_capacity: usize,
    /// Idle memos the arena pool may park; 0 disables pooling. Sizing it
    /// at the worker-thread count keeps steady-state serving free of
    /// arena allocation.
    pub pool_capacity: usize,
    /// Per-request wall-clock deadline. When set, every optimization runs
    /// through the adaptive degradation ladder (see
    /// [`Optimizer::deadline`]): a request that would blow the deadline
    /// *degrades* — exact → partial-exact → linearized → greedy — and
    /// still returns a structurally valid plan, with the degradation
    /// recorded in the result's `memo.degradation` and counted in
    /// [`ServiceStats::deadline_degraded`]. Deadline-degraded plans are
    /// not cached (a later uncontended request should get the full-quality
    /// plan). `None` (the default) leaves requests unconstrained and
    /// bit-identical to a service without the knob.
    pub deadline: Option<Duration>,
    /// Per-request memory budget in live memo bytes (see
    /// [`Optimizer::memory_budget`]). Like the deadline, a non-zero budget
    /// rides the degradation ladder: the request aborts enumeration the
    /// moment live bytes reach the budget and ships the best valid plan so
    /// far, counted in [`ServiceStats::memory_degraded`] and kept out of
    /// the cache. 0 (the default) leaves requests unconstrained.
    pub memory_budget: u64,
    /// Admission control: at most this many requests optimize at once
    /// (0 = unlimited, the gate is transparent). Cache hits bypass the
    /// gate — they consume no optimizer resources.
    pub max_concurrent: usize,
    /// Requests allowed to wait for an admission slot before the service
    /// rejects further arrivals fast with [`ServeError::Overloaded`].
    /// Only meaningful with a non-zero `max_concurrent`.
    pub max_queued: usize,
    /// Soft cap on process-wide memo bytes (parked + checked out),
    /// tracked by the service's [`ResourceLedger`]. When utilization
    /// crosses [`SHED_UTILIZATION`], the load-shed policy tightens the
    /// effective deadline (halved) and memory budget (halved, floored at
    /// the remaining headroom) of every admitted request. 0 (the default)
    /// disables shedding; the ledger still counts.
    pub memory_cap_bytes: u64,
    /// Consecutive failures (panic, deadline abort or memory abort) after
    /// which one query shape's circuit breaker trips open and arrivals of
    /// that shape are served straight from the greedy rung. 0 (the
    /// default) disables the breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before one arrival is
    /// promoted to a full-quality half-open probe (success closes the
    /// breaker, failure re-opens it).
    pub breaker_cooldown: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 1024,
            pool_capacity: 32,
            deadline: None,
            memory_budget: 0,
            max_concurrent: 0,
            max_queued: 0,
            memory_cap_bytes: 0,
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_millis(250),
        }
    }
}

/// Why a service request failed. Structurally valid degraded plans are
/// *not* errors — the service's whole job is returning them instead.
#[derive(Debug)]
pub enum ServeError {
    /// The optimizer panicked. The panic was contained to this request:
    /// its memo was quarantined (never returned to the pool) and the
    /// service keeps serving. Carries the panic payload's message.
    Panicked(String),
    /// SQL parsing or binding failed.
    Sql(SqlError),
    /// The admission gate was saturated: `max_concurrent` requests were
    /// already optimizing and `max_queued` more were waiting. The request
    /// was rejected *fast* — no memo, no optimizer work — with a hint
    /// scaled to the current line length. Retrying after the hint (with
    /// jitter) spreads the load instead of stampeding the gate.
    Overloaded {
        /// Suggested client back-off before retrying.
        retry_after_hint: Duration,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Panicked(msg) => write!(f, "optimizer panicked: {msg}"),
            ServeError::Sql(e) => write!(f, "sql error: {e}"),
            ServeError::Overloaded { retry_after_hint } => {
                write!(f, "service overloaded: retry after {retry_after_hint:?}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SqlError> for ServeError {
    fn from(e: SqlError) -> ServeError {
        ServeError::Sql(e)
    }
}

/// What one service request returns.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// The optimized plan — shared, since cache hits all return the same
    /// underlying result.
    pub result: Arc<Optimized>,
    /// Whether the plan came out of the cache (`false` = this request
    /// ran the optimizer).
    pub cache_hit: bool,
    /// The statistics epoch the plan belongs to.
    pub epoch: u64,
}

/// Point-in-time service counters ([`OptimizerService::stats`]).
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Requests accepted (`optimize` + `optimize_sql` calls).
    pub requests: u64,
    /// Current statistics epoch.
    pub epoch: u64,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Arena-pool counters.
    pub pool: PoolStats,
    /// Requests whose optimizer call panicked (isolated by
    /// `catch_unwind`, memo quarantined, error returned to that caller
    /// only — the service kept serving).
    pub panics: u64,
    /// Requests that hit their deadline and shipped a degraded (but
    /// valid) plan; such plans bypass the cache.
    pub deadline_degraded: u64,
    /// Requests that hit their memory budget and shipped a degraded (but
    /// valid) plan; such plans bypass the cache.
    pub memory_degraded: u64,
    /// Admitted requests that ran under load-shed-tightened deadlines /
    /// memory budgets because ledger utilization crossed
    /// [`SHED_UTILIZATION`].
    pub shed: u64,
    /// Admission-gate counters (admitted / fast-rejected / queue peak).
    pub gate: GateStats,
    /// Process-wide memo byte accounting, including the footprints of
    /// quarantined memos (they are released *and tallied*, never lost).
    pub ledger: LedgerStats,
    /// Per-shape circuit-breaker counters.
    pub breaker: BreakerStats,
}

/// A concurrent optimizer frontend: share one instance (behind an
/// [`Arc`]) between any number of threads; every method takes `&self`.
///
/// Each request is keyed by the canonical shape of its (bound) query
/// plus the current statistics epoch. Hits return the previously
/// optimized result; misses pass the admission gate, consult the shape's
/// circuit breaker, then run the wrapped [`Optimizer`] inside a pooled
/// memo and publish the result for later arrivals of the same shape. See
/// the crate docs for the cache-key semantics and the governance layer.
pub struct OptimizerService {
    optimizer: Optimizer,
    config: ServiceConfig,
    cache: PlanCache,
    pool: MemoPool,
    ledger: Arc<ResourceLedger>,
    gate: AdmissionGate,
    breaker: ShapeBreaker,
    epoch: AtomicU64,
    requests: AtomicU64,
    panics: AtomicU64,
    deadline_degraded: AtomicU64,
    memory_degraded: AtomicU64,
    shed: AtomicU64,
    faults: Option<FaultInjector>,
}

impl OptimizerService {
    /// A service over `optimizer` with default capacities
    /// ([`ServiceConfig::default`]).
    pub fn new(optimizer: Optimizer) -> OptimizerService {
        OptimizerService::with_config(optimizer, ServiceConfig::default())
    }

    /// A service with explicit capacities, per-request resource limits
    /// and governance knobs.
    pub fn with_config(optimizer: Optimizer, config: ServiceConfig) -> OptimizerService {
        let mut optimizer = match config.deadline {
            Some(d) => optimizer.deadline(Some(d)),
            None => optimizer,
        };
        if config.memory_budget != 0 {
            optimizer = optimizer.memory_budget(config.memory_budget);
        }
        let ledger = Arc::new(ResourceLedger::new(config.memory_cap_bytes));
        OptimizerService {
            optimizer,
            cache: PlanCache::new(config.cache_capacity),
            pool: MemoPool::with_ledger(config.pool_capacity, ledger.clone()),
            ledger,
            gate: AdmissionGate::new(config.max_concurrent, config.max_queued),
            breaker: ShapeBreaker::new(config.breaker_threshold, config.breaker_cooldown),
            config,
            epoch: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            deadline_degraded: AtomicU64::new(0),
            memory_degraded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            faults: None,
        }
    }

    /// Arm deterministic fault injection (see [`FaultInjector`]): each
    /// request consults the schedule by its request index and may run with
    /// an injected panic, an injected slow enumeration, or an injected
    /// memory-pressure budget. For tests and the `robustness_smoke` /
    /// `overload_smoke` CI binaries; never arm this in production.
    pub fn with_fault_injection(mut self, faults: FaultInjector) -> OptimizerService {
        self.faults = Some(faults);
        self
    }

    /// The wrapped facade (e.g. to reach its catalog for binding).
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    /// The current statistics epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Declare the catalog statistics changed: moves every subsequent
    /// lookup to a fresh epoch, so the first arrival of each shape
    /// re-optimizes. Returns the new epoch. Entries of earlier epochs
    /// are unreachable and age out FIFO; they are deliberately not
    /// cleared (see [`CacheKey`]).
    pub fn bump_stats_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Tighten an admitted request's resource knobs under memory
    /// pressure: the effective deadline halves, and the effective memory
    /// budget becomes the smaller of half the configured budget and the
    /// remaining headroom under the cap (floored at 1/16 of the cap so a
    /// fully saturated ledger still leaves room for the greedy rung).
    fn shed_tighten(&self, mut opt: Optimizer) -> Optimizer {
        if let Some(d) = self.config.deadline {
            opt = opt.deadline(Some(d / 2));
        }
        let cap = self.ledger.cap();
        let headroom = cap.saturating_sub(self.ledger.bytes()).max(cap / 16);
        let budget = match self.config.memory_budget {
            0 => headroom,
            b => (b / 2).min(headroom),
        };
        opt.memory_budget(budget.max(1))
    }

    /// Optimize an already-bound [`Query`], serving from the cache when
    /// the shape was optimized before under the current epoch.
    ///
    /// A cache miss walks the governance pipeline in order:
    ///
    /// 1. **Admission** — with `max_concurrent` configured, the request
    ///    takes a gate slot (or waits as one of `max_queued`); a
    ///    saturated gate rejects fast with [`ServeError::Overloaded`].
    /// 2. **Circuit breaker** — a shape with a tripped breaker is served
    ///    straight from the adaptive greedy rung (cheap, valid, skips the
    ///    cache) instead of failing the same way again.
    /// 3. **Load shed** — above [`SHED_UTILIZATION`] of the memory cap,
    ///    effective deadlines and memory budgets tighten.
    /// 4. **Isolation** — the optimizer call runs inside `catch_unwind`:
    ///    a panic anywhere in enumeration is contained to this request —
    ///    its memo is quarantined (footprint released from the ledger and
    ///    tallied), the panic is counted, and only this caller sees
    ///    [`ServeError::Panicked`]. Deadline- or memory-pressured
    ///    requests degrade down the adaptive ladder instead of timing out
    ///    (the result's `memo.degradation` says why; degraded plans skip
    ///    the cache).
    pub fn optimize(&self, query: &Query) -> Result<ServeResult, ServeError> {
        let request = self.requests.fetch_add(1, Ordering::Relaxed);
        let epoch = self.epoch();
        let shape = fingerprint_query(query);
        let key = CacheKey {
            epoch,
            shape: shape.clone(),
        };
        // Cache first: hits consume no optimizer resources, so a burst of
        // hits must never be turned away by the gate.
        if let Some(result) = self.cache.lookup(&key) {
            return Ok(ServeResult {
                result,
                cache_hit: true,
                epoch,
            });
        }
        let _permit = match self.gate.admit() {
            Ok(permit) => permit,
            Err(retry_after_hint) => return Err(ServeError::Overloaded { retry_after_hint }),
        };
        let decision = self.breaker.decide(&shape);
        let open_served = decision == BreakerDecision::Open;
        let fault = match &self.faults {
            Some(inj) => inj.fault_for(request),
            None => Fault::None,
        };
        let shed =
            !open_served && self.ledger.cap() != 0 && self.ledger.utilization() >= SHED_UTILIZATION;
        if shed {
            self.shed.fetch_add(1, Ordering::Relaxed);
        }
        let mut memo = self.pool.checkout();
        // The closure borrows the memo mutably; `AssertUnwindSafe` is
        // sound *because* of the quarantine below — on a panic the memo's
        // (possibly torn) state is destroyed, never observed again.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if fault == Fault::Panic {
                panic!("injected fault: optimizer panic (request {request})");
            }
            if open_served {
                // Breaker open: serve the greedy rung — the adaptive
                // ladder with a plan budget of 1 clamps to the greedy
                // floor, needs no clock or byte meter, and cannot fail
                // the way the shape has been failing.
                return self
                    .optimizer
                    .clone()
                    .algorithm(Algorithm::Adaptive)
                    .plan_budget(1)
                    .deadline(None)
                    .memory_budget(0)
                    .optimize_pooled(query, &mut memo);
            }
            if !shed && fault == Fault::None {
                return self.optimizer.optimize_pooled(query, &mut memo);
            }
            let mut opt = self.optimizer.clone();
            if shed {
                opt = self.shed_tighten(opt);
            }
            let inj = self.faults.as_ref();
            match fault {
                Fault::Slow => {
                    let delay = inj.expect("slow fault implies injector").slow_unit_delay();
                    opt = opt.fault_unit_delay(Some(delay));
                }
                Fault::MemoryPressure => {
                    let budget = inj
                        .expect("pressure fault implies injector")
                        .pressure_budget_bytes();
                    opt = opt.memory_budget(budget);
                }
                Fault::None | Fault::Panic => {}
            }
            opt.optimize_pooled(query, &mut memo)
        }));
        match outcome {
            Ok(optimized) => {
                let degradation = optimized.memo.degradation;
                drop(memo); // park the arena before publishing
                if !open_served {
                    self.breaker.report(
                        &shape,
                        decision == BreakerDecision::Probe,
                        !degradation.resource_aborted(),
                    );
                }
                let result = Arc::new(optimized);
                if degradation.deadline_aborted {
                    self.deadline_degraded.fetch_add(1, Ordering::Relaxed);
                }
                if degradation.memory_aborted {
                    self.memory_degraded.fetch_add(1, Ordering::Relaxed);
                }
                if open_served || degradation.resource_aborted() {
                    // A degraded plan is valid but below full quality:
                    // keep it out of the cache so a later, uncontended
                    // arrival re-optimizes.
                } else {
                    self.cache.insert(key, result.clone());
                }
                Ok(ServeResult {
                    result,
                    cache_hit: false,
                    epoch,
                })
            }
            Err(payload) => {
                memo.quarantine();
                self.panics.fetch_add(1, Ordering::Relaxed);
                if !open_served {
                    self.breaker
                        .report(&shape, decision == BreakerDecision::Probe, false);
                }
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(ServeError::Panicked(msg))
            }
        }
    }

    /// Full pipeline from SQL text: parse, bind against the facade's
    /// catalog, then [`OptimizerService::optimize`]. Caching operates on
    /// the *bound* query, so differently spelled but identically bound
    /// texts share one entry.
    pub fn optimize_sql(&self, sql: &str) -> Result<ServeResult, ServeError> {
        self.optimize_sql_bound(sql).map(|(_, r)| r)
    }

    /// Like [`OptimizerService::optimize_sql`], additionally returning
    /// the bound query for callers that execute the plan.
    pub fn optimize_sql_bound(&self, sql: &str) -> Result<(BoundQuery, ServeResult), ServeError> {
        let bound = bind_sql(sql, self.optimizer.catalog())?;
        let result = self.optimize(&bound.query)?;
        Ok((bound, result))
    }

    /// Current counters across the request path, cache, pool and the
    /// governance layer (gate, ledger, breaker).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            epoch: self.epoch(),
            cache: self.cache.stats(),
            pool: self.pool.stats(),
            panics: self.panics.load(Ordering::Relaxed),
            deadline_degraded: self.deadline_degraded.load(Ordering::Relaxed),
            memory_degraded: self.memory_degraded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            gate: self.gate.stats(),
            ledger: self.ledger.stats(),
            breaker: self.breaker.stats(),
        }
    }
}
