//! The optimizer service: cache, pool and resource governance wired
//! around a shared [`Optimizer`].

use crate::cache::{CacheKey, CacheStats, PlanCache};
use crate::fault::{Fault, FaultInjector};
use crate::fingerprint::fingerprint_query;
use crate::govern::{
    AdmissionGate, BreakerDecision, BreakerStats, GateStats, LedgerStats, ResourceLedger,
    ShapeBreaker,
};
use crate::pool::{MemoPool, PoolStats};
use crate::scrape::MetricsServer;
use dpnext::{Algorithm, Optimized, Optimizer};
use dpnext_core::{AdaptiveMode, FxBuildHasher};
use dpnext_obs::{Counter, Histogram, Registry};
use dpnext_query::Query;
use dpnext_sql::{plan as bind_sql, BoundQuery, SqlError};
use std::hash::BuildHasher;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Ledger utilization at which the load-shed policy engages: above this
/// fraction of [`ServiceConfig::memory_cap_bytes`], admitted requests run
/// under tightened deadlines and memory budgets so memory pressure
/// degrades plan quality before it degrades availability.
pub const SHED_UTILIZATION: f64 = 0.75;

/// Capacity knobs of an [`OptimizerService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Total plans the cache may hold; 0 disables caching.
    pub cache_capacity: usize,
    /// Idle memos the arena pool may park; 0 disables pooling. Sizing it
    /// at the worker-thread count keeps steady-state serving free of
    /// arena allocation.
    pub pool_capacity: usize,
    /// Per-request wall-clock deadline. When set, every optimization runs
    /// through the adaptive degradation ladder (see
    /// [`Optimizer::deadline`]): a request that would blow the deadline
    /// *degrades* — exact → partial-exact → linearized → greedy — and
    /// still returns a structurally valid plan, with the degradation
    /// recorded in the result's `memo.degradation` and counted in
    /// [`ServiceStats::deadline_degraded`]. Deadline-degraded plans are
    /// not cached (a later uncontended request should get the full-quality
    /// plan). `None` (the default) leaves requests unconstrained and
    /// bit-identical to a service without the knob.
    pub deadline: Option<Duration>,
    /// Per-request memory budget in live memo bytes (see
    /// [`Optimizer::memory_budget`]). Like the deadline, a non-zero budget
    /// rides the degradation ladder: the request aborts enumeration the
    /// moment live bytes reach the budget and ships the best valid plan so
    /// far, counted in [`ServiceStats::memory_degraded`] and kept out of
    /// the cache. 0 (the default) leaves requests unconstrained.
    pub memory_budget: u64,
    /// Admission control: at most this many requests optimize at once
    /// (0 = unlimited, the gate is transparent). Cache hits bypass the
    /// gate — they consume no optimizer resources.
    pub max_concurrent: usize,
    /// Requests allowed to wait for an admission slot before the service
    /// rejects further arrivals fast with [`ServeError::Overloaded`].
    /// Only meaningful with a non-zero `max_concurrent`.
    pub max_queued: usize,
    /// Soft cap on process-wide memo bytes (parked + checked out),
    /// tracked by the service's [`ResourceLedger`]. When utilization
    /// crosses [`SHED_UTILIZATION`], the load-shed policy tightens the
    /// effective deadline (halved) and memory budget (halved, floored at
    /// the remaining headroom) of every admitted request. 0 (the default)
    /// disables shedding; the ledger still counts.
    pub memory_cap_bytes: u64,
    /// Consecutive failures (panic, deadline abort or memory abort) after
    /// which one query shape's circuit breaker trips open and arrivals of
    /// that shape are served straight from the greedy rung. 0 (the
    /// default) disables the breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before one arrival is
    /// promoted to a full-quality half-open probe (success closes the
    /// breaker, failure re-opens it).
    pub breaker_cooldown: Duration,
    /// Address for the scrape endpoint ([`MetricsServer`]): `GET
    /// /metrics` serves the registry in Prometheus text format, `GET
    /// /stats.json` the [`ServiceStats`] as JSON. Opt-in and out of band:
    /// the endpoint only exists after the owner calls
    /// [`OptimizerService::serve_metrics`] on the `Arc`'d service (one
    /// blocking thread; the request path never touches it). `None` (the
    /// default) disables it. Use port 0 to bind an ephemeral port.
    pub metrics_addr: Option<SocketAddr>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 1024,
            pool_capacity: 32,
            deadline: None,
            memory_budget: 0,
            max_concurrent: 0,
            max_queued: 0,
            memory_cap_bytes: 0,
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_millis(250),
            metrics_addr: None,
        }
    }
}

/// Why a service request failed. Structurally valid degraded plans are
/// *not* errors — the service's whole job is returning them instead.
#[derive(Debug)]
pub enum ServeError {
    /// The optimizer panicked. The panic was contained to this request:
    /// its memo was quarantined (never returned to the pool) and the
    /// service keeps serving. Carries the panic payload's message.
    Panicked(String),
    /// SQL parsing or binding failed.
    Sql(SqlError),
    /// The admission gate was saturated: `max_concurrent` requests were
    /// already optimizing and `max_queued` more were waiting. The request
    /// was rejected *fast* — no memo, no optimizer work — with a hint
    /// derived from *measured* service times: the p50 of recent
    /// completions (the service-time histogram) times the current line
    /// length, clamped to [1 ms, 5 s]. Before any completion has been
    /// measured the service falls back to a fixed 10 ms-per-request
    /// estimate. Retrying after the hint (with jitter) spreads the load
    /// instead of stampeding the gate.
    Overloaded {
        /// Suggested client back-off before retrying.
        retry_after_hint: Duration,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Panicked(msg) => write!(f, "optimizer panicked: {msg}"),
            ServeError::Sql(e) => write!(f, "sql error: {e}"),
            ServeError::Overloaded { retry_after_hint } => {
                write!(f, "service overloaded: retry after {retry_after_hint:?}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SqlError> for ServeError {
    fn from(e: SqlError) -> ServeError {
        ServeError::Sql(e)
    }
}

/// What one service request returns.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// The optimized plan — shared, since cache hits all return the same
    /// underlying result.
    pub result: Arc<Optimized>,
    /// Whether the plan came out of the cache (`false` = this request
    /// ran the optimizer).
    pub cache_hit: bool,
    /// The statistics epoch the plan belongs to.
    pub epoch: u64,
}

/// Point-in-time service counters ([`OptimizerService::stats`]).
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Requests accepted (`optimize` + `optimize_sql` calls).
    pub requests: u64,
    /// Current statistics epoch.
    pub epoch: u64,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Arena-pool counters.
    pub pool: PoolStats,
    /// Requests whose optimizer call panicked (isolated by
    /// `catch_unwind`, memo quarantined, error returned to that caller
    /// only — the service kept serving).
    pub panics: u64,
    /// Requests that hit their deadline and shipped a degraded (but
    /// valid) plan; such plans bypass the cache.
    pub deadline_degraded: u64,
    /// Requests that hit their memory budget and shipped a degraded (but
    /// valid) plan; such plans bypass the cache.
    pub memory_degraded: u64,
    /// Admitted requests that ran under load-shed-tightened deadlines /
    /// memory budgets because ledger utilization crossed
    /// [`SHED_UTILIZATION`].
    pub shed: u64,
    /// Admission-gate counters (admitted / fast-rejected / queue peak).
    pub gate: GateStats,
    /// Process-wide memo byte accounting, including the footprints of
    /// quarantined memos (they are released *and tallied*, never lost).
    pub ledger: LedgerStats,
    /// Per-shape circuit-breaker counters.
    pub breaker: BreakerStats,
}

/// A concurrent optimizer frontend: share one instance (behind an
/// [`Arc`]) between any number of threads; every method takes `&self`.
///
/// Each request is keyed by the canonical shape of its (bound) query
/// plus the current statistics epoch. Hits return the previously
/// optimized result; misses pass the admission gate, consult the shape's
/// circuit breaker, then run the wrapped [`Optimizer`] inside a pooled
/// memo and publish the result for later arrivals of the same shape. See
/// the crate docs for the cache-key semantics and the governance layer.
pub struct OptimizerService {
    optimizer: Optimizer,
    config: ServiceConfig,
    cache: PlanCache,
    pool: MemoPool,
    ledger: Arc<ResourceLedger>,
    gate: AdmissionGate,
    breaker: ShapeBreaker,
    epoch: AtomicU64,
    registry: Arc<Registry>,
    requests: Arc<Counter>,
    panics: Arc<Counter>,
    deadline_degraded: Arc<Counter>,
    memory_degraded: Arc<Counter>,
    shed: Arc<Counter>,
    /// Completed optimizer runs by final adaptive mode, indexed by
    /// [`rung_index`]. `dpnext_rung_total{mode=...}` in the registry.
    rungs: [Arc<Counter>; 5],
    /// End-to-end `optimize()` latency, every return path (hit, miss,
    /// overload-reject, panic).
    request_latency: Arc<Histogram>,
    /// Optimizer-call wall time of completed (non-cached, non-panicked)
    /// runs. Its p50 feeds the overload retry hint.
    service_time: Arc<Histogram>,
    /// Time admitted requests spent waiting at the gate.
    queue_wait: Arc<Histogram>,
    /// Plans built per completed optimizer run.
    plans_built: Arc<Histogram>,
    /// Peak live memo bytes per completed optimizer run.
    live_bytes_peak: Arc<Histogram>,
    faults: Option<FaultInjector>,
}

/// Index of an [`AdaptiveMode`] into [`OptimizerService::rungs`] (and
/// the label order used when registering `dpnext_rung_total`).
fn rung_index(mode: AdaptiveMode) -> usize {
    match mode {
        AdaptiveMode::None => 0,
        AdaptiveMode::Exact => 1,
        AdaptiveMode::PartialExact => 2,
        AdaptiveMode::Linearized => 3,
        AdaptiveMode::Greedy => 4,
    }
}

/// Bounds on the measured overload retry hint.
const RETRY_HINT_MIN: Duration = Duration::from_millis(1);
const RETRY_HINT_MAX: Duration = Duration::from_secs(5);
/// Per-request fallback estimate while the service-time histogram is
/// still empty (the pre-measurement heuristic).
const RETRY_HINT_FALLBACK_PER_REQUEST: Duration = Duration::from_millis(10);

impl OptimizerService {
    /// A service over `optimizer` with default capacities
    /// ([`ServiceConfig::default`]).
    pub fn new(optimizer: Optimizer) -> OptimizerService {
        OptimizerService::with_config(optimizer, ServiceConfig::default())
    }

    /// A service with explicit capacities, per-request resource limits
    /// and governance knobs.
    pub fn with_config(optimizer: Optimizer, config: ServiceConfig) -> OptimizerService {
        let mut optimizer = match config.deadline {
            Some(d) => optimizer.deadline(Some(d)),
            None => optimizer,
        };
        if config.memory_budget != 0 {
            optimizer = optimizer.memory_budget(config.memory_budget);
        }
        let ledger = Arc::new(ResourceLedger::new(config.memory_cap_bytes));
        let cache = PlanCache::new(config.cache_capacity);
        let pool = MemoPool::with_ledger(config.pool_capacity, ledger.clone());
        let gate = AdmissionGate::new(config.max_concurrent, config.max_queued);
        let breaker = ShapeBreaker::new(config.breaker_threshold, config.breaker_cooldown);

        // One registry per service: component cells (cache, pool, ledger,
        // gate, breaker) are *adopted* so `ServiceStats` and the scrape
        // endpoint read the same memory and can never disagree.
        let registry = Arc::new(Registry::new());
        cache.register_metrics(&registry);
        pool.register_metrics(&registry);
        ledger.register_metrics(&registry);
        gate.register_metrics(&registry);
        breaker.register_metrics(&registry);
        registry.register_gauge(
            "dpnext_live_bytes_midrun",
            "Live memo bytes of in-flight optimizer runs, sampled at work-unit granularity.",
            &[],
            dpnext_obs::global_live_bytes(),
        );
        let requests = registry.counter(
            "dpnext_requests_total",
            "Requests accepted (optimize + optimize_sql calls).",
        );
        let panics = registry.counter(
            "dpnext_panics_total",
            "Requests whose optimizer call panicked (contained and quarantined).",
        );
        let shed = registry.counter(
            "dpnext_shed_total",
            "Admitted requests run under load-shed-tightened resource knobs.",
        );
        const DEGRADED_HELP: &str =
            "Completed requests that shipped a degraded plan, by abort cause.";
        let deadline_degraded = registry.counter_with(
            "dpnext_degraded_total",
            DEGRADED_HELP,
            &[("cause", "deadline")],
        );
        let memory_degraded = registry.counter_with(
            "dpnext_degraded_total",
            DEGRADED_HELP,
            &[("cause", "memory")],
        );
        const RUNG_HELP: &str = "Completed optimizer runs by final adaptive-ladder mode.";
        let rungs = [
            registry.counter_with("dpnext_rung_total", RUNG_HELP, &[("mode", "none")]),
            registry.counter_with("dpnext_rung_total", RUNG_HELP, &[("mode", "exact")]),
            registry.counter_with("dpnext_rung_total", RUNG_HELP, &[("mode", "partial-exact")]),
            registry.counter_with("dpnext_rung_total", RUNG_HELP, &[("mode", "linearized")]),
            registry.counter_with("dpnext_rung_total", RUNG_HELP, &[("mode", "greedy")]),
        ];
        let request_latency = registry.histogram(
            "dpnext_request_latency_nanos",
            "End-to-end optimize() latency in nanoseconds, every return path.",
        );
        let service_time = registry.histogram(
            "dpnext_service_time_nanos",
            "Optimizer-call wall time in nanoseconds of completed runs.",
        );
        let queue_wait = registry.histogram(
            "dpnext_queue_wait_nanos",
            "Nanoseconds admitted requests spent waiting at the admission gate.",
        );
        let plans_built = registry.histogram(
            "dpnext_plans_built",
            "Arena plans held at the end of each completed optimizer run.",
        );
        let live_bytes_peak = registry.histogram(
            "dpnext_live_bytes_peak",
            "Peak live memo bytes per completed optimizer run.",
        );

        OptimizerService {
            optimizer,
            cache,
            pool,
            ledger,
            gate,
            breaker,
            config,
            epoch: AtomicU64::new(0),
            registry,
            requests,
            panics,
            deadline_degraded,
            memory_degraded,
            shed,
            rungs,
            request_latency,
            service_time,
            queue_wait,
            plans_built,
            live_bytes_peak,
            faults: None,
        }
    }

    /// Arm deterministic fault injection (see [`FaultInjector`]): each
    /// request consults the schedule by its request index and may run with
    /// an injected panic, an injected slow enumeration, or an injected
    /// memory-pressure budget. For tests and the `robustness_smoke` /
    /// `overload_smoke` CI binaries; never arm this in production.
    pub fn with_fault_injection(mut self, faults: FaultInjector) -> OptimizerService {
        self.faults = Some(faults);
        self
    }

    /// The wrapped facade (e.g. to reach its catalog for binding).
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    /// The current statistics epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Declare the catalog statistics changed: moves every subsequent
    /// lookup to a fresh epoch, so the first arrival of each shape
    /// re-optimizes. Returns the new epoch. Entries of earlier epochs
    /// are unreachable and age out FIFO; they are deliberately not
    /// cleared (see [`CacheKey`]).
    pub fn bump_stats_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Tighten an admitted request's resource knobs under memory
    /// pressure: the effective deadline halves, and the effective memory
    /// budget becomes the smaller of half the configured budget and the
    /// remaining headroom under the cap (floored at 1/16 of the cap so a
    /// fully saturated ledger still leaves room for the greedy rung).
    fn shed_tighten(&self, mut opt: Optimizer) -> Optimizer {
        if let Some(d) = self.config.deadline {
            opt = opt.deadline(Some(d / 2));
        }
        let cap = self.ledger.cap();
        let headroom = cap.saturating_sub(self.ledger.bytes()).max(cap / 16);
        let budget = match self.config.memory_budget {
            0 => headroom,
            b => (b / 2).min(headroom),
        };
        opt.memory_budget(budget.max(1))
    }

    /// Optimize an already-bound [`Query`], serving from the cache when
    /// the shape was optimized before under the current epoch.
    ///
    /// A cache miss walks the governance pipeline in order:
    ///
    /// 1. **Admission** — with `max_concurrent` configured, the request
    ///    takes a gate slot (or waits as one of `max_queued`); a
    ///    saturated gate rejects fast with [`ServeError::Overloaded`].
    /// 2. **Circuit breaker** — a shape with a tripped breaker is served
    ///    straight from the adaptive greedy rung (cheap, valid, skips the
    ///    cache) instead of failing the same way again.
    /// 3. **Load shed** — above [`SHED_UTILIZATION`] of the memory cap,
    ///    effective deadlines and memory budgets tighten.
    /// 4. **Isolation** — the optimizer call runs inside `catch_unwind`:
    ///    a panic anywhere in enumeration is contained to this request —
    ///    its memo is quarantined (footprint released from the ledger and
    ///    tallied), the panic is counted, and only this caller sees
    ///    [`ServeError::Panicked`]. Deadline- or memory-pressured
    ///    requests degrade down the adaptive ladder instead of timing out
    ///    (the result's `memo.degradation` says why; degraded plans skip
    ///    the cache).
    pub fn optimize(&self, query: &Query) -> Result<ServeResult, ServeError> {
        let started = Instant::now();
        let request = self.requests.fetch_inc();
        let mut req_span = dpnext_obs::span("serve.request");
        let epoch = self.epoch();
        let shape = fingerprint_query(query);
        if req_span.is_recording() {
            req_span.tag_u64("request", request);
            req_span.tag_u64("shape_hash", FxBuildHasher::default().hash_one(&shape));
        }
        let key = CacheKey {
            epoch,
            shape: shape.clone(),
        };
        // Cache first: hits consume no optimizer resources, so a burst of
        // hits must never be turned away by the gate.
        let probe = {
            let _probe_span = dpnext_obs::span("serve.cache_probe");
            self.cache.lookup(&key)
        };
        if let Some(result) = probe {
            req_span.tag_str("outcome", "cache_hit");
            self.request_latency
                .observe(started.elapsed().as_nanos() as u64);
            return Ok(ServeResult {
                result,
                cache_hit: true,
                epoch,
            });
        }
        let waited = Instant::now();
        let admitted = {
            let _wait_span = dpnext_obs::span("serve.admission");
            self.gate.admit()
        };
        let _permit = match admitted {
            Ok(permit) => {
                self.queue_wait.observe(waited.elapsed().as_nanos() as u64);
                permit
            }
            Err(line) => {
                let retry_after_hint = self.retry_hint(line);
                req_span.tag_str("outcome", "overloaded");
                req_span.tag_u64("line", u64::from(line));
                self.request_latency
                    .observe(started.elapsed().as_nanos() as u64);
                return Err(ServeError::Overloaded { retry_after_hint });
            }
        };
        let decision = self.breaker.decide(&shape);
        let open_served = decision == BreakerDecision::Open;
        let fault = match &self.faults {
            Some(inj) => inj.fault_for(request),
            None => Fault::None,
        };
        let shed =
            !open_served && self.ledger.cap() != 0 && self.ledger.utilization() >= SHED_UTILIZATION;
        if shed {
            self.shed.inc();
        }
        let mut memo = self.pool.checkout();
        let svc_started = Instant::now();
        let mut opt_span = dpnext_obs::span("serve.optimize");
        if opt_span.is_recording() {
            opt_span.tag_str(
                "breaker",
                match decision {
                    BreakerDecision::Closed => "closed",
                    BreakerDecision::Open => "open",
                    BreakerDecision::Probe => "probe",
                },
            );
            opt_span.tag_u64("shed", u64::from(shed));
        }
        // The closure borrows the memo mutably; `AssertUnwindSafe` is
        // sound *because* of the quarantine below — on a panic the memo's
        // (possibly torn) state is destroyed, never observed again.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if fault == Fault::Panic {
                panic!("injected fault: optimizer panic (request {request})");
            }
            if open_served {
                // Breaker open: serve the greedy rung — the adaptive
                // ladder with a plan budget of 1 clamps to the greedy
                // floor, needs no clock or byte meter, and cannot fail
                // the way the shape has been failing.
                return self
                    .optimizer
                    .clone()
                    .algorithm(Algorithm::Adaptive)
                    .plan_budget(1)
                    .deadline(None)
                    .memory_budget(0)
                    .optimize_pooled(query, &mut memo);
            }
            if !shed && fault == Fault::None {
                return self.optimizer.optimize_pooled(query, &mut memo);
            }
            let mut opt = self.optimizer.clone();
            if shed {
                opt = self.shed_tighten(opt);
            }
            let inj = self.faults.as_ref();
            match fault {
                Fault::Slow => {
                    let delay = inj.expect("slow fault implies injector").slow_unit_delay();
                    opt = opt.fault_unit_delay(Some(delay));
                }
                Fault::MemoryPressure => {
                    let budget = inj
                        .expect("pressure fault implies injector")
                        .pressure_budget_bytes();
                    opt = opt.memory_budget(budget);
                }
                Fault::None | Fault::Panic => {}
            }
            opt.optimize_pooled(query, &mut memo)
        }));
        match outcome {
            Ok(optimized) => {
                let svc_nanos = svc_started.elapsed().as_nanos() as u64;
                let degradation = optimized.memo.degradation;
                let stats = &optimized.memo;
                self.service_time.observe(svc_nanos);
                self.plans_built.observe(stats.arena_plans);
                self.live_bytes_peak.observe(stats.live_bytes_peak);
                self.rungs[rung_index(stats.adaptive_mode)].inc();
                if opt_span.is_recording() {
                    opt_span.tag_str("outcome", "completed");
                    opt_span.tag_text("mode", stats.adaptive_mode.to_string());
                    opt_span.tag_text("degradation", degradation.to_string());
                }
                drop(opt_span);
                drop(memo); // park the arena before publishing
                if !open_served {
                    self.breaker.report(
                        &shape,
                        decision == BreakerDecision::Probe,
                        !degradation.resource_aborted(),
                    );
                }
                if req_span.is_recording() {
                    req_span.tag_str("outcome", "optimized");
                    req_span.tag_text("degradation", degradation.to_string());
                    req_span.tag_u64("plans_built", optimized.memo.arena_plans);
                    req_span.tag_u64("live_bytes_peak", optimized.memo.live_bytes_peak);
                }
                let result = Arc::new(optimized);
                if degradation.deadline_aborted {
                    self.deadline_degraded.inc();
                }
                if degradation.memory_aborted {
                    self.memory_degraded.inc();
                }
                if open_served || degradation.resource_aborted() {
                    // A degraded plan is valid but below full quality:
                    // keep it out of the cache so a later, uncontended
                    // arrival re-optimizes.
                } else {
                    self.cache.insert(key, result.clone());
                }
                self.request_latency
                    .observe(started.elapsed().as_nanos() as u64);
                Ok(ServeResult {
                    result,
                    cache_hit: false,
                    epoch,
                })
            }
            Err(payload) => {
                opt_span.tag_str("outcome", "panicked");
                drop(opt_span);
                memo.quarantine();
                self.panics.inc();
                if !open_served {
                    self.breaker
                        .report(&shape, decision == BreakerDecision::Probe, false);
                }
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                req_span.tag_str("outcome", "panicked");
                self.request_latency
                    .observe(started.elapsed().as_nanos() as u64);
                Err(ServeError::Panicked(msg))
            }
        }
    }

    /// Back-off suggestion for a rejected arrival: the p50 of measured
    /// service times multiplied by the gate's current line length (the
    /// expected drain time of everything ahead of a retry), clamped to
    /// [`RETRY_HINT_MIN`, `RETRY_HINT_MAX`]. Falls back to a fixed
    /// per-request estimate until the first completion is measured.
    fn retry_hint(&self, line: u32) -> Duration {
        let line = line.max(1);
        let snap = self.service_time.snapshot();
        if snap.count == 0 {
            return RETRY_HINT_FALLBACK_PER_REQUEST * line;
        }
        let nanos = u128::from(snap.quantile(0.5)) * u128::from(line);
        if nanos >= RETRY_HINT_MAX.as_nanos() {
            RETRY_HINT_MAX
        } else {
            Duration::from_nanos(nanos as u64).max(RETRY_HINT_MIN)
        }
    }

    /// Full pipeline from SQL text: parse, bind against the facade's
    /// catalog, then [`OptimizerService::optimize`]. Caching operates on
    /// the *bound* query, so differently spelled but identically bound
    /// texts share one entry.
    pub fn optimize_sql(&self, sql: &str) -> Result<ServeResult, ServeError> {
        self.optimize_sql_bound(sql).map(|(_, r)| r)
    }

    /// Like [`OptimizerService::optimize_sql`], additionally returning
    /// the bound query for callers that execute the plan.
    pub fn optimize_sql_bound(&self, sql: &str) -> Result<(BoundQuery, ServeResult), ServeError> {
        let bound = bind_sql(sql, self.optimizer.catalog())?;
        let result = self.optimize(&bound.query)?;
        Ok((bound, result))
    }

    /// Current counters across the request path, cache, pool and the
    /// governance layer (gate, ledger, breaker).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.get(),
            epoch: self.epoch(),
            cache: self.cache.stats(),
            pool: self.pool.stats(),
            panics: self.panics.get(),
            deadline_degraded: self.deadline_degraded.get(),
            memory_degraded: self.memory_degraded.get(),
            shed: self.shed.get(),
            gate: self.gate.stats(),
            ledger: self.ledger.stats(),
            breaker: self.breaker.stats(),
        }
    }

    /// The service's metrics registry. Every cell behind
    /// [`OptimizerService::stats`] is registered here, plus the latency /
    /// byte histograms that have no `ServiceStats` equivalent.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The registry rendered in Prometheus text exposition format — what
    /// `GET /metrics` on the scrape endpoint serves.
    pub fn metrics_text(&self) -> String {
        self.registry.snapshot().render_text()
    }

    /// Start the scrape endpoint on [`ServiceConfig::metrics_addr`].
    /// Returns `None` when no address was configured. The server owns one
    /// blocking thread and stops when the returned handle drops.
    pub fn serve_metrics(self: &Arc<Self>) -> Option<std::io::Result<MetricsServer>> {
        self.config
            .metrics_addr
            .map(|addr| MetricsServer::spawn(self.clone(), addr))
    }
}

impl ServiceStats {
    /// The stats as a flat JSON object — what `GET /stats.json` on the
    /// scrape endpoint serves.
    pub fn render_json(&self) -> String {
        format!(
            concat!(
                "{{\"requests\":{},\"epoch\":{},\"panics\":{},",
                "\"deadline_degraded\":{},\"memory_degraded\":{},\"shed\":{},",
                "\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{}}},",
                "\"pool\":{{\"created\":{},\"reused\":{},\"pooled\":{},\"pooled_peak\":{},",
                "\"arena_peak_capacity\":{},\"quarantined\":{},\"rejected_invalid\":{}}},",
                "\"gate\":{{\"admitted\":{},\"rejected\":{},\"queued_peak\":{}}},",
                "\"ledger\":{{\"bytes\":{},\"peak\":{},\"cap\":{},",
                "\"quarantined_bytes\":{}}},",
                "\"breaker\":{{\"trips\":{},\"reopens\":{},\"open_served\":{},",
                "\"probes\":{},\"closes\":{},\"open_shapes\":{}}}}}"
            ),
            self.requests,
            self.epoch,
            self.panics,
            self.deadline_degraded,
            self.memory_degraded,
            self.shed,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.entries,
            self.pool.created,
            self.pool.reused,
            self.pool.pooled,
            self.pool.pooled_peak,
            self.pool.arena_peak_capacity,
            self.pool.quarantined,
            self.pool.rejected_invalid,
            self.gate.admitted,
            self.gate.rejected,
            self.gate.queued_peak,
            self.ledger.bytes,
            self.ledger.peak,
            self.ledger.cap,
            self.ledger.quarantined_bytes,
            self.breaker.trips,
            self.breaker.reopens,
            self.breaker.open_served,
            self.breaker.probes,
            self.breaker.closes,
            self.breaker.open_shapes,
        )
    }
}
