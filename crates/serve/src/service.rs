//! The optimizer service: cache + pool wired around a shared [`Optimizer`].

use crate::cache::{CacheKey, CacheStats, PlanCache};
use crate::fault::{Fault, FaultInjector};
use crate::fingerprint::fingerprint_query;
use crate::pool::{MemoPool, PoolStats};
use dpnext::{Optimized, Optimizer};
use dpnext_query::Query;
use dpnext_sql::{plan as bind_sql, BoundQuery, SqlError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Capacity knobs of an [`OptimizerService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Total plans the cache may hold; 0 disables caching.
    pub cache_capacity: usize,
    /// Idle memos the arena pool may park; 0 disables pooling. Sizing it
    /// at the worker-thread count keeps steady-state serving free of
    /// arena allocation.
    pub pool_capacity: usize,
    /// Per-request wall-clock deadline. When set, every optimization runs
    /// through the adaptive degradation ladder (see
    /// [`Optimizer::deadline`]): a request that would blow the deadline
    /// *degrades* — exact → partial-exact → linearized → greedy — and
    /// still returns a structurally valid plan, with the degradation
    /// recorded in the result's `memo.degradation` and counted in
    /// [`ServiceStats::deadline_degraded`]. Deadline-degraded plans are
    /// not cached (a later uncontended request should get the full-quality
    /// plan). `None` (the default) leaves requests unconstrained and
    /// bit-identical to a service without the knob.
    pub deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 1024,
            pool_capacity: 32,
            deadline: None,
        }
    }
}

/// Why a service request failed. Structurally valid degraded plans are
/// *not* errors — the service's whole job is returning them instead.
#[derive(Debug)]
pub enum ServeError {
    /// The optimizer panicked. The panic was contained to this request:
    /// its memo was quarantined (never returned to the pool) and the
    /// service keeps serving. Carries the panic payload's message.
    Panicked(String),
    /// SQL parsing or binding failed.
    Sql(SqlError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Panicked(msg) => write!(f, "optimizer panicked: {msg}"),
            ServeError::Sql(e) => write!(f, "sql error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SqlError> for ServeError {
    fn from(e: SqlError) -> ServeError {
        ServeError::Sql(e)
    }
}

/// What one service request returns.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// The optimized plan — shared, since cache hits all return the same
    /// underlying result.
    pub result: Arc<Optimized>,
    /// Whether the plan came out of the cache (`false` = this request
    /// ran the optimizer).
    pub cache_hit: bool,
    /// The statistics epoch the plan belongs to.
    pub epoch: u64,
}

/// Point-in-time service counters ([`OptimizerService::stats`]).
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Requests accepted (`optimize` + `optimize_sql` calls).
    pub requests: u64,
    /// Current statistics epoch.
    pub epoch: u64,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Arena-pool counters.
    pub pool: PoolStats,
    /// Requests whose optimizer call panicked (isolated by
    /// `catch_unwind`, memo quarantined, error returned to that caller
    /// only — the service kept serving).
    pub panics: u64,
    /// Requests that hit their deadline and shipped a degraded (but
    /// valid) plan; such plans bypass the cache.
    pub deadline_degraded: u64,
}

/// A concurrent optimizer frontend: share one instance (behind an
/// [`Arc`]) between any number of threads; every method takes `&self`.
///
/// Each request is keyed by the canonical shape of its (bound) query
/// plus the current statistics epoch. Hits return the previously
/// optimized result; misses run the wrapped [`Optimizer`] inside a
/// pooled memo and publish the result for later arrivals of the same
/// shape. See the crate docs for the cache-key semantics and the epoch
/// invalidation caveat.
pub struct OptimizerService {
    optimizer: Optimizer,
    cache: PlanCache,
    pool: MemoPool,
    epoch: AtomicU64,
    requests: AtomicU64,
    panics: AtomicU64,
    deadline_degraded: AtomicU64,
    faults: Option<FaultInjector>,
}

impl OptimizerService {
    /// A service over `optimizer` with default capacities
    /// ([`ServiceConfig::default`]).
    pub fn new(optimizer: Optimizer) -> OptimizerService {
        OptimizerService::with_config(optimizer, ServiceConfig::default())
    }

    /// A service with explicit cache/pool capacities and an optional
    /// per-request deadline.
    pub fn with_config(optimizer: Optimizer, config: ServiceConfig) -> OptimizerService {
        let optimizer = match config.deadline {
            Some(d) => optimizer.deadline(Some(d)),
            None => optimizer,
        };
        OptimizerService {
            optimizer,
            cache: PlanCache::new(config.cache_capacity),
            pool: MemoPool::new(config.pool_capacity),
            epoch: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            deadline_degraded: AtomicU64::new(0),
            faults: None,
        }
    }

    /// Arm deterministic fault injection (see [`FaultInjector`]): each
    /// request consults the schedule by its request index and may run with
    /// an injected panic or an injected slow enumeration. For tests and
    /// the `robustness_smoke` CI binary; never arm this in production.
    pub fn with_fault_injection(mut self, faults: FaultInjector) -> OptimizerService {
        self.faults = Some(faults);
        self
    }

    /// The wrapped facade (e.g. to reach its catalog for binding).
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    /// The current statistics epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Declare the catalog statistics changed: moves every subsequent
    /// lookup to a fresh epoch, so the first arrival of each shape
    /// re-optimizes. Returns the new epoch. Entries of earlier epochs
    /// are unreachable and age out FIFO; they are deliberately not
    /// cleared (see [`CacheKey`]).
    pub fn bump_stats_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Optimize an already-bound [`Query`], serving from the cache when
    /// the shape was optimized before under the current epoch.
    ///
    /// The optimizer call runs inside `catch_unwind`: a panic anywhere in
    /// enumeration is contained to this request — its memo is quarantined
    /// (never returned to the pool), the panic is counted, and only this
    /// caller sees [`ServeError::Panicked`]; concurrent and subsequent
    /// requests are unaffected. With a configured deadline, a pressured
    /// request degrades down the adaptive ladder instead of timing out
    /// (the result's `memo.degradation` says why, and degraded plans skip
    /// the cache).
    pub fn optimize(&self, query: &Query) -> Result<ServeResult, ServeError> {
        let request = self.requests.fetch_add(1, Ordering::Relaxed);
        let epoch = self.epoch();
        let key = CacheKey {
            epoch,
            shape: fingerprint_query(query),
        };
        if let Some(result) = self.cache.lookup(&key) {
            return Ok(ServeResult {
                result,
                cache_hit: true,
                epoch,
            });
        }
        let fault = match &self.faults {
            Some(inj) => inj.fault_for(request),
            None => Fault::None,
        };
        let mut memo = self.pool.checkout();
        // The closure borrows the memo mutably; `AssertUnwindSafe` is
        // sound *because* of the quarantine below — on a panic the memo's
        // (possibly torn) state is destroyed, never observed again.
        let outcome = catch_unwind(AssertUnwindSafe(|| match fault {
            Fault::Panic => panic!("injected fault: optimizer panic (request {request})"),
            Fault::Slow => {
                let delay = self.faults.as_ref().expect("slow fault implies injector");
                self.optimizer
                    .clone()
                    .fault_unit_delay(Some(delay.slow_unit_delay()))
                    .optimize_pooled(query, &mut memo)
            }
            Fault::None => self.optimizer.optimize_pooled(query, &mut memo),
        }));
        match outcome {
            Ok(optimized) => {
                let degraded = optimized.memo.degradation.deadline_aborted;
                drop(memo); // park the arena before publishing
                let result = Arc::new(optimized);
                if degraded {
                    // A deadline-degraded plan is valid but below full
                    // quality: keep it out of the cache so a later,
                    // uncontended arrival re-optimizes.
                    self.deadline_degraded.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.cache.insert(key, result.clone());
                }
                Ok(ServeResult {
                    result,
                    cache_hit: false,
                    epoch,
                })
            }
            Err(payload) => {
                memo.quarantine();
                self.panics.fetch_add(1, Ordering::Relaxed);
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(ServeError::Panicked(msg))
            }
        }
    }

    /// Full pipeline from SQL text: parse, bind against the facade's
    /// catalog, then [`OptimizerService::optimize`]. Caching operates on
    /// the *bound* query, so differently spelled but identically bound
    /// texts share one entry.
    pub fn optimize_sql(&self, sql: &str) -> Result<ServeResult, ServeError> {
        self.optimize_sql_bound(sql).map(|(_, r)| r)
    }

    /// Like [`OptimizerService::optimize_sql`], additionally returning
    /// the bound query for callers that execute the plan.
    pub fn optimize_sql_bound(&self, sql: &str) -> Result<(BoundQuery, ServeResult), ServeError> {
        let bound = bind_sql(sql, self.optimizer.catalog())?;
        let result = self.optimize(&bound.query)?;
        Ok((bound, result))
    }

    /// Current counters across the request path, cache and pool.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            epoch: self.epoch(),
            cache: self.cache.stats(),
            pool: self.pool.stats(),
            panics: self.panics.load(Ordering::Relaxed),
            deadline_degraded: self.deadline_degraded.load(Ordering::Relaxed),
        }
    }
}
