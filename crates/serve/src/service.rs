//! The optimizer service: cache + pool wired around a shared [`Optimizer`].

use crate::cache::{CacheKey, CacheStats, PlanCache};
use crate::fingerprint::fingerprint_query;
use crate::pool::{MemoPool, PoolStats};
use dpnext::{Optimized, Optimizer};
use dpnext_query::Query;
use dpnext_sql::{plan as bind_sql, BoundQuery, SqlError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Capacity knobs of an [`OptimizerService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Total plans the cache may hold; 0 disables caching.
    pub cache_capacity: usize,
    /// Idle memos the arena pool may park; 0 disables pooling. Sizing it
    /// at the worker-thread count keeps steady-state serving free of
    /// arena allocation.
    pub pool_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 1024,
            pool_capacity: 32,
        }
    }
}

/// What one service request returns.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// The optimized plan — shared, since cache hits all return the same
    /// underlying result.
    pub result: Arc<Optimized>,
    /// Whether the plan came out of the cache (`false` = this request
    /// ran the optimizer).
    pub cache_hit: bool,
    /// The statistics epoch the plan belongs to.
    pub epoch: u64,
}

/// Point-in-time service counters ([`OptimizerService::stats`]).
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Requests accepted (`optimize` + `optimize_sql` calls).
    pub requests: u64,
    /// Current statistics epoch.
    pub epoch: u64,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Arena-pool counters.
    pub pool: PoolStats,
}

/// A concurrent optimizer frontend: share one instance (behind an
/// [`Arc`]) between any number of threads; every method takes `&self`.
///
/// Each request is keyed by the canonical shape of its (bound) query
/// plus the current statistics epoch. Hits return the previously
/// optimized result; misses run the wrapped [`Optimizer`] inside a
/// pooled memo and publish the result for later arrivals of the same
/// shape. See the crate docs for the cache-key semantics and the epoch
/// invalidation caveat.
pub struct OptimizerService {
    optimizer: Optimizer,
    cache: PlanCache,
    pool: MemoPool,
    epoch: AtomicU64,
    requests: AtomicU64,
}

impl OptimizerService {
    /// A service over `optimizer` with default capacities
    /// ([`ServiceConfig::default`]).
    pub fn new(optimizer: Optimizer) -> OptimizerService {
        OptimizerService::with_config(optimizer, ServiceConfig::default())
    }

    /// A service with explicit cache/pool capacities.
    pub fn with_config(optimizer: Optimizer, config: ServiceConfig) -> OptimizerService {
        OptimizerService {
            optimizer,
            cache: PlanCache::new(config.cache_capacity),
            pool: MemoPool::new(config.pool_capacity),
            epoch: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        }
    }

    /// The wrapped facade (e.g. to reach its catalog for binding).
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    /// The current statistics epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Declare the catalog statistics changed: moves every subsequent
    /// lookup to a fresh epoch, so the first arrival of each shape
    /// re-optimizes. Returns the new epoch. Entries of earlier epochs
    /// are unreachable and age out FIFO; they are deliberately not
    /// cleared (see [`CacheKey`]).
    pub fn bump_stats_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Optimize an already-bound [`Query`], serving from the cache when
    /// the shape was optimized before under the current epoch.
    pub fn optimize(&self, query: &Query) -> ServeResult {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let epoch = self.epoch();
        let key = CacheKey {
            epoch,
            shape: fingerprint_query(query),
        };
        if let Some(result) = self.cache.lookup(&key) {
            return ServeResult {
                result,
                cache_hit: true,
                epoch,
            };
        }
        let mut memo = self.pool.checkout();
        let optimized = self.optimizer.optimize_pooled(query, &mut memo);
        drop(memo); // park the arena before publishing
        let result = Arc::new(optimized);
        self.cache.insert(key, result.clone());
        ServeResult {
            result,
            cache_hit: false,
            epoch,
        }
    }

    /// Full pipeline from SQL text: parse, bind against the facade's
    /// catalog, then [`OptimizerService::optimize`]. Caching operates on
    /// the *bound* query, so differently spelled but identically bound
    /// texts share one entry.
    pub fn optimize_sql(&self, sql: &str) -> Result<ServeResult, SqlError> {
        self.optimize_sql_bound(sql).map(|(_, r)| r)
    }

    /// Like [`OptimizerService::optimize_sql`], additionally returning
    /// the bound query for callers that execute the plan.
    pub fn optimize_sql_bound(&self, sql: &str) -> Result<(BoundQuery, ServeResult), SqlError> {
        let bound = bind_sql(sql, self.optimizer.catalog())?;
        let result = self.optimize(&bound.query);
        Ok((bound, result))
    }

    /// Current counters across the request path, cache and pool.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            epoch: self.epoch(),
            cache: self.cache.stats(),
            pool: self.pool.stats(),
        }
    }
}
