//! Canonical query fingerprints: the exact, collision-free cache key.
//!
//! A [`Query`] is lowered to a flat word stream covering everything the
//! optimizer reads — table statistics, keys, operator tree, predicates,
//! selectivities and the grouping spec. Two queries get equal shapes iff
//! the optimizer cannot tell them apart, so a cache hit is always safe
//! to serve. Hashing of the stream (for the cache's shard map) uses the
//! in-tree fxhash via [`dpnext_core::FxHashMap`]; the stream itself is
//! kept in the key, so hash collisions degrade to map probes, never to
//! wrong plans.

use dpnext_algebra::{AggCall, Expr, JoinPred, Value};
use dpnext_query::{OpTree, Query};

/// The canonical shape of a query: an exact encoding of every
/// optimizer-visible detail, used as the plan-cache key.
///
/// Equality is exact (no hash truncation); `f64` statistics compare by
/// bit pattern, so `-0.0`/`0.0` and NaN payload differences are treated
/// as distinct — the conservative direction for a cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryShape {
    words: Box<[u64]>,
}

impl QueryShape {
    /// Length of the canonical encoding in 64-bit words (diagnostic;
    /// roughly proportional to query size).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the encoding is empty (never true for a real query).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Compute the [`QueryShape`] of a query.
///
/// Deterministic and pure: the same query value always yields the same
/// shape, on every thread.
///
/// ```
/// use dpnext_serve::fingerprint_query;
/// use dpnext_workload::{generate_query, GenConfig};
///
/// let a = generate_query(&GenConfig::paper(4), 7);
/// let b = generate_query(&GenConfig::paper(4), 7);
/// let c = generate_query(&GenConfig::paper(4), 8);
/// assert_eq!(fingerprint_query(&a), fingerprint_query(&b));
/// assert_ne!(fingerprint_query(&a), fingerprint_query(&c));
/// ```
pub fn fingerprint_query(query: &Query) -> QueryShape {
    let mut enc = Encoder {
        words: Vec::with_capacity(64),
    };
    enc.query(query);
    QueryShape {
        words: enc.words.into_boxed_slice(),
    }
}

struct Encoder {
    words: Vec<u64>,
}

impl Encoder {
    fn u(&mut self, v: u64) {
        self.words.push(v);
    }

    fn f(&mut self, v: f64) {
        self.u(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.u(u64::from_le_bytes(w));
        }
    }

    fn query(&mut self, q: &Query) {
        self.u(q.tables.len() as u64);
        for t in &q.tables {
            self.str(&t.alias);
            self.f(t.card);
            self.u(t.attrs.len() as u64);
            for (a, d) in t.attrs.iter().zip(&t.distinct) {
                self.u(a.0 as u64);
                self.f(*d);
            }
            self.u(t.keys.len() as u64);
            for key in &t.keys {
                self.u(key.len() as u64);
                for a in key {
                    self.u(a.0 as u64);
                }
            }
        }
        self.tree(&q.tree);
        match &q.grouping {
            None => self.u(0),
            Some(g) => {
                self.u(1);
                self.u(g.group_by.len() as u64);
                for a in &g.group_by {
                    self.u(a.0 as u64);
                }
                self.aggs(&g.aggs);
                self.u(g.post.len() as u64);
                for (out, e) in &g.post {
                    self.u(out.0 as u64);
                    self.expr(e);
                }
                self.u(g.output.len() as u64);
                for a in &g.output {
                    self.u(a.0 as u64);
                }
            }
        }
    }

    fn tree(&mut self, t: &OpTree) {
        match t {
            OpTree::Rel(i) => {
                self.u(0);
                self.u(*i as u64);
            }
            OpTree::Binary {
                op,
                pred,
                sel,
                gj_aggs,
                left,
                right,
            } => {
                self.u(1);
                self.u(*op as u64);
                self.pred(pred);
                self.f(*sel);
                self.aggs(gj_aggs);
                self.tree(left);
                self.tree(right);
            }
        }
    }

    fn pred(&mut self, p: &JoinPred) {
        self.u(p.terms.len() as u64);
        for (l, op, r) in &p.terms {
            self.u(l.0 as u64);
            self.u(*op as u64);
            self.u(r.0 as u64);
        }
    }

    fn aggs(&mut self, aggs: &[AggCall]) {
        self.u(aggs.len() as u64);
        for a in aggs {
            self.u(a.out.0 as u64);
            self.u(a.kind as u64);
            match &a.arg {
                None => self.u(0),
                Some(e) => {
                    self.u(1);
                    self.expr(e);
                }
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Attr(a) => {
                self.u(2);
                self.u(a.0 as u64);
            }
            Expr::Const(v) => {
                self.u(3);
                self.value(v);
            }
            Expr::Mul(l, r) => {
                self.u(4);
                self.expr(l);
                self.expr(r);
            }
            Expr::Add(l, r) => {
                self.u(5);
                self.expr(l);
                self.expr(r);
            }
            Expr::Div(l, r) => {
                self.u(6);
                self.expr(l);
                self.expr(r);
            }
            Expr::IfNull(a, t, f) => {
                self.u(7);
                self.u(a.0 as u64);
                self.expr(t);
                self.expr(f);
            }
        }
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u(0),
            Value::Int(i) => {
                self.u(1);
                self.u(*i as u64);
            }
            Value::Dec(d) => {
                self.u(2);
                self.u(*d as u64);
            }
            Value::Str(s) => {
                self.u(3);
                self.str(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnext_workload::{generate_query, GenConfig};

    #[test]
    fn distinct_seeds_distinct_shapes() {
        let shapes: Vec<_> = (0..20)
            .map(|s| fingerprint_query(&generate_query(&GenConfig::paper(5), s)))
            .collect();
        for i in 0..shapes.len() {
            for j in i + 1..shapes.len() {
                assert_ne!(shapes[i], shapes[j], "seeds {i} and {j} collide");
            }
        }
    }

    #[test]
    fn statistics_are_part_of_the_shape() {
        let q = generate_query(&GenConfig::paper(4), 3);
        let mut tweaked = q.clone();
        tweaked.tables[0].card *= 2.0;
        assert_ne!(fingerprint_query(&q), fingerprint_query(&tweaked));
    }
}
