//! The canonicalized plan cache: sharded, FIFO-evicting, counter-instrumented.

use crate::fingerprint::QueryShape;
use dpnext::Optimized;
use dpnext_core::{FxBuildHasher, FxHashMap};
use dpnext_obs::{Counter, Registry};
use std::collections::VecDeque;
use std::hash::{BuildHasher, Hash};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards (power of two). Lookups on
/// different shards never contend; a single hot shape contends only on
/// its own shard's mutex, held for one map probe.
const SHARDS: usize = 16;

/// The full cache key: the query's canonical shape plus the statistics
/// epoch it was optimized under.
///
/// Bumping the epoch (see
/// [`OptimizerService::bump_stats_epoch`](crate::OptimizerService::bump_stats_epoch))
/// changes every subsequent key, so stale plans are simply never looked
/// up again; they age out of the FIFO shards instead of being eagerly
/// cleared — a future incremental-repair layer can walk superseded
/// epochs and patch plans in place rather than re-optimizing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Statistics epoch the entry belongs to.
    pub epoch: u64,
    /// Canonical query shape (see [`crate::fingerprint_query`]).
    pub shape: QueryShape,
}

/// Point-in-time cache counters, all monotone except `entries`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached plan.
    pub hits: u64,
    /// Lookups that found nothing (the caller then optimizes + inserts).
    pub misses: u64,
    /// Entries dropped to keep the cache within capacity.
    pub evictions: u64,
    /// Entries currently resident across all shards.
    pub entries: u64,
}

struct Shard {
    map: FxHashMap<CacheKey, Arc<Optimized>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
}

/// A sharded map from [`CacheKey`] to optimized results.
///
/// `capacity` is the total entry budget, split evenly across the
/// shards; `0` disables the cache entirely (every lookup misses without
/// counting, every insert is dropped) — the knob the cold benchmark
/// cells use. Keys are exact encodings, so the cache can never return a
/// plan for a different query than the one asked.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    hasher: FxBuildHasher,
    // Registry-backed counter cells (PR 10): the same cells back
    // `CacheStats` and — once `register_metrics` has run — the service's
    // metrics registry, so the two can never disagree.
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (0 disables caching).
    pub fn new(capacity: usize) -> PlanCache {
        let shards = if capacity == 0 {
            Vec::new()
        } else {
            (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: FxHashMap::default(),
                        order: VecDeque::new(),
                    })
                })
                .collect()
        };
        PlanCache {
            shards,
            per_shard_cap: capacity.div_ceil(SHARDS).max(1),
            hasher: FxBuildHasher::default(),
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            evictions: Arc::new(Counter::new()),
        }
    }

    /// Expose this cache's counter cells in `registry` (under
    /// `dpnext_cache_*`). The registry snapshot and [`CacheStats`] read
    /// the same cells afterwards.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter(
            "dpnext_cache_hits_total",
            "Plan-cache lookups served from the cache.",
            &[],
            self.hits.clone(),
        );
        registry.register_counter(
            "dpnext_cache_misses_total",
            "Plan-cache lookups that found nothing.",
            &[],
            self.misses.clone(),
        );
        registry.register_counter(
            "dpnext_cache_evictions_total",
            "Plan-cache entries dropped to stay within capacity.",
            &[],
            self.evictions.clone(),
        );
    }

    /// Whether caching is enabled (a non-zero capacity was configured).
    pub fn enabled(&self) -> bool {
        !self.shards.is_empty()
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        let h = self.hasher.hash_one(key);
        &self.shards[(h as usize) & (SHARDS - 1)]
    }

    /// Look `key` up, counting a hit or a miss. Returns `None` without
    /// counting when the cache is disabled.
    pub fn lookup(&self, key: &CacheKey) -> Option<Arc<Optimized>> {
        if !self.enabled() {
            return None;
        }
        let shard = self.shard(key).lock().unwrap();
        match shard.map.get(key) {
            Some(v) => {
                let v = v.clone();
                drop(shard);
                self.hits.inc();
                Some(v)
            }
            None => {
                drop(shard);
                self.misses.inc();
                None
            }
        }
    }

    /// Insert `value` under `key`, evicting oldest-first if the shard is
    /// over budget. Re-inserting an existing key replaces the value
    /// without growing the FIFO. No-op when the cache is disabled.
    pub fn insert(&self, key: CacheKey, value: Arc<Optimized>) {
        if !self.enabled() {
            return;
        }
        let mut shard = self.shard(&key).lock().unwrap();
        if shard.map.insert(key.clone(), value).is_none() {
            shard.order.push_back(key);
        }
        let mut evicted = 0;
        while shard.map.len() > self.per_shard_cap {
            let oldest = shard.order.pop_front().expect("order tracks map");
            shard.map.remove(&oldest);
            evicted += 1;
        }
        drop(shard);
        if evicted > 0 {
            self.evictions.add(evicted);
        }
    }

    /// Current counters (entries is a point-in-time sum over shards).
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap().map.len() as u64)
            .sum();
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint_query;
    use dpnext_core::{optimize, Algorithm};
    use dpnext_workload::{generate_query, GenConfig};

    fn entry(seed: u64) -> (CacheKey, Arc<Optimized>) {
        let q = generate_query(&GenConfig::paper(3), seed);
        let key = CacheKey {
            epoch: 0,
            shape: fingerprint_query(&q),
        };
        (key, Arc::new(optimize(&q, Algorithm::EaPrune)))
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = PlanCache::new(64);
        let (key, val) = entry(1);
        assert!(cache.lookup(&key).is_none());
        cache.insert(key.clone(), val.clone());
        let hit = cache.lookup(&key).expect("inserted");
        assert!(Arc::ptr_eq(&hit, &val));
        let stats = cache.stats();
        assert_eq!((1, 1, 1), (stats.hits, stats.misses, stats.entries));
    }

    #[test]
    fn capacity_evicts_fifo() {
        let cache = PlanCache::new(1); // one entry per shard
        let mut keys = Vec::new();
        for seed in 0..40 {
            let (key, val) = entry(seed);
            cache.insert(key.clone(), val);
            keys.push(key);
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "40 inserts into 16 slots must evict");
        assert!(stats.entries <= SHARDS as u64);
    }

    #[test]
    fn disabled_cache_counts_nothing() {
        let cache = PlanCache::new(0);
        let (key, val) = entry(5);
        cache.insert(key.clone(), val);
        assert!(cache.lookup(&key).is_none());
        assert_eq!(CacheStats::default(), cache.stats());
    }
}
