//! Cardinality estimation for join operators and grouping.
//!
//! The model is the standard textbook one the paper's evaluation relies on:
//! base cardinalities and predicate selectivities are given (randomly
//! generated in §5, derived from key/FK statistics for TPC-H), join output
//! sizes multiply through selectivities, and grouping output sizes are
//! bounded by the product of the grouping attributes' distinct counts.

use dpnext_query::OpKind;

/// Probability that a tuple finds at least one partner on the other side,
/// based on the other side's **distinct join-attribute count** (not its
/// cardinality): duplicates and pre-aggregation on the other side do not
/// change whether a partner exists. Besides being semantically right,
/// this keeps every estimate *monotone in the input cardinalities*, which
/// the optimality proof of the dominance pruning (§4.6) relies on — with
/// a multiplicity-based probability, an antijoin's output would shrink
/// when its right input grows, breaking `|T1| ≤ |T2| ⇒ no worse later`.
#[inline]
pub fn match_probability(sel: f64, other_distinct: f64) -> f64 {
    if sel <= 0.0 {
        return 0.0; // avoid 0 · ∞ = NaN for unknown distinct counts
    }
    (sel * other_distinct).min(1.0)
}

/// Estimated output cardinality of `left op right` under `sel`.
/// `d_left`/`d_right` are the distinct counts of the join attributes on
/// each side (pass `f64::INFINITY` when unknown — every tuple then finds
/// a partner).
pub fn join_card(op: OpKind, lcard: f64, rcard: f64, sel: f64, d_left: f64, d_right: f64) -> f64 {
    let inner = lcard * rcard * sel;
    match op {
        OpKind::Join => inner,
        OpKind::LeftOuter => {
            let unmatched_l = lcard * (1.0 - match_probability(sel, d_right));
            inner + unmatched_l
        }
        OpKind::FullOuter => {
            let unmatched_l = lcard * (1.0 - match_probability(sel, d_right));
            let unmatched_r = rcard * (1.0 - match_probability(sel, d_left));
            inner + unmatched_l + unmatched_r
        }
        OpKind::Semi => lcard * match_probability(sel, d_right),
        OpKind::Anti => lcard * (1.0 - match_probability(sel, d_right)),
        // One output tuple per left tuple, by definition.
        OpKind::GroupJoin => lcard,
    }
}

/// Estimated number of groups of `Γ_G(e)`: the product of the grouping
/// attributes' distinct counts, capped by the input cardinality.
/// `distincts` are the per-attribute counts already capped by their own
/// relations.
pub fn grouping_card(input_card: f64, distincts: &[f64]) -> f64 {
    if distincts.is_empty() {
        // Γ_∅ produces a single (global) group for non-empty input.
        return input_card.min(1.0);
    }
    let mut groups = 1.0f64;
    for &d in distincts {
        groups *= d.max(1.0);
        if groups >= input_card {
            return input_card;
        }
    }
    groups.min(input_card)
}

/// Distinct count of an attribute within an intermediate result of
/// cardinality `card`: cannot exceed either the base distinct count or the
/// result size.
#[inline]
pub fn distinct_in(base_distinct: f64, card: f64) -> f64 {
    base_distinct.min(card).max(1.0)
}

/// The `C_out` cost function (§4.4): the sum of intermediate result sizes;
/// single-table scans are free. This helper returns the cost contribution
/// of one operator given its output cardinality.
#[inline]
pub fn cout_contribution(output_card: f64) -> f64 {
    output_card
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: f64 = f64::INFINITY;

    #[test]
    fn inner_join_multiplies() {
        assert_eq!(50.0, join_card(OpKind::Join, 10.0, 100.0, 0.05, D, D));
    }

    #[test]
    fn left_outer_at_least_left() {
        // With tiny distinct counts nearly every left tuple is unmatched.
        let c = join_card(OpKind::LeftOuter, 100.0, 10.0, 0.0001, D, 10.0);
        assert!(c >= 100.0 * 0.99, "c = {c}");
        // With guaranteed matches it equals the inner join.
        let c2 = join_card(OpKind::LeftOuter, 100.0, 10.0, 0.5, D, 10.0);
        assert_eq!(join_card(OpKind::Join, 100.0, 10.0, 0.5, D, D), c2);
    }

    #[test]
    fn full_outer_adds_both_sides() {
        let c = join_card(OpKind::FullOuter, 100.0, 200.0, 0.0, D, D);
        assert_eq!(300.0, c);
    }

    #[test]
    fn semi_anti_partition_left() {
        let semi = join_card(OpKind::Semi, 100.0, 50.0, 0.01, D, 50.0);
        let anti = join_card(OpKind::Anti, 100.0, 50.0, 0.01, D, 50.0);
        assert!((semi + anti - 100.0).abs() < 1e-9);
    }

    #[test]
    fn groupjoin_preserves_left() {
        assert_eq!(42.0, join_card(OpKind::GroupJoin, 42.0, 1000.0, 0.5, D, D));
    }

    #[test]
    fn estimates_are_monotone_in_input_cards() {
        // The dominance-pruning prerequisite: growing an input never
        // shrinks the estimate (distinct counts held fixed).
        for op in [
            OpKind::Join,
            OpKind::LeftOuter,
            OpKind::FullOuter,
            OpKind::Semi,
            OpKind::Anti,
            OpKind::GroupJoin,
        ] {
            let mut prev = 0.0f64;
            for r in [1.0, 10.0, 100.0, 1000.0] {
                let c = join_card(op, 50.0, r, 0.01, 40.0, 30.0);
                assert!(c + 1e-9 >= prev, "{op:?} not monotone in rcard");
                prev = c;
            }
            let mut prev = 0.0f64;
            for l in [1.0, 10.0, 100.0, 1000.0] {
                let c = join_card(op, l, 50.0, 0.01, 40.0, 30.0);
                assert!(c + 1e-9 >= prev, "{op:?} not monotone in lcard");
                prev = c;
            }
        }
    }

    #[test]
    fn grouping_card_caps() {
        assert_eq!(10.0, grouping_card(1000.0, &[10.0]));
        assert_eq!(100.0, grouping_card(1000.0, &[10.0, 10.0]));
        assert_eq!(1000.0, grouping_card(1000.0, &[100.0, 100.0]));
        assert_eq!(1.0, grouping_card(1000.0, &[]));
        assert_eq!(0.0, grouping_card(0.0, &[]));
    }

    #[test]
    fn distinct_capped_by_card() {
        assert_eq!(5.0, distinct_in(100.0, 5.0));
        assert_eq!(7.0, distinct_in(7.0, 100.0));
        assert_eq!(1.0, distinct_in(0.5, 0.2));
    }
}
