//! # dpnext-cost
//!
//! Cardinality estimation and the `C_out` cost function of §4.4: the cost
//! of a plan is the sum of the cardinalities of all intermediate results
//! (scans and final projections are free).

pub mod card;
pub mod perturb;

pub use card::{cout_contribution, distinct_in, grouping_card, join_card, match_probability};
pub use perturb::StatsPerturbation;
