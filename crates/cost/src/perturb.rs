//! Controlled q-error injection into a query's statistics.
//!
//! The robustness question "how far does misestimation push the chosen
//! plan from the true-cost optimum?" needs misestimation as a *dial*, not
//! an accident. [`StatsPerturbation`] multiplies every statistic of a
//! query — table cardinalities, per-attribute distinct counts, operator
//! selectivities — by an independent factor drawn log-uniformly from
//! `[1/q, q]`, the standard q-error model: `q = 1` is the identity
//! (bit-exact clone), `q = 2` means every estimate may be off by up to 2×
//! in either direction, and the expected multiplicative error grows with
//! `q`. The perturbation is **stats-only**: tables, attributes, operators
//! and predicates keep their identity and order, so a plan chosen under
//! the perturbed query can be re-costed under the true one
//! (`dpnext_core::recost_plan`) node by node.
//!
//! Draws come from a seeded SplitMix64 stream walked in a fixed order
//! (tables first, then a pre-order walk of the operator tree), so the same
//! `(seed, q)` on the same query always yields the same perturbed query.

use dpnext_query::{OpTree, Query};

/// Multiply one statistic by a log-uniform factor in `[1/q, q]`.
///
/// See the module docs; construct with [`StatsPerturbation::new`] and
/// apply with [`StatsPerturbation::perturb`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsPerturbation {
    /// Maximum multiplicative error per statistic (`>= 1`; `1` = identity).
    pub q: f64,
    /// Seed of the deterministic draw stream.
    pub seed: u64,
}

/// One SplitMix64 step: advance the state, return the output word.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StatsPerturbation {
    /// A perturbation of strength `q` (clamped up to 1) drawing from
    /// `seed`.
    pub fn new(q: f64, seed: u64) -> StatsPerturbation {
        StatsPerturbation {
            q: q.max(1.0),
            seed,
        }
    }

    /// The next factor of the draw stream: `q^(2u-1)` for uniform `u`,
    /// i.e. log-uniform in `[1/q, q]`. `q <= 1` always yields exactly 1.
    fn factor(&self, state: &mut u64) -> f64 {
        let word = splitmix64(state);
        if self.q <= 1.0 {
            return 1.0;
        }
        // 53 mantissa bits -> uniform in [0, 1).
        let u = (word >> 11) as f64 / (1u64 << 53) as f64;
        self.q.powf(2.0 * u - 1.0)
    }

    /// A stats-only perturbed clone of `query`: every table cardinality,
    /// distinct count and operator selectivity is multiplied by its own
    /// factor. Cardinalities stay `>= 1`, distinct counts stay in
    /// `[1, card]`, selectivities stay in `(0, 1]`; structure (tables,
    /// attributes, operators, predicates, grouping) is untouched.
    pub fn perturb(&self, query: &Query) -> Query {
        let mut out = query.clone();
        let mut state = self.seed;
        for t in &mut out.tables {
            t.card = (t.card * self.factor(&mut state)).max(1.0);
            for d in &mut t.distinct {
                *d = (*d * self.factor(&mut state)).clamp(1.0, t.card);
            }
        }
        perturb_tree(self, &mut out.tree, &mut state);
        out
    }
}

/// Pre-order walk perturbing every binary operator's selectivity.
fn perturb_tree(p: &StatsPerturbation, tree: &mut OpTree, state: &mut u64) {
    if let OpTree::Binary {
        sel, left, right, ..
    } = tree
    {
        *sel = (*sel * p.factor(state)).clamp(f64::MIN_POSITIVE, 1.0);
        perturb_tree(p, left, state);
        perturb_tree(p, right, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnext_algebra::{AttrId, JoinPred};
    use dpnext_query::{OpKind, QueryTable};

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn query() -> Query {
        let t0 = QueryTable::new("r", vec![a(0), a(1)], 1000.0).with_distinct(vec![1000.0, 50.0]);
        let t1 = QueryTable::new("s", vec![a(2)], 200.0);
        let tree = OpTree::binary(
            OpKind::Join,
            JoinPred::eq(a(1), a(2)),
            OpTree::rel(0),
            OpTree::rel(1),
        );
        Query::new(vec![t0, t1], tree, None)
    }

    fn sel_of(q: &Query) -> f64 {
        match &q.tree {
            OpTree::Binary { sel, .. } => *sel,
            _ => unreachable!(),
        }
    }

    #[test]
    fn q1_is_the_identity() {
        let q = query();
        let p = StatsPerturbation::new(1.0, 7).perturb(&q);
        assert_eq!(q.tables[0].card.to_bits(), p.tables[0].card.to_bits());
        assert_eq!(
            q.tables[0].distinct[1].to_bits(),
            p.tables[0].distinct[1].to_bits()
        );
        assert_eq!(sel_of(&q).to_bits(), sel_of(&p).to_bits());
    }

    #[test]
    fn factors_stay_within_q_and_draws_are_deterministic() {
        let q = query();
        let pert = StatsPerturbation::new(4.0, 42);
        let p1 = pert.perturb(&q);
        let p2 = pert.perturb(&q);
        assert_eq!(p1.tables[0].card.to_bits(), p2.tables[0].card.to_bits());
        assert_eq!(sel_of(&p1).to_bits(), sel_of(&p2).to_bits());
        for (t, tp) in q.tables.iter().zip(&p1.tables) {
            let ratio = tp.card / t.card;
            assert!((0.25..=4.0).contains(&ratio), "card ratio {ratio}");
            for (d, dp) in t.distinct.iter().zip(&tp.distinct) {
                assert!(*dp >= 1.0 && *dp <= tp.card, "distinct {dp} vs {d}");
            }
        }
        let sratio = sel_of(&p1) / sel_of(&q);
        assert!((0.25..=4.0).contains(&sratio), "sel ratio {sratio}");
    }

    #[test]
    fn different_seeds_differ() {
        let q = query();
        let p1 = StatsPerturbation::new(2.0, 1).perturb(&q);
        let p2 = StatsPerturbation::new(2.0, 2).perturb(&q);
        assert_ne!(p1.tables[0].card.to_bits(), p2.tables[0].card.to_bits());
    }

    #[test]
    fn structure_is_untouched() {
        let q = query();
        let p = StatsPerturbation::new(4.0, 3).perturb(&q);
        assert_eq!(q.tables.len(), p.tables.len());
        assert_eq!(q.tables[0].alias, p.tables[0].alias);
        assert_eq!(q.tables[0].attrs, p.tables[0].attrs);
    }
}
