//! Random query generation following §5: "we first generated random
//! binary trees using the unranking procedure proposed by Liebehenschel.
//! Next, we randomly attached join operators to the internal nodes and
//! relations to the leaves. Then, the attributes for equality join
//! predicates and grouping are randomly selected. Finally, random
//! cardinalities and selectivities are generated."

use crate::unrank::{tree_count, unrank_tree, TreeShape};
use dpnext_algebra::{AggCall, AggKind, AttrGen, AttrId, Expr, JoinPred};
use dpnext_query::{GroupSpec, OpKind, OpTree, Query, QueryTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative weights for drawing the operator of an internal node.
#[derive(Debug, Clone, Copy)]
pub struct OpWeights {
    pub join: u32,
    pub left_outer: u32,
    pub full_outer: u32,
    pub semi: u32,
    pub anti: u32,
    pub groupjoin: u32,
}

impl OpWeights {
    /// Inner joins only.
    pub fn inner_only() -> Self {
        OpWeights {
            join: 1,
            left_outer: 0,
            full_outer: 0,
            semi: 0,
            anti: 0,
            groupjoin: 0,
        }
    }

    /// The default mix: mostly inner joins with a sprinkling of the
    /// non-inner operators whose reordering the paper enables.
    pub fn mixed() -> Self {
        OpWeights {
            join: 6,
            left_outer: 2,
            full_outer: 1,
            semi: 1,
            anti: 1,
            groupjoin: 0,
        }
    }

    /// Mix including groupjoins (Eqvs. 39–41).
    pub fn with_groupjoins() -> Self {
        OpWeights {
            join: 5,
            left_outer: 2,
            full_outer: 1,
            semi: 1,
            anti: 1,
            groupjoin: 2,
        }
    }

    fn draw(&self, rng: &mut StdRng) -> OpKind {
        let total =
            self.join + self.left_outer + self.full_outer + self.semi + self.anti + self.groupjoin;
        assert!(total > 0, "all operator weights are zero");
        let mut x = rng.gen_range(0..total);
        for (w, op) in [
            (self.join, OpKind::Join),
            (self.left_outer, OpKind::LeftOuter),
            (self.full_outer, OpKind::FullOuter),
            (self.semi, OpKind::Semi),
            (self.anti, OpKind::Anti),
            (self.groupjoin, OpKind::GroupJoin),
        ] {
            if x < w {
                return op;
            }
            x -= w;
        }
        unreachable!()
    }
}

/// Configuration for the random query generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    pub n_relations: usize,
    pub ops: OpWeights,
    /// Cardinalities are drawn log-uniformly from this range.
    pub card_range: (f64, f64),
    /// Attributes per relation (min, max).
    pub attrs_per_rel: (usize, usize),
    /// Number of aggregate functions in the select clause (min, max).
    pub n_aggs: (usize, usize),
    /// Probability that a relation declares its first attribute as key.
    pub key_probability: f64,
    /// Probability that each visible attribute joins the group-by list.
    pub group_attr_probability: f64,
    /// Generate a grouping at all (pure join-ordering queries otherwise).
    pub with_grouping: bool,
    /// Allow `avg` / `distinct` aggregates (they constrain pushability).
    pub exotic_aggs: bool,
}

impl GenConfig {
    /// The paper's evaluation setting for `n` relations.
    pub fn paper(n_relations: usize) -> Self {
        GenConfig {
            n_relations,
            ops: OpWeights::mixed(),
            card_range: (10.0, 100_000.0),
            attrs_per_rel: (2, 3),
            n_aggs: (1, 3),
            key_probability: 0.5,
            group_attr_probability: 0.25,
            with_grouping: true,
            exotic_aggs: false,
        }
    }

    /// Tiny cardinalities for executor-backed correctness tests.
    pub fn oracle(n_relations: usize) -> Self {
        GenConfig {
            card_range: (2.0, 8.0),
            exotic_aggs: true,
            ..GenConfig::paper(n_relations)
        }
    }
}

/// Generate a random query. Deterministic in `(config, seed)`.
pub fn generate_query(config: &GenConfig, seed: u64) -> Query {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.n_relations;
    assert!(n >= 1);

    // 1. Random tree shape by unranking a uniform rank.
    let rank = rng.gen_range(0..tree_count(n));
    let shape = unrank_tree(n, rank);

    // 2. Tables with random cardinalities, distinct counts and keys.
    let mut gen = AttrGen::new(0);
    let mut tables = Vec::with_capacity(n);
    for i in 0..n {
        let n_attrs = rng.gen_range(config.attrs_per_rel.0..=config.attrs_per_rel.1);
        let attrs: Vec<AttrId> = (0..n_attrs).map(|_| gen.fresh()).collect();
        let card = log_uniform(&mut rng, config.card_range);
        let distinct: Vec<f64> = (0..n_attrs)
            .map(|k| {
                if k == 0 {
                    card // potential key column
                } else {
                    // At least ~sqrt(card) distinct values: grouping
                    // compresses, but not degenerately (keeps the cost
                    // ratios in the paper's regime).
                    log_uniform(&mut rng, (card.sqrt().max(2.0), card.max(2.0)))
                }
            })
            .collect();
        let mut t = QueryTable::new(format!("r{i}"), attrs.clone(), card).with_distinct(distinct);
        if rng.gen_bool(config.key_probability) {
            t = t.with_key(vec![attrs[0]]);
        }
        tables.push(t);
    }

    // 3. Operators, predicates and selectivities, bottom-up; leaves get
    //    relations in left-to-right order.
    let mut next_leaf = 0usize;
    let tree = build(
        &shape,
        &mut next_leaf,
        &tables,
        &config.ops,
        &mut gen,
        &mut rng,
    );

    // 4. Grouping attributes and aggregates over visible attributes.
    // Groupjoin outputs are *not* used as grouping attributes or aggregate
    // arguments here: the generator keeps the top grouping expressible over
    // base attributes so the canonical plan stays the reference. (The
    // groupjoin outputs still flow to the final projection implicitly.)
    let grouping = config.with_grouping.then(|| {
        let table_attrs = |i: usize| tables[i].attrs.clone();
        let visible: Vec<AttrId> = tree
            .visible_attrs(&table_attrs)
            .into_iter()
            .filter(|a| tables.iter().any(|t| t.has_attr(*a)))
            .collect();
        let mut group_by: Vec<AttrId> = visible
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(config.group_attr_probability))
            .collect();
        if group_by.is_empty() {
            group_by.push(visible[rng.gen_range(0..visible.len())]);
        }
        let n_aggs = rng.gen_range(config.n_aggs.0..=config.n_aggs.1);
        let aggs = (0..n_aggs)
            .map(|_| random_agg(&mut rng, &visible, &mut gen, config.exotic_aggs))
            .collect();
        GroupSpec::new(group_by, aggs, &mut gen)
    });

    Query::new(tables, tree, grouping)
}

fn log_uniform(rng: &mut StdRng, (lo, hi): (f64, f64)) -> f64 {
    if hi <= lo {
        return lo;
    }
    (rng.gen_range(lo.ln()..=hi.ln())).exp().round().max(1.0)
}

fn random_agg(rng: &mut StdRng, visible: &[AttrId], gen: &mut AttrGen, exotic: bool) -> AggCall {
    let out = gen.fresh();
    let kinds: &[AggKind] = if exotic {
        &[
            AggKind::CountStar,
            AggKind::Count,
            AggKind::Sum,
            AggKind::Min,
            AggKind::Max,
            AggKind::Avg,
            AggKind::CountDistinct,
            AggKind::SumDistinct,
        ]
    } else {
        &[
            AggKind::CountStar,
            AggKind::Count,
            AggKind::Sum,
            AggKind::Min,
            AggKind::Max,
        ]
    };
    let kind = kinds[rng.gen_range(0..kinds.len())];
    if kind == AggKind::CountStar {
        AggCall::count_star(out)
    } else {
        let arg = visible[rng.gen_range(0..visible.len())];
        AggCall::new(out, kind, Expr::attr(arg))
    }
}

fn build(
    shape: &TreeShape,
    next_leaf: &mut usize,
    tables: &[QueryTable],
    ops: &OpWeights,
    gen: &mut AttrGen,
    rng: &mut StdRng,
) -> OpTree {
    match shape {
        TreeShape::Leaf => {
            let i = *next_leaf;
            *next_leaf += 1;
            OpTree::rel(i)
        }
        TreeShape::Node(l, r) => {
            let left = build(l, next_leaf, tables, ops, gen, rng);
            let right = build(r, next_leaf, tables, ops, gen, rng);
            let op = ops.draw(rng);
            // Pick equality-join attributes from each side's visible set.
            let table_attrs = |i: usize| tables[i].attrs.clone();
            let lvis = left.visible_attrs(&table_attrs);
            let rvis = right.visible_attrs(&table_attrs);
            let la = lvis[rng.gen_range(0..lvis.len())];
            let ra = rvis[rng.gen_range(0..rvis.len())];
            // Random selectivity anchored at the textbook equi-join
            // estimate 1/max(d_l, d_r), jittered log-uniformly: join sizes
            // stay in a realistic regime while still varying per query.
            let d = distinct_of(tables, la)
                .max(distinct_of(tables, ra))
                .max(1.0);
            let sel = (log_uniform_raw(rng, 0.25, 4.0) / d).min(1.0);
            if op == OpKind::GroupJoin {
                // The groupjoin aggregates right-side attributes; its
                // outputs become visible to the rest of the query.
                let arg = rvis[rng.gen_range(0..rvis.len())];
                let kinds = [
                    AggKind::CountStar,
                    AggKind::Sum,
                    AggKind::Min,
                    AggKind::Count,
                ];
                let kind = kinds[rng.gen_range(0..kinds.len())];
                let out = gen.fresh();
                let call = if kind == AggKind::CountStar {
                    AggCall::count_star(out)
                } else {
                    AggCall::new(out, kind, Expr::attr(arg))
                };
                OpTree::groupjoin(JoinPred::eq(la, ra), vec![call], left, right).with_sel(sel)
            } else {
                OpTree::binary_sel(op, JoinPred::eq(la, ra), sel, left, right)
            }
        }
    }
}

fn log_uniform_raw(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    (rng.gen_range(lo.ln()..=hi.ln())).exp()
}

fn distinct_of(tables: &[QueryTable], attr: AttrId) -> f64 {
    tables
        .iter()
        .find(|t| t.has_attr(attr))
        .map(|t| t.distinct_of(attr))
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::paper(6);
        let q1 = generate_query(&cfg, 42);
        let q2 = generate_query(&cfg, 42);
        assert_eq!(q1.table_count(), q2.table_count());
        assert_eq!(format!("{:?}", q1.tree), format!("{:?}", q2.tree));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::paper(8);
        let q1 = generate_query(&cfg, 1);
        let q2 = generate_query(&cfg, 2);
        assert_ne!(format!("{:?}", q1.tree), format!("{:?}", q2.tree));
    }

    #[test]
    fn queries_validate_across_seeds() {
        // Query::new validates; just construct many.
        let cfg = GenConfig::paper(7);
        for seed in 0..50 {
            let q = generate_query(&cfg, seed);
            assert_eq!(7, q.table_count());
            assert!(q.grouping.is_some());
        }
    }

    #[test]
    fn inner_only_config() {
        let mut cfg = GenConfig::paper(5);
        cfg.ops = OpWeights::inner_only();
        for seed in 0..20 {
            let q = generate_query(&cfg, seed);
            q.tree.visit_ops(&mut |n| {
                if let OpTree::Binary { op, .. } = n {
                    assert_eq!(OpKind::Join, *op);
                }
            });
        }
    }

    #[test]
    fn oracle_config_has_small_tables() {
        let q = generate_query(&GenConfig::oracle(4), 9);
        for t in &q.tables {
            assert!(t.card <= 8.0);
        }
    }

    #[test]
    fn single_relation_query() {
        let q = generate_query(&GenConfig::paper(1), 3);
        assert_eq!(1, q.table_count());
    }
}
