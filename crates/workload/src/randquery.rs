//! Random query generation following §5: "we first generated random
//! binary trees using the unranking procedure proposed by Liebehenschel.
//! Next, we randomly attached join operators to the internal nodes and
//! relations to the leaves. Then, the attributes for equality join
//! predicates and grouping are randomly selected. Finally, random
//! cardinalities and selectivities are generated."

use crate::unrank::{tree_count, unrank_tree, TreeShape};
use dpnext_algebra::{AggCall, AggKind, AttrGen, AttrId, CmpOp, Expr, JoinPred};
use dpnext_query::{GroupSpec, OpKind, OpTree, Query, QueryTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative weights for drawing the operator of an internal node.
#[derive(Debug, Clone, Copy)]
pub struct OpWeights {
    pub join: u32,
    pub left_outer: u32,
    pub full_outer: u32,
    pub semi: u32,
    pub anti: u32,
    pub groupjoin: u32,
}

impl OpWeights {
    /// Inner joins only.
    pub fn inner_only() -> Self {
        OpWeights {
            join: 1,
            left_outer: 0,
            full_outer: 0,
            semi: 0,
            anti: 0,
            groupjoin: 0,
        }
    }

    /// The default mix: mostly inner joins with a sprinkling of the
    /// non-inner operators whose reordering the paper enables.
    pub fn mixed() -> Self {
        OpWeights {
            join: 6,
            left_outer: 2,
            full_outer: 1,
            semi: 1,
            anti: 1,
            groupjoin: 0,
        }
    }

    /// Mix including groupjoins (Eqvs. 39–41).
    pub fn with_groupjoins() -> Self {
        OpWeights {
            join: 5,
            left_outer: 2,
            full_outer: 1,
            semi: 1,
            anti: 1,
            groupjoin: 2,
        }
    }

    fn draw(&self, rng: &mut StdRng) -> OpKind {
        let total =
            self.join + self.left_outer + self.full_outer + self.semi + self.anti + self.groupjoin;
        assert!(total > 0, "all operator weights are zero");
        let mut x = rng.gen_range(0..total);
        for (w, op) in [
            (self.join, OpKind::Join),
            (self.left_outer, OpKind::LeftOuter),
            (self.full_outer, OpKind::FullOuter),
            (self.semi, OpKind::Semi),
            (self.anti, OpKind::Anti),
            (self.groupjoin, OpKind::GroupJoin),
        ] {
            if x < w {
                return op;
            }
            x -= w;
        }
        unreachable!()
    }
}

/// Shape of the generated query graph. [`Topology::Paper`] reproduces the
/// paper's §5 methodology (random binary trees by unranking, predicates
/// between random visible attributes); the explicit topologies build
/// left-deep trees with controlled predicate anchors and scale to the
/// large-`n` regime (up to the engine's 64-relation `NodeSet` cap; the
/// adaptive subsystem's tests and bench cells use n up to 50) where the
/// unranking counts would overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Random binary tree by Liebehenschel unranking (the §5 default).
    #[default]
    Paper,
    /// Path graph `r0 – r1 – … – r(n-1)`: each relation joined to its
    /// predecessor. The benign large-`n` shape (`#ccp` is `O(n³)`).
    Chain,
    /// Star graph with hub `r0`: every other relation joined to the hub.
    /// The expressible worst case for enumeration — `#ccp` is
    /// `(n-1)·2^(n-2)`, hopeless for exact DP from ~20 relations.
    Star,
    /// Every pair of relations carries a join predicate. Extra predicates
    /// are conjoined into the operator where both sides first meet, so the
    /// inner operators become hyperedges `({r0..rk-1}, {rk})`; operators
    /// are forced to inner joins (a conjunct spanning many relations has
    /// no outer-join reading here).
    Clique,
    /// Per-seed random draw: chain, star, or a random-attachment tree
    /// (each relation joined to a uniformly random earlier one).
    Mixed,
}

/// Configuration for the random query generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    pub n_relations: usize,
    /// Query-graph shape; see [`Topology`].
    pub topology: Topology,
    pub ops: OpWeights,
    /// Cardinalities are drawn log-uniformly from this range.
    pub card_range: (f64, f64),
    /// Attributes per relation (min, max).
    pub attrs_per_rel: (usize, usize),
    /// Number of aggregate functions in the select clause (min, max).
    pub n_aggs: (usize, usize),
    /// Probability that a relation declares its first attribute as key.
    pub key_probability: f64,
    /// Probability that each visible attribute joins the group-by list.
    pub group_attr_probability: f64,
    /// Generate a grouping at all (pure join-ordering queries otherwise).
    pub with_grouping: bool,
    /// Allow `avg` / `distinct` aggregates (they constrain pushability).
    pub exotic_aggs: bool,
}

impl GenConfig {
    /// The paper's evaluation setting for `n` relations.
    pub fn paper(n_relations: usize) -> Self {
        GenConfig {
            n_relations,
            topology: Topology::Paper,
            ops: OpWeights::mixed(),
            card_range: (10.0, 100_000.0),
            attrs_per_rel: (2, 3),
            n_aggs: (1, 3),
            key_probability: 0.5,
            group_attr_probability: 0.25,
            with_grouping: true,
            exotic_aggs: false,
        }
    }

    /// Tiny cardinalities for executor-backed correctness tests.
    pub fn oracle(n_relations: usize) -> Self {
        GenConfig {
            card_range: (2.0, 8.0),
            exotic_aggs: true,
            ..GenConfig::paper(n_relations)
        }
    }

    /// The paper setting with an explicit query-graph [`Topology`] — the
    /// configuration the large-query (adaptive) tests and bench cells
    /// sweep at n up to 50.
    pub fn topology(n_relations: usize, topology: Topology) -> Self {
        GenConfig {
            topology,
            ..GenConfig::paper(n_relations)
        }
    }
}

/// Generate a random query. Deterministic in `(config, seed)`.
pub fn generate_query(config: &GenConfig, seed: u64) -> Query {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.n_relations;
    assert!(n >= 1);

    // 1. (Paper topology) Random tree shape by unranking a uniform rank —
    //    drawn before the tables so existing seeds stay bit-identical.
    let shape = (config.topology == Topology::Paper).then(|| {
        let rank = rng.gen_range(0..tree_count(n));
        unrank_tree(n, rank)
    });

    // 2. Tables with random cardinalities, distinct counts and keys.
    let mut gen = AttrGen::new(0);
    let mut tables = Vec::with_capacity(n);
    for i in 0..n {
        let n_attrs = rng.gen_range(config.attrs_per_rel.0..=config.attrs_per_rel.1);
        let attrs: Vec<AttrId> = (0..n_attrs).map(|_| gen.fresh()).collect();
        let card = log_uniform(&mut rng, config.card_range);
        let distinct: Vec<f64> = (0..n_attrs)
            .map(|k| {
                if k == 0 {
                    card // potential key column
                } else {
                    // At least ~sqrt(card) distinct values: grouping
                    // compresses, but not degenerately (keeps the cost
                    // ratios in the paper's regime).
                    log_uniform(&mut rng, (card.sqrt().max(2.0), card.max(2.0)))
                }
            })
            .collect();
        let mut t = QueryTable::new(format!("r{i}"), attrs.clone(), card).with_distinct(distinct);
        if rng.gen_bool(config.key_probability) {
            t = t.with_key(vec![attrs[0]]);
        }
        tables.push(t);
    }

    // 3. Operators, predicates and selectivities, bottom-up; leaves get
    //    relations in left-to-right order. Explicit topologies build a
    //    left-deep tree with controlled predicate anchors instead.
    let tree = match &shape {
        Some(shape) => {
            let mut next_leaf = 0usize;
            build(
                shape,
                &mut next_leaf,
                &tables,
                &config.ops,
                &mut gen,
                &mut rng,
            )
        }
        None => build_topology(config, &tables, &mut gen, &mut rng),
    };

    // 4. Grouping attributes and aggregates over visible attributes.
    // Groupjoin outputs are *not* used as grouping attributes or aggregate
    // arguments here: the generator keeps the top grouping expressible over
    // base attributes so the canonical plan stays the reference. (The
    // groupjoin outputs still flow to the final projection implicitly.)
    let grouping = config.with_grouping.then(|| {
        let table_attrs = |i: usize| tables[i].attrs.clone();
        let visible: Vec<AttrId> = tree
            .visible_attrs(&table_attrs)
            .into_iter()
            .filter(|a| tables.iter().any(|t| t.has_attr(*a)))
            .collect();
        let mut group_by: Vec<AttrId> = visible
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(config.group_attr_probability))
            .collect();
        if group_by.is_empty() {
            group_by.push(visible[rng.gen_range(0..visible.len())]);
        }
        let n_aggs = rng.gen_range(config.n_aggs.0..=config.n_aggs.1);
        let aggs = (0..n_aggs)
            .map(|_| random_agg(&mut rng, &visible, &mut gen, config.exotic_aggs))
            .collect();
        GroupSpec::new(group_by, aggs, &mut gen)
    });

    Query::new(tables, tree, grouping)
}

fn log_uniform(rng: &mut StdRng, (lo, hi): (f64, f64)) -> f64 {
    if hi <= lo {
        return lo;
    }
    (rng.gen_range(lo.ln()..=hi.ln())).exp().round().max(1.0)
}

fn random_agg(rng: &mut StdRng, visible: &[AttrId], gen: &mut AttrGen, exotic: bool) -> AggCall {
    let out = gen.fresh();
    let kinds: &[AggKind] = if exotic {
        &[
            AggKind::CountStar,
            AggKind::Count,
            AggKind::Sum,
            AggKind::Min,
            AggKind::Max,
            AggKind::Avg,
            AggKind::CountDistinct,
            AggKind::SumDistinct,
        ]
    } else {
        &[
            AggKind::CountStar,
            AggKind::Count,
            AggKind::Sum,
            AggKind::Min,
            AggKind::Max,
        ]
    };
    let kind = kinds[rng.gen_range(0..kinds.len())];
    if kind == AggKind::CountStar {
        AggCall::count_star(out)
    } else {
        let arg = visible[rng.gen_range(0..visible.len())];
        AggCall::new(out, kind, Expr::attr(arg))
    }
}

fn build(
    shape: &TreeShape,
    next_leaf: &mut usize,
    tables: &[QueryTable],
    ops: &OpWeights,
    gen: &mut AttrGen,
    rng: &mut StdRng,
) -> OpTree {
    match shape {
        TreeShape::Leaf => {
            let i = *next_leaf;
            *next_leaf += 1;
            OpTree::rel(i)
        }
        TreeShape::Node(l, r) => {
            let left = build(l, next_leaf, tables, ops, gen, rng);
            let right = build(r, next_leaf, tables, ops, gen, rng);
            let op = ops.draw(rng);
            // Pick equality-join attributes from each side's visible set.
            let table_attrs = |i: usize| tables[i].attrs.clone();
            let lvis = left.visible_attrs(&table_attrs);
            let rvis = right.visible_attrs(&table_attrs);
            let la = lvis[rng.gen_range(0..lvis.len())];
            let ra = rvis[rng.gen_range(0..rvis.len())];
            // Random selectivity anchored at the textbook equi-join
            // estimate 1/max(d_l, d_r), jittered log-uniformly: join sizes
            // stay in a realistic regime while still varying per query.
            let d = distinct_of(tables, la)
                .max(distinct_of(tables, ra))
                .max(1.0);
            let sel = (log_uniform_raw(rng, 0.25, 4.0) / d).min(1.0);
            if op == OpKind::GroupJoin {
                // The groupjoin aggregates right-side attributes; its
                // outputs become visible to the rest of the query.
                let arg = rvis[rng.gen_range(0..rvis.len())];
                let kinds = [
                    AggKind::CountStar,
                    AggKind::Sum,
                    AggKind::Min,
                    AggKind::Count,
                ];
                let kind = kinds[rng.gen_range(0..kinds.len())];
                let out = gen.fresh();
                let call = if kind == AggKind::CountStar {
                    AggCall::count_star(out)
                } else {
                    AggCall::new(out, kind, Expr::attr(arg))
                };
                OpTree::groupjoin(JoinPred::eq(la, ra), vec![call], left, right).with_sel(sel)
            } else {
                OpTree::binary_sel(op, JoinPred::eq(la, ra), sel, left, right)
            }
        }
    }
}

/// How the explicit topologies anchor the predicate of step `k` (the node
/// merging relation `k` into the left-deep spine).
#[derive(Clone, Copy)]
enum Anchor {
    /// To the previous relation `k-1` (chain).
    Prev,
    /// To the hub relation `0` (star).
    Hub,
    /// To a uniformly random earlier relation (random-attachment tree).
    Random,
    /// To every earlier relation (clique: one conjunct term per pair).
    All,
}

/// Left-deep construction for the explicit topologies: step `k` joins the
/// spine over `{r0..r(k-1)}` with `rk`, anchored per [`Topology`]. The
/// operator of each step is drawn from `config.ops` (clique steps force
/// inner joins — a conjunct spanning many relations has no outer-join
/// reading); semi/anti/groupjoin steps hide their right relation's
/// attributes, and later anchors fall back to the nearest still-visible
/// earlier relation.
fn build_topology(
    config: &GenConfig,
    tables: &[QueryTable],
    gen: &mut AttrGen,
    rng: &mut StdRng,
) -> OpTree {
    let n = tables.len();
    if n == 1 {
        return OpTree::rel(0);
    }
    let anchor = match config.topology {
        Topology::Chain => Anchor::Prev,
        Topology::Star => Anchor::Hub,
        Topology::Clique => Anchor::All,
        // One coherent shape per query: resolve the mixture up front.
        Topology::Mixed => [Anchor::Prev, Anchor::Hub, Anchor::Random][rng.gen_range(0..3usize)],
        Topology::Paper => unreachable!("paper shapes go through the unranking path"),
    };
    // Attributes of each relation still visible on the spine (semi, anti
    // and groupjoin steps project their right input away).
    let mut vis: Vec<&[AttrId]> = tables.iter().map(|t| t.attrs.as_slice()).collect();
    let term_sel = |rng: &mut StdRng, la: AttrId, ra: AttrId| {
        let d = distinct_of(tables, la)
            .max(distinct_of(tables, ra))
            .max(1.0);
        (log_uniform_raw(rng, 0.25, 4.0) / d).min(1.0)
    };
    let mut acc = OpTree::rel(0);
    for k in 1..n {
        let rattrs = &tables[k].attrs;
        let ra = rattrs[rng.gen_range(0..rattrs.len())];
        let (op, pred, sel) = if matches!(anchor, Anchor::All) {
            // Clique: one equality term per earlier relation, conjoined
            // into this step's predicate; selectivities multiply.
            let mut pred = JoinPred::default();
            let mut sel = 1.0f64;
            for jvis in vis.iter().take(k) {
                let la = jvis[rng.gen_range(0..jvis.len())];
                let ra = rattrs[rng.gen_range(0..rattrs.len())];
                sel *= term_sel(rng, la, ra);
                pred = pred.and(la, CmpOp::Eq, ra);
            }
            (OpKind::Join, pred, sel)
        } else {
            let j = match anchor {
                Anchor::Prev => k - 1,
                Anchor::Hub => 0,
                Anchor::Random => rng.gen_range(0..k),
                Anchor::All => unreachable!(),
            };
            // Fall back to the nearest earlier relation whose attributes
            // are still visible (r0 always is: it is never a right input).
            let j = if vis[j].is_empty() {
                (0..k).rev().find(|&i| !vis[i].is_empty()).unwrap()
            } else {
                j
            };
            let la = vis[j][rng.gen_range(0..vis[j].len())];
            let sel = term_sel(rng, la, ra);
            (config.ops.draw(rng), JoinPred::eq(la, ra), sel)
        };
        acc = if op == OpKind::GroupJoin {
            let arg = rattrs[rng.gen_range(0..rattrs.len())];
            let kinds = [
                AggKind::CountStar,
                AggKind::Sum,
                AggKind::Min,
                AggKind::Count,
            ];
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let out = gen.fresh();
            let call = if kind == AggKind::CountStar {
                AggCall::count_star(out)
            } else {
                AggCall::new(out, kind, Expr::attr(arg))
            };
            OpTree::groupjoin(pred, vec![call], acc, OpTree::rel(k)).with_sel(sel)
        } else {
            OpTree::binary_sel(op, pred, sel, acc, OpTree::rel(k))
        };
        if matches!(op, OpKind::Semi | OpKind::Anti | OpKind::GroupJoin) {
            vis[k] = &[];
        }
    }
    acc
}

fn log_uniform_raw(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    (rng.gen_range(lo.ln()..=hi.ln())).exp()
}

fn distinct_of(tables: &[QueryTable], attr: AttrId) -> f64 {
    tables
        .iter()
        .find(|t| t.has_attr(attr))
        .map(|t| t.distinct_of(attr))
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::paper(6);
        let q1 = generate_query(&cfg, 42);
        let q2 = generate_query(&cfg, 42);
        assert_eq!(q1.table_count(), q2.table_count());
        assert_eq!(format!("{:?}", q1.tree), format!("{:?}", q2.tree));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::paper(8);
        let q1 = generate_query(&cfg, 1);
        let q2 = generate_query(&cfg, 2);
        assert_ne!(format!("{:?}", q1.tree), format!("{:?}", q2.tree));
    }

    #[test]
    fn queries_validate_across_seeds() {
        // Query::new validates; just construct many.
        let cfg = GenConfig::paper(7);
        for seed in 0..50 {
            let q = generate_query(&cfg, seed);
            assert_eq!(7, q.table_count());
            assert!(q.grouping.is_some());
        }
    }

    #[test]
    fn inner_only_config() {
        let mut cfg = GenConfig::paper(5);
        cfg.ops = OpWeights::inner_only();
        for seed in 0..20 {
            let q = generate_query(&cfg, seed);
            q.tree.visit_ops(&mut |n| {
                if let OpTree::Binary { op, .. } = n {
                    assert_eq!(OpKind::Join, *op);
                }
            });
        }
    }

    #[test]
    fn oracle_config_has_small_tables() {
        let q = generate_query(&GenConfig::oracle(4), 9);
        for t in &q.tables {
            assert!(t.card <= 8.0);
        }
    }

    #[test]
    fn single_relation_query() {
        let q = generate_query(&GenConfig::paper(1), 3);
        assert_eq!(1, q.table_count());
    }

    /// The relations each join predicate connects, as (min side, max side)
    /// sets of table indices.
    fn predicate_links(q: &Query) -> Vec<(Vec<usize>, Vec<usize>)> {
        let origin = |attrs: Vec<AttrId>| -> Vec<usize> {
            let mut t: Vec<usize> = attrs
                .iter()
                .flat_map(|a| (0..q.table_count()).filter(|&i| q.tables[i].has_attr(*a)))
                .collect();
            t.sort_unstable();
            t.dedup();
            t
        };
        let mut out = Vec::new();
        q.tree.visit_ops(&mut |n| {
            if let OpTree::Binary { pred, .. } = n {
                out.push((origin(pred.left_attrs()), origin(pred.right_attrs())));
            }
        });
        out
    }

    #[test]
    fn chain_topology_links_successive_relations() {
        let cfg = GenConfig::topology(12, Topology::Chain);
        let mut cfg = cfg;
        cfg.ops = OpWeights::inner_only(); // nothing hidden: pure chain
        for seed in 0..10 {
            let q = generate_query(&cfg, seed);
            let mut links = predicate_links(&q);
            links.sort();
            let want: Vec<_> = (1..12).map(|k| (vec![k - 1], vec![k])).collect();
            assert_eq!(want, links);
        }
    }

    #[test]
    fn star_topology_links_every_relation_to_the_hub() {
        let mut cfg = GenConfig::topology(20, Topology::Star);
        cfg.ops = OpWeights::inner_only();
        let q = generate_query(&cfg, 7);
        for (l, r) in predicate_links(&q) {
            assert_eq!(vec![0], l);
            assert_eq!(1, r.len());
        }
    }

    #[test]
    fn clique_topology_joins_every_pair() {
        let cfg = GenConfig::topology(9, Topology::Clique);
        let q = generate_query(&cfg, 3);
        // Step k carries one term per earlier relation: all pairs covered.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (ls, rs) in predicate_links(&q) {
            let &k = rs.first().unwrap();
            for &j in &ls {
                pairs.push((j, k));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(9 * 8 / 2, pairs.len());
    }

    #[test]
    fn large_n_topologies_generate_and_validate() {
        // The unranking path would overflow here; the explicit topologies
        // must not (Query::new validates on construction).
        for topo in [
            Topology::Chain,
            Topology::Star,
            Topology::Clique,
            Topology::Mixed,
        ] {
            let q = generate_query(&GenConfig::topology(50, topo), 11);
            assert_eq!(50, q.table_count());
        }
    }

    #[test]
    fn mixed_topology_is_deterministic_per_seed() {
        let cfg = GenConfig::topology(14, Topology::Mixed);
        let q1 = generate_query(&cfg, 5);
        let q2 = generate_query(&cfg, 5);
        assert_eq!(format!("{:?}", q1.tree), format!("{:?}", q2.tree));
    }

    #[test]
    fn paper_topology_unchanged_by_the_knob() {
        // Topology::Paper is the default: seeds must keep producing the
        // exact trees the parity goldens were recorded against.
        let q1 = generate_query(&GenConfig::paper(6), 42);
        let q2 = generate_query(&GenConfig::topology(6, Topology::Paper), 42);
        assert_eq!(format!("{:?}", q1.tree), format!("{:?}", q2.tree));
    }
}
