//! q-error workload pairs: the same generated query with true and
//! perturbed statistics, the input of the plan-drift robustness cells.

use crate::randquery::{generate_query, GenConfig};
use dpnext_cost::StatsPerturbation;
use dpnext_query::Query;

/// Generate the `(true, perturbed)` query pair for one robustness trial:
/// the true query comes from [`generate_query`] (deterministic in
/// `(config, seed)`), the perturbed one multiplies every statistic by an
/// independent log-uniform factor in `[1/q, q]` via [`StatsPerturbation`]
/// (deterministic in `(config, seed, q)`). The pair is structurally
/// identical — same tables, operators and attribute ids — so a plan
/// chosen under the perturbed stats can be re-costed under the true ones
/// (`dpnext_core::recost_plan`). With `q <= 1` both queries are
/// bit-identical.
pub fn perturbed_pair(config: &GenConfig, seed: u64, q: f64) -> (Query, Query) {
    let truth = generate_query(config, seed);
    // Decorrelate the perturbation stream from the generator stream
    // without losing determinism.
    let perturbed = StatsPerturbation::new(q, seed ^ Q_ERROR_STREAM).perturb(&truth);
    (truth, perturbed)
}

/// Seed-stream separator for [`perturbed_pair`]: the perturbation draws
/// must not replay the generator's own random stream.
const Q_ERROR_STREAM: u64 = 0x9E2B_5F0A_71C3_D84D;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randquery::Topology;

    #[test]
    fn pair_is_structurally_identical_and_deterministic() {
        let cfg = GenConfig::topology(8, Topology::Chain);
        let (t1, p1) = perturbed_pair(&cfg, 3, 2.0);
        let (t2, p2) = perturbed_pair(&cfg, 3, 2.0);
        assert_eq!(t1.tables.len(), p1.tables.len());
        for (a, b) in t1.tables.iter().zip(&p1.tables) {
            assert_eq!(a.alias, b.alias);
            assert_eq!(a.attrs, b.attrs);
        }
        assert_eq!(
            p1.tables[0].card.to_bits(),
            p2.tables[0].card.to_bits(),
            "perturbation must be deterministic"
        );
        assert_eq!(t1.tables[0].card.to_bits(), t2.tables[0].card.to_bits());
    }

    #[test]
    fn q1_pair_is_bit_identical() {
        let cfg = GenConfig::topology(6, Topology::Star);
        let (t, p) = perturbed_pair(&cfg, 9, 1.0);
        for (a, b) in t.tables.iter().zip(&p.tables) {
            assert_eq!(a.card.to_bits(), b.card.to_bits());
        }
    }
}
