//! Deterministic request mixes for serving-layer benchmarks: a pool of
//! distinct query *shapes* plus a skewed arrival schedule over them.
//!
//! A serving benchmark needs two knobs a plain query generator does not
//! have: how many distinct shapes the traffic contains, and how strongly
//! arrivals repeat the hot shapes. Both are fixed by the seed — the same
//! `(MixConfig, requests, seed)` triple always produces bit-identical
//! queries in the same order, so a plan cache keyed on the query shape
//! sees an exactly reproducible hit/miss sequence.

use crate::randquery::{generate_query, GenConfig};
use dpnext_query::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape-pool configuration of a request mix.
#[derive(Debug, Clone)]
pub struct MixConfig {
    /// Distinct query shapes in the pool (1 = every request identical).
    pub shapes: usize,
    /// Relation counts cycle through `n_min..=n_max` across the pool.
    pub n_min: usize,
    /// See [`MixConfig::n_min`].
    pub n_max: usize,
    /// Probability that a request re-draws the *hot* shape (shape 0)
    /// instead of a uniform pool member: `0.0` is uniform traffic,
    /// `1.0` hammers a single shape.
    pub hot_fraction: f64,
}

impl MixConfig {
    /// Uniform traffic over `shapes` distinct shapes of `n` relations.
    pub fn uniform(shapes: usize, n: usize) -> MixConfig {
        MixConfig {
            shapes,
            n_min: n,
            n_max: n,
            hot_fraction: 0.0,
        }
    }

    /// Cache-friendly traffic: 90% of requests hit one hot shape, the
    /// rest spread uniformly over the pool.
    pub fn hot(shapes: usize, n: usize) -> MixConfig {
        MixConfig {
            hot_fraction: 0.9,
            ..MixConfig::uniform(shapes, n)
        }
    }
}

/// A materialized request mix: the shape pool and the arrival schedule.
#[derive(Debug, Clone)]
pub struct RequestMix {
    shapes: Vec<Query>,
    schedule: Vec<usize>,
}

impl RequestMix {
    /// The distinct query shapes, indexed by the values in
    /// [`RequestMix::schedule`].
    pub fn shapes(&self) -> &[Query] {
        &self.shapes
    }

    /// Shape index of each request, in arrival order.
    pub fn schedule(&self) -> &[usize] {
        &self.schedule
    }

    /// Iterate the requests as `(shape index, query)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Query)> + '_ {
        self.schedule.iter().map(|&s| (s, &self.shapes[s]))
    }

    /// Number of requests in the schedule.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }
}

/// Generate `requests` arrivals over a pool described by `cfg`.
///
/// Shape `i` is the paper-methodology query
/// ([`GenConfig::paper`]) for `n_min + (i mod span)` relations with a
/// per-shape seed derived from `seed`, so distinct shapes differ in
/// both structure and statistics while repeated draws of one shape are
/// bit-identical.
pub fn request_mix(cfg: &MixConfig, requests: usize, seed: u64) -> RequestMix {
    assert!(cfg.shapes > 0, "a request mix needs at least one shape");
    assert!(
        cfg.n_min >= 2 && cfg.n_max >= cfg.n_min,
        "relation counts must satisfy 2 <= n_min <= n_max"
    );
    let span = cfg.n_max - cfg.n_min + 1;
    let shapes: Vec<Query> = (0..cfg.shapes)
        .map(|i| {
            let n = cfg.n_min + (i % span);
            // The bench sweep's per-cell schedule, reused so shape pools
            // and sweep queries stay disjoint across unrelated seeds.
            let shape_seed = seed
                .wrapping_add((n as u64).wrapping_mul(1_000_003))
                .wrapping_add((i as u64).wrapping_mul(7_919));
            generate_query(&GenConfig::paper(n), shape_seed)
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5eed_5eed_5eed);
    let schedule = (0..requests)
        .map(|_| {
            if cfg.shapes == 1 {
                return 0;
            }
            if rng.gen_range(0.0..1.0) < cfg.hot_fraction {
                0
            } else {
                rng.gen_range(0..cfg.shapes)
            }
        })
        .collect();
    RequestMix { shapes, schedule }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_shape_stable() {
        let cfg = MixConfig::hot(4, 4);
        let a = request_mix(&cfg, 64, 7);
        let b = request_mix(&cfg, 64, 7);
        assert_eq!(a.schedule(), b.schedule());
        assert_eq!(a.shapes().len(), 4);
        for (qa, qb) in a.shapes().iter().zip(b.shapes()) {
            assert_eq!(qa.table_count(), qb.table_count());
        }
    }

    #[test]
    fn hot_fraction_skews_schedule() {
        let mix = request_mix(&MixConfig::hot(8, 3), 400, 11);
        let hot = mix.schedule().iter().filter(|&&s| s == 0).count();
        // 90% hot + 1/8 of the uniform remainder; allow generous slack.
        assert!(hot > 300, "hot shape drawn only {hot}/400 times");
        assert!(mix.schedule().iter().any(|&s| s != 0));
    }

    #[test]
    fn uniform_covers_pool() {
        let mix = request_mix(&MixConfig::uniform(5, 3), 200, 3);
        for s in 0..5 {
            assert!(mix.schedule().contains(&s), "shape {s} never drawn");
        }
    }
}
