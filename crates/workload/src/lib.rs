//! # dpnext-workload
//!
//! Workload generation for the evaluation of §5: uniformly random operator
//! trees (via lexicographic Dyck-word unranking, Liebehenschel \[5\]) with
//! random operators, predicates, cardinalities and selectivities; small
//! synthetic databases for executor-backed correctness checks; and the
//! paper's TPC-H queries (Ex, Q3, Q5, Q10).

pub mod datagen;
pub mod fig11;
pub mod perturbed;
pub mod randquery;
pub mod requestmix;
pub mod tpch_queries;
pub mod unrank;

pub use datagen::generate_data;
pub use fig11::{fig11_database, fig11_query};
pub use perturbed::perturbed_pair;
pub use randquery::{generate_query, GenConfig, OpWeights, Topology};
pub use requestmix::{request_mix, MixConfig, RequestMix};
pub use tpch_queries::{ex_query, q10, q3, q5, table2_queries, TpchQuery};
pub use unrank::{catalan, tree_count, unrank_tree, TreeShape};
