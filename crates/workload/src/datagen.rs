//! Synthetic data for generated queries: small relations whose value
//! distributions match the query's statistics closely enough that joins
//! neither die out nor explode. Used by the executor-backed correctness
//! oracle.

use dpnext_algebra::{Database, Relation, Value};
use dpnext_query::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a database for all table occurrences of a query.
///
/// * key attributes get sequential values (duplicate-free, as declared),
/// * other attributes draw uniformly from `0..distinct` and are NULL with
///   probability `null_prob` (exercising the three-valued semantics of the
///   outerjoin equivalences),
/// * cardinalities are capped at `max_rows`.
pub fn generate_data(query: &Query, max_rows: usize, null_prob: f64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for t in &query.tables {
        let n = (t.card as usize).clamp(1, max_rows);
        let key_attrs: Vec<_> = t.keys.iter().flatten().copied().collect();
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(n);
        for row in 0..n {
            let mut vals = Vec::with_capacity(t.attrs.len());
            for (i, &a) in t.attrs.iter().enumerate() {
                if key_attrs.contains(&a) {
                    vals.push(Value::Int(row as i64));
                } else if null_prob > 0.0 && rng.gen_bool(null_prob) {
                    vals.push(Value::Null);
                } else {
                    let d = (t.distinct[i] as i64).max(1);
                    vals.push(Value::Int(rng.gen_range(0..d)));
                }
            }
            rows.push(vals);
        }
        db.insert(t.alias.clone(), Relation::from_rows(t.attrs.clone(), rows));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randquery::{generate_query, GenConfig};

    #[test]
    fn data_matches_schema() {
        let q = generate_query(&GenConfig::oracle(4), 11);
        let db = generate_data(&q, 10, 0.1, 7);
        for t in &q.tables {
            let rel = db.get(&t.alias).expect("relation generated");
            assert!(!rel.is_empty() && rel.len() <= 10);
            assert_eq!(t.attrs.len(), rel.schema().len());
        }
    }

    #[test]
    fn key_columns_are_unique() {
        let q = generate_query(&GenConfig::oracle(3), 5);
        let db = generate_data(&q, 8, 0.2, 9);
        for t in &q.tables {
            let rel = db.get(&t.alias).unwrap();
            for key in &t.keys {
                let proj = dpnext_algebra::ops::project(rel, key, false);
                assert!(proj.is_duplicate_free(), "key not unique in {}", t.alias);
            }
        }
    }

    #[test]
    fn deterministic() {
        let q = generate_query(&GenConfig::oracle(3), 5);
        let a = generate_data(&q, 8, 0.2, 9);
        let b = generate_data(&q, 8, 0.2, 9);
        for t in &q.tables {
            assert!(a.get(&t.alias).unwrap().bag_eq(b.get(&t.alias).unwrap()));
        }
    }

    #[test]
    fn canonical_plan_runs_on_generated_data() {
        for seed in 0..10 {
            let q = generate_query(&GenConfig::oracle(4), seed);
            let db = generate_data(&q, 8, 0.15, seed);
            let res = q.canonical_plan().eval(&db);
            let _ = res.len(); // must not panic
        }
    }
}
