//! The running example of §4.4 (Fig. 11 / Table 1): a three-relation
//! query whose eager-aggregation plan violates Bellman's principle of
//! optimality, with the exact relation instances printed in the paper.

use dpnext_algebra::{AggCall, AttrGen, AttrId, Database, JoinPred, Relation};
use dpnext_query::{GroupSpec, OpKind, OpTree, Query, QueryTable};

/// Attribute ids for the example: R0(a, b), R1(c, d), R2(e, f).
pub const A: AttrId = AttrId(0);
pub const B: AttrId = AttrId(1);
pub const C: AttrId = AttrId(2);
pub const D: AttrId = AttrId(3);
pub const E: AttrId = AttrId(4);
pub const F: AttrId = AttrId(5);
/// Output of the `count(*)` aggregate (`d''` in the paper).
pub const DCOUNT: AttrId = AttrId(6);

/// The example query:
/// `Γ_{R1.d; d'' : count(*)}(R0 ⋈_{R0.a = R2.f} (R1 ⋈_{R1.d = R2.e} R2))`.
pub fn fig11_query() -> Query {
    let r0 = QueryTable::new("R0", vec![A, B], 4.0)
        .with_distinct(vec![4.0, 2.0])
        .with_key(vec![A]);
    let r1 = QueryTable::new("R1", vec![C, D], 5.0)
        .with_distinct(vec![5.0, 3.0])
        .with_key(vec![C]);
    let r2 = QueryTable::new("R2", vec![E, F], 4.0)
        .with_distinct(vec![4.0, 4.0])
        .with_key(vec![E]);
    let tree = OpTree::binary_sel(
        OpKind::Join,
        JoinPred::eq(A, F),
        0.25,
        OpTree::rel(0),
        OpTree::binary_sel(
            OpKind::Join,
            JoinPred::eq(D, E),
            0.2,
            OpTree::rel(1),
            OpTree::rel(2),
        ),
    );
    let mut gen = AttrGen::new(100);
    let spec = GroupSpec::new(vec![D], vec![AggCall::count_star(DCOUNT)], &mut gen);
    Query::new(vec![r0, r1, r2], tree, Some(spec))
}

/// The exact relation instances of Fig. 11.
pub fn fig11_database() -> Database {
    let mut db = Database::new();
    db.insert(
        "R0",
        Relation::from_ints(
            vec![A, B],
            &[
                &[Some(0), Some(0)],
                &[Some(1), Some(0)],
                &[Some(2), Some(1)],
                &[Some(3), Some(1)],
            ],
        ),
    );
    db.insert(
        "R1",
        Relation::from_ints(
            vec![C, D],
            &[
                &[Some(0), Some(1)],
                &[Some(1), Some(0)],
                &[Some(2), Some(1)],
                &[Some(3), Some(1)],
                &[Some(4), Some(4)],
            ],
        ),
    );
    db.insert(
        "R2",
        Relation::from_ints(
            vec![E, F],
            &[
                &[Some(0), Some(0)],
                &[Some(1), Some(1)],
                &[Some(2), Some(3)],
                &[Some(3), Some(4)],
            ],
        ),
    );
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_result_matches_paper() {
        // Γ_{R1.d; d'' : count(*)}: the paper's result is {(1, 3), (0, 1)}.
        let q = fig11_query();
        let db = fig11_database();
        let res = q.canonical_plan().eval(&db);
        let expect =
            Relation::from_ints(vec![D, DCOUNT], &[&[Some(1), Some(3)], &[Some(0), Some(1)]]);
        assert!(res.bag_eq(&expect), "got {res}");
    }

    #[test]
    fn intermediate_cardinalities_match_paper() {
        let db = fig11_database();
        let r1 = db.get("R1").unwrap();
        let r2 = db.get("R2").unwrap();
        let r0 = db.get("R0").unwrap();
        let r12 = dpnext_algebra::ops::inner_join(r1, r2, &JoinPred::eq(D, E));
        assert_eq!(4, r12.len()); // |R1,2| = 4
        let r012 = dpnext_algebra::ops::inner_join(r0, &r12, &JoinPred::eq(A, F));
        assert_eq!(4, r012.len()); // |R0,1,2| = 4
    }
}
