//! The paper's TPC-H workload: the introductory query *Ex* and queries
//! Q3, Q5 and Q10 (Table 2), built against SF-1 statistics.
//!
//! Following the paper ("query statistics were taken from a scale factor
//! 1 instance of TPC-H"), raw SF-1 base-table statistics are used —
//! selections are *not* folded into the cardinalities. (Folding the date/
//! segment selectivities shrinks the per-customer/per-order group sizes to
//! ≤ 1 and erases the eager-aggregation gain on Q3/Q10; with raw stats the
//! relative costs reproduce Table 2's shape.)
//! `sum(l_extendedprice * (1 - l_discount))` is modeled as
//! `sum(l_extendedprice)` — the aggregate's shape (duplicate sensitive,
//! decomposable) is what matters for plan generation.

use dpnext_algebra::{AggCall, AggKind, AttrId, Database, Expr, JoinPred};
use dpnext_catalog::{generate_database, tpch_catalog, Catalog};
use dpnext_query::{GroupSpec, OpKind, OpTree, Query};
use std::collections::HashMap;

/// A TPC-H query plus the occurrence metadata needed to generate data.
pub struct TpchQuery {
    pub name: &'static str,
    pub query: Query,
    /// `(tpch table, alias, column mapping)` per occurrence.
    pub occurrences: Vec<(&'static str, String, HashMap<String, AttrId>)>,
}

impl TpchQuery {
    /// Generate a scaled database for this query's occurrences.
    pub fn database(&self, scale: f64, seed: u64) -> Database {
        let occs: Vec<_> = self
            .occurrences
            .iter()
            .enumerate()
            .map(|(i, (t, _, m))| (*t, &self.query.tables[i], m))
            .collect();
        generate_database(scale, seed, &occs)
    }
}

struct Builder {
    catalog: Catalog,
    tables: Vec<dpnext_query::QueryTable>,
    occurrences: Vec<(&'static str, String, HashMap<String, AttrId>)>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            catalog: tpch_catalog(),
            tables: Vec::new(),
            occurrences: Vec::new(),
        }
    }

    /// Instantiate `rel` under `alias`, scaling its cardinality by the
    /// folded selection selectivity.
    fn table(&mut self, rel: &'static str, alias: &str, selection: f64) -> usize {
        let (mut t, m) = self.catalog.instantiate(rel, alias);
        t.card *= selection;
        let idx = self.tables.len();
        self.tables.push(t);
        self.occurrences.push((rel, alias.to_string(), m));
        idx
    }

    fn attr(&self, occ: usize, col: &str) -> AttrId {
        self.occurrences[occ].2[col]
    }

    fn finish(
        self,
        name: &'static str,
        tree: OpTree,
        group_by: Vec<AttrId>,
        aggs: Vec<AggCall>,
    ) -> TpchQuery {
        let mut gen = self.catalog.attr_gen();
        // Skip past occurrence attributes (instantiate used the catalog's
        // allocator, which attr_gen() already accounts for).
        let spec = GroupSpec::new(group_by, aggs, &mut gen);
        TpchQuery {
            name,
            query: Query::new(self.tables, tree, Some(spec)),
            occurrences: self.occurrences,
        }
    }
}

/// The introductory query *Ex*:
///
/// ```sql
/// select ns.n_name, nc.n_name, count(*)
/// from (nation ns join supplier s on ns.n_nationkey = s.s_nationkey)
///      full outer join
///      (nation nc join customer c on nc.n_nationkey = c.c_nationkey)
///      on ns.n_nationkey = nc.n_nationkey
/// group by ns.n_name, nc.n_name
/// ```
pub fn ex_query() -> TpchQuery {
    let mut b = Builder::new();
    let ns = b.table("nation", "ns", 1.0);
    let s = b.table("supplier", "s", 1.0);
    let nc = b.table("nation", "nc", 1.0);
    let c = b.table("customer", "c", 1.0);
    let tree = OpTree::binary_sel(
        OpKind::FullOuter,
        JoinPred::eq(b.attr(ns, "n_nationkey"), b.attr(nc, "n_nationkey")),
        1.0 / 25.0,
        OpTree::binary_sel(
            OpKind::Join,
            JoinPred::eq(b.attr(ns, "n_nationkey"), b.attr(s, "s_nationkey")),
            1.0 / 25.0,
            OpTree::rel(ns),
            OpTree::rel(s),
        ),
        OpTree::binary_sel(
            OpKind::Join,
            JoinPred::eq(b.attr(nc, "n_nationkey"), b.attr(c, "c_nationkey")),
            1.0 / 25.0,
            OpTree::rel(nc),
            OpTree::rel(c),
        ),
    );
    let group_by = vec![b.attr(ns, "n_name"), b.attr(nc, "n_name")];
    let out = AttrId(1_000_000);
    b.finish("Ex", tree, group_by, vec![AggCall::count_star(out)])
}

/// TPC-H Q3 (shipping priority) on raw SF-1 statistics.
pub fn q3() -> TpchQuery {
    let mut b = Builder::new();
    let c = b.table("customer", "c", 1.0);
    let o = b.table("orders", "o", 1.0);
    let l = b.table("lineitem", "l", 1.0);
    let tree = OpTree::binary_sel(
        OpKind::Join,
        JoinPred::eq(b.attr(o, "o_orderkey"), b.attr(l, "l_orderkey")),
        1.0 / 1_500_000.0,
        OpTree::binary_sel(
            OpKind::Join,
            JoinPred::eq(b.attr(c, "c_custkey"), b.attr(o, "o_custkey")),
            1.0 / 150_000.0,
            OpTree::rel(c),
            OpTree::rel(o),
        ),
        OpTree::rel(l),
    );
    let group_by = vec![
        b.attr(l, "l_orderkey"),
        b.attr(o, "o_orderdate"),
        b.attr(o, "o_shippriority"),
    ];
    let sum = AggCall::new(
        AttrId(1_000_000),
        AggKind::Sum,
        Expr::attr(b.attr(l, "l_extendedprice")),
    );
    b.finish("Q3", tree, group_by, vec![sum])
}

/// TPC-H Q5 (local supplier volume) on raw SF-1 statistics. The
/// `c_nationkey = s_nationkey` predicate makes the query graph cyclic.
pub fn q5() -> TpchQuery {
    let mut b = Builder::new();
    let c = b.table("customer", "c", 1.0);
    let o = b.table("orders", "o", 1.0);
    let l = b.table("lineitem", "l", 1.0);
    let s = b.table("supplier", "s", 1.0);
    let n = b.table("nation", "n", 1.0);
    let r = b.table("region", "r", 1.0);
    let co = OpTree::binary_sel(
        OpKind::Join,
        JoinPred::eq(b.attr(c, "c_custkey"), b.attr(o, "o_custkey")),
        1.0 / 150_000.0,
        OpTree::rel(c),
        OpTree::rel(o),
    );
    let col = OpTree::binary_sel(
        OpKind::Join,
        JoinPred::eq(b.attr(o, "o_orderkey"), b.attr(l, "l_orderkey")),
        1.0 / 1_500_000.0,
        co,
        OpTree::rel(l),
    );
    let cols = OpTree::binary_sel(
        OpKind::Join,
        JoinPred::eq(b.attr(l, "l_suppkey"), b.attr(s, "s_suppkey")).and(
            b.attr(c, "c_nationkey"),
            dpnext_algebra::CmpOp::Eq,
            b.attr(s, "s_nationkey"),
        ),
        1.0 / 10_000.0 / 25.0,
        col,
        OpTree::rel(s),
    );
    let colsn = OpTree::binary_sel(
        OpKind::Join,
        JoinPred::eq(b.attr(s, "s_nationkey"), b.attr(n, "n_nationkey")),
        1.0 / 25.0,
        cols,
        OpTree::rel(n),
    );
    let tree = OpTree::binary_sel(
        OpKind::Join,
        JoinPred::eq(b.attr(n, "n_regionkey"), b.attr(r, "r_regionkey")),
        1.0 / 5.0,
        colsn,
        OpTree::rel(r),
    );
    let group_by = vec![b.attr(n, "n_name")];
    let sum = AggCall::new(
        AttrId(1_000_000),
        AggKind::Sum,
        Expr::attr(b.attr(l, "l_extendedprice")),
    );
    b.finish("Q5", tree, group_by, vec![sum])
}

/// TPC-H Q10 (returned items) on raw SF-1 statistics.
pub fn q10() -> TpchQuery {
    let mut b = Builder::new();
    let c = b.table("customer", "c", 1.0);
    let o = b.table("orders", "o", 1.0);
    let l = b.table("lineitem", "l", 1.0);
    let n = b.table("nation", "n", 1.0);
    let co = OpTree::binary_sel(
        OpKind::Join,
        JoinPred::eq(b.attr(c, "c_custkey"), b.attr(o, "o_custkey")),
        1.0 / 150_000.0,
        OpTree::rel(c),
        OpTree::rel(o),
    );
    let col = OpTree::binary_sel(
        OpKind::Join,
        JoinPred::eq(b.attr(o, "o_orderkey"), b.attr(l, "l_orderkey")),
        1.0 / 1_500_000.0,
        co,
        OpTree::rel(l),
    );
    let tree = OpTree::binary_sel(
        OpKind::Join,
        JoinPred::eq(b.attr(c, "c_nationkey"), b.attr(n, "n_nationkey")),
        1.0 / 25.0,
        col,
        OpTree::rel(n),
    );
    let group_by = vec![
        b.attr(c, "c_custkey"),
        b.attr(c, "c_acctbal"),
        b.attr(n, "n_name"),
    ];
    let sum = AggCall::new(
        AttrId(1_000_000),
        AggKind::Sum,
        Expr::attr(b.attr(l, "l_extendedprice")),
    );
    b.finish("Q10", tree, group_by, vec![sum])
}

/// All four Table-2 queries.
pub fn table2_queries() -> Vec<TpchQuery> {
    vec![ex_query(), q3(), q5(), q10()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_validate() {
        for q in table2_queries() {
            assert!(q.query.grouping.is_some(), "{}", q.name);
            assert!(q.query.table_count() >= 3);
        }
    }

    #[test]
    fn ex_shape() {
        let ex = ex_query();
        assert_eq!(4, ex.query.table_count());
        assert_eq!(3, ex.query.tree.operator_count());
        // Self-join of nation: occurrences carry distinct attributes.
        let ns_key = ex.occurrences[0].2["n_nationkey"];
        let nc_key = ex.occurrences[2].2["n_nationkey"];
        assert_ne!(ns_key, nc_key);
    }

    #[test]
    fn ex_canonical_plan_executes_at_small_scale() {
        let ex = ex_query();
        let db = ex.database(0.002, 42);
        let res = ex.query.canonical_plan().eval(&db);
        // Groups: (n_name_s, n_name_c) pairs plus padded sides.
        assert!(!res.is_empty());
        assert_eq!(3, res.schema().len());
    }

    #[test]
    fn q5_is_cyclic() {
        let q = q5();
        // The supplier join carries two predicate terms (cycle edge folded
        // into the operator).
        let mut max_terms = 0;
        q.query.tree.visit_ops(&mut |n| {
            if let dpnext_query::OpTree::Binary { pred, .. } = n {
                max_terms = max_terms.max(pred.terms.len());
            }
        });
        assert_eq!(2, max_terms);
    }

    #[test]
    fn raw_sf1_cards() {
        let q = q3();
        assert_eq!(150_000.0, q.query.tables[0].card);
        assert_eq!(1_500_000.0, q.query.tables[1].card);
        assert_eq!(6_001_215.0, q.query.tables[2].card);
    }
}
