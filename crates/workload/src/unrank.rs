//! Lexicographic unranking of binary trees via Dyck words
//! (Liebehenschel, *Lexicographical generation of a generalized Dyck
//! language*, 1998 — cited as \[5\]; used by §5 to draw uniformly random
//! operator-tree shapes).

/// Shape of a binary tree: leaves are `Leaf`, internal nodes carry the two
/// subtrees. Leaf labels are assigned later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeShape {
    Leaf,
    Node(Box<TreeShape>, Box<TreeShape>),
}

impl TreeShape {
    pub fn leaf_count(&self) -> usize {
        match self {
            TreeShape::Leaf => 1,
            TreeShape::Node(l, r) => l.leaf_count() + r.leaf_count(),
        }
    }

    pub fn internal_count(&self) -> usize {
        self.leaf_count() - 1
    }
}

/// Number of lattice paths of length `len` from height `h` down to height
/// 0 that never go below 0 (the "ballot" table driving the unranking).
fn paths_table(max_len: usize) -> Vec<Vec<u128>> {
    // table[l][h] = number of valid completions with l steps from height h.
    let mut table = vec![vec![0u128; max_len + 2]; max_len + 1];
    table[0][0] = 1;
    for l in 1..=max_len {
        for h in 0..=max_len {
            let up = if h < max_len { table[l - 1][h + 1] } else { 0 };
            let down = if h > 0 { table[l - 1][h - 1] } else { 0 };
            table[l][h] = up + down;
        }
    }
    table
}

/// The Catalan number `C_m` = number of binary trees with `m` internal
/// nodes (= Dyck words of length `2m`).
pub fn catalan(m: usize) -> u128 {
    if m == 0 {
        return 1;
    }
    let table = paths_table(2 * m);
    table[2 * m][0]
}

/// Unrank the `rank`-th (0-based) Dyck word of length `2m` in
/// lexicographic order (`(` < `)`), as a boolean vector (`true` = `(`).
pub fn unrank_dyck(m: usize, mut rank: u128) -> Vec<bool> {
    assert!(rank < catalan(m), "rank {rank} out of range for m={m}");
    let table = paths_table(2 * m);
    let mut word = Vec::with_capacity(2 * m);
    let mut height = 0usize;
    for pos in 0..2 * m {
        let remaining = 2 * m - pos - 1;
        // Words starting with '(' from here:
        let with_open = table[remaining][height + 1];
        if rank < with_open {
            word.push(true);
            height += 1;
        } else {
            rank -= with_open;
            word.push(false);
            height = height.checked_sub(1).expect("invalid Dyck prefix");
        }
    }
    debug_assert_eq!(0, height);
    word
}

/// Decode a Dyck word into a binary-tree shape via the standard bijection
/// `enc(leaf) = ε`, `enc(node(l, r)) = ( enc(l) ) enc(r)`.
pub fn dyck_to_tree(word: &[bool]) -> TreeShape {
    fn parse(word: &[bool], pos: &mut usize) -> TreeShape {
        if *pos < word.len() && word[*pos] {
            *pos += 1; // '('
            let left = parse(word, pos);
            debug_assert!(!word[*pos], "expected ')'");
            *pos += 1; // ')'
            let right = parse(word, pos);
            TreeShape::Node(Box::new(left), Box::new(right))
        } else {
            TreeShape::Leaf
        }
    }
    let mut pos = 0;
    let t = parse(word, &mut pos);
    debug_assert_eq!(word.len(), pos);
    t
}

/// Unrank directly to a tree with `n_leaves` leaves.
pub fn unrank_tree(n_leaves: usize, rank: u128) -> TreeShape {
    assert!(n_leaves >= 1);
    let word = unrank_dyck(n_leaves - 1, rank);
    dyck_to_tree(&word)
}

/// Number of distinct binary trees with `n_leaves` leaves.
pub fn tree_count(n_leaves: usize) -> u128 {
    catalan(n_leaves - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalan_numbers() {
        let expect: [u128; 11] = [1, 1, 2, 5, 14, 42, 132, 429, 1430, 4862, 16796];
        for (m, &e) in expect.iter().enumerate() {
            assert_eq!(e, catalan(m), "C_{m}");
        }
        // The paper goes to 20 relations: C_19.
        assert_eq!(1_767_263_190, catalan(19));
    }

    #[test]
    fn unranking_is_bijective() {
        for m in 0..=6 {
            let total = catalan(m);
            let mut seen = HashSet::new();
            for r in 0..total {
                let w = unrank_dyck(m, r);
                assert_eq!(2 * m, w.len());
                assert!(seen.insert(w), "duplicate word at rank {r}, m={m}");
            }
            assert_eq!(total as usize, seen.len());
        }
    }

    #[test]
    fn unranking_is_lexicographic() {
        let m = 5;
        let mut prev: Option<Vec<bool>> = None;
        for r in 0..catalan(m) {
            let w = unrank_dyck(m, r);
            if let Some(p) = &prev {
                // '(' = true sorts before ')' = false lexicographically,
                // so invert for Vec<bool> comparison.
                let key = |v: &Vec<bool>| v.iter().map(|&b| !b).collect::<Vec<bool>>();
                assert!(key(p) < key(&w), "not lexicographic at rank {r}");
            }
            prev = Some(w);
        }
    }

    #[test]
    fn trees_have_right_size() {
        for n in 1..=8 {
            for r in [0u128, tree_count(n) / 2, tree_count(n) - 1] {
                let t = unrank_tree(n, r);
                assert_eq!(n, t.leaf_count());
                assert_eq!(n - 1, t.internal_count());
            }
        }
    }

    #[test]
    fn all_tree_shapes_distinct() {
        let n = 6;
        let mut seen = HashSet::new();
        for r in 0..tree_count(n) {
            let t = unrank_tree(n, r);
            assert!(seen.insert(format!("{t:?}")));
        }
        assert_eq!(42, seen.len()); // C_5
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        unrank_dyck(3, 5);
    }
}
