//! Bottom-up key propagation through join operators (§2.3) and the
//! `NeedsGrouping` test (Fig. 7).

use crate::keyset::KeySet;
use dpnext_algebra::{AttrId, JoinPred};
use dpnext_query::OpKind;

/// Logical properties of an intermediate result relevant to grouping
/// placement: its candidate keys and whether it is duplicate-free.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KeyInfo {
    pub keys: KeySet,
    /// SQL key/uniqueness declarations imply duplicate-freeness (§3.2
    /// remark); propagated conservatively.
    pub duplicate_free: bool,
}

impl KeyInfo {
    pub fn base(keys: KeySet) -> Self {
        let duplicate_free = !keys.is_empty();
        KeyInfo {
            keys,
            duplicate_free,
        }
    }

    /// No information: grouping will never be elided on top of this.
    pub fn unknown() -> Self {
        KeyInfo::default()
    }
}

/// `κ` propagation for a binary operator (§2.3.1–§2.3.4).
///
/// `pred` must be canonicalized (left terms from the left input). Only
/// equality predicates allow the key-preserving fast cases; theta joins
/// always fall back to pairwise combination.
pub fn infer_join_keys(op: OpKind, left: &KeyInfo, right: &KeyInfo, pred: &JoinPred) -> KeyInfo {
    let equi = pred.is_equi() && !pred.terms.is_empty();
    let mut left_attrs = pred.left_attrs();
    let mut right_attrs = pred.right_attrs();
    left_attrs.sort_unstable();
    left_attrs.dedup();
    right_attrs.sort_unstable();
    right_attrs.dedup();
    infer_join_keys_presorted(op, left, right, equi, &left_attrs, &right_attrs)
}

/// [`infer_join_keys`] with the predicate pre-digested: `equi` says
/// whether the predicate is a non-empty conjunction of equalities, and
/// `left_attrs` / `right_attrs` are its per-side attribute sets, sorted
/// and deduplicated. The enumeration stages these once per cut
/// orientation ([`stage_apply`]'s contract) and calls this per plan pair,
/// so the `A_i is a key` cover tests (§2.3) allocate nothing.
///
/// [`stage_apply`]: ../dpnext_core/plan/fn.stage_apply.html
pub fn infer_join_keys_presorted(
    op: OpKind,
    left: &KeyInfo,
    right: &KeyInfo,
    equi: bool,
    left_attrs: &[AttrId],
    right_attrs: &[AttrId],
) -> KeyInfo {
    let l_covers = equi && left.keys.some_key_within_sorted(left_attrs);
    let r_covers = equi && right.keys.some_key_within_sorted(right_attrs);
    let dup_free = left.duplicate_free && right.duplicate_free;
    match op {
        OpKind::Join => {
            let keys = match (l_covers, r_covers) {
                // Both join-attribute sets contain keys: all keys survive.
                (true, true) => left.keys.union(&right.keys),
                // A1 key, A2 not: every e2 tuple meets at most one e1 tuple.
                (true, false) => right.keys.clone(),
                (false, true) => left.keys.clone(),
                (false, false) => left.keys.pairwise(&right.keys),
            };
            KeyInfo {
                keys,
                duplicate_free: dup_free,
            }
        }
        OpKind::LeftOuter => {
            // If A2 is a key of e2, every e1 tuple appears exactly once.
            let keys = if r_covers {
                left.keys.clone()
            } else {
                left.keys.pairwise(&right.keys)
            };
            KeyInfo {
                keys,
                duplicate_free: dup_free,
            }
        }
        OpKind::FullOuter => {
            // Regardless of the predicate: pairwise combination only.
            KeyInfo {
                keys: left.keys.pairwise(&right.keys),
                duplicate_free: dup_free,
            }
        }
        // Semijoin / antijoin / groupjoin: the right side disappears and
        // no left tuple is duplicated: κ(e1) (§2.3.4).
        OpKind::Semi | OpKind::Anti | OpKind::GroupJoin => KeyInfo {
            keys: left.keys.clone(),
            duplicate_free: left.duplicate_free,
        },
    }
}

/// Keys after `Γ_{G;F}`: the grouping attributes form a key and the result
/// is duplicate-free.
pub fn grouping_keys(group_attrs: &[AttrId]) -> KeyInfo {
    KeyInfo {
        keys: KeySet::from_keys([group_attrs.to_vec()]),
        duplicate_free: true,
    }
}

/// `NeedsGrouping(G, T)` (Fig. 7): grouping on `G` is needed unless some
/// key of `T` is contained in `G` *and* `T` is duplicate-free — then every
/// group holds exactly one tuple (§3.2).
pub fn needs_grouping(group_attrs: &[AttrId], info: &KeyInfo) -> bool {
    !(info.duplicate_free && info.keys.some_key_within(group_attrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyset::KeySet;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn keyed(attr: AttrId) -> KeyInfo {
        KeyInfo::base(KeySet::from_keys([vec![attr]]))
    }

    #[test]
    fn inner_join_both_keys() {
        // Join on key = key: both sides' keys survive.
        let l = keyed(a(0));
        let r = keyed(a(1));
        let out = infer_join_keys(OpKind::Join, &l, &r, &JoinPred::eq(a(0), a(1)));
        assert!(out.keys.some_key_within(&[a(0)]));
        assert!(out.keys.some_key_within(&[a(1)]));
        assert!(out.duplicate_free);
    }

    #[test]
    fn inner_join_fk_to_pk() {
        // e1.fk = e2.pk (pk key of e2): keys of e1 survive.
        let l = KeyInfo::base(KeySet::from_keys([vec![a(0)]])); // key a0, join attr a5
        let r = keyed(a(1));
        let out = infer_join_keys(OpKind::Join, &l, &r, &JoinPred::eq(a(5), a(1)));
        assert!(out.keys.some_key_within(&[a(0)]));
        assert!(!out.keys.some_key_within(&[a(1)]));
    }

    #[test]
    fn inner_join_general_pairwise() {
        let l = keyed(a(0));
        let r = keyed(a(1));
        // Join on non-key attributes.
        let out = infer_join_keys(OpKind::Join, &l, &r, &JoinPred::eq(a(5), a(6)));
        assert!(!out.keys.some_key_within(&[a(0)]));
        assert!(out.keys.some_key_within(&[a(0), a(1)]));
    }

    #[test]
    fn left_outer_key_on_right() {
        let l = keyed(a(0));
        let r = keyed(a(1));
        let out = infer_join_keys(OpKind::LeftOuter, &l, &r, &JoinPred::eq(a(5), a(1)));
        assert!(out.keys.some_key_within(&[a(0)]));
    }

    #[test]
    fn full_outer_always_pairwise() {
        let l = keyed(a(0));
        let r = keyed(a(1));
        let out = infer_join_keys(OpKind::FullOuter, &l, &r, &JoinPred::eq(a(0), a(1)));
        assert!(!out.keys.some_key_within(&[a(0)]));
        assert!(out.keys.some_key_within(&[a(0), a(1)]));
    }

    #[test]
    fn semijoin_keeps_left_keys() {
        let l = keyed(a(0));
        let r = KeyInfo::unknown();
        for op in [OpKind::Semi, OpKind::Anti, OpKind::GroupJoin] {
            let out = infer_join_keys(op, &l, &r, &JoinPred::eq(a(0), a(1)));
            assert!(out.keys.some_key_within(&[a(0)]), "{op:?}");
            assert!(out.duplicate_free);
        }
    }

    #[test]
    fn unknown_keys_stay_unknown() {
        let l = KeyInfo::unknown();
        let r = keyed(a(1));
        let out = infer_join_keys(OpKind::Join, &l, &r, &JoinPred::eq(a(0), a(1)));
        // r covers its key, so left keys (empty) survive → still empty.
        assert!(out.keys.is_empty());
        assert!(!out.duplicate_free);
    }

    #[test]
    fn needs_grouping_tests() {
        let info = grouping_keys(&[a(0), a(1)]);
        // G contains the key {a0,a1}: no grouping needed.
        assert!(!needs_grouping(&[a(0), a(1), a(2)], &info));
        // G misses part of the key.
        assert!(needs_grouping(&[a(0)], &info));
        // Duplicates possible: grouping needed even if key within G.
        let dup = KeyInfo {
            keys: KeySet::from_keys([vec![a(0)]]),
            duplicate_free: false,
        };
        assert!(needs_grouping(&[a(0)], &dup));
    }
}
