//! # dpnext-keys
//!
//! Key and functional-dependency inference (§2.3): candidate-key
//! propagation rules for every join operator, the `NeedsGrouping` test
//! (Fig. 7), and FD closures backing the dominance pruning of §4.6.

pub mod fd;
pub mod infer;
pub mod keyset;

pub use fd::{Fd, FdSet};
pub use infer::{
    grouping_keys, infer_join_keys, infer_join_keys_presorted, needs_grouping, KeyInfo,
};
pub use keyset::{Key, KeySet};
