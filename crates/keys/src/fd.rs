//! Functional dependencies and their closure.
//!
//! The dominance test of Def. 4 compares `FD⁺(T1) ⊇ FD⁺(T2)`; the paper
//! notes that real implementations weaken this to candidate-key comparison.
//! This module provides the exact machinery so tests can verify that the
//! weakening used by the optimizer is conservative.

use dpnext_algebra::AttrId;
use std::collections::BTreeSet;

/// A functional dependency `lhs → rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fd {
    pub lhs: BTreeSet<AttrId>,
    pub rhs: BTreeSet<AttrId>,
}

impl Fd {
    pub fn new(
        lhs: impl IntoIterator<Item = AttrId>,
        rhs: impl IntoIterator<Item = AttrId>,
    ) -> Self {
        Fd {
            lhs: lhs.into_iter().collect(),
            rhs: rhs.into_iter().collect(),
        }
    }
}

/// A set of functional dependencies.
#[derive(Debug, Clone, Default)]
pub struct FdSet {
    fds: Vec<Fd>,
}

impl FdSet {
    pub fn new() -> Self {
        FdSet::default()
    }

    pub fn add(&mut self, fd: Fd) {
        self.fds.push(fd);
    }

    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// Attribute closure `X⁺` under this FD set (textbook fixpoint).
    pub fn closure(&self, attrs: &BTreeSet<AttrId>) -> BTreeSet<AttrId> {
        let mut closed = attrs.clone();
        loop {
            let before = closed.len();
            for fd in &self.fds {
                if fd.lhs.is_subset(&closed) {
                    closed.extend(fd.rhs.iter().copied());
                }
            }
            if closed.len() == before {
                return closed;
            }
        }
    }

    /// Does this FD set entail `lhs → rhs`?
    pub fn entails(&self, fd: &Fd) -> bool {
        fd.rhs.is_subset(&self.closure(&fd.lhs))
    }

    /// Does this FD set entail every dependency of `other` over the given
    /// universe? (The `FD⁺(T1) ⊇ FD⁺(T2)` comparison, checked on `other`'s
    /// generators — sufficient because closure is monotone.)
    pub fn covers(&self, other: &FdSet) -> bool {
        other.fds.iter().all(|fd| self.entails(fd))
    }

    /// Is `attrs` a superkey of a relation with universe `universe`?
    pub fn is_superkey(&self, attrs: &BTreeSet<AttrId>, universe: &BTreeSet<AttrId>) -> bool {
        universe.is_subset(&self.closure(attrs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn set(items: &[u32]) -> BTreeSet<AttrId> {
        items.iter().map(|&i| a(i)).collect()
    }

    #[test]
    fn closure_transitivity() {
        let mut fds = FdSet::new();
        fds.add(Fd::new([a(0)], [a(1)]));
        fds.add(Fd::new([a(1)], [a(2)]));
        assert_eq!(set(&[0, 1, 2]), fds.closure(&set(&[0])));
        assert!(fds.entails(&Fd::new([a(0)], [a(2)])));
        assert!(!fds.entails(&Fd::new([a(2)], [a(0)])));
    }

    #[test]
    fn compound_lhs() {
        let mut fds = FdSet::new();
        fds.add(Fd::new([a(0), a(1)], [a(2)]));
        assert!(!fds.entails(&Fd::new([a(0)], [a(2)])));
        assert!(fds.entails(&Fd::new([a(0), a(1)], [a(2)])));
    }

    #[test]
    fn superkey() {
        let mut fds = FdSet::new();
        fds.add(Fd::new([a(0)], [a(1), a(2)]));
        let universe = set(&[0, 1, 2]);
        assert!(fds.is_superkey(&set(&[0]), &universe));
        assert!(!fds.is_superkey(&set(&[1]), &universe));
    }

    #[test]
    fn covering() {
        let mut strong = FdSet::new();
        strong.add(Fd::new([a(0)], [a(1)]));
        strong.add(Fd::new([a(1)], [a(2)]));
        let mut weak = FdSet::new();
        weak.add(Fd::new([a(0)], [a(2)]));
        assert!(strong.covers(&weak));
        assert!(!weak.covers(&strong));
    }

    #[test]
    fn key_comparison_is_conservative_weakening() {
        // If every key of T2 is implied by a key of T1 (KeySet::implies),
        // then T1's FD set covers the key FDs of T2.
        use crate::keyset::KeySet;
        let k1 = KeySet::from_keys([vec![a(0)]]);
        let k2 = KeySet::from_keys([vec![a(0), a(1)]]);
        assert!(k1.implies(&k2));
        let universe = set(&[0, 1, 2]);
        let mut fd1 = FdSet::new();
        for k in k1.keys() {
            fd1.add(Fd::new(k.iter().copied(), universe.iter().copied()));
        }
        let mut fd2 = FdSet::new();
        for k in k2.keys() {
            fd2.add(Fd::new(k.iter().copied(), universe.iter().copied()));
        }
        assert!(fd1.covers(&fd2));
    }
}
