//! Candidate key sets `κ(e)` and their propagation rules (§2.3).

use dpnext_algebra::AttrId;

/// A candidate key: a sorted set of attributes.
pub type Key = Vec<AttrId>;

fn normalize(mut k: Key) -> Key {
    k.sort_unstable();
    k.dedup();
    k
}

fn is_subset(a: &[AttrId], b: &[AttrId]) -> bool {
    // Both sorted.
    let mut bi = b.iter();
    'outer: for x in a {
        for y in bi.by_ref() {
            if y == x {
                continue 'outer;
            }
            if y > x {
                return false;
            }
        }
        return false;
    }
    true
}

/// A set of candidate keys, kept minimal (no key is a superset of another).
///
/// `κ` is a set of sets; an empty `KeySet` means *no key known* — every
/// rule below degrades gracefully to that.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KeySet {
    keys: Vec<Key>,
}

impl KeySet {
    pub fn empty() -> Self {
        KeySet::default()
    }

    pub fn from_keys(keys: impl IntoIterator<Item = Key>) -> Self {
        let mut s = KeySet::empty();
        for k in keys {
            s.insert(k);
        }
        s
    }

    /// Insert a key, maintaining minimality.
    pub fn insert(&mut self, key: Key) {
        let key = normalize(key);
        if self.keys.iter().any(|k| is_subset(k, &key)) {
            return; // an existing key already implies it
        }
        self.keys.retain(|k| !is_subset(&key, k));
        self.keys.push(key);
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// Is there a key contained in `attrs`? (`∃k ∈ κ(T), k ⊆ G` —
    /// the test of `NeedsGrouping`, Fig. 7.)
    pub fn some_key_within(&self, attrs: &[AttrId]) -> bool {
        let attrs = normalize(attrs.to_vec());
        self.some_key_within_sorted(&attrs)
    }

    /// [`Self::some_key_within`] for callers that already hold `attrs`
    /// sorted and deduplicated: no allocation, no re-sort. The enumeration
    /// hot path normalizes a cut's join attributes once per staging and
    /// runs this per plan pair.
    pub fn some_key_within_sorted(&self, attrs: &[AttrId]) -> bool {
        debug_assert!(
            attrs.windows(2).all(|w| w[0] < w[1]),
            "attrs not normalized"
        );
        self.keys.iter().any(|k| is_subset(k, attrs))
    }

    /// Key-set implication: every key of `other` is implied by (a subset
    /// key in) `self`. Used as the practical weakening of the
    /// `FD⁺(T1) ⊇ FD⁺(T2)` dominance condition (§4.6).
    pub fn implies(&self, other: &KeySet) -> bool {
        other
            .keys
            .iter()
            .all(|ko| self.keys.iter().any(|ks| is_subset(ks, ko)))
    }

    /// `κ(e1) ∪ κ(e2)`: every key of either side stays a key
    /// (inner equi-join where both sides' join attributes contain keys).
    pub fn union(&self, other: &KeySet) -> KeySet {
        let mut out = self.clone();
        for k in &other.keys {
            out.insert(k.clone());
        }
        out
    }

    /// `⋃_{k1,k2} k1 ∪ k2`: pairwise key combination (the general join
    /// rule). Empty if either side has no keys.
    pub fn pairwise(&self, other: &KeySet) -> KeySet {
        let mut out = KeySet::empty();
        for k1 in &self.keys {
            for k2 in &other.keys {
                let mut k = k1.clone();
                k.extend_from_slice(k2);
                out.insert(k);
            }
        }
        out
    }

    /// Restrict to keys fully contained in the surviving attribute set
    /// (used when projections drop columns).
    pub fn restrict_to(&self, attrs: &[AttrId]) -> KeySet {
        let attrs = normalize(attrs.to_vec());
        KeySet::from_keys(self.keys.iter().filter(|k| is_subset(k, &attrs)).cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    #[test]
    fn minimality() {
        let mut s = KeySet::empty();
        s.insert(vec![a(0), a(1)]);
        s.insert(vec![a(0)]); // subsumes the first
        assert_eq!(1, s.keys().len());
        assert_eq!(vec![a(0)], s.keys()[0]);
        s.insert(vec![a(0), a(2)]); // already implied
        assert_eq!(1, s.keys().len());
    }

    #[test]
    fn key_within() {
        let s = KeySet::from_keys([vec![a(1), a(2)]]);
        assert!(s.some_key_within(&[a(2), a(1), a(5)]));
        assert!(!s.some_key_within(&[a(1)]));
        assert!(!KeySet::empty().some_key_within(&[a(1)]));
    }

    #[test]
    fn pairwise_combination() {
        let l = KeySet::from_keys([vec![a(0)]]);
        let r = KeySet::from_keys([vec![a(1)], vec![a(2)]]);
        let p = l.pairwise(&r);
        assert_eq!(2, p.keys().len());
        assert!(p.some_key_within(&[a(0), a(1)]));
        assert!(p.some_key_within(&[a(0), a(2)]));
        assert!(l.pairwise(&KeySet::empty()).is_empty());
    }

    #[test]
    fn implication() {
        let strong = KeySet::from_keys([vec![a(0)]]);
        let weak = KeySet::from_keys([vec![a(0), a(1)]]);
        assert!(strong.implies(&weak));
        assert!(!weak.implies(&strong));
        assert!(strong.implies(&KeySet::empty()));
        assert!(KeySet::empty().implies(&KeySet::empty()));
        assert!(!KeySet::empty().implies(&strong));
    }

    #[test]
    fn restriction() {
        let s = KeySet::from_keys([vec![a(0)], vec![a(1), a(2)]]);
        let r = s.restrict_to(&[a(1), a(2), a(3)]);
        assert_eq!(1, r.keys().len());
        assert!(r.some_key_within(&[a(1), a(2)]));
    }

    #[test]
    fn union_keeps_both() {
        let l = KeySet::from_keys([vec![a(0)]]);
        let r = KeySet::from_keys([vec![a(1)]]);
        let u = l.union(&r);
        assert!(u.some_key_within(&[a(0)]));
        assert!(u.some_key_within(&[a(1)]));
    }
}
