//! Parity suite for the memo/engine refactor: the arena-backed engine
//! must reproduce the seed implementation bit for bit. The golden values
//! below (final-plan cost as raw f64 bits, `plans_built`,
//! `retained_plans`) were recorded by running the pre-refactor
//! `Rc<PlanData>`-based generators on the oracle and paper workload
//! seeds; any divergence means the enumeration order, cost model or
//! retention behavior changed.

use dpnext_core::{
    all_subplans_with, optimize, optimize_with, Algorithm as A, Memo, OptimizeOptions, PlanStore,
};
use dpnext_query::Query;
use dpnext_workload::{generate_query, GenConfig};
use proptest::prelude::*;

fn with_threads(threads: usize) -> OptimizeOptions {
    OptimizeOptions {
        threads,
        ..OptimizeOptions::default()
    }
}

#[derive(Clone, Copy)]
enum Cfg {
    Oracle,
    Paper,
}

impl Cfg {
    fn config(self, n: usize) -> GenConfig {
        match self {
            Cfg::Oracle => GenConfig::oracle(n),
            Cfg::Paper => GenConfig::paper(n),
        }
    }
}

/// `(workload, n_relations, seed, algorithm, cost bits, plans_built,
/// retained_plans)` — recorded from the seed implementation.
#[rustfmt::skip]
const GOLDEN: &[(Cfg, usize, u64, A, u64, u64, u64)] = &[
    (Cfg::Oracle, 2, 0, A::DPhyp, 0x0000000000000000, 1, 2),
    (Cfg::Oracle, 2, 0, A::H1, 0x0000000000000000, 1, 2),
    (Cfg::Oracle, 2, 0, A::H2(1.03), 0x0000000000000000, 1, 2),
    (Cfg::Oracle, 2, 0, A::EaAll, 0x0000000000000000, 1, 2),
    (Cfg::Oracle, 2, 0, A::EaPrune, 0x0000000000000000, 1, 2),
    (Cfg::Oracle, 2, 1, A::DPhyp, 0x403738543a16a575, 2, 2),
    (Cfg::Oracle, 2, 1, A::H1, 0x403738543a16a575, 2, 2),
    (Cfg::Oracle, 2, 1, A::H2(1.03), 0x403738543a16a575, 2, 2),
    (Cfg::Oracle, 2, 1, A::EaAll, 0x403738543a16a575, 2, 2),
    (Cfg::Oracle, 2, 1, A::EaPrune, 0x403738543a16a575, 2, 2),
    (Cfg::Oracle, 2, 2, A::DPhyp, 0x4011e8ed460fd039, 2, 2),
    (Cfg::Oracle, 2, 2, A::H1, 0x4011e8ed460fd039, 12, 2),
    (Cfg::Oracle, 2, 2, A::H2(1.03), 0x4011e8ed460fd039, 12, 2),
    (Cfg::Oracle, 2, 2, A::EaAll, 0x4011e8ed460fd039, 12, 2),
    (Cfg::Oracle, 2, 2, A::EaPrune, 0x4011e8ed460fd039, 12, 2),
    (Cfg::Oracle, 2, 3, A::DPhyp, 0x4018000000000000, 1, 2),
    (Cfg::Oracle, 2, 3, A::H1, 0x4018000000000000, 1, 2),
    (Cfg::Oracle, 2, 3, A::H2(1.03), 0x4018000000000000, 1, 2),
    (Cfg::Oracle, 2, 3, A::EaAll, 0x4018000000000000, 1, 2),
    (Cfg::Oracle, 2, 3, A::EaPrune, 0x4018000000000000, 1, 2),
    (Cfg::Oracle, 2, 4, A::DPhyp, 0x40016b3af31ad178, 2, 2),
    (Cfg::Oracle, 2, 4, A::H1, 0x40016b3af31ad178, 12, 2),
    (Cfg::Oracle, 2, 4, A::H2(1.03), 0x40016b3af31ad178, 12, 2),
    (Cfg::Oracle, 2, 4, A::EaAll, 0x40016b3af31ad178, 12, 2),
    (Cfg::Oracle, 2, 4, A::EaPrune, 0x40016b3af31ad178, 12, 2),
    (Cfg::Oracle, 3, 0, A::DPhyp, 0x40266c485634b560, 4, 4),
    (Cfg::Oracle, 3, 0, A::H1, 0x40266c485634b560, 4, 4),
    (Cfg::Oracle, 3, 0, A::H2(1.03), 0x40266c485634b560, 4, 4),
    (Cfg::Oracle, 3, 0, A::EaAll, 0x40266c485634b560, 6, 5),
    (Cfg::Oracle, 3, 0, A::EaPrune, 0x40266c485634b560, 4, 4),
    (Cfg::Oracle, 3, 1, A::DPhyp, 0x403020188dc3a6a3, 4, 4),
    (Cfg::Oracle, 3, 1, A::H1, 0x403020188dc3a6a3, 18, 4),
    (Cfg::Oracle, 3, 1, A::H2(1.03), 0x403020188dc3a6a3, 18, 4),
    (Cfg::Oracle, 3, 1, A::EaAll, 0x403020188dc3a6a3, 54, 7),
    (Cfg::Oracle, 3, 1, A::EaPrune, 0x403020188dc3a6a3, 30, 5),
    (Cfg::Oracle, 3, 2, A::DPhyp, 0x0000000000000000, 4, 5),
    (Cfg::Oracle, 3, 2, A::H1, 0x0000000000000000, 18, 5),
    (Cfg::Oracle, 3, 2, A::H2(1.03), 0x0000000000000000, 18, 5),
    (Cfg::Oracle, 3, 2, A::EaAll, 0x0000000000000000, 33, 9),
    (Cfg::Oracle, 3, 2, A::EaPrune, 0x0000000000000000, 30, 8),
    (Cfg::Oracle, 3, 3, A::DPhyp, 0x40417c507c917f24, 4, 4),
    (Cfg::Oracle, 3, 3, A::H1, 0x4035faea846bafe8, 12, 4),
    (Cfg::Oracle, 3, 3, A::H2(1.03), 0x4035faea846bafe8, 12, 4),
    (Cfg::Oracle, 3, 3, A::EaAll, 0x4035faea846bafe8, 30, 7),
    (Cfg::Oracle, 3, 3, A::EaPrune, 0x4035faea846bafe8, 18, 5),
    (Cfg::Oracle, 3, 4, A::DPhyp, 0x403f830d794a3296, 6, 5),
    (Cfg::Oracle, 3, 4, A::H1, 0x403f830d794a3296, 36, 5),
    (Cfg::Oracle, 3, 4, A::H2(1.03), 0x403f830d794a3296, 36, 5),
    (Cfg::Oracle, 3, 4, A::EaAll, 0x4032d17052dad0bc, 108, 15),
    (Cfg::Oracle, 3, 4, A::EaPrune, 0x4032d17052dad0bc, 51, 7),
    (Cfg::Oracle, 4, 0, A::DPhyp, 0x400a87c766a7cdd9, 17, 9),
    (Cfg::Oracle, 4, 0, A::H1, 0x400a87c766a7cdd9, 39, 9),
    (Cfg::Oracle, 4, 0, A::H2(1.03), 0x400a87c766a7cdd9, 39, 9),
    (Cfg::Oracle, 4, 0, A::EaAll, 0x400a87c766a7cdd9, 169, 39),
    (Cfg::Oracle, 4, 0, A::EaPrune, 0x400a87c766a7cdd9, 57, 12),
    (Cfg::Oracle, 4, 1, A::DPhyp, 0x40151d7cf594afa8, 8, 7),
    (Cfg::Oracle, 4, 1, A::H1, 0x40151d7cf594afa8, 28, 7),
    (Cfg::Oracle, 4, 1, A::H2(1.03), 0x40151d7cf594afa8, 28, 7),
    (Cfg::Oracle, 4, 1, A::EaAll, 0x40151d7cf594afa8, 138, 32),
    (Cfg::Oracle, 4, 1, A::EaPrune, 0x40151d7cf594afa8, 41, 11),
    (Cfg::Oracle, 4, 2, A::DPhyp, 0x404ec6676d46810d, 6, 7),
    (Cfg::Oracle, 4, 2, A::H1, 0x40469be42724e66e, 36, 7),
    (Cfg::Oracle, 4, 2, A::H2(1.03), 0x40469be42724e66e, 36, 7),
    (Cfg::Oracle, 4, 2, A::EaAll, 0x403f3072b7c34c01, 393, 42),
    (Cfg::Oracle, 4, 2, A::EaPrune, 0x403f3072b7c34c01, 75, 13),
    (Cfg::Oracle, 4, 3, A::DPhyp, 0x4026d90e6f3f7d06, 7, 7),
    (Cfg::Oracle, 4, 3, A::H1, 0x4026d90e6f3f7d06, 9, 7),
    (Cfg::Oracle, 4, 3, A::H2(1.03), 0x4026d90e6f3f7d06, 9, 7),
    (Cfg::Oracle, 4, 3, A::EaAll, 0x4026d90e6f3f7d06, 15, 10),
    (Cfg::Oracle, 4, 3, A::EaPrune, 0x4026d90e6f3f7d06, 11, 8),
    (Cfg::Oracle, 4, 4, A::DPhyp, 0x403296dbe5250384, 6, 6),
    (Cfg::Oracle, 4, 4, A::H1, 0x403296dbe5250384, 24, 6),
    (Cfg::Oracle, 4, 4, A::H2(1.03), 0x403296dbe5250384, 24, 6),
    (Cfg::Oracle, 4, 4, A::EaAll, 0x403296dbe5250384, 178, 16),
    (Cfg::Oracle, 4, 4, A::EaPrune, 0x403296dbe5250384, 34, 8),
    (Cfg::Oracle, 5, 0, A::DPhyp, 0x4018812e8a45264c, 44, 16),
    (Cfg::Oracle, 5, 0, A::H1, 0x4018812e8a45264c, 62, 16),
    (Cfg::Oracle, 5, 0, A::H2(1.03), 0x4018812e8a45264c, 62, 16),
    (Cfg::Oracle, 5, 0, A::EaAll, 0x4018812e8a45264c, 407, 158),
    (Cfg::Oracle, 5, 0, A::EaPrune, 0x4018812e8a45264c, 73, 21),
    (Cfg::Oracle, 5, 1, A::DPhyp, 0x40055d3f0d8f4380, 19, 12),
    (Cfg::Oracle, 5, 1, A::H1, 0x40055d3f0d8f4380, 77, 12),
    (Cfg::Oracle, 5, 1, A::H2(1.03), 0x40055d3f0d8f4380, 77, 12),
    (Cfg::Oracle, 5, 1, A::EaAll, 0x40055d3f0d8f4380, 392, 79),
    (Cfg::Oracle, 5, 1, A::EaPrune, 0x40055d3f0d8f4380, 123, 21),
    (Cfg::Oracle, 5, 2, A::DPhyp, 0x403a5d0163b9e521, 22, 11),
    (Cfg::Oracle, 5, 2, A::H1, 0x40308be26b1c7244, 102, 11),
    (Cfg::Oracle, 5, 2, A::H2(1.03), 0x40308be26b1c7244, 102, 11),
    (Cfg::Oracle, 5, 2, A::EaAll, 0x4030451f42cea0b6, 14670, 569),
    (Cfg::Oracle, 5, 2, A::EaPrune, 0x4030451f42cea0b6, 300, 21),
    (Cfg::Oracle, 5, 3, A::DPhyp, 0x4037ae3fdb887c60, 12, 9),
    (Cfg::Oracle, 5, 3, A::H1, 0x4037ae3fdb887c60, 16, 9),
    (Cfg::Oracle, 5, 3, A::H2(1.03), 0x4037ae3fdb887c60, 16, 9),
    (Cfg::Oracle, 5, 3, A::EaAll, 0x4037ae3fdb887c60, 96, 33),
    (Cfg::Oracle, 5, 3, A::EaPrune, 0x4037ae3fdb887c60, 20, 10),
    (Cfg::Oracle, 5, 4, A::DPhyp, 0x4089b447e5e71040, 13, 10),
    (Cfg::Oracle, 5, 4, A::H1, 0x407b2b0434e53276, 78, 10),
    (Cfg::Oracle, 5, 4, A::H2(1.03), 0x407b2b0434e53276, 78, 10),
    (Cfg::Oracle, 5, 4, A::EaAll, 0x407b2b0434e53276, 4470, 297),
    (Cfg::Oracle, 5, 4, A::EaPrune, 0x407b2b0434e53276, 204, 18),
    (Cfg::Paper, 3, 1000, A::DPhyp, 0x40fc11999f96456c, 6, 5),
    (Cfg::Paper, 3, 1000, A::H1, 0x40c4563e03bf115f, 30, 5),
    (Cfg::Paper, 3, 1000, A::H2(1.03), 0x40c4563e03bf115f, 30, 5),
    (Cfg::Paper, 3, 1000, A::EaAll, 0x40c4563e03bf115f, 59, 13),
    (Cfg::Paper, 3, 1000, A::EaPrune, 0x40c4563e03bf115f, 43, 7),
    (Cfg::Paper, 3, 1001, A::DPhyp, 0x40c176fb4bcd7524, 8, 5),
    (Cfg::Paper, 3, 1001, A::H1, 0x4092300000000000, 22, 5),
    (Cfg::Paper, 3, 1001, A::H2(1.03), 0x4092300000000000, 22, 5),
    (Cfg::Paper, 3, 1001, A::EaAll, 0x4092300000000000, 48, 9),
    (Cfg::Paper, 3, 1001, A::EaPrune, 0x4092300000000000, 22, 5),
    (Cfg::Paper, 3, 1002, A::DPhyp, 0x40b0475a4a022ab3, 6, 5),
    (Cfg::Paper, 3, 1002, A::H1, 0x40b0475a4a022ab3, 18, 5),
    (Cfg::Paper, 3, 1002, A::H2(1.03), 0x40b0475a4a022ab3, 18, 5),
    (Cfg::Paper, 3, 1002, A::EaAll, 0x40b0475a4a022ab3, 25, 9),
    (Cfg::Paper, 3, 1002, A::EaPrune, 0x40b0475a4a022ab3, 21, 7),
    (Cfg::Paper, 4, 1000, A::DPhyp, 0x40668856e5b5eebc, 14, 9),
    (Cfg::Paper, 4, 1000, A::H1, 0x4062759f5f2ec52f, 75, 9),
    (Cfg::Paper, 4, 1000, A::H2(1.03), 0x4062759f5f2ec52f, 75, 9),
    (Cfg::Paper, 4, 1000, A::EaAll, 0x4062759f5f2ec52f, 511, 100),
    (Cfg::Paper, 4, 1000, A::EaPrune, 0x4062759f5f2ec52f, 129, 18),
    (Cfg::Paper, 4, 1001, A::DPhyp, 0x40a93ec91dc20ba2, 14, 10),
    (Cfg::Paper, 4, 1001, A::H1, 0x40a93ec91dc20ba2, 34, 10),
    (Cfg::Paper, 4, 1001, A::H2(1.03), 0x40a93ec91dc20ba2, 34, 10),
    (Cfg::Paper, 4, 1001, A::EaAll, 0x40a93ec91dc20ba2, 71, 26),
    (Cfg::Paper, 4, 1001, A::EaPrune, 0x40a93ec91dc20ba2, 49, 16),
    (Cfg::Paper, 4, 1002, A::DPhyp, 0x40d086e28b23981a, 20, 9),
    (Cfg::Paper, 4, 1002, A::H1, 0x40d086e28b23981a, 120, 9),
    (Cfg::Paper, 4, 1002, A::H2(1.03), 0x40d086e28b23981a, 120, 9),
    (Cfg::Paper, 4, 1002, A::EaAll, 0x40c2b43d3efb3237, 4056, 276),
    (Cfg::Paper, 4, 1002, A::EaPrune, 0x40c2b43d3efb3237, 366, 25),
    (Cfg::Paper, 5, 1000, A::DPhyp, 0x4084539a4ebdb686, 22, 11),
    (Cfg::Paper, 5, 1000, A::H1, 0x407ef01ca1f90506, 132, 11),
    (Cfg::Paper, 5, 1000, A::H2(1.03), 0x407ef01ca1f90506, 132, 11),
    (Cfg::Paper, 5, 1000, A::EaAll, 0x407ef01ca1f90506, 33348, 2781),
    (Cfg::Paper, 5, 1000, A::EaPrune, 0x407ef01ca1f90506, 264, 19),
    (Cfg::Paper, 5, 1001, A::DPhyp, 0x40616e38fe72b8a0, 50, 16),
    (Cfg::Paper, 5, 1001, A::H1, 0x40616e38fe72b8a0, 194, 16),
    (Cfg::Paper, 5, 1001, A::H2(1.03), 0x4061af94741ea668, 194, 16),
    (Cfg::Paper, 5, 1001, A::EaAll, 0x40616e38fe72b8a0, 13788, 1651),
    (Cfg::Paper, 5, 1001, A::EaPrune, 0x40616e38fe72b8a0, 520, 38),
    (Cfg::Paper, 5, 1002, A::DPhyp, 0x40bb6eb9a5bffb60, 19, 11),
    (Cfg::Paper, 5, 1002, A::H1, 0x40bb6eb9a5bffb60, 99, 11),
    (Cfg::Paper, 5, 1002, A::H2(1.03), 0x40bb6eb9a5bffb60, 99, 11),
    (Cfg::Paper, 5, 1002, A::EaAll, 0x40bb6eb9a5bffb60, 6341, 555),
    (Cfg::Paper, 5, 1002, A::EaPrune, 0x40bb6eb9a5bffb60, 220, 23),
    (Cfg::Paper, 6, 1000, A::DPhyp, 0x40eb25e8b9015b6c, 15, 12),
    (Cfg::Paper, 6, 1000, A::H1, 0x40eb1468af295929, 81, 12),
    (Cfg::Paper, 6, 1000, A::H2(1.03), 0x40eb1468af295929, 81, 12),
    (Cfg::Paper, 6, 1000, A::EaAll, 0x40eb1468af295929, 10624, 822),
    (Cfg::Paper, 6, 1000, A::EaPrune, 0x40eb1468af295929, 130, 19),
    (Cfg::Paper, 6, 1001, A::DPhyp, 0x41328e938db5f005, 13, 11),
    (Cfg::Paper, 6, 1001, A::H1, 0x40de8ceb53b8a0cc, 69, 11),
    (Cfg::Paper, 6, 1001, A::H2(1.03), 0x40decd9756d1ac00, 69, 11),
    (Cfg::Paper, 6, 1001, A::EaAll, 0x40de4f96b97657ce, 21780, 1086),
    (Cfg::Paper, 6, 1001, A::EaPrune, 0x40de4f96b97657ce, 198, 20),
    (Cfg::Paper, 6, 1002, A::DPhyp, 0x40b90206175c99ec, 24, 14),
    (Cfg::Paper, 6, 1002, A::H1, 0x40a4c5b3c08ee228, 138, 14),
    (Cfg::Paper, 6, 1002, A::H2(1.03), 0x40a4c5b3c08ee228, 138, 14),
    (Cfg::Paper, 6, 1002, A::EaAll, 0x40a4c5b3c08ee228, 66570, 7778),
    (Cfg::Paper, 6, 1002, A::EaPrune, 0x40a4c5b3c08ee228, 292, 26),
];

#[test]
fn engine_matches_seed_goldens_bit_for_bit() {
    for &(cfg, n, seed, algo, cost_bits, plans_built, retained) in GOLDEN {
        let query = generate_query(&cfg.config(n), seed);
        let r = optimize(&query, algo);
        assert_eq!(
            cost_bits,
            r.plan.cost.to_bits(),
            "cost diverges from seed behavior (n={n}, seed={seed}, {}): {} vs {}",
            algo.name(),
            f64::from_bits(cost_bits),
            r.plan.cost
        );
        assert_eq!(
            plans_built,
            r.plans_built,
            "plans_built diverges (n={n}, seed={seed}, {})",
            algo.name()
        );
        assert_eq!(
            retained,
            r.retained_plans,
            "retained_plans diverges (n={n}, seed={seed}, {})",
            algo.name()
        );
    }
}

/// The layered parallel engine must reproduce the same seed goldens: the
/// stratified evaluation order and the worker/merge replay may not change
/// a single observable bit, for any thread count.
#[test]
fn layered_engine_matches_goldens_at_2_and_8_threads() {
    for &threads in &[2usize, 8] {
        for &(cfg, n, seed, algo, cost_bits, plans_built, retained) in GOLDEN {
            let query = generate_query(&cfg.config(n), seed);
            let r = optimize_with(&query, algo, &with_threads(threads));
            assert_eq!(
                cost_bits,
                r.plan.cost.to_bits(),
                "cost diverges at threads={threads} (n={n}, seed={seed}, {}): {} vs {}",
                algo.name(),
                f64::from_bits(cost_bits),
                r.plan.cost
            );
            assert_eq!(
                plans_built,
                r.plans_built,
                "plans_built diverges at threads={threads} (n={n}, seed={seed}, {})",
                algo.name()
            );
            assert_eq!(
                retained,
                r.retained_plans,
                "retained_plans diverges at threads={threads} (n={n}, seed={seed}, {})",
                algo.name()
            );
        }
    }
}

/// Wide-but-cheap queries (single-plan classes, many pairs per stratum)
/// push the layered engine past its fan-out threshold even for the
/// heuristics, covering the worker/merge path the small goldens reach
/// only with the EA searches.
#[test]
fn layered_workers_match_streaming_on_wide_queries() {
    for n in [10usize, 12] {
        for seed in [1000u64, 1001] {
            let query = generate_query(&GenConfig::paper(n), seed);
            for algo in [A::DPhyp, A::H1, A::H2(1.03), A::EaPrune] {
                let seq = optimize_with(&query, algo, &with_threads(1));
                let par = optimize_with(&query, algo, &with_threads(4));
                assert_eq!(
                    seq.plan.cost.to_bits(),
                    par.plan.cost.to_bits(),
                    "cost diverges (n={n}, seed={seed}, {})",
                    algo.name()
                );
                assert_eq!(seq.plans_built, par.plans_built, "n={n} seed={seed}");
                assert_eq!(seq.retained_plans, par.retained_plans, "n={n} seed={seed}");
            }
        }
    }
}

/// Observable signature of a collect-all enumeration, independent of
/// arena positions (raw `PlanId`s differ between drivers): per-class
/// plan sequences and the complete-plan stream, both order-preserving,
/// projected to (set, cost, card, applied-mask) tuples.
type PlanSig = (u64, u64, u64, u64);

fn collect_all_signature(
    query: &Query,
    threads: usize,
) -> (Vec<(u64, Vec<PlanSig>)>, Vec<PlanSig>) {
    let (_ctx, memo, plans) = all_subplans_with(query, threads);
    let sig = |memo: &Memo, id| {
        let p = &memo[id];
        (p.set.0, p.cost.to_bits(), p.card.to_bits(), p.applied)
    };
    let classes = memo
        .classes_sorted()
        .into_iter()
        .map(|(s, ids)| (s.0, ids.iter().map(|&id| sig(&memo, id)).collect()))
        .collect();
    // `all_subplans` returns the retained ids first, then the complete
    // stream in enumeration order.
    let retained = memo.retained() as usize;
    let completes = plans[retained..].iter().map(|&id| sig(&memo, id)).collect();
    (classes, completes)
}

/// Golden for the class-partitioned replay: a paper-workload query whose
/// widest stratum buckets enough candidates that dozens of plan classes
/// fold concurrently — and the outcome still matches the streaming driver
/// bit for bit.
#[test]
fn wide_stratum_replays_many_classes_concurrently() {
    let query = generate_query(&GenConfig::paper(11), 1000);
    let seq = optimize_with(&query, A::EaPrune, &with_threads(1));
    let par = optimize_with(&query, A::EaPrune, &with_threads(8));
    assert!(
        par.memo.peak_replay_classes >= 8,
        "expected a wide parallel replay, got {} classes",
        par.memo.peak_replay_classes
    );
    assert_eq!(seq.plan.cost.to_bits(), par.plan.cost.to_bits());
    assert_eq!(seq.plans_built, par.plans_built);
    assert_eq!(seq.retained_plans, par.retained_plans);
    assert_eq!(
        seq.memo.prune_attempts, par.memo.prune_attempts,
        "per-worker prune tallies must reduce to the streaming totals"
    );
    assert_eq!(seq.memo.prune_rejected, par.memo.prune_rejected);
    assert_eq!(seq.memo.prune_evicted, par.memo.prune_evicted);
    assert_eq!(seq.memo.peak_class_width, par.memo.peak_class_width);
    // The phase split is instrumented on both drivers; the streaming
    // driver reports a zero replay share.
    assert!(par.memo.worker_nanos > 0 && par.memo.replay_nanos > 0);
    assert!(seq.memo.worker_nanos > 0 && seq.memo.replay_nanos == 0);
}

/// Golden for the fanned-out merge bucketing: a stratum wide enough that
/// grouping the shards' candidate streams by target class itself runs on
/// the worker pool (hash-partitioned by class). The engine must record
/// that it did — and the result must still match streaming bit for bit,
/// with the LPT imbalance counter showing a sane (>= fair-share) reading.
#[test]
fn wide_stratum_buckets_candidates_in_parallel() {
    let query = generate_query(&GenConfig::paper(11), 1000);
    let seq = optimize_with(&query, A::EaPrune, &with_threads(1));
    let par = optimize_with(&query, A::EaPrune, &with_threads(8));
    assert!(
        par.memo.par_bucket_strata >= 1,
        "expected at least one stratum to fan its bucketing out, got {}",
        par.memo.par_bucket_strata
    );
    // The LPT skew statistic is recorded whenever a replay fanned out;
    // the most loaded worker carries at least its fair share (100).
    assert!(
        par.memo.lpt_imbalance_x100 >= 100,
        "LPT imbalance below fair share: {}",
        par.memo.lpt_imbalance_x100
    );
    assert!(seq.memo.par_bucket_strata == 0 && seq.memo.lpt_imbalance_x100 == 0);
    assert_eq!(seq.plan.cost.to_bits(), par.plan.cost.to_bits());
    assert_eq!(seq.plans_built, par.plans_built);
    assert_eq!(seq.retained_plans, par.retained_plans);
    assert_eq!(seq.memo.prune_attempts, par.memo.prune_attempts);
    assert_eq!(seq.memo.prune_rejected, par.memo.prune_rejected);
    assert_eq!(seq.memo.prune_evicted, par.memo.prune_evicted);
    assert_eq!(seq.memo.peak_class_width, par.memo.peak_class_width);
}

/// The collect-all policy is layered-capable too (workers record every
/// complete plan): class contents and the complete stream — as content
/// signatures, since arena positions legitimately differ — must match the
/// streaming driver exactly.
#[test]
fn collect_all_matches_streaming_across_thread_counts() {
    // Exponential policy: small queries only. The paper workload's
    // collect-all classes are wide enough that mid strata exceed the
    // fan-out threshold even at these sizes.
    for n in [5usize, 6] {
        for seed in [1000u64, 1001, 1002] {
            let query = generate_query(&GenConfig::paper(n), seed);
            let seq = collect_all_signature(&query, 1);
            for threads in [2usize, 8] {
                let par = collect_all_signature(&query, threads);
                assert_eq!(
                    seq, par,
                    "collect-all diverges (n={n}, seed={seed}, threads={threads})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// §4.6 under the memo representation: dominance pruning never loses
    /// the optimal plan on random 2–6 table queries.
    #[test]
    fn ea_prune_cost_equals_ea_all(n in 2usize..=6, seed in 0u64..1_000_000) {
        let query = generate_query(&GenConfig::oracle(n), seed);
        let all = optimize(&query, A::EaAll);
        let pruned = optimize(&query, A::EaPrune);
        prop_assert!(
            (all.plan.cost - pruned.plan.cost).abs() <= 1e-9 * all.plan.cost.max(1.0),
            "EA-Prune lost optimality (n={}, seed={}): {} vs {}",
            n, seed, all.plan.cost, pruned.plan.cost
        );
        prop_assert!(pruned.retained_plans <= all.retained_plans);
        prop_assert!(pruned.plans_built <= all.plans_built);
    }

}

proptest! {
    // Heavier generators (EA-All up to 7 relations, three thread counts
    // each): fewer cases keep the default `cargo test` fast while the
    // 2–7 relation range still reaches deep multi-stratum fan-outs.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The thread count is not allowed to influence anything observable:
    /// costs, plans built, retained DP state and the reduced prune
    /// counters are bit-identical across `threads ∈ {1, 2, 8}` for all
    /// five algorithms — which exercise both keep-best policies — under
    /// the class-partitioned replay.
    #[test]
    fn thread_count_never_changes_results(n in 2usize..=7, seed in 0u64..1_000_000) {
        let query = generate_query(&GenConfig::oracle(n), seed);
        for algo in [A::DPhyp, A::H1, A::H2(1.03), A::EaAll, A::EaPrune] {
            let seq = optimize_with(&query, algo, &with_threads(1));
            for threads in [2usize, 8] {
                let par = optimize_with(&query, algo, &with_threads(threads));
                prop_assert_eq!(
                    seq.plan.cost.to_bits(), par.plan.cost.to_bits(),
                    "cost diverges at threads={} (n={}, seed={}, {})",
                    threads, n, seed, algo.name()
                );
                prop_assert_eq!(seq.plans_built, par.plans_built,
                    "plans_built diverges at threads={} (n={}, seed={}, {})",
                    threads, n, seed, algo.name());
                prop_assert_eq!(seq.retained_plans, par.retained_plans,
                    "retained_plans diverges at threads={} (n={}, seed={}, {})",
                    threads, n, seed, algo.name());
                prop_assert_eq!(seq.memo.prune_attempts, par.memo.prune_attempts,
                    "prune_attempts diverges at threads={} (n={}, seed={}, {})",
                    threads, n, seed, algo.name());
                prop_assert_eq!(
                    seq.memo.prune_rejected + seq.memo.prune_evicted,
                    par.memo.prune_rejected + par.memo.prune_evicted,
                    "prune outcomes diverge at threads={} (n={}, seed={}, {})",
                    threads, n, seed, algo.name());
                prop_assert_eq!(seq.memo.peak_class_width, par.memo.peak_class_width,
                    "peak_class_width diverges at threads={} (n={}, seed={}, {})",
                    threads, n, seed, algo.name());
            }
        }
    }

    /// The third policy — collect-all — under the same contract: class
    /// contents and the complete stream match streaming for any thread
    /// count on random 2–7 table queries.
    #[test]
    fn collect_all_thread_parity(n in 2usize..=7, seed in 0u64..1_000_000) {
        let query = generate_query(&GenConfig::oracle(n), seed);
        let seq = collect_all_signature(&query, 1);
        for threads in [2usize, 8] {
            let par = collect_all_signature(&query, threads);
            prop_assert_eq!(
                &seq, &par,
                "collect-all diverges at threads={} (n={}, seed={})",
                threads, n, seed
            );
        }
    }

    /// Invariant of the split (hot/cold) arena layout: the flag bits the
    /// dominance fast path reads from the 40-byte hot row must be a
    /// faithful mirror of the cold payload they were derived from, for
    /// every plan any driver builds — a stale or miscopied flag would
    /// silently change pruning outcomes without failing any cost golden.
    #[test]
    fn hot_rows_mirror_cold_payload(n in 2usize..=6, seed in 0u64..1_000_000) {
        let query = generate_query(&GenConfig::oracle(n), seed);
        for threads in [1usize, 2, 8] {
            let (_ctx, memo, plans) = all_subplans_with(&query, threads);
            for &id in &plans {
                let plan = memo.plan(id);
                prop_assert_eq!(
                    plan.hot.duplicate_free(), plan.cold.keyinfo.duplicate_free,
                    "dup-free flag diverges from keyinfo (n={}, seed={}, threads={})",
                    n, seed, threads
                );
                prop_assert_eq!(plan.hot.set, memo[id].set);
            }
        }
    }
}

/// Pooled-memo regression: `optimize_into` on a recycled memo must
/// report exactly the same result and statistics as a fresh run — in
/// particular the rollback high-water mark (`arena_peak`) and the prune
/// counters, which a missed [`Memo::reset`] would leak from the
/// previous query.
#[test]
fn pooled_memo_reuse_matches_fresh_stats() {
    let opts = OptimizeOptions::default();
    let queries: Vec<Query> = (0..6)
        .map(|seed| generate_query(&GenConfig::paper(3 + (seed as usize % 3)), seed))
        .collect();
    for algo in [A::DPhyp, A::H1, A::EaAll, A::EaPrune] {
        let mut memo = Memo::new();
        // First pass dirties the memo with each query in turn; second
        // pass re-optimizes after the memo served a *different* query.
        for pass in 0..2 {
            for (i, query) in queries.iter().enumerate() {
                let fresh = optimize_with(query, algo, &opts);
                let pooled = dpnext_core::optimize_into(query, algo, &opts, &mut memo);
                let what = format!("{} query {i} pass {pass}", algo.name());
                assert_eq!(
                    fresh.plan.cost.to_bits(),
                    pooled.plan.cost.to_bits(),
                    "{what}: cost"
                );
                assert_eq!(fresh.plans_built, pooled.plans_built, "{what}: plans_built");
                assert_eq!(
                    fresh.retained_plans, pooled.retained_plans,
                    "{what}: retained"
                );
                assert_eq!(
                    fresh.memo.arena_plans, pooled.memo.arena_plans,
                    "{what}: arena_plans"
                );
                assert_eq!(
                    fresh.memo.arena_peak, pooled.memo.arena_peak,
                    "{what}: arena_peak"
                );
                assert_eq!(
                    fresh.memo.peak_class_width, pooled.memo.peak_class_width,
                    "{what}: peak_class_width"
                );
                assert_eq!(
                    (
                        fresh.memo.prune_attempts,
                        fresh.memo.prune_rejected,
                        fresh.memo.prune_evicted
                    ),
                    (
                        pooled.memo.prune_attempts,
                        pooled.memo.prune_rejected,
                        pooled.memo.prune_evicted
                    ),
                    "{what}: prune counters"
                );
                assert_eq!(fresh.explain, pooled.explain, "{what}: explain");
            }
        }
        // The arena allocation really was recycled, not reallocated per
        // run: capacity stays at the high-water mark of the query set.
        assert!(memo.arena_capacity() > 0);
    }
}
