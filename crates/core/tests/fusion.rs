//! Correctness of the groupjoin fusion pass (§A.5.1, Eqvs. 98–100):
//! fused plans must be bag-equal to the unfused ones, and fusion must
//! actually fire on the plan shapes eager aggregation produces.

use dpnext_core::{fuse_groupjoins, optimize, Algorithm};
use dpnext_workload::{ex_query, generate_data, generate_query, GenConfig, OpWeights};

#[test]
fn fused_plans_agree_on_random_queries() {
    let mut total_fusions = 0;
    for n in 2..=5 {
        let cfg = GenConfig::oracle(n);
        for seed in 800..830 {
            let query = generate_query(&cfg, seed);
            let db = generate_data(&query, 8, 0.15, seed);
            for algo in [Algorithm::EaPrune, Algorithm::H1] {
                let opt = optimize(&query, algo);
                let (fused, fusions) = fuse_groupjoins(&opt.plan.root);
                total_fusions += fusions;
                let a = opt.plan.root.eval(&db);
                let b = fused.eval(&db);
                assert!(
                    a.bag_eq(&b),
                    "fusion changed the result (n={n}, seed={seed}, {})\nbefore:\n{}\nafter:\n{fused}",
                    algo.name(),
                    opt.plan.root,
                );
            }
        }
    }
    assert!(
        total_fusions > 0,
        "fusion never fired across the whole workload"
    );
}

#[test]
fn fusion_fires_on_outer_join_pushdown() {
    // Left-outer queries where the grouping is pushed into the right side
    // produce the ⟕+Γ pattern the pass targets.
    let mut cfg = GenConfig::oracle(3);
    cfg.ops = OpWeights {
        join: 0,
        left_outer: 1,
        full_outer: 0,
        semi: 0,
        anti: 0,
        groupjoin: 0,
    };
    let mut fired = 0;
    for seed in 840..880 {
        let query = generate_query(&cfg, seed);
        let opt = optimize(&query, Algorithm::EaPrune);
        let (fused, n) = fuse_groupjoins(&opt.plan.root);
        fired += n;
        if n > 0 {
            // The fused plan has fewer operators.
            assert!(fused.operator_count() < opt.plan.root.operator_count());
            let db = generate_data(&query, 8, 0.1, seed);
            assert!(fused.eval(&db).bag_eq(&opt.plan.root.eval(&db)));
        }
    }
    assert!(
        fired > 0,
        "no ⟕+Γ fusion opportunity in 40 outer-join queries"
    );
}

#[test]
fn fusion_fires_on_ex_and_stays_comparable() {
    // On the introductory query the eager plan groups supplier/customer by
    // nation key and joins: both inner joins fuse. The groupjoin emits one
    // row per *left* tuple (unmatched nations included), so measured C_out
    // may differ slightly from the Γ+⋈ pair in either direction — it must
    // stay comparable, and the result identical. (The real benefit of the
    // fusion is the saved build/probe of a separate grouping, which C_out
    // does not model.)
    let ex = ex_query();
    let opt = optimize(&ex.query, Algorithm::EaPrune);
    let (fused, n) = fuse_groupjoins(&opt.plan.root);
    assert!(n >= 1, "expected fusions on Ex, plan:\n{}", opt.plan.root);
    // Inner-join fusion trades Γ+⋈ for Z+σ (same count); every fusion
    // removes one grouping operator.
    assert!(fused.operator_count() <= opt.plan.root.operator_count());
    assert_eq!(
        opt.plan.root.grouping_count() - n,
        fused.grouping_count(),
        "each fusion removes exactly one Γ"
    );
    let db = ex.database(0.003, 5);
    let (a, cost_plain) = opt.plan.root.eval_counting(&db);
    let (b, cost_fused) = fused.eval_counting(&db);
    assert!(a.bag_eq(&b));
    let ratio = cost_fused as f64 / cost_plain as f64;
    assert!(
        (0.5..=1.5).contains(&ratio),
        "C_out changed wildly: {cost_fused} vs {cost_plain}"
    );
}

#[test]
fn fusion_is_idempotent() {
    let ex = ex_query();
    let opt = optimize(&ex.query, Algorithm::EaPrune);
    let (once, n1) = fuse_groupjoins(&opt.plan.root);
    let (twice, n2) = fuse_groupjoins(&once);
    assert!(n1 > 0);
    assert_eq!(0, n2, "second pass found more fusions");
    assert_eq!(once, twice);
}

#[test]
fn fusion_respects_needed_attributes() {
    // The canonical plan's top grouping references base attributes from
    // the joined relations; a grouped side whose attributes feed the top
    // grouping must NOT be fused away. We verify on random queries where
    // fusion did not fire that results still match (trivially) and that
    // fused trees never lose attributes the projection needs — covered by
    // successful evaluation (missing attributes panic).
    for seed in 880..900 {
        let query = generate_query(&GenConfig::oracle(4), seed);
        let db = generate_data(&query, 6, 0.1, seed);
        let opt = optimize(&query, Algorithm::EaAll);
        let (fused, _) = fuse_groupjoins(&opt.plan.root);
        let _ = fused.eval(&db); // must not panic
    }
}
