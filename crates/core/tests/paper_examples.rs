//! Reproduction of the paper's §4.4 running example (Fig. 11 / Table 1)
//! and the Bellman-violation it demonstrates.

use dpnext_algebra::{AggCall, AggKind, AlgExpr, Expr, JoinPred};
use dpnext_core::{optimize, Algorithm};
use dpnext_workload::fig11::{fig11_database, fig11_query, A, D, DCOUNT, E, F};

/// The lazy plan of Fig. 11 (left): grouping on top.
fn lazy_plan() -> AlgExpr {
    AlgExpr::GroupBy {
        input: Box::new(AlgExpr::InnerJoin {
            left: Box::new(AlgExpr::scan("R0")),
            right: Box::new(AlgExpr::InnerJoin {
                left: Box::new(AlgExpr::scan("R1")),
                right: Box::new(AlgExpr::scan("R2")),
                pred: JoinPred::eq(D, E),
            }),
            pred: JoinPred::eq(A, F),
        }),
        attrs: vec![D],
        aggs: vec![AggCall::count_star(DCOUNT)],
    }
}

/// The eager plan of Fig. 11 (right): `Γ_{d; d' : count(*)}` pushed below
/// both joins, the top grouping summing the partial counts.
fn eager_plan(with_top_grouping: bool) -> AlgExpr {
    let dprime = dpnext_algebra::AttrId(50);
    let joined = AlgExpr::InnerJoin {
        left: Box::new(AlgExpr::scan("R0")),
        right: Box::new(AlgExpr::InnerJoin {
            left: Box::new(AlgExpr::GroupBy {
                input: Box::new(AlgExpr::scan("R1")),
                attrs: vec![D],
                aggs: vec![AggCall::count_star(dprime)],
            }),
            right: Box::new(AlgExpr::scan("R2")),
            pred: JoinPred::eq(D, E),
        }),
        pred: JoinPred::eq(A, F),
    };
    if with_top_grouping {
        AlgExpr::GroupBy {
            input: Box::new(joined),
            attrs: vec![D],
            aggs: vec![AggCall::new(DCOUNT, AggKind::Sum, Expr::attr(dprime))],
        }
    } else {
        // d is a key of the joined result: replace the grouping by a map
        // plus duplicate-preserving projection (free under C_out).
        AlgExpr::Project {
            input: Box::new(AlgExpr::Map {
                input: Box::new(joined),
                exts: vec![(DCOUNT, Expr::attr(dprime))],
            }),
            attrs: vec![D, DCOUNT],
            dedup: false,
        }
    }
}

/// Table 1: the measured `C_out` values of both operator trees.
#[test]
fn table1_costs() {
    let db = fig11_database();
    let (lazy_res, lazy_cost) = lazy_plan().eval_counting(&db);
    assert_eq!(10, lazy_cost); // C_out(Γ(e_{0,1,2})) = 10

    let (eager_res, eager_cost) = eager_plan(true).eval_counting(&db);
    assert_eq!(9, eager_cost); // C_out(Γ(e'_{0,1,2})) = 9
    assert!(lazy_res.bag_eq(&eager_res));

    let (elim_res, elim_cost) = eager_plan(false).eval_counting(&db);
    assert_eq!(7, elim_cost); // final grouping replaced by a projection
    assert!(lazy_res.bag_eq(&elim_res));
}

/// The optimizer finds (at least) the cost-7 plan; the baseline stays at
/// the lazy tree's cost.
#[test]
fn optimizer_beats_baseline_on_fig11() {
    let q = fig11_query();
    let db = fig11_database();
    let expected = q.canonical_plan().eval(&db);

    let base = optimize(&q, Algorithm::DPhyp);
    let (base_res, base_cost) = base.plan.root.eval_counting(&db);
    assert!(base_res.bag_eq(&expected));

    let ea = optimize(&q, Algorithm::EaPrune);
    let (ea_res, ea_cost) = ea.plan.root.eval_counting(&db);
    assert!(ea_res.bag_eq(&expected));

    assert!(
        ea_cost <= base_cost,
        "eager aggregation must not lose: {ea_cost} vs {base_cost}"
    );
    // The eager plan eliminates the top grouping entirely (measured
    // C_out = 7, Table 1's right column after projection).
    assert_eq!(7, ea_cost);
    assert!(!ea.plan.top_grouping);
}

/// H1 — as §4.4 explains — discards the eager subplan because its local
/// cost is higher, ending up with the more expensive tree. H2 with a
/// tolerance factor recovers it.
#[test]
fn h1_falls_into_bellman_trap_h2_recovers() {
    let q = fig11_query();
    let h1 = optimize(&q, Algorithm::H1);
    let h2 = optimize(&q, Algorithm::H2(1.5));
    let opt = optimize(&q, Algorithm::EaPrune);
    assert!(opt.plan.cost <= h1.plan.cost);
    assert!(opt.plan.cost <= h2.plan.cost + 1e-9);
    // H2 (with a generous factor) reaches the optimum on this instance.
    assert!(
        (h2.plan.cost - opt.plan.cost).abs() < 1e-9,
        "h2={} opt={}",
        h2.plan.cost,
        opt.plan.cost
    );
}

/// EA-All and EA-Prune agree on the example.
#[test]
fn pruning_is_lossless_on_fig11() {
    let q = fig11_query();
    let all = optimize(&q, Algorithm::EaAll);
    let pruned = optimize(&q, Algorithm::EaPrune);
    assert!((all.plan.cost - pruned.plan.cost).abs() < 1e-9);
    assert!(pruned.plans_built <= all.plans_built);
}
