//! Property validation of the key-inference rules (§2.3) and the
//! cardinality estimator: for every plan EA-All enumerates on small random
//! queries, compile and execute it; every claimed candidate key must hold
//! on the actual result, and a claimed duplicate-free result must contain
//! no duplicates. Wrong key claims would make `NeedsGrouping` drop
//! necessary groupings — this test pins the soundness boundary.

use dpnext_core::{all_subplans, compile, PlanStore};
use dpnext_workload::{generate_data, generate_query, GenConfig, OpWeights};

#[test]
fn claimed_keys_hold_on_executed_results() {
    for n in 2..=4 {
        let mut cfg = GenConfig::oracle(n);
        cfg.ops = OpWeights::mixed();
        for seed in 700..715 {
            let query = generate_query(&cfg, seed);
            let db = generate_data(&query, 6, 0.1, seed);
            let (ctx, memo, plans) = all_subplans(&query);
            for &id in &plans {
                let plan = memo.plan(id);
                let rel = compile(&ctx, &memo, id).eval(&db);
                if plan.cold.keyinfo.duplicate_free {
                    assert!(
                        rel.is_duplicate_free(),
                        "plan claims duplicate-freeness but result has duplicates \
                         (n={n}, seed={seed}):\n{}",
                        compile(&ctx, &memo, id)
                    );
                }
                for key in plan.cold.keyinfo.keys.keys() {
                    // A key claim additionally requires duplicate-freeness
                    // to be meaningful for NeedsGrouping; check the
                    // combination the optimizer actually relies on.
                    if !plan.cold.keyinfo.duplicate_free {
                        continue;
                    }
                    let proj = dpnext_algebra::ops::project(&rel, key, false);
                    assert!(
                        proj.is_duplicate_free(),
                        "claimed key {key:?} violated (n={n}, seed={seed}):\n{}",
                        compile(&ctx, &memo, id)
                    );
                }
            }
        }
    }
}

#[test]
fn subplan_enumeration_is_substantial() {
    // Guard against silently empty enumerations.
    let query = generate_query(&GenConfig::oracle(4), 3);
    let (_, _, plans) = all_subplans(&query);
    assert!(plans.len() > 10, "only {} plans enumerated", plans.len());
}
