//! The end-to-end correctness oracle: every plan produced by every
//! algorithm, compiled and executed on real data, must be bag-equal to the
//! canonical (unoptimized) plan. This validates the §3 equivalences, the
//! conflict detector, key inference, aggregation-state rewriting and plan
//! compilation together.
//!
//! Each family runs a quick smoke subset by default so `cargo test -q`
//! stays fast; the full paper-scale seed sweeps (~3 min in debug) are
//! `#[ignore]`d and run by the dedicated `slow-oracle` CI job via
//! `cargo test --release -- --ignored`.

use dpnext_core::{optimize, Algorithm};
use dpnext_workload::{generate_data, generate_query, GenConfig, OpWeights};
use std::ops::Range;

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::DPhyp,
        Algorithm::H1,
        Algorithm::H2(1.03),
        Algorithm::EaAll,
        Algorithm::EaPrune,
    ]
}

fn check_seed(cfg: &GenConfig, seed: u64) {
    let query = generate_query(cfg, seed);
    let db = generate_data(&query, 8, 0.15, seed.wrapping_mul(31).wrapping_add(7));
    let expected = query.canonical_plan().eval(&db);
    for algo in algorithms() {
        let opt = optimize(&query, algo);
        let got = opt.plan.root.eval(&db);
        assert!(
            got.bag_eq(&expected),
            "algorithm {} differs from canonical on seed {seed} (n={})\nplan:\n{}\nexpected:\n{expected}\ngot:\n{got}",
            algo.name(),
            cfg.n_relations,
            opt.plan.root,
        );
    }
}

fn check_mixed_operators(sizes: Range<usize>, seeds: Range<u64>) {
    for n in sizes {
        let cfg = GenConfig::oracle(n);
        for seed in seeds.clone() {
            check_seed(&cfg, seed);
        }
    }
}

#[test]
fn oracle_mixed_operators_smoke() {
    check_mixed_operators(2..5, 0..8);
}

#[test]
#[ignore = "paper-scale seed sweep; run via `cargo test --release -- --ignored`"]
fn oracle_mixed_operators_full() {
    check_mixed_operators(2..6, 0..30);
}

fn check_inner_joins_only(sizes: Range<usize>, seeds: Range<u64>) {
    for n in sizes {
        let mut cfg = GenConfig::oracle(n);
        cfg.ops = OpWeights::inner_only();
        for seed in seeds.clone() {
            check_seed(&cfg, seed);
        }
    }
}

#[test]
fn oracle_inner_joins_only_smoke() {
    check_inner_joins_only(2..5, 100..106);
}

#[test]
#[ignore = "paper-scale seed sweep; run via `cargo test --release -- --ignored`"]
fn oracle_inner_joins_only_full() {
    check_inner_joins_only(2..7, 100..120);
}

fn check_outer_join_heavy(sizes: Range<usize>, seeds: Range<u64>) {
    for n in sizes {
        let mut cfg = GenConfig::oracle(n);
        cfg.ops = OpWeights {
            join: 1,
            left_outer: 3,
            full_outer: 3,
            semi: 1,
            anti: 1,
            groupjoin: 0,
        };
        for seed in seeds.clone() {
            check_seed(&cfg, seed);
        }
    }
}

#[test]
fn oracle_outer_join_heavy_smoke() {
    check_outer_join_heavy(2..5, 200..208);
}

#[test]
#[ignore = "paper-scale seed sweep; run via `cargo test --release -- --ignored`"]
fn oracle_outer_join_heavy_full() {
    check_outer_join_heavy(2..6, 200..225);
}

fn check_no_nulls(sizes: Range<usize>, seeds: Range<u64>) {
    // Without NULLs the data exercises the multiplicity bookkeeping alone.
    for n in sizes {
        let cfg = GenConfig::oracle(n);
        for seed in seeds.clone() {
            let query = generate_query(&cfg, seed);
            let db = generate_data(&query, 8, 0.0, seed);
            let expected = query.canonical_plan().eval(&db);
            for algo in algorithms() {
                let opt = optimize(&query, algo);
                let got = opt.plan.root.eval(&db);
                assert!(
                    got.bag_eq(&expected),
                    "{} differs on seed {seed} (n={n})",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn oracle_no_nulls_smoke() {
    check_no_nulls(2..5, 300..306);
}

#[test]
#[ignore = "paper-scale seed sweep; run via `cargo test --release -- --ignored`"]
fn oracle_no_nulls_full() {
    check_no_nulls(2..6, 300..315);
}

fn check_with_groupjoins(sizes: Range<usize>, seeds: Range<u64>) {
    // Groupjoin queries exercise Eqvs. 39–41 (grouping pushed into the
    // groupjoin's left argument) and the raw-right-side restriction.
    for n in sizes {
        let mut cfg = GenConfig::oracle(n);
        cfg.ops = OpWeights::with_groupjoins();
        for seed in seeds.clone() {
            check_seed(&cfg, seed);
        }
    }
}

#[test]
fn oracle_with_groupjoins_smoke() {
    check_with_groupjoins(2..4, 600..610);
}

#[test]
#[ignore = "paper-scale seed sweep; run via `cargo test --release -- --ignored`"]
fn oracle_with_groupjoins_full() {
    check_with_groupjoins(2..5, 600..625);
}

fn check_prune_preserves_optimality(sizes: Range<usize>, seeds: Range<u64>) {
    // §4.6: the pruning criterion does not affect plan optimality — the
    // costs of EA-All and EA-Prune must be identical.
    for n in sizes {
        let cfg = GenConfig::oracle(n);
        for seed in seeds.clone() {
            let query = generate_query(&cfg, seed);
            let all = optimize(&query, Algorithm::EaAll);
            let pruned = optimize(&query, Algorithm::EaPrune);
            assert!(
                (all.plan.cost - pruned.plan.cost).abs() <= 1e-6 * all.plan.cost.max(1.0),
                "EA-Prune lost optimality on seed {seed} (n={n}): {} vs {}",
                all.plan.cost,
                pruned.plan.cost
            );
            // Pruning must never retain more plans than full enumeration.
            assert!(pruned.retained_plans <= all.retained_plans);
        }
    }
}

#[test]
fn ea_prune_preserves_optimality_smoke() {
    check_prune_preserves_optimality(2..5, 400..410);
}

#[test]
#[ignore = "paper-scale seed sweep; run via `cargo test --release -- --ignored`"]
fn ea_prune_preserves_optimality_full() {
    check_prune_preserves_optimality(2..6, 400..430);
}

#[test]
#[ignore = "paper-scale seed sweep; run via `cargo test --release -- --ignored`"]
fn ea_prune_preserves_optimality_at_paper_scale() {
    // Paper-scale cardinalities/selectivities stress the monotonicity of
    // the estimator (the antijoin/outerjoin match-probability fix);
    // EA-Prune must still equal EA-All exactly.
    for n in 3..=6 {
        let cfg = GenConfig::paper(n);
        for seed in 1000..1030 {
            let query = generate_query(&cfg, seed);
            let all = optimize(&query, Algorithm::EaAll);
            let pruned = optimize(&query, Algorithm::EaPrune);
            assert!(
                (all.plan.cost - pruned.plan.cost).abs() <= 1e-9 * all.plan.cost.max(1.0),
                "EA-Prune lost optimality on paper-scale seed {seed} (n={n}): {} vs {}",
                all.plan.cost,
                pruned.plan.cost
            );
        }
    }
}

fn check_optimal_never_worse(sizes: Range<usize>, seeds: Range<u64>) {
    for n in sizes {
        let cfg = GenConfig::oracle(n);
        for seed in seeds.clone() {
            let query = generate_query(&cfg, seed);
            let opt = optimize(&query, Algorithm::EaPrune).plan.cost;
            for algo in [Algorithm::DPhyp, Algorithm::H1, Algorithm::H2(1.05)] {
                let c = optimize(&query, algo).plan.cost;
                assert!(
                    opt <= c * (1.0 + 1e-9),
                    "EA-Prune ({opt}) worse than {} ({c}) on seed {seed}",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn optimal_never_worse_than_heuristics_or_baseline_smoke() {
    check_optimal_never_worse(2..5, 500..510);
}

#[test]
#[ignore = "paper-scale seed sweep; run via `cargo test --release -- --ignored`"]
fn optimal_never_worse_than_heuristics_or_baseline_full() {
    check_optimal_never_worse(2..6, 500..525);
}
