//! The end-to-end correctness oracle: every plan produced by every
//! algorithm, compiled and executed on real data, must be bag-equal to the
//! canonical (unoptimized) plan. This validates the §3 equivalences, the
//! conflict detector, key inference, aggregation-state rewriting and plan
//! compilation together.

use dpnext_core::{optimize, Algorithm};
use dpnext_workload::{generate_data, generate_query, GenConfig, OpWeights};

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::DPhyp,
        Algorithm::H1,
        Algorithm::H2(1.03),
        Algorithm::EaAll,
        Algorithm::EaPrune,
    ]
}

fn check_seed(cfg: &GenConfig, seed: u64) {
    let query = generate_query(cfg, seed);
    let db = generate_data(&query, 8, 0.15, seed.wrapping_mul(31).wrapping_add(7));
    let expected = query.canonical_plan().eval(&db);
    for algo in algorithms() {
        let opt = optimize(&query, algo);
        let got = opt.plan.root.eval(&db);
        assert!(
            got.bag_eq(&expected),
            "algorithm {} differs from canonical on seed {seed} (n={})\nplan:\n{}\nexpected:\n{expected}\ngot:\n{got}",
            algo.name(),
            cfg.n_relations,
            opt.plan.root,
        );
    }
}

#[test]
fn oracle_mixed_operators_small() {
    for n in 2..=5 {
        let cfg = GenConfig::oracle(n);
        for seed in 0..30 {
            check_seed(&cfg, seed);
        }
    }
}

#[test]
fn oracle_inner_joins_only() {
    for n in 2..=6 {
        let mut cfg = GenConfig::oracle(n);
        cfg.ops = OpWeights::inner_only();
        for seed in 100..120 {
            check_seed(&cfg, seed);
        }
    }
}

#[test]
fn oracle_outer_join_heavy() {
    for n in 2..=5 {
        let mut cfg = GenConfig::oracle(n);
        cfg.ops = OpWeights {
            join: 1,
            left_outer: 3,
            full_outer: 3,
            semi: 1,
            anti: 1,
            groupjoin: 0,
        };
        for seed in 200..225 {
            check_seed(&cfg, seed);
        }
    }
}

#[test]
fn oracle_no_nulls() {
    // Without NULLs the data exercises the multiplicity bookkeeping alone.
    for n in 2..=5 {
        let cfg = GenConfig::oracle(n);
        for seed in 300..315 {
            let query = generate_query(&cfg, seed);
            let db = generate_data(&query, 8, 0.0, seed);
            let expected = query.canonical_plan().eval(&db);
            for algo in algorithms() {
                let opt = optimize(&query, algo);
                let got = opt.plan.root.eval(&db);
                assert!(
                    got.bag_eq(&expected),
                    "{} differs on seed {seed} (n={n})",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn oracle_with_groupjoins() {
    // Groupjoin queries exercise Eqvs. 39–41 (grouping pushed into the
    // groupjoin's left argument) and the raw-right-side restriction.
    for n in 2..=4 {
        let mut cfg = GenConfig::oracle(n);
        cfg.ops = OpWeights::with_groupjoins();
        for seed in 600..625 {
            check_seed(&cfg, seed);
        }
    }
}

#[test]
fn ea_prune_preserves_optimality() {
    // §4.6: the pruning criterion does not affect plan optimality — the
    // costs of EA-All and EA-Prune must be identical.
    for n in 2..=5 {
        let cfg = GenConfig::oracle(n);
        for seed in 400..430 {
            let query = generate_query(&cfg, seed);
            let all = optimize(&query, Algorithm::EaAll);
            let pruned = optimize(&query, Algorithm::EaPrune);
            assert!(
                (all.plan.cost - pruned.plan.cost).abs() <= 1e-6 * all.plan.cost.max(1.0),
                "EA-Prune lost optimality on seed {seed} (n={n}): {} vs {}",
                all.plan.cost,
                pruned.plan.cost
            );
            // Pruning must never retain more plans than full enumeration.
            assert!(pruned.retained_plans <= all.retained_plans);
        }
    }
}

#[test]
fn ea_prune_preserves_optimality_at_paper_scale() {
    // Paper-scale cardinalities/selectivities stress the monotonicity of
    // the estimator (the antijoin/outerjoin match-probability fix);
    // EA-Prune must still equal EA-All exactly.
    for n in 3..=6 {
        let cfg = GenConfig::paper(n);
        for seed in 1000..1030 {
            let query = generate_query(&cfg, seed);
            let all = optimize(&query, Algorithm::EaAll);
            let pruned = optimize(&query, Algorithm::EaPrune);
            assert!(
                (all.plan.cost - pruned.plan.cost).abs() <= 1e-9 * all.plan.cost.max(1.0),
                "EA-Prune lost optimality on paper-scale seed {seed} (n={n}): {} vs {}",
                all.plan.cost,
                pruned.plan.cost
            );
        }
    }
}

#[test]
fn optimal_never_worse_than_heuristics_or_baseline() {
    for n in 2..=5 {
        let cfg = GenConfig::oracle(n);
        for seed in 500..525 {
            let query = generate_query(&cfg, seed);
            let opt = optimize(&query, Algorithm::EaPrune).plan.cost;
            for algo in [Algorithm::DPhyp, Algorithm::H1, Algorithm::H2(1.05)] {
                let c = optimize(&query, algo).plan.cost;
                assert!(
                    opt <= c * (1.0 + 1e-9),
                    "EA-Prune ({opt}) worse than {} ({c}) on seed {seed}",
                    algo.name()
                );
            }
        }
    }
}
