//! The plan-validity checker run against the exact engine: every complete
//! plan the collect-all enumeration produces — across topologies, operator
//! mixes and groupings — must satisfy the structural contract
//! (`validate_complete_plan`), and the retained partial plans the subplan
//! contract. The adaptive crate's tests hold the budgeted ladder to the
//! same checker; together they pin both plan producers to one invariant.

use dpnext_core::{all_subplans, validate_complete_plan, validate_subplan};
use dpnext_hypergraph::NodeSet;
use dpnext_workload::{generate_query, GenConfig, Topology};

const TOPOLOGIES: [Topology; 5] = [
    Topology::Paper,
    Topology::Chain,
    Topology::Star,
    Topology::Clique,
    Topology::Mixed,
];

fn check_all_plans(sizes: &[usize], seeds: u64) {
    for topo in TOPOLOGIES {
        for &n in sizes {
            for seed in 0..seeds {
                let q = generate_query(&GenConfig::topology(n, topo), seed);
                let (ctx, memo, plans) = all_subplans(&q);
                let full = NodeSet::full(n);
                let mut completes = 0usize;
                for id in plans {
                    if memo[id].set == full {
                        completes += 1;
                        validate_complete_plan(&ctx, &memo, id)
                    } else {
                        validate_subplan(&ctx, &memo, id)
                    }
                    .unwrap_or_else(|e| {
                        panic!("invalid engine plan ({topo:?} n={n} seed={seed}): {e}")
                    });
                }
                assert!(
                    completes > 0,
                    "no complete plan ({topo:?} n={n} seed={seed})"
                );
            }
        }
    }
}

#[test]
fn exact_engine_plans_validate() {
    check_all_plans(&[2, 4], 2);
}

/// The paper-scale sweep (n = 6 collect-all is expensive in debug); run by
/// the `slow-oracle` CI job via `cargo test --release -- --ignored`.
#[test]
#[ignore = "paper-scale sweep; run with --release -- --ignored"]
fn exact_engine_plans_validate_paper_scale() {
    check_all_plans(&[5, 6], 3);
}

#[test]
fn exact_engine_groupjoin_plans_validate() {
    let mut cfg = GenConfig::oracle(5);
    cfg.ops = dpnext_workload::OpWeights::with_groupjoins();
    for seed in 0..10u64 {
        let q = generate_query(&cfg, seed);
        let (ctx, memo, plans) = all_subplans(&q);
        let full = NodeSet::full(5);
        for id in plans.iter().copied().filter(|&id| memo[id].set == full) {
            validate_complete_plan(&ctx, &memo, id)
                .unwrap_or_else(|e| panic!("invalid groupjoin plan (seed={seed}): {e}"));
        }
    }
}
