//! Regression tests for `Optimized::elapsed`: the reported time measures
//! the *search*, not result presentation. `elapsed` used to be captured
//! after EXPLAIN rendering, so enabling `explain` silently inflated every
//! benchmark that trusted the field.

use dpnext_core::{optimize_with, Algorithm, OptimizeOptions};
use dpnext_workload::{generate_query, GenConfig};
use std::time::Duration;

fn opts(explain: bool) -> OptimizeOptions {
    OptimizeOptions {
        explain,
        threads: 1,
        ..OptimizeOptions::default()
    }
}

/// `elapsed` with EXPLAIN rendering on must be in the same ballpark as
/// with rendering off: rendering happens after the clock stops. The bound
/// (min-of-5 per mode, 2× + 5 ms slack) guards the contract, not the
/// scheduler — and it is honest about its limits: rendering one plan tree
/// costs microseconds against a milliseconds-scale search, so this test
/// catches EXPLAIN becoming *expensive* inside the timed region, while
/// the exact clock placement is pinned by the code itself
/// (`optimize_with` captures `elapsed` before building the string).
#[test]
fn elapsed_excludes_explain_rendering() {
    let query = generate_query(&GenConfig::paper(7), 1000);
    let min_on = (0..5)
        .map(|_| optimize_with(&query, Algorithm::EaPrune, &opts(true)).elapsed)
        .min()
        .unwrap();
    let min_off = (0..5)
        .map(|_| optimize_with(&query, Algorithm::EaPrune, &opts(false)).elapsed)
        .min()
        .unwrap();
    assert!(
        min_on <= min_off * 2 + Duration::from_millis(5),
        "elapsed with explain ({min_on:?}) far exceeds elapsed without ({min_off:?}): \
         is EXPLAIN rendering being timed again?"
    );
}

/// The EXPLAIN string is still produced when requested — the fix moved
/// the clock, not the rendering.
#[test]
fn explain_rendering_still_works() {
    let query = generate_query(&GenConfig::paper(5), 1000);
    let with = optimize_with(&query, Algorithm::EaPrune, &opts(true));
    let without = optimize_with(&query, Algorithm::EaPrune, &opts(false));
    assert!(with.explain.contains("C_out"));
    assert!(without.explain.is_empty());
    assert_eq!(with.plan.cost.to_bits(), without.plan.cost.to_bits());
}
