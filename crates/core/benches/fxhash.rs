//! Micro-benchmark backing the `core::fxhash` hasher swap: the memo's
//! plan-class map is a `NodeSet`-keyed hash map probed once per subplan
//! combination, so the per-lookup hashing cost is directly on the
//! enumeration hot path. This compares insert and lookup throughput of
//! the standard library's SipHash (`RandomState`) against the in-tree
//! multiply-xor `FxHasher` on exactly that map shape — `NodeSet` keys,
//! `Vec<u32>` class payloads.
//!
//! Run with `cargo bench --bench fxhash`; CI compiles it on every PR
//! (`cargo bench --no-run`) and archives the binary so the perf surface
//! cannot silently rot.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpnext_core::fxhash::FxHashMap;
use dpnext_hypergraph::NodeSet;
use std::collections::HashMap;

/// Key population shaped like a real EA search: every connected subset of
/// a 14-relation chain query (all contiguous bit runs), which is what the
/// class map of a mid-size enumeration actually holds.
fn chain_class_keys(n: usize) -> Vec<NodeSet> {
    let mut keys = Vec::new();
    for len in 1..=n {
        for start in 0..=(n - len) {
            keys.push(NodeSet(((1u64 << len) - 1) << start));
        }
    }
    keys
}

/// A denser population: all 2^12 subsets of 12 relations (clique query).
fn clique_class_keys() -> Vec<NodeSet> {
    (1u64..(1 << 12)).map(NodeSet).collect()
}

fn bench_class_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("nodeset_class_map");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for (label, keys) in [
        ("chain14", chain_class_keys(14)),
        ("clique12", clique_class_keys()),
    ] {
        // Insert: build the class map from scratch (the per-stratum cost
        // of seeding fresh classes).
        group.bench_function(format!("insert_siphash_{label}"), |b| {
            b.iter(|| {
                let mut m: HashMap<NodeSet, Vec<u32>> = HashMap::new();
                for (i, &k) in keys.iter().enumerate() {
                    m.entry(black_box(k)).or_default().push(i as u32);
                }
                black_box(m.len())
            })
        });
        group.bench_function(format!("insert_fxhash_{label}"), |b| {
            b.iter(|| {
                let mut m: FxHashMap<NodeSet, Vec<u32>> = FxHashMap::default();
                for (i, &k) in keys.iter().enumerate() {
                    m.entry(black_box(k)).or_default().push(i as u32);
                }
                black_box(m.len())
            })
        });

        // Lookup: the dominant operation — every work unit probes both
        // orientation classes against the frozen map.
        let sip: HashMap<NodeSet, Vec<u32>> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, vec![i as u32]))
            .collect();
        let fx: FxHashMap<NodeSet, Vec<u32>> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, vec![i as u32]))
            .collect();
        group.bench_function(format!("lookup_siphash_{label}"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &k in &keys {
                    hits += sip.get(black_box(&k)).map_or(0, Vec::len);
                }
                black_box(hits)
            })
        });
        group.bench_function(format!("lookup_fxhash_{label}"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &k in &keys {
                    hits += fx.get(black_box(&k)).map_or(0, Vec::len);
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_class_map);
criterion_main!(benches);
