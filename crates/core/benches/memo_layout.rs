//! Micro-benchmark backing the memo's structure-of-arrays split: the
//! dominance fold (`PruneDominatedPlans`, Fig. 13) is the densest inner
//! loop of the enumeration — every candidate plan is compared against
//! every resident of its class, reading only `set`/`card`/`cost`/flags.
//! The SoA layout packs exactly those fields into a 40-byte `PlanHot`
//! row and mirrors residents into a contiguous scratch, so a fold scan
//! walks one tight array; the AoS reference below folds over fat
//! `MemoPlan` structs (inline `KeyInfo`, `AggState`, visible-attribute
//! vectors), which is the layout the memo had before the split.
//!
//! Run with `cargo bench --bench memo_layout`; CI compiles it on every
//! PR (`cargo bench --no-run`) and archives the binary so the perf
//! surface cannot silently rot.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpnext_algebra::schema::AttrId;
use dpnext_core::aggstate::AggState;
use dpnext_core::memo::{
    prune_fold_slice, ClassTally, DominanceKind, Memo, MemoPlan, PlanId, PlanNode,
};
use dpnext_hypergraph::NodeSet;
use dpnext_keys::{KeyInfo, KeySet};

/// Deterministic multiplicative LCG (no external RNG in benches).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// In a real enumeration one class's plans are interleaved with every
/// other class's in the shared arena — consecutive members of a class
/// sit at irregular offsets (whatever the stratum happened to produce
/// between them), not adjacent and not on a fixed stride the hardware
/// prefetcher could lock onto. The AoS fold pays that scatter on every
/// resident re-scan; the SoA fold reads 40-byte hot rows (and mirrors
/// residents into a contiguous scratch).
///
/// Cost and cardinality are LCG-varied so dominance is decided late
/// (exercising the scan); ~25% of plans are duplicate-free with small
/// key sets so the Full-dominance cold path fires realistically.
fn arena(n: usize, seed: u64) -> (Vec<MemoPlan>, Vec<usize>) {
    let mut rng = Lcg(seed);
    let mut plans = Vec::new();
    let mut candidates = Vec::with_capacity(n);
    for _ in 0..n {
        // Irregular gap of 1..=15 other-class plans before each member.
        let gap = (rng.next() % 15) as usize + 1;
        for _ in 0..gap {
            plans.push(filler_plan(&mut rng));
        }
        candidates.push(plans.len());
        plans.push(filler_plan(&mut rng));
    }
    (plans, candidates)
}

fn filler_plan(rng: &mut Lcg) -> MemoPlan {
    let r = rng.next();
    let keyinfo = if r.is_multiple_of(4) {
        KeyInfo::base(KeySet::from_keys([vec![AttrId((r % 7) as u32)]]))
    } else {
        KeyInfo::unknown()
    };
    MemoPlan {
        node: PlanNode::Scan { table: 0 },
        set: NodeSet(1 + (r % 15)),
        card: (r % 10_000) as f64 + 1.0,
        cost: ((r >> 16) % 100_000) as f64 + 1.0,
        keyinfo,
        agg: AggState::fresh(0),
        visible: (0..8).map(AttrId).collect(),
        has_grouping: r.is_multiple_of(8),
        applied: 0b11,
    }
}

/// Like [`arena`], but the class's candidates sit on an anti-correlated
/// cost/cardinality frontier — no plan dominates any other, so the class
/// grows to full width and every candidate scans every resident. This is
/// the wide-Pareto-class regime EA-All's `MultiBest` policy produces,
/// and the case the contiguous `rows` scratch is built for.
fn frontier_arena(n: usize, seed: u64) -> (Vec<MemoPlan>, Vec<usize>) {
    let (mut plans, candidates) = arena(n, seed);
    for (rank, &i) in candidates.iter().enumerate() {
        plans[i].cost = rank as f64 + 1.0;
        plans[i].card = (n - rank) as f64;
        plans[i].keyinfo = KeyInfo::unknown();
        plans[i].has_grouping = false;
    }
    (plans, candidates)
}

/// AoS reference dominance: identical predicate to the split test, but
/// reading every field through one fat struct.
fn dominates_fat(a: &MemoPlan, b: &MemoPlan, kind: DominanceKind) -> bool {
    if a.has_grouping && !b.has_grouping {
        return false;
    }
    if !(a.cost <= b.cost && a.card <= b.card) {
        return false;
    }
    match kind {
        DominanceKind::Full => {
            (a.keyinfo.duplicate_free || !b.keyinfo.duplicate_free)
                && a.keyinfo.keys.implies(&b.keyinfo.keys)
        }
        _ => true,
    }
}

/// AoS reference fold: same reject/evict/append order as
/// `prune_fold_slice`, over fat structs addressed by arena index.
fn fold_fat(plans: &[MemoPlan], candidates: &[usize], kind: DominanceKind) -> usize {
    let mut class: Vec<usize> = Vec::new();
    'next: for &id in candidates {
        let new = &plans[id];
        for &old in &class {
            if dominates_fat(&plans[old], new, kind) {
                continue 'next;
            }
        }
        class.retain(|&old| !dominates_fat(new, &plans[old], kind));
        class.push(id);
    }
    class.len()
}

fn bench_dominance_fold(c: &mut Criterion) {
    let mut group = c.benchmark_group("memo_layout_fold");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for (label, n, wide) in [
        ("mixed512", 512usize, false),
        ("mixed4096", 4096usize, false),
        ("frontier256", 256usize, true),
        ("frontier1024", 1024usize, true),
    ] {
        let (plans, aos_ids) = if wide {
            frontier_arena(n, 42)
        } else {
            arena(n, 42)
        };

        // SoA side: the same arena pushed through the split memo; the
        // class's candidate ids stride through it identically.
        let mut memo = Memo::new();
        let all_ids: Vec<PlanId> = plans.iter().cloned().map(|p| memo.push(p)).collect();
        let ids: Vec<PlanId> = aos_ids.iter().map(|&i| all_ids[i]).collect();

        for (kname, kind) in [
            ("costcard", DominanceKind::CostCard),
            ("full", DominanceKind::Full),
        ] {
            // Sanity: both folds retain the same number of plans, so the
            // comparison below does identical dominance work.
            {
                let mut class = Vec::new();
                let mut rows = Vec::new();
                let mut tally = ClassTally::default();
                prune_fold_slice(
                    memo.hot_plans(),
                    memo.cold_plans(),
                    &mut class,
                    &mut rows,
                    &ids,
                    kind,
                    true,
                    &mut tally,
                );
                assert_eq!(class.len(), fold_fat(&plans, &aos_ids, kind));
            }

            group.bench_function(format!("aos_fat_struct_{kname}_{label}"), |b| {
                b.iter(|| black_box(fold_fat(black_box(&plans), &aos_ids, kind)))
            });

            group.bench_function(format!("soa_hot_rows_{kname}_{label}"), |b| {
                let mut class = Vec::new();
                let mut rows = Vec::new();
                b.iter(|| {
                    class.clear();
                    let mut tally = ClassTally::default();
                    prune_fold_slice(
                        memo.hot_plans(),
                        memo.cold_plans(),
                        &mut class,
                        &mut rows,
                        black_box(&ids),
                        kind,
                        true,
                        &mut tally,
                    );
                    black_box(class.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dominance_fold);
criterion_main!(benches);
