//! The `OpTrees` routine (Fig. 6): for one operator application, produce
//! the up-to-four join trees with all valid eager-aggregation variants.

use crate::context::{OptContext, Scratch};
use crate::memo::{PlanId, PlanStore};
use crate::plan::{apply_staged, make_group, StagedApply};
use dpnext_keys::needs_grouping;
use dpnext_query::OpKind;

/// Which sides of an operator a grouping may be pushed into, per the
/// equivalences of §3 (`Valid` in Fig. 6):
///
/// * inner join — both sides (Eqvs. 10/13, 16/19, …),
/// * left outerjoin — left (Eqv. 17) and right with `F¹({⊥})` defaults
///   (Eqvs. 14/20),
/// * full outerjoin — both sides with defaults (Eqvs. 12/15, 18/21),
/// * semijoin / antijoin / groupjoin — left only (Eqvs. 37–41): their
///   results expose only left attributes.
fn may_push(op: OpKind) -> (bool, bool) {
    match op {
        OpKind::Join | OpKind::FullOuter | OpKind::LeftOuter => (true, true),
        OpKind::Semi | OpKind::Anti | OpKind::GroupJoin => (true, false),
    }
}

/// Is pushing a grouping onto `t` valid and useful?
///
/// * `Valid`: the aggregation vector restricted to `t` must be splittable
///   off and decomposable (`ctx.can_group`),
/// * usefulness: grouping is skipped when `G⁺` already contains a key of a
///   duplicate-free `t` (Fig. 6 lines 10/15: `NeedsGrouping(G⁺ᵢ, …)`),
/// * no double grouping: `Γ(Γ(e))` never helps.
fn pushable<S: PlanStore>(ctx: &OptContext, scratch: &mut Scratch, store: &S, t: PlanId) -> bool {
    let hot = &store[t];
    if !ctx.has_grouping() || hot.is_group() || !ctx.can_group(hot.set) {
        return false;
    }
    let set = hot.set;
    let keyinfo = &store.plan(t).cold.keyinfo;
    // Borrowed cache hit: no Arc clone on this per-candidate-pair path.
    let gplus = scratch.gplus(ctx, set);
    needs_grouping(gplus, keyinfo)
}

/// Build all operator trees for `t1 ◦ t2` (physical orientation, staged
/// cut constants in `staged`) into `out`: plain, `Γ(t1) ◦ t2`,
/// `t1 ◦ Γ(t2)`, `Γ(t1) ◦ Γ(t2)` — Fig. 8 (a)–(d). `out` is a
/// caller-owned scratch buffer so the hot enumeration loop allocates
/// nothing per pair.
pub fn op_trees<S: PlanStore>(
    ctx: &OptContext,
    scratch: &mut Scratch,
    store: &mut S,
    staged: &StagedApply,
    t1: PlanId,
    t2: PlanId,
    out: &mut Vec<PlanId>,
) {
    let (left_ok, right_ok) = may_push(staged.kind);

    if let Some(p) = apply_staged(ctx, scratch, store, staged, t1, t2) {
        out.push(p);
    }
    let g1 =
        (left_ok && pushable(ctx, scratch, store, t1)).then(|| make_group(ctx, scratch, store, t1));
    let g2 = (right_ok && pushable(ctx, scratch, store, t2))
        .then(|| make_group(ctx, scratch, store, t2));
    if let Some(g1) = g1 {
        if let Some(p) = apply_staged(ctx, scratch, store, staged, g1, t2) {
            out.push(p);
        }
    }
    if let Some(g2) = g2 {
        if let Some(p) = apply_staged(ctx, scratch, store, staged, t1, g2) {
            out.push(p);
        }
    }
    if let (Some(g1), Some(g2)) = (g1, g2) {
        if let Some(p) = apply_staged(ctx, scratch, store, staged, g1, g2) {
            out.push(p);
        }
    }
}
