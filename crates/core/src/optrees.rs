//! The `OpTrees` routine (Fig. 6): for one operator application, produce
//! the up-to-four join trees with all valid eager-aggregation variants.

use crate::context::{OptContext, Scratch};
use crate::memo::{PlanId, PlanStore};
use crate::plan::{make_apply, make_group};
use dpnext_keys::needs_grouping;
use dpnext_query::OpKind;

/// Which sides of an operator a grouping may be pushed into, per the
/// equivalences of §3 (`Valid` in Fig. 6):
///
/// * inner join — both sides (Eqvs. 10/13, 16/19, …),
/// * left outerjoin — left (Eqv. 17) and right with `F¹({⊥})` defaults
///   (Eqvs. 14/20),
/// * full outerjoin — both sides with defaults (Eqvs. 12/15, 18/21),
/// * semijoin / antijoin / groupjoin — left only (Eqvs. 37–41): their
///   results expose only left attributes.
fn may_push(op: OpKind) -> (bool, bool) {
    match op {
        OpKind::Join | OpKind::FullOuter | OpKind::LeftOuter => (true, true),
        OpKind::Semi | OpKind::Anti | OpKind::GroupJoin => (true, false),
    }
}

/// Is pushing a grouping onto `t` valid and useful?
///
/// * `Valid`: the aggregation vector restricted to `t` must be splittable
///   off and decomposable (`ctx.can_group`),
/// * usefulness: grouping is skipped when `G⁺` already contains a key of a
///   duplicate-free `t` (Fig. 6 lines 10/15: `NeedsGrouping(G⁺ᵢ, …)`),
/// * no double grouping: `Γ(Γ(e))` never helps.
fn pushable<S: PlanStore>(ctx: &OptContext, scratch: &mut Scratch, store: &S, t: PlanId) -> bool {
    let plan = &store[t];
    if !ctx.has_grouping() || plan.is_group() || !ctx.can_group(plan.set) {
        return false;
    }
    let set = plan.set;
    let keyinfo = &plan.keyinfo;
    // Borrowed cache hit: no Arc clone on this per-candidate-pair path.
    let gplus = scratch.gplus(ctx, set);
    needs_grouping(gplus, keyinfo)
}

/// Build all operator trees for `t1 ◦ t2` (physical orientation) into
/// `out`: plain, `Γ(t1) ◦ t2`, `t1 ◦ Γ(t2)`, `Γ(t1) ◦ Γ(t2)` —
/// Fig. 8 (a)–(d). `out` is a caller-owned scratch buffer so the hot
/// enumeration loop allocates nothing per pair.
#[allow(clippy::too_many_arguments)]
pub fn op_trees<S: PlanStore>(
    ctx: &OptContext,
    scratch: &mut Scratch,
    store: &mut S,
    op_idx: usize,
    extra: &[usize],
    t1: PlanId,
    t2: PlanId,
    out: &mut Vec<PlanId>,
) {
    let op = ctx.cq.ops[op_idx].op;
    let (left_ok, right_ok) = may_push(op);

    if let Some(p) = make_apply(ctx, scratch, store, op_idx, extra, t1, t2) {
        out.push(p);
    }
    let g1 =
        (left_ok && pushable(ctx, scratch, store, t1)).then(|| make_group(ctx, scratch, store, t1));
    let g2 = (right_ok && pushable(ctx, scratch, store, t2))
        .then(|| make_group(ctx, scratch, store, t2));
    if let Some(g1) = g1 {
        if let Some(p) = make_apply(ctx, scratch, store, op_idx, extra, g1, t2) {
            out.push(p);
        }
    }
    if let Some(g2) = g2 {
        if let Some(p) = make_apply(ctx, scratch, store, op_idx, extra, t1, g2) {
            out.push(p);
        }
    }
    if let (Some(g1), Some(g2)) = (g1, g2) {
        if let Some(p) = make_apply(ctx, scratch, store, op_idx, extra, g1, g2) {
            out.push(p);
        }
    }
}
