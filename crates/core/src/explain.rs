//! EXPLAIN output: the logical plan annotated with the optimizer's
//! per-node estimates (cardinality, cumulative `C_out`, keys, aggregation
//! state) — what a `EXPLAIN` statement would print for the chosen plan.

use crate::aggstate::AggPos;
use crate::context::OptContext;
use crate::memo::{Memo, PlanId, PlanNode, PlanStore};
use std::fmt::Write;

/// Render an annotated explanation of a logical plan.
pub fn explain(ctx: &OptContext, memo: &Memo, id: PlanId) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<52} {:>12} {:>12}  properties",
        "operator", "est. rows", "C_out"
    );
    walk(ctx, memo, id, 0, &mut out);
    out
}

fn walk(ctx: &OptContext, memo: &Memo, id: PlanId, depth: usize, out: &mut String) {
    let plan = memo.plan(id);
    let pad = "  ".repeat(depth);
    let label = match &plan.cold.node {
        PlanNode::Scan { table } => format!("{pad}Scan {}", ctx.query.tables[*table].alias),
        PlanNode::Apply { op, pred, .. } => format!("{pad}{op} [{pred}]"),
        PlanNode::Group { attrs, .. } => {
            let attrs: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
            format!("{pad}Γ [{}]", attrs.join(","))
        }
    };
    let mut props = Vec::new();
    if plan.cold.keyinfo.duplicate_free {
        props.push("dup-free".to_string());
    }
    if !plan.cold.keyinfo.keys.is_empty() {
        let keys: Vec<String> = plan
            .cold
            .keyinfo
            .keys
            .keys()
            .iter()
            .map(|k| {
                let attrs: Vec<String> = k.iter().map(|a| a.to_string()).collect();
                format!("{{{}}}", attrs.join(","))
            })
            .collect();
        props.push(format!("keys={}", keys.join(" ")));
    }
    let partials = plan
        .cold
        .agg
        .pos
        .iter()
        .filter(|p| matches!(p, AggPos::Partial { .. }))
        .count();
    if partials > 0 {
        props.push(format!("{partials} partial agg(s)"));
    }
    if !plan.cold.agg.counts.is_empty() {
        props.push(format!("{} count col(s)", plan.cold.agg.counts.len()));
    }
    let _ = writeln!(
        out,
        "{label:<52} {:>12.1} {:>12.1}  {}",
        plan.hot.card,
        plan.hot.cost,
        props.join(", ")
    );
    match &plan.cold.node {
        PlanNode::Scan { .. } => {}
        PlanNode::Apply { left, right, .. } => {
            walk(ctx, memo, *left, depth + 1, out);
            walk(ctx, memo, *right, depth + 1, out);
        }
        PlanNode::Group { input, .. } => walk(ctx, memo, *input, depth + 1, out),
    }
}
