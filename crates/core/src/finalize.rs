//! Finalization: add (or eliminate, §3.2) the top grouping, and compile
//! plans into executable algebra trees.

use crate::aggstate::{final_agg_vector, final_map_exprs};
use crate::context::OptContext;
use crate::memo::{PlanId, PlanNode, PlanStore};
use dpnext_algebra::AlgExpr;
use dpnext_cost::{distinct_in, grouping_card};
use dpnext_keys::needs_grouping;
use dpnext_query::OpKind;

/// A complete, costed, executable plan.
#[derive(Debug, Clone)]
pub struct FinalPlan {
    /// Executable operator tree of the plan.
    pub root: AlgExpr,
    /// Total `C_out`, including the top grouping if present.
    pub cost: f64,
    /// Estimated result cardinality.
    pub card: f64,
    /// Whether a top grouping was required (false = eliminated per
    /// Eqv. 42, replaced by a duplicate-preserving projection).
    pub top_grouping: bool,
}

/// Compile a DP plan into an executable algebra tree. Outerjoins receive
/// the `F¹({⊥})`/`c : 1` default vectors for every pre-aggregated column of
/// a padded side (the generalized outerjoins of §2.2).
pub fn compile<S: PlanStore + ?Sized>(ctx: &OptContext, memo: &S, id: PlanId) -> AlgExpr {
    let plan = memo.plan(id);
    match &plan.cold.node {
        PlanNode::Scan { table } => AlgExpr::scan(ctx.query.tables[*table].alias.clone()),
        PlanNode::Group { attrs, aggs, input } => AlgExpr::GroupBy {
            input: Box::new(compile(ctx, memo, *input)),
            attrs: attrs.clone(),
            aggs: aggs.clone(),
        },
        PlanNode::Apply {
            op,
            pred,
            gj_aggs,
            left,
            right,
        } => {
            let l = Box::new(compile(ctx, memo, *left));
            let r = Box::new(compile(ctx, memo, *right));
            let pred = pred.as_ref().clone();
            match op {
                OpKind::Join => AlgExpr::InnerJoin {
                    left: l,
                    right: r,
                    pred,
                },
                OpKind::Semi => AlgExpr::SemiJoin {
                    left: l,
                    right: r,
                    pred,
                },
                OpKind::Anti => AlgExpr::AntiJoin {
                    left: l,
                    right: r,
                    pred,
                },
                OpKind::LeftOuter => AlgExpr::LeftOuterJoin {
                    left: l,
                    right: r,
                    pred,
                    defaults: memo.plan(*right).cold.agg.padding_defaults(ctx.aggs()),
                },
                OpKind::FullOuter => AlgExpr::FullOuterJoin {
                    left: l,
                    right: r,
                    pred,
                    d1: memo.plan(*left).cold.agg.padding_defaults(ctx.aggs()),
                    d2: memo.plan(*right).cold.agg.padding_defaults(ctx.aggs()),
                },
                OpKind::GroupJoin => AlgExpr::GroupJoin {
                    left: l,
                    right: r,
                    pred,
                    aggs: gj_aggs.clone(),
                    empty_defaults: vec![],
                },
            }
        }
    }
}

/// The `(cost, card, top_grouping)` triple [`finalize`] would assign to a
/// complete plan, computed **without compiling** the algebra tree: whether
/// the top grouping is needed (Eqv. 42) and what it adds to `C_out`. The
/// enumeration's keep-best fold runs this per complete candidate — on
/// EA-All the losing complete plans outnumber the winners by orders of
/// magnitude, so deferring tree compilation to the single final winner
/// takes the whole `compile` walk off the enumeration hot path.
pub fn final_numbers<S: PlanStore + ?Sized>(
    ctx: &OptContext,
    memo: &S,
    id: PlanId,
) -> (f64, f64, bool) {
    let plan = memo.plan(id);
    let Some(g) = &ctx.query.grouping else {
        return (plan.hot.cost, plan.hot.card, false);
    };
    if needs_grouping(&g.group_by, &plan.cold.keyinfo) {
        let distincts: Vec<f64> = g
            .group_by
            .iter()
            .map(|&a| distinct_in(ctx.distinct(a), plan.hot.card))
            .collect();
        let gcard = grouping_card(plan.hot.card, &distincts);
        (plan.hot.cost + gcard, gcard, true)
    } else {
        (plan.hot.cost, plan.hot.card, false)
    }
}

/// Finalize a plan covering all relations: attach the top grouping `Γ_G`
/// with the state-adjusted aggregation vector, or — when `G` contains a
/// key of a duplicate-free result — replace it by a map + projection
/// (Eqv. 42, `InsertTopLevelPlan` of Fig. 9).
pub fn finalize<S: PlanStore + ?Sized>(ctx: &OptContext, memo: &S, id: PlanId) -> FinalPlan {
    let plan = memo.plan(id);
    let mut root = compile(ctx, memo, id);
    let (cost, card, top_grouping) = final_numbers(ctx, memo, id);
    let Some(g) = &ctx.query.grouping else {
        return FinalPlan {
            root,
            cost,
            card,
            top_grouping,
        };
    };

    if top_grouping {
        let aggs = final_agg_vector(ctx, &plan.cold.agg);
        root = AlgExpr::GroupBy {
            input: Box::new(root),
            attrs: g.group_by.clone(),
            aggs,
        };
    } else {
        // Each group holds exactly one tuple: a map computes the aggregate
        // values per row; the duplicate-preserving projection is free.
        let exts = final_map_exprs(ctx, &plan.cold.agg);
        if !exts.is_empty() {
            root = AlgExpr::Map {
                input: Box::new(root),
                exts,
            };
        }
    }

    if !g.post.is_empty() {
        root = AlgExpr::Map {
            input: Box::new(root),
            exts: g.post.clone(),
        };
    }
    root = AlgExpr::Project {
        input: Box::new(root),
        attrs: g.output.clone(),
        dedup: false,
    };
    FinalPlan {
        root,
        cost,
        card,
        top_grouping,
    }
}
