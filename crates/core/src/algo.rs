//! The plan generators of §4, reduced to **one** enumeration engine over
//! the arena-backed [`Memo`]: the DPhyp baseline (Fig. 5, no eager
//! aggregation), complete enumeration EA-All (Fig. 9), the
//! optimality-preserving EA-Prune (Figs. 13/14), and the heuristics H1
//! (Fig. 10) and H2 (Fig. 12) are all instances of the engine with a
//! different [`ClassPolicy`].

use crate::context::OptContext;
use crate::finalize::{finalize, FinalPlan};
use crate::memo::{DominanceKind, Memo, MemoStats, PlanId};
use crate::optrees::op_trees;
use crate::plan::{make_apply, make_scan};
use dpnext_conflict::applicable_ops;
use dpnext_hypergraph::{enumerate_ccps, NodeSet};
use dpnext_query::{OpKind, Query};
use std::time::{Duration, Instant};

/// The available plan-generation algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// DPhyp: join (re)ordering only, grouping stays on top.
    DPhyp,
    /// Complete enumeration of all eager-aggregation plans (Fig. 9);
    /// optimal, `O(2^{2n-1} · #ccp)`.
    EaAll,
    /// Complete enumeration with dominance pruning (Figs. 13/14); optimal.
    EaPrune,
    /// Greedy single-plan heuristic (Fig. 10).
    H1,
    /// H1 with eagerness-adjusted cost comparison and tolerance factor `F`
    /// (Fig. 12).
    H2(f64),
}

impl Algorithm {
    pub fn name(&self) -> String {
        match self {
            Algorithm::DPhyp => "DPhyp".into(),
            Algorithm::EaAll => "EA-All".into(),
            Algorithm::EaPrune => "EA-Prune".into(),
            Algorithm::H1 => "H1".into(),
            Algorithm::H2(f) => format!("H2(F={f})"),
        }
    }
}

/// The result of one optimization run.
#[derive(Debug, Clone)]
pub struct Optimized {
    pub plan: FinalPlan,
    /// Annotated EXPLAIN rendering of the winning logical plan (per-node
    /// cardinality/cost estimates, keys, aggregation state). Empty when
    /// rendering was disabled via [`OptimizeOptions::explain`].
    pub explain: String,
    /// Plans constructed during the search (joins + groupings).
    pub plans_built: u64,
    /// Plans retained in the DP table at the end.
    pub retained_plans: u64,
    /// Memo statistics: arena size, peak class width, prune hit-rate.
    pub memo: MemoStats,
    pub elapsed: Duration,
}

/// Knobs of [`optimize_with`] beyond the algorithm choice.
#[derive(Debug, Clone, Copy)]
pub struct OptimizeOptions {
    /// Dominance criterion used by [`Algorithm::EaPrune`] (ablation
    /// interface; the paper's criterion is [`DominanceKind::Full`]).
    pub dominance: DominanceKind,
    /// Render the EXPLAIN string (skip for pure benchmarking runs).
    pub explain: bool,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            dominance: DominanceKind::Full,
            explain: true,
        }
    }
}

/// Optimize `query` with the chosen algorithm and default options.
pub fn optimize(query: &Query, algo: Algorithm) -> Optimized {
    optimize_with(query, algo, &OptimizeOptions::default())
}

/// EA-Prune with a configurable dominance criterion (ablation interface;
/// `DominanceKind::Full` is exactly [`Algorithm::EaPrune`]).
pub fn optimize_with_pruning(query: &Query, kind: DominanceKind) -> Optimized {
    optimize_with(
        query,
        Algorithm::EaPrune,
        &OptimizeOptions {
            dominance: kind,
            explain: true,
        },
    )
}

/// Optimize `query` with explicit [`OptimizeOptions`].
pub fn optimize_with(query: &Query, algo: Algorithm, opts: &OptimizeOptions) -> Optimized {
    let ctx = OptContext::new(query.clone());
    let start = Instant::now();
    let (memo, (plan, logical), retained) = match algo {
        Algorithm::DPhyp => run_single(&ctx, false, None),
        Algorithm::H1 => run_single(&ctx, true, None),
        Algorithm::H2(f) => run_single(&ctx, true, Some(f)),
        Algorithm::EaAll => run_multi(&ctx, None),
        Algorithm::EaPrune => run_multi(&ctx, Some(opts.dominance)),
    };
    let plans_built = *ctx.plans_built.borrow();
    let explain = if opts.explain {
        crate::explain::explain(&ctx, &memo, logical)
    } else {
        String::new()
    };
    Optimized {
        plan,
        explain,
        plans_built,
        retained_plans: retained,
        memo: memo.stats(),
        elapsed: start.elapsed(),
    }
}

/// All ways to apply operators to the csg-cmp-pair `(s1, s2)`:
/// `(left set, right set, primary operator, extra inner-join edges)`.
///
/// Multiple edges cross the same cut only in cyclic queries; if they are
/// all inner joins their predicates are merged into one application. A mix
/// of inner and non-inner edges on one cut is rejected (never produced by
/// the paper's workloads).
fn orientations(
    ctx: &OptContext,
    s1: NodeSet,
    s2: NodeSet,
) -> Vec<(NodeSet, NodeSet, usize, Vec<usize>)> {
    let apps = applicable_ops(&ctx.cq, s1, s2);
    if apps.is_empty() {
        return Vec::new();
    }
    let mut uniq: Vec<usize> = apps.iter().map(|&(i, _)| i).collect();
    uniq.sort_unstable();
    uniq.dedup();
    if uniq.len() == 1 {
        let idx = uniq[0];
        apps.iter()
            .map(|&(_, swapped)| {
                if swapped {
                    (s2, s1, idx, Vec::new())
                } else {
                    (s1, s2, idx, Vec::new())
                }
            })
            .collect()
    } else if uniq.iter().all(|&i| ctx.cq.ops[i].op == OpKind::Join) {
        let primary = uniq[0];
        let extra: Vec<usize> = uniq[1..].to_vec();
        vec![(s1, s2, primary, extra.clone()), (s2, s1, primary, extra)]
    } else {
        Vec::new()
    }
}

/// What a plan class keeps, and what happens to complete plans — the only
/// part in which the five generators differ. The engine drives the
/// enumeration; the policy decides retention.
trait ClassPolicy {
    /// Generate all eager-aggregation variants (`OpTrees`, Fig. 6) or only
    /// the plain operator tree (the DPhyp baseline)?
    fn eager(&self) -> bool;
    /// A new plan for the (incomplete) class `s` was built.
    fn insert(&mut self, ctx: &OptContext, memo: &mut Memo, s: NodeSet, id: PlanId);
    /// A plan covering the full relation set with every operator applied.
    /// Returns whether the policy kept a reference to `id`; when no plan
    /// of a full-set pair is kept, the engine rolls the arena back.
    fn complete(&mut self, ctx: &OptContext, memo: &mut Memo, id: PlanId) -> bool;
}

/// The single generic enumeration loop: seed scan classes, then walk every
/// csg-cmp-pair (DPhyp order), build the policy's plan variants for every
/// pair of retained subplans, and hand them to the policy. Plan classes
/// are id lists in the memo; the per-pair snapshots are plain `PlanId`
/// copies into reusable scratch buffers — no plan data is ever cloned.
fn enumerate_plans<P: ClassPolicy>(ctx: &OptContext, memo: &mut Memo, policy: &mut P) {
    let n = ctx.query.table_count();
    let full = NodeSet::full(n);
    for i in 0..n {
        let id = make_scan(ctx, memo, i);
        memo.class_push(NodeSet::single(i), id);
    }
    if n == 1 {
        return;
    }
    let mut lefts: Vec<PlanId> = Vec::new();
    let mut rights: Vec<PlanId> = Vec::new();
    let mut trees: Vec<PlanId> = Vec::new();
    enumerate_ccps(&ctx.cq.graph, |s1, s2| {
        for (sl, sr, op, extra) in orientations(ctx, s1, s2) {
            lefts.clear();
            lefts.extend_from_slice(memo.class(sl));
            rights.clear();
            rights.extend_from_slice(memo.class(sr));
            if lefts.is_empty() || rights.is_empty() {
                continue;
            }
            let s = sl.union(sr);
            for &t1 in &lefts {
                for &t2 in &rights {
                    // Complete plans never enter a class: unless the policy
                    // keeps one, the whole pair's plans are reclaimed.
                    let mark = (s == full).then(|| memo.arena_len());
                    trees.clear();
                    if policy.eager() {
                        op_trees(ctx, memo, op, &extra, t1, t2, &mut trees);
                    } else if let Some(t) = make_apply(ctx, memo, op, &extra, t1, t2) {
                        trees.push(t);
                    }
                    let mut kept = false;
                    for &t in &trees {
                        if s == full {
                            if all_ops_applied(ctx, memo[t].applied) {
                                kept |= policy.complete(ctx, memo, t);
                            }
                        } else {
                            policy.insert(ctx, memo, s, t);
                        }
                    }
                    if let Some(mark) = mark {
                        if !kept {
                            memo.truncate(mark);
                        }
                    }
                }
            }
        }
    });
}

/// Keep the cheapest finalized plan (ties resolved to the earlier one).
/// Returns whether `id` became the new best.
fn keep_best(
    best: &mut Option<(FinalPlan, PlanId)>,
    ctx: &OptContext,
    memo: &Memo,
    id: PlanId,
) -> bool {
    let f = finalize(ctx, memo, id);
    if best.as_ref().is_none_or(|(b, _)| f.cost < b.cost) {
        *best = Some((f, id));
        return true;
    }
    false
}

/// Single-plan-per-class policy: DPhyp baseline (`eager = false`), H1
/// (`eager = true`), H2 (`factor = Some(F)`, Fig. 12).
struct SingleBest {
    eager: bool,
    factor: Option<f64>,
    best: Option<(FinalPlan, PlanId)>,
}

impl ClassPolicy for SingleBest {
    fn eager(&self) -> bool {
        self.eager
    }

    fn insert(&mut self, _ctx: &OptContext, memo: &mut Memo, s: NodeSet, id: PlanId) {
        match memo.class(s).first().copied() {
            None => memo.class_push(s, id),
            Some(cur) => {
                if compare_adjusted(memo, id, cur, self.factor) {
                    memo.class_set_single(s, id);
                }
            }
        }
    }

    fn complete(&mut self, ctx: &OptContext, memo: &mut Memo, id: PlanId) -> bool {
        keep_best(&mut self.best, ctx, memo, id)
    }
}

/// Multi-plan policy: EA-All (`prune = None`, Fig. 9) and EA-Prune
/// (`prune = Some(kind)`, Figs. 13/14).
struct MultiBest {
    prune: Option<DominanceKind>,
    guard_groupjoin: bool,
    best: Option<(FinalPlan, PlanId)>,
}

impl ClassPolicy for MultiBest {
    fn eager(&self) -> bool {
        true
    }

    fn insert(&mut self, _ctx: &OptContext, memo: &mut Memo, s: NodeSet, id: PlanId) {
        match self.prune {
            Some(kind) => memo.class_prune_insert(s, id, kind, self.guard_groupjoin),
            None => memo.class_push(s, id),
        }
    }

    fn complete(&mut self, ctx: &OptContext, memo: &mut Memo, id: PlanId) -> bool {
        keep_best(&mut self.best, ctx, memo, id)
    }
}

/// Collect-everything policy for [`all_subplans`]: every class keeps every
/// plan and complete plans are gathered instead of finalized.
struct CollectAll {
    complete: Vec<PlanId>,
}

impl ClassPolicy for CollectAll {
    fn eager(&self) -> bool {
        true
    }

    fn insert(&mut self, _ctx: &OptContext, memo: &mut Memo, s: NodeSet, id: PlanId) {
        memo.class_push(s, id);
    }

    fn complete(&mut self, _ctx: &OptContext, _memo: &mut Memo, id: PlanId) -> bool {
        self.complete.push(id);
        true
    }
}

fn run_single(
    ctx: &OptContext,
    eager: bool,
    factor: Option<f64>,
) -> (Memo, (FinalPlan, PlanId), u64) {
    let mut memo = Memo::new();
    let mut policy = SingleBest {
        eager,
        factor,
        best: None,
    };
    enumerate_plans(ctx, &mut memo, &mut policy);
    if ctx.query.table_count() == 1 {
        return finalize_single_table(ctx, memo);
    }
    let retained = memo.class_count();
    match policy.best {
        Some(best) => (memo, best, retained),
        // Eager single-plan search can dead-end when a groupjoin's right
        // side only has a pre-aggregated plan; fall back to the baseline.
        None if eager => run_single(ctx, false, None),
        None => panic!("no plan found: query graph disconnected or over-constrained"),
    }
}

fn run_multi(ctx: &OptContext, prune: Option<DominanceKind>) -> (Memo, (FinalPlan, PlanId), u64) {
    let guard_groupjoin = ctx.cq.ops.iter().any(|o| o.op == OpKind::GroupJoin);
    let mut memo = Memo::new();
    let mut policy = MultiBest {
        prune,
        guard_groupjoin,
        best: None,
    };
    enumerate_plans(ctx, &mut memo, &mut policy);
    if ctx.query.table_count() == 1 {
        return finalize_single_table(ctx, memo);
    }
    let retained = memo.retained();
    let best = policy
        .best
        .expect("no plan found: query graph disconnected or over-constrained");
    (memo, best, retained)
}

/// Degenerate single-table query: the scan is the complete plan.
fn finalize_single_table(ctx: &OptContext, memo: Memo) -> (Memo, (FinalPlan, PlanId), u64) {
    let id = memo.class(NodeSet::full(1))[0];
    let plan = finalize(ctx, &memo, id);
    (memo, (plan, id), 1)
}

/// Enumerate every plan EA-All would consider, for diagnostics and for
/// property tests that validate per-plan claims (keys, duplicate-freeness)
/// against executed results. Exponential — small queries only. Returns the
/// memo owning the plans plus every enumerated id (partial and complete).
pub fn all_subplans(query: &Query) -> (OptContext, Memo, Vec<PlanId>) {
    let ctx = OptContext::new(query.clone());
    let mut memo = Memo::new();
    let mut policy = CollectAll {
        complete: Vec::new(),
    };
    enumerate_plans(&ctx, &mut memo, &mut policy);
    let mut plans = memo.retained_ids();
    plans.extend(policy.complete);
    (ctx, memo, plans)
}

/// The width-safe all-operators-applied mask: `n_ops` low bits set.
/// `u64` tracking caps the operator count at 64; [`OptContext::new`]
/// asserts the bound so a too-wide query fails loudly instead of letting
/// `1 << op_idx` wrap and corrupt the bookkeeping.
pub fn applied_ops_mask(n_ops: usize) -> u64 {
    assert!(
        n_ops <= 64,
        "applied-operator tracking supports at most 64 operators, got {n_ops}"
    );
    if n_ops == 0 {
        0
    } else {
        u64::MAX >> (64 - n_ops)
    }
}

/// A complete plan must have applied every operator of the query exactly
/// once — a plan reaching the full relation set with a missing predicate
/// (possible only for pathological hyperedge/cut interactions) is invalid
/// and discarded.
fn all_ops_applied(ctx: &OptContext, applied: u64) -> bool {
    applied == applied_ops_mask(ctx.cq.ops.len())
}

/// `CompareAdjustedCosts` (Fig. 12): should `new` replace `old`?
/// Without a factor this is the plain cost comparison of H1 (Fig. 10).
fn compare_adjusted(memo: &Memo, new: PlanId, old: PlanId, factor: Option<f64>) -> bool {
    let (nc, oc) = (memo[new].cost, memo[old].cost);
    let Some(f) = factor else {
        return nc < oc;
    };
    let (en, eo) = (memo.eagerness(new), memo.eagerness(old));
    if en == eo {
        nc < oc
    } else if en < eo {
        // `new` is less eager: its cost is adjusted (penalized) by F.
        f * nc < oc
    } else {
        nc < f * oc
    }
}
