//! The plan generators of §4, reduced to **one** enumeration engine over
//! the arena-backed [`Memo`]: the DPhyp baseline (Fig. 5, no eager
//! aggregation), complete enumeration EA-All (Fig. 9), the
//! optimality-preserving EA-Prune (Figs. 13/14), and the heuristics H1
//! (Fig. 10) and H2 (Fig. 12) are all instances of the engine with a
//! different `ClassPolicy`.
//!
//! The engine has two interchangeable drivers:
//!
//! * **streaming** (`threads = 1`): walk the DPhyp csg-cmp-pair stream in
//!   emission order and feed the policy directly — exactly the historical
//!   sequential path;
//! * **layered** (`threads > 1`): stratify the stream by `|S1 ∪ S2|`
//!   ([`dpnext_hypergraph::stratify_ccps`]), fan each stratum's pairs out
//!   over `std::thread::scope` workers building into thread-local
//!   [`MemoShard`]s, merge the shards while **bucketing** the recorded
//!   candidates by target class, then fan the per-class streams back out
//!   over the worker pool: plan classes are independent per `NodeSet`
//!   (dominance/keep-best only ever compares within a class), so the
//!   folds commute across classes, and within each class candidates
//!   apply in the original sequential unit order. Because a stratum only
//!   reads plan classes frozen by earlier strata, this makes costs, class
//!   contents, dominance outcomes and `plans_built` bit-identical to the
//!   streaming driver for any thread count (the parity suite pins this).

use crate::context::{OptContext, Scratch};
use crate::finalize::{final_numbers, finalize, FinalPlan};
use crate::fxhash::{FxHashMap, FxHasher};
use crate::memo::{
    prune_fold_slice, prune_insert_ids, ClassBuckets, ClassTally, DominanceKind, Memo, MemoShard,
    MemoStats, PlanCold, PlanHot, PlanId, PlanStore, ShardRemap,
};
use crate::optrees::op_trees;
use crate::plan::{apply_staged, make_scan, stage_apply};
use dpnext_conflict::applicable_ops_into;
use dpnext_hypergraph::{enumerate_ccps, stratify_ccps, NodeSet};
use dpnext_query::{OpKind, Query};
use std::time::{Duration, Instant};

/// The available plan-generation algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// DPhyp: join (re)ordering only, grouping stays on top.
    DPhyp,
    /// Complete enumeration of all eager-aggregation plans (Fig. 9);
    /// optimal, `O(2^{2n-1} · #ccp)`.
    EaAll,
    /// Complete enumeration with dominance pruning (Figs. 13/14); optimal.
    EaPrune,
    /// Greedy single-plan heuristic (Fig. 10).
    H1,
    /// H1 with eagerness-adjusted cost comparison and tolerance factor `F`
    /// (Fig. 12).
    H2(f64),
    /// Budgeted large-query ladder: exact DP when the csg-cmp-pair stream
    /// fits [`OptimizeOptions::plan_budget`], else linearized DP over the
    /// greedy linear order, else the greedy plan itself. Implemented by
    /// the `dpnext-adaptive` crate and dispatched by the `dpnext`
    /// `Optimizer` facade — [`optimize_with`] itself panics on this
    /// variant to keep the crate layering acyclic.
    Adaptive,
}

impl Algorithm {
    /// Display name matching the paper's figures (e.g. `"EA-Prune"`).
    pub fn name(&self) -> String {
        match self {
            Algorithm::DPhyp => "DPhyp".into(),
            Algorithm::EaAll => "EA-All".into(),
            Algorithm::EaPrune => "EA-Prune".into(),
            Algorithm::H1 => "H1".into(),
            Algorithm::H2(f) => format!("H2(F={f})"),
            Algorithm::Adaptive => "Adaptive".into(),
        }
    }
}

/// The result of one optimization run.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The winning complete plan with its cost and cardinality.
    pub plan: FinalPlan,
    /// Annotated EXPLAIN rendering of the winning logical plan (per-node
    /// cardinality/cost estimates, keys, aggregation state). Empty when
    /// rendering was disabled via [`OptimizeOptions::explain`].
    pub explain: String,
    /// Plans constructed during the search (joins + groupings).
    pub plans_built: u64,
    /// Plans retained in the DP table at the end.
    pub retained_plans: u64,
    /// Memo statistics: arena size, peak class width, prune hit-rate,
    /// layering/threading of the enumeration.
    pub memo: MemoStats,
    /// Time spent searching (EXPLAIN rendering excluded).
    pub elapsed: Duration,
}

/// Knobs of [`optimize_with`] beyond the algorithm choice.
#[derive(Debug, Clone, Copy)]
pub struct OptimizeOptions {
    /// Dominance criterion used by [`Algorithm::EaPrune`] (ablation
    /// interface; the paper's criterion is [`DominanceKind::Full`]).
    pub dominance: DominanceKind,
    /// Render the EXPLAIN string (skip for pure benchmarking runs).
    pub explain: bool,
    /// Worker threads for the enumeration engine: `1` is the exact
    /// sequential streaming path, `0` resolves to the machine's available
    /// parallelism. Any value yields bit-identical costs, class contents
    /// and `plans_built`.
    pub threads: usize,
    /// Plan budget for [`Algorithm::Adaptive`]: the maximum number of
    /// plans (joins + groupings) the search may construct across every
    /// rung of its degradation ladder. `0` means the adaptive default
    /// (`dpnext_adaptive::DEFAULT_PLAN_BUDGET`); requests below the
    /// greedy floor are clamped up so a valid plan always fits. The exact
    /// algorithms ignore this knob.
    pub plan_budget: u64,
    /// Wall-clock deadline for the whole optimization. Honored by the
    /// budgeted/adaptive path ([`BudgetedSearch`] checks it once per
    /// enumeration work unit, bounding overshoot to one unit); the exact
    /// engines ignore it, so callers that want deadline semantics must
    /// route deadline-bearing requests through the adaptive ladder — the
    /// `Optimizer` facade does exactly that. `None` (the default) changes
    /// nothing: unconstrained runs stay bit-identical.
    pub deadline: Option<Duration>,
    /// Memory budget (bytes of live memo state, see
    /// [`crate::Memo::live_bytes`]) for the whole optimization. Honored by
    /// the budgeted/adaptive path exactly like [`OptimizeOptions::deadline`]:
    /// checked once per enumeration work unit, overshoot bounded by one
    /// unit's plans, degradation recorded as
    /// [`crate::Degradation::memory_aborted`]. The exact engines ignore
    /// it, so the `Optimizer` facade routes memory-budgeted requests
    /// through the adaptive ladder. `0` (the default) disables the budget.
    pub memory_budget: u64,
    /// Fault-injection hook: an artificial busy-wait inserted before every
    /// enumeration work unit of a budgeted search, simulating a
    /// pathologically slow enumeration so deadline/degradation paths are
    /// testable deterministically. `None` (the default) disables it; never
    /// set outside tests and smoke binaries.
    pub fault_unit_delay: Option<Duration>,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            dominance: DominanceKind::Full,
            explain: true,
            threads: 0,
            plan_budget: 0,
            deadline: None,
            memory_budget: 0,
            fault_unit_delay: None,
        }
    }
}

/// Resolve the `threads` knob: `0` means all available cores.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Optimize `query` with the chosen algorithm and default options.
pub fn optimize(query: &Query, algo: Algorithm) -> Optimized {
    optimize_with(query, algo, &OptimizeOptions::default())
}

/// EA-Prune with a configurable dominance criterion (ablation interface;
/// `DominanceKind::Full` is exactly [`Algorithm::EaPrune`]).
pub fn optimize_with_pruning(query: &Query, kind: DominanceKind) -> Optimized {
    optimize_with(
        query,
        Algorithm::EaPrune,
        &OptimizeOptions {
            dominance: kind,
            ..OptimizeOptions::default()
        },
    )
}

/// Optimize `query` with explicit [`OptimizeOptions`].
pub fn optimize_with(query: &Query, algo: Algorithm, opts: &OptimizeOptions) -> Optimized {
    let mut memo = Memo::new();
    optimize_into(query, algo, opts, &mut memo)
}

/// [`optimize_with`] running inside a caller-supplied [`Memo`] — the
/// pooled entry point for serving layers that recycle arena allocations
/// across back-to-back optimizations.
///
/// The memo is [`Memo::reset`] before the run, so results and statistics
/// are bit-identical to [`optimize_with`] regardless of what the memo
/// held before; only the arena *capacity* (the allocation) is reused.
/// The winning [`crate::FinalPlan`] owns its compiled expression, so the
/// memo can be recycled immediately after this returns.
///
/// Panics on [`Algorithm::Adaptive`] like [`optimize_with`] does: the
/// budgeted ladder lives above dpnext-core and owns its own memos.
pub fn optimize_into(
    query: &Query,
    algo: Algorithm,
    opts: &OptimizeOptions,
    memo: &mut Memo,
) -> Optimized {
    memo.reset();
    let ctx = OptContext::new(query.clone());
    let threads = resolve_threads(opts.threads);
    let start = Instant::now();
    let ((plan, logical), retained, plans_built) = match algo {
        Algorithm::DPhyp => run_single(&ctx, memo, false, None, threads),
        Algorithm::H1 => run_single(&ctx, memo, true, None, threads),
        Algorithm::H2(f) => run_single(&ctx, memo, true, Some(f), threads),
        Algorithm::EaAll => run_multi(&ctx, memo, None, threads),
        Algorithm::EaPrune => run_multi(&ctx, memo, Some(opts.dominance), threads),
        // dpnext-core cannot depend on dpnext-adaptive (it is the other
        // way around); the facade routes this variant before we get here.
        Algorithm::Adaptive => panic!(
            "Algorithm::Adaptive is implemented by the dpnext-adaptive crate; \
             use dpnext::Optimizer or dpnext_adaptive::optimize_adaptive"
        ),
    };
    // Capture the search time *before* rendering: EXPLAIN is presentation,
    // not optimization, and must not inflate the reported elapsed time.
    let elapsed = start.elapsed();
    let explain = if opts.explain {
        crate::explain::explain(&ctx, memo, logical)
    } else {
        String::new()
    };
    Optimized {
        plan,
        explain,
        plans_built,
        retained_plans: retained,
        memo: memo.stats(),
        elapsed,
    }
}

/// Reusable per-pair buffers of the enumeration hot loop: orientation and
/// class snapshots live here so processing a csg-cmp-pair allocates
/// nothing (beyond the plans themselves).
struct PairBufs {
    /// `applicable_ops_into` output.
    apps: Vec<(usize, bool)>,
    /// Deduplicated operator indices crossing the cut.
    uniq: Vec<usize>,
    /// Orientations `(left set, right set, primary operator)`.
    orients: Vec<(NodeSet, NodeSet, usize)>,
    /// Extra inner-join edges crossing the same cut (cyclic queries);
    /// shared by every orientation of the pair.
    extra: Vec<usize>,
    lefts: Vec<PlanId>,
    rights: Vec<PlanId>,
    trees: Vec<PlanId>,
}

impl PairBufs {
    fn new() -> PairBufs {
        PairBufs {
            apps: Vec::new(),
            uniq: Vec::new(),
            orients: Vec::new(),
            extra: Vec::new(),
            lefts: Vec::new(),
            rights: Vec::new(),
            trees: Vec::new(),
        }
    }
}

/// All ways to apply operators to the csg-cmp-pair `(s1, s2)`, written
/// into `bufs.orients`/`bufs.extra` (no per-pair allocation).
///
/// Multiple edges cross the same cut only in cyclic queries; if they are
/// all inner joins their predicates are merged into one application. A mix
/// of inner and non-inner edges on one cut is rejected (never produced by
/// the paper's workloads).
fn orientations_into(ctx: &OptContext, s1: NodeSet, s2: NodeSet, bufs: &mut PairBufs) {
    let PairBufs {
        apps,
        uniq,
        orients,
        extra,
        ..
    } = bufs;
    orients.clear();
    extra.clear();
    applicable_ops_into(&ctx.cq, s1, s2, apps);
    if apps.is_empty() {
        return;
    }
    uniq.clear();
    uniq.extend(apps.iter().map(|&(i, _)| i));
    uniq.sort_unstable();
    uniq.dedup();
    if uniq.len() == 1 {
        let idx = uniq[0];
        for &(_, swapped) in apps.iter() {
            if swapped {
                orients.push((s2, s1, idx));
            } else {
                orients.push((s1, s2, idx));
            }
        }
    } else if uniq.iter().all(|&i| ctx.cq.ops[i].op == OpKind::Join) {
        let primary = uniq[0];
        extra.extend_from_slice(&uniq[1..]);
        orients.push((s1, s2, primary));
        orients.push((s2, s1, primary));
    }
}

/// What a plan class keeps, and what happens to complete plans — the only
/// part in which the five generators differ. The engine drives the
/// enumeration; the policy decides retention.
///
/// `Sync` because the class-partitioned replay shares `&self` across the
/// per-class fold workers ([`ClassPolicy::fold_insert`] is read-only on
/// the policy).
trait ClassPolicy: Sync {
    /// Generate all eager-aggregation variants (`OpTrees`, Fig. 6) or only
    /// the plain operator tree (the DPhyp baseline)?
    fn eager(&self) -> bool;
    /// A new plan for the (incomplete) class `s` was built.
    fn insert(&mut self, ctx: &OptContext, memo: &mut Memo, s: NodeSet, id: PlanId);
    /// A plan covering the full relation set with every operator applied.
    /// Returns whether the policy kept a reference to `id`; when no plan
    /// of a full-set pair is kept, the engine rolls the arena back.
    fn complete(&mut self, ctx: &OptContext, memo: &mut Memo, id: PlanId) -> bool;
    /// Per-class equivalent of [`ClassPolicy::insert`]: fold one recorded
    /// candidate into the detached class vector `class`, reading plan
    /// data from the frozen, fully merged memo and tallying counters per
    /// fold. Folds for different classes run concurrently — retention may
    /// depend only on plan data and the class itself, never on mutable
    /// policy state (hence `&self`). Within one class the replay applies
    /// candidates in the original sequential unit order, so the folded
    /// class is bit-identical to what streaming `insert`s build.
    fn fold_insert(
        &self,
        ctx: &OptContext,
        memo: &Memo,
        class: &mut Vec<PlanId>,
        id: PlanId,
        tally: &mut ClassTally,
    );
    /// Fold a whole class's unit-sorted candidate slice in one call — the
    /// batched form of [`ClassPolicy::fold_insert`] the replay actually
    /// drives, so policies can amortize per-candidate setup across the
    /// slice (dominance pruning mirrors the residents' hot rows into the
    /// caller-owned `rows` scratch once per class instead of chasing
    /// arena indices per candidate). Must be semantically identical to
    /// folding the candidates one by one; the default does exactly that.
    fn fold_class(
        &self,
        ctx: &OptContext,
        memo: &Memo,
        class: &mut Vec<PlanId>,
        rows: &mut Vec<PlanHot>,
        candidates: &[PlanId],
        tally: &mut ClassTally,
    ) {
        let _ = rows;
        for &id in candidates {
            self.fold_insert(ctx, memo, class, id, tally);
        }
    }
    /// Replay-path equivalent of [`ClassPolicy::complete`]. The replay
    /// never rolls the merged arena back (losing plans were already
    /// reclaimed worker-locally), so shared memo access suffices.
    fn fold_complete(&mut self, ctx: &OptContext, memo: &Memo, id: PlanId) -> bool;
    /// Does `complete` keep every complete plan unconditionally? Workers
    /// then record all complete plans instead of pre-filtering with the
    /// worker-local keep-best (and never roll their shard back).
    fn keeps_all_completes(&self) -> bool {
        false
    }
    /// Whether the layered driver may run this policy: [`WorkerSink`]
    /// pre-filters complete plans with a worker-local strict-`<`
    /// finalized-cost keep-best, which is lossless only when `complete`
    /// itself keeps exactly the strict-cost winners (the keep-best
    /// policies) or keeps everything ([`ClassPolicy::keeps_all_completes`],
    /// which disables the pre-filter). Policies that retain a non-trivial
    /// subset of complete plans (top-k, tolerance acceptance) must return
    /// `false`; the engine then stays on the streaming driver regardless
    /// of the `threads` knob.
    fn parallel_safe(&self) -> bool {
        true
    }
}

/// Where the plans of one csg-cmp-pair go: the streaming driver feeds the
/// policy and memo directly; layered workers record candidates (plus a
/// local keep-best for rollback) for the deterministic merge replay.
trait PairSink<S: PlanStore> {
    /// The engine is about to build the plans of work unit `unit` — one
    /// `(t1, t2)` subplan combination in the stratum-global enumeration
    /// order. Workers tag their candidates with it so the merge can
    /// interleave the streams back into sequential order.
    fn begin_unit(&mut self, unit: u64);
    fn insert(&mut self, ctx: &OptContext, store: &mut S, s: NodeSet, id: PlanId);
    /// Returns whether the sink kept a reference to the complete plan.
    fn complete(&mut self, ctx: &OptContext, store: &mut S, id: PlanId) -> bool;
}

/// Build the plan variants of one csg-cmp-pair: for each orientation,
/// pair up the retained subplans of both sides, construct the policy's
/// tree variants, and hand them to the sink. Complete plans never enter a
/// class; unless the sink keeps one, the whole `(t1, t2)` application is
/// rolled back — on EA-All the losing complete plans outnumber the
/// retained state by an order of magnitude.
///
/// Every `(orientation, t1, t2)` combination is one **work unit**,
/// numbered by `unit` across the whole stratum. `take` decides whether
/// this caller builds the unit (it also sees the store, so budgeted
/// callers can read live resource state like [`Memo::live_bytes`]) — the
/// streaming driver takes everything, layered workers take their
/// `unit ≡ worker (mod threads)` share. Unit
/// numbering depends only on frozen class snapshots and the (pure)
/// orientation computation, so every worker counts identically; combos
/// are the grain of the fan-out because the heavy strata of the EA
/// searches hold few pairs with enormous subplan grids.
#[allow(clippy::too_many_arguments)]
fn process_pair<S: PlanStore, K: PairSink<S>>(
    ctx: &OptContext,
    scratch: &mut Scratch,
    bufs: &mut PairBufs,
    store: &mut S,
    sink: &mut K,
    eager: bool,
    s1: NodeSet,
    s2: NodeSet,
    full: NodeSet,
    unit: &mut u64,
    take: &mut impl FnMut(u64, &S) -> bool,
) {
    orientations_into(ctx, s1, s2, bufs);
    let PairBufs {
        orients,
        extra,
        lefts,
        rights,
        trees,
        ..
    } = bufs;
    for &(sl, sr, op) in orients.iter() {
        lefts.clear();
        lefts.extend_from_slice(store.plan_class(sl));
        rights.clear();
        rights.extend_from_slice(store.plan_class(sr));
        if lefts.is_empty() || rights.is_empty() {
            continue;
        }
        let s = sl.union(sr);
        // Stage the cut once per orientation: predicate orientation,
        // merged selectivity, distinct products and applied bits are
        // identical for every `(t1, t2)` combination of the grid, so the
        // per-plan application does none of that work.
        let staged = stage_apply(ctx, scratch, op, extra, sl);
        for &t1 in lefts.iter() {
            for &t2 in rights.iter() {
                let u = *unit;
                *unit += 1;
                if !take(u, store) {
                    continue;
                }
                sink.begin_unit(u);
                let mark = (s == full).then(|| store.plan_count());
                trees.clear();
                if eager {
                    op_trees(ctx, scratch, store, &staged, t1, t2, trees);
                } else if let Some(t) = apply_staged(ctx, scratch, store, &staged, t1, t2) {
                    trees.push(t);
                }
                let mut kept = false;
                for &t in trees.iter() {
                    if s == full {
                        if all_ops_applied(ctx, store[t].applied) {
                            kept |= sink.complete(ctx, store, t);
                        }
                    } else {
                        sink.insert(ctx, store, s, t);
                    }
                }
                if let Some(mark) = mark {
                    if !kept {
                        store.truncate_plans(mark);
                    }
                }
            }
        }
    }
}

/// The streaming sink: candidates go straight to the policy.
struct PolicySink<'a, P: ClassPolicy> {
    policy: &'a mut P,
}

impl<P: ClassPolicy> PairSink<Memo> for PolicySink<'_, P> {
    fn begin_unit(&mut self, _unit: u64) {}

    fn insert(&mut self, ctx: &OptContext, memo: &mut Memo, s: NodeSet, id: PlanId) {
        self.policy.insert(ctx, memo, s, id);
    }

    fn complete(&mut self, ctx: &OptContext, memo: &mut Memo, id: PlanId) -> bool {
        self.policy.complete(ctx, memo, id)
    }
}

/// A layered worker's sink: class candidates and surviving complete plans
/// are recorded (tagged with their work unit) for the merge replay; a
/// worker-local keep-best drives the arena rollback so losing complete
/// plans are reclaimed without cross-thread coordination. Collect-all
/// policies (`keep_all`) retain every complete plan instead.
#[derive(Default)]
struct WorkerSink {
    unit: u64,
    inserts: Vec<(u64, NodeSet, PlanId)>,
    completes: Vec<(u64, PlanId)>,
    best_cost: Option<f64>,
    keep_all: bool,
}

impl WorkerSink {
    fn new(keep_all: bool) -> WorkerSink {
        WorkerSink {
            keep_all,
            ..WorkerSink::default()
        }
    }
}

impl PairSink<MemoShard<'_>> for WorkerSink {
    fn begin_unit(&mut self, unit: u64) {
        self.unit = unit;
    }

    fn insert(&mut self, _ctx: &OptContext, _store: &mut MemoShard<'_>, s: NodeSet, id: PlanId) {
        self.inserts.push((self.unit, s, id));
    }

    fn complete(&mut self, ctx: &OptContext, store: &mut MemoShard<'_>, id: PlanId) -> bool {
        if self.keep_all {
            self.completes.push((self.unit, id));
            return true;
        }
        let (cost, _, _) = final_numbers(ctx, store, id);
        if self.best_cost.is_none_or(|b| cost < b) {
            self.best_cost = Some(cost);
            self.completes.push((self.unit, id));
            return true;
        }
        false
    }
}

/// Everything one worker hands back from a stratum.
struct WorkerOut {
    /// The shard's locally built plan rows, split hot/cold like the
    /// shared arena they will be appended to.
    hot: Vec<PlanHot>,
    cold: Vec<PlanCold>,
    peak: usize,
    inserts: Vec<(u64, NodeSet, PlanId)>,
    completes: Vec<(u64, PlanId)>,
    plans_built: u64,
    attrs_used: u32,
    units: u64,
    /// The worker's scratch, returned so its warm `G⁺` cache survives
    /// into the next stratum (G⁺ is a pure function of the query).
    scratch: Scratch,
}

/// One worker: walk the whole stratum's unit enumeration (cheap — the
/// per-pair orientation probe against frozen classes) and build every
/// `unit ≡ worker (mod threads)` combination against the frozen shared
/// memo. Unit-granular striping is what load-balances the EA searches,
/// whose heaviest strata hold only a handful of pairs with huge subplan
/// grids.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    ctx: &OptContext,
    shared: &Memo,
    pairs: &[(NodeSet, NodeSet)],
    worker: usize,
    threads: usize,
    mut scratch: Scratch,
    eager: bool,
    keep_all: bool,
    full: NodeSet,
) -> WorkerOut {
    // The scratch is reused across strata; report this stratum's delta.
    let built_before = scratch.plans_built;
    let mut bufs = PairBufs::new();
    let mut shard = MemoShard::new(shared);
    let mut sink = WorkerSink::new(keep_all);
    let mut unit = 0u64;
    let w = worker as u64;
    let t = threads as u64;
    let mut take = move |u: u64, _: &MemoShard<'_>| u % t == w;
    for &(s1, s2) in pairs {
        process_pair(
            ctx,
            &mut scratch,
            &mut bufs,
            &mut shard,
            &mut sink,
            eager,
            s1,
            s2,
            full,
            &mut unit,
            &mut take,
        );
    }
    let peak = shard.peak();
    let plans_built = scratch.plans_built - built_before;
    let attrs_used = scratch.attrs_used();
    let (hot, cold) = shard.into_local();
    WorkerOut {
        hot,
        cold,
        peak,
        inserts: sink.inserts,
        completes: sink.completes,
        plans_built,
        attrs_used,
        units: unit,
        scratch,
    }
}

/// Fan-out threshold: a stratum below this many subplan combinations is
/// processed inline — thread spawn plus merge costs more than the work.
const PAR_MIN_COMBOS: usize = 256;

/// Fan-out threshold of the class-partitioned replay: below this many
/// recorded candidates the per-class folds run inline on the merging
/// thread — spawning would cost more than the dominance checks.
const PAR_MIN_REPLAY: usize = 256;

/// The layered driver: strata in ascending union size; within a stratum,
/// work units fan out round-robin over scoped worker threads, the shard
/// merge buckets the recorded candidates by target class, and the
/// per-class candidate streams fan back out over scoped workers — within
/// a class candidates apply in original unit order, so every observable
/// outcome matches the streaming driver bit for bit.
/// Memory note: unlike the streaming driver, this materializes the whole
/// csg-cmp-pair stream (16 bytes/pair). That is only significant where
/// `#ccp` is astronomically large — and every pair also costs at least
/// one plan construction (~µs), so any graph whose pair list strains
/// memory is already out of wall-clock reach; a lazy stratifier is listed
/// in the ROADMAP should that change.
fn enumerate_layered<P: ClassPolicy>(
    ctx: &OptContext,
    memo: &mut Memo,
    scratch: &mut Scratch,
    policy: &mut P,
    threads: usize,
) {
    let eager = policy.eager();
    let keep_all = policy.keeps_all_completes();
    let n = ctx.query.table_count();
    let full = NodeSet::full(n);
    let strata = stratify_ccps(&ctx.cq.graph);
    // Widest fan-out actually spawned (1 = every stratum ran inline),
    // recorded after the loop.
    let mut fanout_used = 1u64;
    // Phase instrumentation: plan-building (worker/inline) time vs
    // merge+replay time, and the widest per-class replay fan-out.
    let mut worker_nanos = 0u64;
    let mut replay_nanos = 0u64;
    let mut peak_replay_classes = 0u64;
    // Global fresh-attribute cursor: inline strata allocate from it
    // directly; fanned-out strata interleave it across workers (ids ≡
    // worker mod t). Ids differ between thread counts but never collide,
    // and nothing observable depends on them (fresh columns have unknown
    // statistics).
    let mut next_attr = ctx.first_fresh_attr();
    let mut bufs = PairBufs::new();
    // Per-worker scratches persist across strata so the warm G⁺ caches
    // (pure functions of the query) are not recomputed every layer.
    let mut pool: Vec<Option<Scratch>> = (0..threads).map(|_| None).collect();
    for (stratum_idx, pairs) in strata.strata.iter().filter(|p| !p.is_empty()).enumerate() {
        // Work-unit estimate for the stratum: subplan combinations over
        // the frozen classes. Orientations can double it (commutative
        // operators emit both directions), so this is a ×2-accurate
        // estimate, not a bound — good enough for the fan-out decision.
        let combos: usize = pairs
            .iter()
            .map(|&(s1, s2)| memo.class(s1).len() * memo.class(s2).len())
            .sum();
        let t = threads.min(combos.max(1));
        if t < 2 || combos < PAR_MIN_COMBOS {
            // Inline: identical to one worker plus immediate replay.
            let t0 = Instant::now();
            scratch.set_attr_base(next_attr);
            let mut sink = PolicySink {
                policy: &mut *policy,
            };
            let mut unit = 0u64;
            let mut take = |_: u64, _: &Memo| true;
            for &(s1, s2) in pairs {
                process_pair(
                    ctx, scratch, &mut bufs, memo, &mut sink, eager, s1, s2, full, &mut unit,
                    &mut take,
                );
            }
            next_attr += scratch.attrs_used();
            let dt = t0.elapsed().as_nanos() as u64;
            worker_nanos += dt;
            dpnext_obs::emit_span(
                "engine.stratum.worker",
                dt,
                &[
                    ("stratum", stratum_idx as u64),
                    ("pairs", pairs.len() as u64),
                    ("combos", combos as u64),
                    ("fanout", 1),
                ],
            );
            continue;
        }
        fanout_used = fanout_used.max(t as u64);
        let t0 = Instant::now();
        let shared: &Memo = memo;
        let scratches: Vec<Scratch> = pool
            .iter_mut()
            .take(t)
            .enumerate()
            .map(|(w, slot)| {
                let mut s = slot
                    .take()
                    .unwrap_or_else(|| Scratch::with_attr_base(next_attr));
                // Interleaved ids: worker w allocates next_attr + w + k·t,
                // disjoint across workers from one shared cursor.
                s.set_attr_stride(next_attr + w as u32, t as u32);
                s
            })
            .collect();
        let outs: Vec<WorkerOut> = std::thread::scope(|sc| {
            let handles: Vec<_> = scratches
                .into_iter()
                .enumerate()
                .map(|(w, ws)| {
                    sc.spawn(move || {
                        run_worker(ctx, shared, pairs, w, t, ws, eager, keep_all, full)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("enumeration worker panicked"))
                .collect()
        });
        let dt = t0.elapsed().as_nanos() as u64;
        worker_nanos += dt;
        dpnext_obs::emit_span(
            "engine.stratum.worker",
            dt,
            &[
                ("stratum", stratum_idx as u64),
                ("pairs", pairs.len() as u64),
                ("combos", combos as u64),
                ("fanout", t as u64),
            ],
        );
        let t1 = Instant::now();
        // Advance the cursor past the interleaved block actually used:
        // worker w's largest id is < next_attr + w + t·used_w, so
        // t × max(used) covers every worker.
        let max_used = outs.iter().map(|o| o.attrs_used).max().unwrap_or(0);
        next_attr = u32::try_from(u64::from(next_attr) + u64::from(max_used) * t as u64)
            .expect("fresh-attribute space (u32) exhausted");
        // Merge: shards append in worker order (ids shift as a block —
        // this arena splice is the only irreducibly serial step)...
        memo.record_shard_peak(outs.iter().map(|o| o.peak as u64).sum());
        let base = memo.arena_len();
        let mut buckets = ClassBuckets::default();
        let mut outs = outs;
        let mut remaps: Vec<ShardRemap> = Vec::with_capacity(outs.len());
        for (w, out) in outs.iter_mut().enumerate() {
            scratch.plans_built += out.plans_built;
            let hot = std::mem::take(&mut out.hot);
            let cold = std::mem::take(&mut out.cold);
            remaps.push(memo.append_shard(hot, cold, base));
            pool[w] = Some(std::mem::replace(
                &mut out.scratch,
                Scratch::with_attr_base(0),
            ));
        }
        // ...then the recorded candidate streams are remapped and grouped
        // by target class. On wide strata the bucketing itself fans out
        // over the worker pool, hash-partitioned by class (each class is
        // owned by exactly one bucket worker, which scans the shards in
        // worker order — the shard-major per-class order the replay's
        // unit sort depends on is preserved exactly).
        let candidates: usize = outs.iter().map(|o| o.inserts.len()).sum();
        if t >= 2 && candidates >= PAR_MIN_REPLAY {
            memo.record_par_bucket_stratum();
            bucket_parallel(&outs, &remaps, t, &mut buckets);
        } else {
            for (out, &remap) in outs.iter().zip(&remaps) {
                for &(unit, s, id) in &out.inserts {
                    buckets
                        .classes
                        .entry(s)
                        .or_default()
                        .push((unit, remap.apply(id)));
                }
            }
        }
        for (out, &remap) in outs.iter().zip(&remaps) {
            for &(unit, id) in &out.completes {
                buckets.completes.push((unit, remap.apply(id)));
            }
        }
        let units = outs.first().map(|o| o.units).unwrap_or(0);
        debug_assert!(outs.iter().all(|o| o.units == units));
        // ...and the per-class streams fold concurrently (sequential unit
        // order *within* each class), reproducing the streaming outcome.
        let par_classes = replay_buckets(ctx, memo, policy, buckets, t);
        peak_replay_classes = peak_replay_classes.max(par_classes);
        let dt = t1.elapsed().as_nanos() as u64;
        replay_nanos += dt;
        dpnext_obs::emit_span(
            "engine.stratum.replay",
            dt,
            &[
                ("stratum", stratum_idx as u64),
                ("candidates", candidates as u64),
                ("par_classes", par_classes),
            ],
        );
    }
    memo.record_layering(strata.layer_count(), strata.peak_layer_pairs(), fanout_used);
    memo.record_phases(worker_nanos, replay_nanos, peak_replay_classes);
}

/// The bucket worker owning class `s` under a `fanout`-way hash
/// partition. Deterministic (seeded FxHash of the node set), so every
/// thread count produces the same ownership — only *who* buckets a class
/// changes, never the bucket contents.
fn class_bucket(s: NodeSet, fanout: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = FxHasher::default();
    s.hash(&mut h);
    (h.finish() as usize) % fanout
}

/// Fan the merge-candidate bucketing over scoped workers: worker `b` owns
/// every class hashing to bucket `b` and scans all shards' insert streams
/// in worker order, so each per-class candidate list comes out in the
/// same shard-major order the serial bucketing produces. Classes are
/// disjoint across workers, hence the partial maps merge by plain moves.
fn bucket_parallel(
    outs: &[WorkerOut],
    remaps: &[ShardRemap],
    fanout: usize,
    buckets: &mut ClassBuckets,
) {
    let partials: Vec<FxHashMap<NodeSet, Vec<(u64, PlanId)>>> = std::thread::scope(|sc| {
        let handles: Vec<_> = (0..fanout)
            .map(|b| {
                sc.spawn(move || {
                    let mut map: FxHashMap<NodeSet, Vec<(u64, PlanId)>> = FxHashMap::default();
                    for (out, &remap) in outs.iter().zip(remaps) {
                        for &(unit, s, id) in &out.inserts {
                            if class_bucket(s, fanout) == b {
                                map.entry(s).or_default().push((unit, remap.apply(id)));
                            }
                        }
                    }
                    map
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bucketing worker panicked"))
            .collect()
    });
    for map in partials {
        for (s, cands) in map {
            debug_assert!(!buckets.classes.contains_key(&s));
            buckets.classes.insert(s, cands);
        }
    }
}

/// Replay one stratum's bucketed candidate streams against the policy.
///
/// Plan classes are independent per `NodeSet` — the Fig. 13 dominance
/// test and the keep-best comparisons only ever look at plans *within*
/// one class — so the per-class folds commute across classes and can run
/// concurrently on the scoped worker pool. Each bucket is first restored
/// to the original sequential unit order (stable sort by unit: a unit's
/// candidates come from the single worker that owned it and stay
/// contiguous), so costs, class contents, dominance outcomes and counter
/// totals are bit-identical to the streaming driver for any fan-out.
/// Counters accrue in per-fold [`ClassTally`]s reduced at install time.
///
/// Complete (full-set) plans are only ever produced by the final stratum,
/// which feeds no classes; their keep-best over finalized costs resolves
/// ties to the earliest unit, so that stream replays serially in unit
/// order. Returns the number of classes folded concurrently (0 when the
/// replay ran inline below [`PAR_MIN_REPLAY`]).
/// One detached class bucket: target set plus unit-tagged candidates.
type ClassBucket = (NodeSet, Vec<(u64, PlanId)>);

fn replay_buckets<P: ClassPolicy>(
    ctx: &OptContext,
    memo: &mut Memo,
    policy: &mut P,
    mut buckets: ClassBuckets,
    threads: usize,
) -> u64 {
    // A stratum produces either class candidates (union < full set) or
    // complete plans (final stratum), never both.
    debug_assert!(buckets.classes.is_empty() || buckets.completes.is_empty());
    let n_classes = buckets.classes.len();
    let fanout = threads.min(n_classes);
    let candidates: usize = buckets.candidate_count();
    let mut entries: Vec<ClassBucket> = buckets.classes.drain().collect();
    let mut par_classes = 0u64;
    if fanout >= 2 && candidates >= PAR_MIN_REPLAY {
        par_classes = n_classes as u64;
        // Deterministic LPT assignment: heaviest buckets first, each onto
        // the least-loaded worker (ties to the lowest worker index).
        entries.sort_unstable_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        let mut chunks: Vec<Vec<ClassBucket>> = (0..fanout).map(|_| Vec::new()).collect();
        let mut load = vec![0usize; fanout];
        for entry in entries {
            let w = (0..fanout).min_by_key(|&w| load[w]).unwrap();
            load[w] += entry.1.len();
            chunks[w].push(entry);
        }
        // LPT skew: how far the heaviest worker exceeds its fair share
        // (100 = perfectly balanced). Candidates > 0 here (>= the fan-out
        // threshold).
        let max_load = load.iter().copied().max().unwrap_or(0) as u64;
        memo.record_replay_imbalance(max_load * fanout as u64 * 100 / candidates as u64);
        let shared: &Memo = memo;
        let pol: &P = policy;
        let folded: Vec<Vec<(NodeSet, Vec<PlanId>, ClassTally)>> = std::thread::scope(|sc| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| sc.spawn(move || fold_classes(ctx, shared, pol, chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("replay worker panicked"))
                .collect()
        });
        // Install in set order: counters are commutative sums/maxima, the
        // sort just keeps the operation sequence deterministic.
        let mut flat: Vec<_> = folded.into_iter().flatten().collect();
        flat.sort_unstable_by_key(|&(s, _, _)| s);
        for (s, ids, tally) in flat {
            memo.install_class(s, ids, &tally);
        }
    } else {
        entries.sort_unstable_by_key(|&(s, _)| s);
        for (s, ids, tally) in fold_classes(ctx, memo, policy, entries) {
            memo.install_class(s, ids, &tally);
        }
    }
    // Stable by unit: same-unit completes are contiguous already.
    buckets.completes.sort_by_key(|&(u, _)| u);
    for &(_, id) in &buckets.completes {
        policy.fold_complete(ctx, memo, id);
    }
    par_classes
}

/// Fold each class's candidate stream (restored to unit order) into its
/// final id list without touching the shared memo — the unit of work of
/// the class-partitioned replay.
fn fold_classes<P: ClassPolicy>(
    ctx: &OptContext,
    memo: &Memo,
    policy: &P,
    chunk: Vec<ClassBucket>,
) -> Vec<(NodeSet, Vec<PlanId>, ClassTally)> {
    // Worker-local scratch reused across the chunk's classes: the hot-row
    // mirror of the batched dominance fold and the untagged candidate ids.
    let mut rows: Vec<PlanHot> = Vec::new();
    let mut ids: Vec<PlanId> = Vec::new();
    chunk
        .into_iter()
        .map(|(s, mut cands)| {
            cands.sort_by_key(|&(u, _)| u);
            ids.clear();
            ids.extend(cands.iter().map(|&(_, id)| id));
            let mut class = Vec::new();
            let mut tally = ClassTally::default();
            policy.fold_class(ctx, memo, &mut class, &mut rows, &ids, &mut tally);
            (s, class, tally)
        })
        .collect()
}

/// The streaming driver: seed scan classes, then walk every csg-cmp-pair
/// in DPhyp emission order and feed the policy directly. Plan classes are
/// id lists in the memo; the per-pair snapshots are plain `PlanId` copies
/// into reusable scratch buffers — no plan data is ever cloned.
fn enumerate_streaming<P: ClassPolicy>(
    ctx: &OptContext,
    memo: &mut Memo,
    scratch: &mut Scratch,
    policy: &mut P,
) {
    let n = ctx.query.table_count();
    let full = NodeSet::full(n);
    let eager = policy.eager();
    let mut bufs = PairBufs::new();
    let mut sink = PolicySink { policy };
    let mut unit = 0u64;
    let mut take = |_: u64, _: &Memo| true;
    enumerate_ccps(&ctx.cq.graph, |s1, s2| {
        process_pair(
            ctx, scratch, &mut bufs, memo, &mut sink, eager, s1, s2, full, &mut unit, &mut take,
        );
    });
}

/// Seed the singleton scan classes, then run the requested driver.
/// Returns the total number of plans built.
fn run_engine<P: ClassPolicy>(
    ctx: &OptContext,
    memo: &mut Memo,
    policy: &mut P,
    threads: usize,
) -> u64 {
    let mut scratch = Scratch::new(ctx);
    let n = ctx.query.table_count();
    for i in 0..n {
        let id = make_scan(ctx, memo, i);
        memo.class_push(NodeSet::single(i), id);
    }
    // Policies whose complete() keeps a non-trivial subset of complete
    // plans cannot use the layered driver (see ClassPolicy::parallel_safe).
    let threads = if policy.parallel_safe() { threads } else { 1 };
    if n > 1 {
        if threads <= 1 {
            memo.record_layering(0, 0, 1);
            let t0 = Instant::now();
            enumerate_streaming(ctx, memo, &mut scratch, policy);
            // Streaming is all build work: the phase split degenerates to
            // a zero replay share.
            memo.record_phases(t0.elapsed().as_nanos() as u64, 0, 0);
        } else {
            enumerate_layered(ctx, memo, &mut scratch, policy, threads);
        }
    }
    scratch.plans_built
}

/// Keep the cheapest finalized plan (ties resolved to the earlier one).
/// Returns whether `id` became the new best.
fn keep_best(best: &mut Option<(f64, PlanId)>, ctx: &OptContext, memo: &Memo, id: PlanId) -> bool {
    // Compare by final cost only ([`final_numbers`]): compiling the
    // winner's algebra tree is deferred to the end of the run, so the
    // orders-of-magnitude more numerous losing complete plans never pay
    // the recursive `compile` walk.
    let (cost, _, _) = final_numbers(ctx, memo, id);
    if best.is_none_or(|(b, _)| cost < b) {
        *best = Some((cost, id));
        return true;
    }
    false
}

/// Single-plan-per-class policy: DPhyp baseline (`eager = false`), H1
/// (`eager = true`), H2 (`factor = Some(F)`, Fig. 12).
struct SingleBest {
    eager: bool,
    factor: Option<f64>,
    /// Cheapest complete plan so far, by final cost; compiled to a
    /// [`FinalPlan`] only once the run ends.
    best: Option<(f64, PlanId)>,
}

impl ClassPolicy for SingleBest {
    fn eager(&self) -> bool {
        self.eager
    }

    fn insert(&mut self, _ctx: &OptContext, memo: &mut Memo, s: NodeSet, id: PlanId) {
        match memo.class(s).first().copied() {
            None => memo.class_push(s, id),
            Some(cur) => {
                if compare_adjusted(memo, id, cur, self.factor) {
                    memo.class_set_single(s, id);
                }
            }
        }
    }

    fn complete(&mut self, ctx: &OptContext, memo: &mut Memo, id: PlanId) -> bool {
        keep_best(&mut self.best, ctx, memo, id)
    }

    fn fold_insert(
        &self,
        _ctx: &OptContext,
        memo: &Memo,
        class: &mut Vec<PlanId>,
        id: PlanId,
        tally: &mut ClassTally,
    ) {
        match class.first().copied() {
            None => class.push(id),
            Some(cur) => {
                if compare_adjusted(memo, id, cur, self.factor) {
                    class[0] = id;
                }
            }
        }
        tally.peak_class_width = tally.peak_class_width.max(1);
    }

    fn fold_complete(&mut self, ctx: &OptContext, memo: &Memo, id: PlanId) -> bool {
        keep_best(&mut self.best, ctx, memo, id)
    }
}

/// Multi-plan policy: EA-All (`prune = None`, Fig. 9) and EA-Prune
/// (`prune = Some(kind)`, Figs. 13/14).
struct MultiBest {
    prune: Option<DominanceKind>,
    guard_groupjoin: bool,
    /// Cheapest complete plan so far, by final cost; compiled to a
    /// [`FinalPlan`] only once the run ends.
    best: Option<(f64, PlanId)>,
}

impl ClassPolicy for MultiBest {
    fn eager(&self) -> bool {
        true
    }

    fn insert(&mut self, _ctx: &OptContext, memo: &mut Memo, s: NodeSet, id: PlanId) {
        match self.prune {
            Some(kind) => memo.class_prune_insert(s, id, kind, self.guard_groupjoin),
            None => memo.class_push(s, id),
        }
    }

    fn complete(&mut self, ctx: &OptContext, memo: &mut Memo, id: PlanId) -> bool {
        keep_best(&mut self.best, ctx, memo, id)
    }

    fn fold_insert(
        &self,
        _ctx: &OptContext,
        memo: &Memo,
        class: &mut Vec<PlanId>,
        id: PlanId,
        tally: &mut ClassTally,
    ) {
        match self.prune {
            Some(kind) => prune_insert_ids(
                memo.hot_plans(),
                memo.cold_plans(),
                class,
                id,
                kind,
                self.guard_groupjoin,
                tally,
            ),
            None => {
                class.push(id);
                tally.peak_class_width = tally.peak_class_width.max(class.len() as u64);
            }
        }
    }

    fn fold_class(
        &self,
        _ctx: &OptContext,
        memo: &Memo,
        class: &mut Vec<PlanId>,
        rows: &mut Vec<PlanHot>,
        candidates: &[PlanId],
        tally: &mut ClassTally,
    ) {
        match self.prune {
            Some(kind) => prune_fold_slice(
                memo.hot_plans(),
                memo.cold_plans(),
                class,
                rows,
                candidates,
                kind,
                self.guard_groupjoin,
                tally,
            ),
            // EA-All keeps everything: one bulk append, width tallied once.
            None => {
                class.extend_from_slice(candidates);
                tally.peak_class_width = tally.peak_class_width.max(class.len() as u64);
            }
        }
    }

    fn fold_complete(&mut self, ctx: &OptContext, memo: &Memo, id: PlanId) -> bool {
        keep_best(&mut self.best, ctx, memo, id)
    }
}

/// Collect-everything policy for [`all_subplans`]: every class keeps every
/// plan and complete plans are gathered instead of finalized.
struct CollectAll {
    complete: Vec<PlanId>,
}

impl ClassPolicy for CollectAll {
    fn eager(&self) -> bool {
        true
    }

    fn insert(&mut self, _ctx: &OptContext, memo: &mut Memo, s: NodeSet, id: PlanId) {
        memo.class_push(s, id);
    }

    fn complete(&mut self, _ctx: &OptContext, _memo: &mut Memo, id: PlanId) -> bool {
        self.complete.push(id);
        true
    }

    fn fold_insert(
        &self,
        _ctx: &OptContext,
        _memo: &Memo,
        class: &mut Vec<PlanId>,
        id: PlanId,
        tally: &mut ClassTally,
    ) {
        class.push(id);
        tally.peak_class_width = tally.peak_class_width.max(class.len() as u64);
    }

    fn fold_complete(&mut self, _ctx: &OptContext, _memo: &Memo, id: PlanId) -> bool {
        self.complete.push(id);
        true
    }

    // Keeps every complete plan: the workers record all of them instead
    // of pre-filtering with the worker-local keep-best, which makes the
    // layered driver lossless for this policy too.
    fn keeps_all_completes(&self) -> bool {
        true
    }
}

fn run_single(
    ctx: &OptContext,
    memo: &mut Memo,
    eager: bool,
    factor: Option<f64>,
    threads: usize,
) -> ((FinalPlan, PlanId), u64, u64) {
    let mut policy = SingleBest {
        eager,
        factor,
        best: None,
    };
    let plans_built = run_engine(ctx, memo, &mut policy, threads);
    if ctx.query.table_count() == 1 {
        return finalize_single_table(ctx, memo, plans_built);
    }
    let retained = memo.class_count();
    match policy.best {
        // Deferred finalization: compile the single winner's tree now.
        Some((_, id)) => ((finalize(ctx, memo, id), id), retained, plans_built),
        // Eager single-plan search can dead-end when a groupjoin's right
        // side only has a pre-aggregated plan; fall back to the baseline
        // (plans built during the dead-ended attempt stay counted; the
        // dead-ended memo is wiped, matching the old drop-and-restart).
        None if eager => {
            memo.reset();
            let (best, retained, fallback_built) = run_single(ctx, memo, false, None, threads);
            (best, retained, plans_built + fallback_built)
        }
        None => panic!("no plan found: query graph disconnected or over-constrained"),
    }
}

fn run_multi(
    ctx: &OptContext,
    memo: &mut Memo,
    prune: Option<DominanceKind>,
    threads: usize,
) -> ((FinalPlan, PlanId), u64, u64) {
    let guard_groupjoin = ctx.cq.ops.iter().any(|o| o.op == OpKind::GroupJoin);
    let mut policy = MultiBest {
        prune,
        guard_groupjoin,
        best: None,
    };
    let plans_built = run_engine(ctx, memo, &mut policy, threads);
    if ctx.query.table_count() == 1 {
        return finalize_single_table(ctx, memo, plans_built);
    }
    let retained = memo.retained();
    let (_, id) = policy
        .best
        .expect("no plan found: query graph disconnected or over-constrained");
    // Deferred finalization: compile the single winner's tree now.
    ((finalize(ctx, memo, id), id), retained, plans_built)
}

/// Degenerate single-table query: the scan is the complete plan.
fn finalize_single_table(
    ctx: &OptContext,
    memo: &Memo,
    plans_built: u64,
) -> ((FinalPlan, PlanId), u64, u64) {
    let id = memo.class(NodeSet::full(1))[0];
    let plan = finalize(ctx, memo, id);
    ((plan, id), 1, plans_built)
}

/// Enumerate every plan EA-All would consider, for diagnostics and for
/// property tests that validate per-plan claims (keys, duplicate-freeness)
/// against executed results. Exponential — small queries only. Returns the
/// memo owning the plans plus every enumerated id (partial and complete).
pub fn all_subplans(query: &Query) -> (OptContext, Memo, Vec<PlanId>) {
    all_subplans_with(query, 1)
}

/// [`all_subplans`] with an explicit enumeration fan-out. The collect-all
/// policy is layered-capable (workers record every complete plan, see
/// `ClassPolicy::keeps_all_completes`), so class contents, the complete
/// stream and `plans_built` are identical for any thread count — only
/// arena positions (hence raw `PlanId` values) differ.
pub fn all_subplans_with(query: &Query, threads: usize) -> (OptContext, Memo, Vec<PlanId>) {
    let ctx = OptContext::new(query.clone());
    let mut memo = Memo::new();
    let mut policy = CollectAll {
        complete: Vec::new(),
    };
    run_engine(&ctx, &mut memo, &mut policy, threads);
    let mut plans = memo.retained_ids();
    plans.extend(policy.complete);
    (ctx, memo, plans)
}

/// Hard upper bound on the plans one enumeration work unit (one
/// `(orientation, t1, t2)` subplan combination) can construct: `op_trees`
/// builds at most the plain apply, two pushed-down groupings and three
/// grouped applies (Fig. 8 (a)–(d)). The budgeted search uses this to
/// translate a plan budget into a unit allowance without mid-unit
/// bookkeeping.
pub const UNIT_MAX_PLANS: u64 = 6;

/// A budget-enforcing, pair-at-a-time frontend over the multi-plan
/// enumeration engine: the caller supplies the csg-cmp-pair stream (the
/// full DPhyp stream, greedy merges, interval splits of a linear order —
/// anything whose pairs read only already-populated classes), and the
/// search feeds each pair through the same `op_trees`/dominance machinery
/// as [`Algorithm::EaPrune`], guaranteeing `plans_built <= budget`
/// throughout. This is the core hook the `dpnext-adaptive` large-query
/// ladder drives; it always runs the sequential streaming path.
pub struct BudgetedSearch<'a> {
    ctx: &'a OptContext,
    memo: Memo,
    scratch: Scratch,
    bufs: PairBufs,
    policy: MultiBest,
    budget: u64,
    exhausted: bool,
    deadline: Option<Instant>,
    deadline_hit: bool,
    memory_budget: Option<u64>,
    memory_hit: bool,
    unit_delay: Option<Duration>,
    full: NodeSet,
    live_probe: LiveBytesProbe,
}

/// This search's RAII contribution to the process-wide live-bytes gauge
/// ([`dpnext_obs::global_live_bytes`]): remembers the bytes last
/// published and withdraws them on drop. Delta-based publishing makes
/// concurrent searches sum correctly, and the drop reconciliation means
/// a search abandoned mid-run (panic unwind, quarantine) cannot leak its
/// contribution into the gauge forever. Observation only — enforcement
/// stays with the per-search memory budget and the serving ledger.
struct LiveBytesProbe {
    gauge: std::sync::Arc<dpnext_obs::Gauge>,
    reported: u64,
}

impl LiveBytesProbe {
    fn new() -> LiveBytesProbe {
        LiveBytesProbe {
            gauge: dpnext_obs::global_live_bytes(),
            reported: 0,
        }
    }

    /// Publish the current live-byte count (one O(1) read and one relaxed
    /// atomic op — cheap enough for work-unit granularity).
    #[inline]
    fn record(&mut self, live: u64) {
        if live >= self.reported {
            self.gauge.add(live - self.reported);
        } else {
            self.gauge.sub(self.reported - live);
        }
        self.reported = live;
    }
}

impl Drop for LiveBytesProbe {
    fn drop(&mut self) {
        self.gauge.sub(self.reported);
    }
}

/// What a finished [`BudgetedSearch`] hands back.
pub struct BudgetedOutcome {
    /// The memo owning every plan the search built.
    pub memo: Memo,
    /// The cheapest complete plan seen, with its memo id (`None` when no
    /// pair produced a complete plan — disconnected graph or exhaustion
    /// before the first full-set pair).
    pub best: Option<(FinalPlan, PlanId)>,
    /// Plans constructed in total; never exceeds the budget.
    pub plans_built: u64,
    /// Whether some pair was skipped or truncated for lack of budget.
    pub exhausted: bool,
}

impl<'a> BudgetedSearch<'a> {
    /// A fresh search over `ctx` with dominance pruning `dominance` and a
    /// hard cap of `budget` constructed plans (scans are free, matching
    /// the `plans_built` accounting of the unbudgeted engine). Seeds the
    /// singleton scan classes.
    pub fn new(ctx: &'a OptContext, dominance: DominanceKind, budget: u64) -> BudgetedSearch<'a> {
        let guard_groupjoin = ctx.cq.ops.iter().any(|o| o.op == OpKind::GroupJoin);
        let mut memo = Memo::new();
        let n = ctx.query.table_count();
        for i in 0..n {
            let id = make_scan(ctx, &mut memo, i);
            memo.class_push(NodeSet::single(i), id);
        }
        BudgetedSearch {
            ctx,
            memo,
            scratch: Scratch::new(ctx),
            bufs: PairBufs::new(),
            policy: MultiBest {
                prune: Some(dominance),
                guard_groupjoin,
                best: None,
            },
            budget,
            exhausted: false,
            deadline: None,
            deadline_hit: false,
            memory_budget: None,
            memory_hit: false,
            unit_delay: None,
            full: NodeSet::full(n),
            live_probe: LiveBytesProbe::new(),
        }
    }

    /// Plans constructed so far (joins + groupings).
    pub fn plans_built(&self) -> u64 {
        self.scratch.plans_built
    }

    /// Budget still available.
    pub fn remaining(&self) -> u64 {
        self.budget.saturating_sub(self.scratch.plans_built)
    }

    /// The hard cap this search enforces.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Replace the enforced cap. Ladder-style callers temporarily lower
    /// it to run one rung under a sub-budget (reserving the rest for a
    /// cheaper fallback strategy) and restore the full cap afterwards.
    /// Must never drop below what is already spent.
    pub fn set_budget(&mut self, budget: u64) {
        debug_assert!(budget >= self.scratch.plans_built);
        self.budget = budget;
    }

    /// Whether a pair has been skipped or truncated for lack of budget.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Arm (or clear, with `None`) a wall-clock deadline. Checked once per
    /// enumeration work unit inside [`BudgetedSearch::process`], so a pair
    /// in flight overshoots by at most one unit (≤ [`UNIT_MAX_PLANS`]
    /// plans). Also clears the deadline-hit marker, so ladder callers can
    /// arm a fresh sub-deadline per rung.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
        self.deadline_hit = false;
    }

    /// Whether the most recent exhaustion was caused by the deadline (as
    /// opposed to the plan budget). Cleared by [`BudgetedSearch::set_deadline`].
    pub fn deadline_hit(&self) -> bool {
        self.deadline_hit
    }

    /// Arm (or clear, with `None`) a memory budget in bytes of live memo
    /// state ([`Memo::live_bytes`]). Checked once per enumeration work
    /// unit and once per pair inside [`BudgetedSearch::process`], exactly
    /// like the deadline, so overshoot is bounded by one unit's plans
    /// (≤ [`UNIT_MAX_PLANS`], each with a bounded payload). Also clears
    /// the memory-hit marker, so ladder callers can arm a fresh headroom
    /// split per rung.
    pub fn set_memory_budget(&mut self, budget: Option<u64>) {
        self.memory_budget = budget;
        self.memory_hit = false;
    }

    /// Whether the most recent exhaustion was caused by the memory budget
    /// (as opposed to the plan budget or deadline). Cleared by
    /// [`BudgetedSearch::set_memory_budget`].
    pub fn memory_hit(&self) -> bool {
        self.memory_hit
    }

    /// Current live bytes of the search's memo (see [`Memo::live_bytes`]).
    pub fn live_bytes(&self) -> u64 {
        self.memo.live_bytes()
    }

    /// Fault-injection hook: busy-wait `delay` before every enumeration
    /// work unit (see [`OptimizeOptions::fault_unit_delay`]).
    pub fn set_unit_delay(&mut self, delay: Option<Duration>) {
        self.unit_delay = delay;
    }

    /// Clear the exhaustion marker. For ladder-style callers that abandon
    /// an exhausted rung but keep the memo and spend the remaining budget
    /// on a cheaper strategy — the abandoned rung's partial classes stay
    /// valid (every plan in them is real), they just stop being complete.
    pub fn reset_exhausted(&mut self) {
        self.exhausted = false;
    }

    /// Read access to the memo (classes, plan data) for pair selection.
    pub fn memo(&self) -> &Memo {
        &self.memo
    }

    /// Width of the plan class of `s`.
    pub fn class_len(&self, s: NodeSet) -> usize {
        self.memo.class(s).len()
    }

    /// Cost of the cheapest complete plan seen so far.
    pub fn best_cost(&self) -> Option<f64> {
        self.policy.best.map(|(cost, _)| cost)
    }

    /// Whether any complete plan has been found.
    pub fn has_best(&self) -> bool {
        self.policy.best.is_some()
    }

    /// Shrink the class of `s` to its greedy representative(s); see
    /// [`Memo::class_shrink_to_best`]. The groupjoin guard is applied
    /// exactly when the query contains groupjoins.
    pub fn shrink_class_to_best(&mut self, s: NodeSet) {
        self.memo
            .class_shrink_to_best(s, self.policy.guard_groupjoin);
    }

    /// Process one candidate pair under the budget: build every operator
    /// tree of every subplan combination (with all eager-aggregation
    /// variants), insert into the target class with dominance pruning, and
    /// keep-best complete plans. Work units beyond the remaining budget's
    /// unit allowance are skipped; if any were, the search is marked
    /// exhausted and `false` is returned (the pair's plan set is then
    /// incomplete and downstream results must not claim optimality).
    ///
    /// Pairs with no applicable operator build nothing and return `true`.
    pub fn process(&mut self, s1: NodeSet, s2: NodeSet) -> bool {
        if self.exhausted {
            return false;
        }
        // Per-pair deadline/memory checks: even a stream of pairs with no
        // applicable operator (which never enters the per-unit closure
        // below) stays resource-bounded.
        if let Some(dl) = self.deadline {
            if Instant::now() >= dl {
                self.deadline_hit = true;
                self.exhausted = true;
                return false;
            }
        }
        if let Some(mb) = self.memory_budget {
            if self.memo.live_bytes() >= mb {
                self.memory_hit = true;
                self.exhausted = true;
                return false;
            }
        }
        let allowed = self.remaining() / UNIT_MAX_PLANS;
        let mut unit = 0u64;
        let deadline = self.deadline;
        let memory_budget = self.memory_budget;
        let unit_delay = self.unit_delay;
        let mut hit = false;
        let mut mem_hit = false;
        let live_probe = &mut self.live_probe;
        let mut take = |u: u64, memo: &Memo| {
            // Mid-run memory visibility (ROADMAP PR 9 residual): publish
            // live bytes into the process gauge once per work unit, so
            // global pressure is observable between pool check-ins.
            live_probe.record(memo.live_bytes());
            if u >= allowed {
                return false;
            }
            if let Some(dl) = deadline {
                if hit || Instant::now() >= dl {
                    hit = true;
                    return false;
                }
            }
            if let Some(mb) = memory_budget {
                // Live bytes only grow between rollbacks, so once hit the
                // pair stays aborted (the flag mirrors the deadline latch).
                if mem_hit || memo.live_bytes() >= mb {
                    mem_hit = true;
                    return false;
                }
            }
            if let Some(d) = unit_delay {
                // Injected fault: a pathologically slow enumeration.
                let t0 = Instant::now();
                while t0.elapsed() < d {
                    std::hint::spin_loop();
                }
            }
            true
        };
        let mut sink = PolicySink {
            policy: &mut self.policy,
        };
        process_pair(
            self.ctx,
            &mut self.scratch,
            &mut self.bufs,
            &mut self.memo,
            &mut sink,
            true,
            s1,
            s2,
            self.full,
            &mut unit,
            &mut take,
        );
        debug_assert!(self.scratch.plans_built <= self.budget);
        if hit {
            self.deadline_hit = true;
            self.exhausted = true;
            false
        } else if mem_hit {
            self.memory_hit = true;
            self.exhausted = true;
            false
        } else if unit > allowed {
            self.exhausted = true;
            false
        } else {
            true
        }
    }

    /// Tear the search apart into its outcome.
    pub fn finish(self) -> BudgetedOutcome {
        // Deferred finalization: compile the winner's tree once, here.
        let best = self
            .policy
            .best
            .map(|(_, id)| (finalize(self.ctx, &self.memo, id), id));
        BudgetedOutcome {
            memo: self.memo,
            best,
            plans_built: self.scratch.plans_built,
            exhausted: self.exhausted,
        }
    }
}

/// The width-safe all-operators-applied mask: `n_ops` low bits set.
/// `u64` tracking caps the operator count at 64; [`OptContext::new`]
/// asserts the bound so a too-wide query fails loudly instead of letting
/// `1 << op_idx` wrap and corrupt the bookkeeping.
pub fn applied_ops_mask(n_ops: usize) -> u64 {
    assert!(
        n_ops <= 64,
        "applied-operator tracking supports at most 64 operators, got {n_ops}"
    );
    if n_ops == 0 {
        0
    } else {
        u64::MAX >> (64 - n_ops)
    }
}

/// A complete plan must have applied every operator of the query exactly
/// once — a plan reaching the full relation set with a missing predicate
/// (possible only for pathological hyperedge/cut interactions) is invalid
/// and discarded.
fn all_ops_applied(ctx: &OptContext, applied: u64) -> bool {
    applied == applied_ops_mask(ctx.cq.ops.len())
}

/// `CompareAdjustedCosts` (Fig. 12): should `new` replace `old`?
/// Without a factor this is the plain cost comparison of H1 (Fig. 10).
fn compare_adjusted(memo: &Memo, new: PlanId, old: PlanId, factor: Option<f64>) -> bool {
    let (nc, oc) = (memo[new].cost, memo[old].cost);
    let Some(f) = factor else {
        return nc < oc;
    };
    let (en, eo) = (memo.eagerness(new), memo.eagerness(old));
    if en == eo {
        nc < oc
    } else if en < eo {
        // `new` is less eager: its cost is adjusted (penalized) by F.
        f * nc < oc
    } else {
        nc < f * oc
    }
}
