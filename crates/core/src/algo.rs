//! The plan generators of §4: the DPhyp baseline (Fig. 5, no eager
//! aggregation), complete enumeration EA-All (Fig. 9), the
//! optimality-preserving EA-Prune (Figs. 13/14), and the heuristics H1
//! (Fig. 10) and H2 (Fig. 12).

use crate::context::OptContext;
use crate::finalize::{finalize, FinalPlan};
use crate::optrees::{op_tree_plain, op_trees};
use crate::plan::{make_scan, Plan};
use dpnext_conflict::applicable_ops;
use dpnext_hypergraph::{enumerate_ccps, NodeSet};
use dpnext_query::{OpKind, Query};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The available plan-generation algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// DPhyp: join (re)ordering only, grouping stays on top.
    DPhyp,
    /// Complete enumeration of all eager-aggregation plans (Fig. 9);
    /// optimal, `O(2^{2n-1} · #ccp)`.
    EaAll,
    /// Complete enumeration with dominance pruning (Figs. 13/14); optimal.
    EaPrune,
    /// Greedy single-plan heuristic (Fig. 10).
    H1,
    /// H1 with eagerness-adjusted cost comparison and tolerance factor `F`
    /// (Fig. 12).
    H2(f64),
}

impl Algorithm {
    pub fn name(&self) -> String {
        match self {
            Algorithm::DPhyp => "DPhyp".into(),
            Algorithm::EaAll => "EA-All".into(),
            Algorithm::EaPrune => "EA-Prune".into(),
            Algorithm::H1 => "H1".into(),
            Algorithm::H2(f) => format!("H2(F={f})"),
        }
    }
}

/// The result of one optimization run.
#[derive(Debug, Clone)]
pub struct Optimized {
    pub plan: FinalPlan,
    /// Annotated EXPLAIN rendering of the winning logical plan (per-node
    /// cardinality/cost estimates, keys, aggregation state).
    pub explain: String,
    /// Plans constructed during the search (joins + groupings).
    pub plans_built: u64,
    /// Plans retained in the DP table at the end.
    pub retained_plans: u64,
    pub elapsed: Duration,
}

/// Which conditions the dominance test of Def. 4 applies. `Full` is the
/// paper's (optimality-preserving) criterion; the weaker variants exist
/// for the ablation study in `dpnext-bench` — they prune harder but can
/// lose the optimal plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DominanceKind {
    /// Cost + cardinality + duplicate-freeness + key implication (§4.6).
    Full,
    /// Cost + cardinality only (ignores functional dependencies).
    CostCard,
    /// Cost only (Bellman-style pruning; equivalent to keeping the single
    /// cheapest plan per class when ties collapse).
    CostOnly,
}

/// Optimize `query` with the chosen algorithm.
pub fn optimize(query: &Query, algo: Algorithm) -> Optimized {
    let ctx = OptContext::new(query.clone());
    let start = Instant::now();
    let ((plan, logical), retained) = match algo {
        Algorithm::DPhyp => run_single(&ctx, false, None),
        Algorithm::H1 => run_single(&ctx, true, None),
        Algorithm::H2(f) => run_single(&ctx, true, Some(f)),
        Algorithm::EaAll => run_multi(&ctx, None),
        Algorithm::EaPrune => run_multi(&ctx, Some(DominanceKind::Full)),
    };
    let plans_built = *ctx.plans_built.borrow();
    let explain = crate::explain::explain(&ctx, &logical);
    Optimized {
        plan,
        explain,
        plans_built,
        retained_plans: retained,
        elapsed: start.elapsed(),
    }
}

/// EA-Prune with a configurable dominance criterion (ablation interface;
/// `DominanceKind::Full` is exactly [`Algorithm::EaPrune`]).
pub fn optimize_with_pruning(query: &Query, kind: DominanceKind) -> Optimized {
    let ctx = OptContext::new(query.clone());
    let start = Instant::now();
    let ((plan, logical), retained) = run_multi(&ctx, Some(kind));
    let plans_built = *ctx.plans_built.borrow();
    let explain = crate::explain::explain(&ctx, &logical);
    Optimized {
        plan,
        explain,
        plans_built,
        retained_plans: retained,
        elapsed: start.elapsed(),
    }
}

/// All ways to apply operators to the csg-cmp-pair `(s1, s2)`:
/// `(left set, right set, primary operator, extra inner-join edges)`.
///
/// Multiple edges cross the same cut only in cyclic queries; if they are
/// all inner joins their predicates are merged into one application. A mix
/// of inner and non-inner edges on one cut is rejected (never produced by
/// the paper's workloads).
fn orientations(
    ctx: &OptContext,
    s1: NodeSet,
    s2: NodeSet,
) -> Vec<(NodeSet, NodeSet, usize, Vec<usize>)> {
    let apps = applicable_ops(&ctx.cq, s1, s2);
    if apps.is_empty() {
        return Vec::new();
    }
    let mut uniq: Vec<usize> = apps.iter().map(|&(i, _)| i).collect();
    uniq.sort_unstable();
    uniq.dedup();
    if uniq.len() == 1 {
        let idx = uniq[0];
        apps.iter()
            .map(|&(_, swapped)| {
                if swapped {
                    (s2, s1, idx, Vec::new())
                } else {
                    (s1, s2, idx, Vec::new())
                }
            })
            .collect()
    } else if uniq.iter().all(|&i| ctx.cq.ops[i].op == OpKind::Join) {
        let primary = uniq[0];
        let extra: Vec<usize> = uniq[1..].to_vec();
        vec![(s1, s2, primary, extra.clone()), (s2, s1, primary, extra)]
    } else {
        Vec::new()
    }
}

/// Single-plan-per-class DP: DPhyp baseline (`eager = false`), H1
/// (`eager = true`), H2 (`factor = Some(F)`).
fn run_single(ctx: &OptContext, eager: bool, factor: Option<f64>) -> ((FinalPlan, Plan), u64) {
    let n = ctx.query.table_count();
    let full = NodeSet::full(n);
    let mut table: HashMap<NodeSet, Plan> = HashMap::new();
    for i in 0..n {
        table.insert(NodeSet::single(i), make_scan(ctx, i));
    }
    if n == 1 {
        let scan = table[&full].clone();
        let plan = finalize(ctx, &scan);
        return ((plan, scan), 1);
    }

    let mut best_final: Option<(FinalPlan, Plan)> = None;
    enumerate_ccps(&ctx.cq.graph, |s1, s2| {
        for (sl, sr, op, extra) in orientations(ctx, s1, s2) {
            let (Some(t1), Some(t2)) = (table.get(&sl), table.get(&sr)) else {
                continue;
            };
            let candidates = if eager {
                op_trees(ctx, op, &extra, t1, t2)
            } else {
                op_tree_plain(ctx, op, &extra, t1, t2).into_iter().collect()
            };
            let s = sl.union(sr);
            for t in candidates {
                if s == full {
                    if !all_ops_applied(ctx, &t) {
                        continue;
                    }
                    let f = finalize(ctx, &t);
                    if best_final.as_ref().is_none_or(|(b, _)| f.cost < b.cost) {
                        best_final = Some((f, t));
                    }
                } else {
                    match table.get(&s) {
                        None => {
                            table.insert(s, t);
                        }
                        Some(cur) => {
                            if compare_adjusted(&t, cur, factor) {
                                table.insert(s, t);
                            }
                        }
                    }
                }
            }
        }
    });

    let retained = table.len() as u64;
    match best_final {
        Some(best) => (best, retained),
        // Eager single-plan search can dead-end when a groupjoin's right
        // side only has a pre-aggregated plan; fall back to the baseline.
        None if eager => run_single(ctx, false, None),
        None => panic!("no plan found: query graph disconnected or over-constrained"),
    }
}

/// A complete plan must have applied every operator of the query exactly
/// once — a plan reaching the full relation set with a missing predicate
/// (possible only for pathological hyperedge/cut interactions) is invalid
/// and discarded.
fn all_ops_applied(ctx: &OptContext, t: &Plan) -> bool {
    let n_ops = ctx.cq.ops.len();
    let all = if n_ops >= 64 {
        u64::MAX
    } else {
        (1u64 << n_ops) - 1
    };
    t.applied == all
}

/// `CompareAdjustedCosts` (Fig. 12): should `new` replace `old`?
/// Without a factor this is the plain cost comparison of H1 (Fig. 10).
fn compare_adjusted(new: &Plan, old: &Plan, factor: Option<f64>) -> bool {
    let Some(f) = factor else {
        return new.cost < old.cost;
    };
    let (en, eo) = (new.eagerness(), old.eagerness());
    if en == eo {
        new.cost < old.cost
    } else if en < eo {
        // `new` is less eager: its cost is adjusted (penalized) by F.
        f * new.cost < old.cost
    } else {
        new.cost < f * old.cost
    }
}

/// Multi-plan DP: EA-All (`prune = None`, Fig. 9) and EA-Prune
/// (`prune = Some(kind)`, Figs. 13/14).
fn run_multi(ctx: &OptContext, prune: Option<DominanceKind>) -> ((FinalPlan, Plan), u64) {
    let n = ctx.query.table_count();
    let full = NodeSet::full(n);
    let guard_groupjoin = ctx.cq.ops.iter().any(|o| o.op == OpKind::GroupJoin);
    let mut table: HashMap<NodeSet, Vec<Plan>> = HashMap::new();
    for i in 0..n {
        table.insert(NodeSet::single(i), vec![make_scan(ctx, i)]);
    }
    if n == 1 {
        let scan = table[&full][0].clone();
        let plan = finalize(ctx, &scan);
        return ((plan, scan), 1);
    }

    let mut best_final: Option<(FinalPlan, Plan)> = None;
    enumerate_ccps(&ctx.cq.graph, |s1, s2| {
        for (sl, sr, op, extra) in orientations(ctx, s1, s2) {
            let (Some(lefts), Some(rights)) = (table.get(&sl), table.get(&sr)) else {
                continue;
            };
            let (lefts, rights) = (lefts.clone(), rights.clone());
            let s = sl.union(sr);
            for t1 in &lefts {
                for t2 in &rights {
                    for t in op_trees(ctx, op, &extra, t1, t2) {
                        if s == full {
                            if !all_ops_applied(ctx, &t) {
                                continue;
                            }
                            let f = finalize(ctx, &t);
                            if best_final.as_ref().is_none_or(|(b, _)| f.cost < b.cost) {
                                best_final = Some((f, t));
                            }
                        } else {
                            let list = table.entry(s).or_default();
                            match prune {
                                Some(kind) => prune_dominated(list, t, kind, guard_groupjoin),
                                None => list.push(t),
                            }
                        }
                    }
                }
            }
        }
    });

    let retained = table.values().map(|v| v.len() as u64).sum();
    let best = best_final.expect("no plan found: query graph disconnected or over-constrained");
    (best, retained)
}

/// Enumerate every plan EA-All would consider, for diagnostics and for
/// property tests that validate per-plan claims (keys, duplicate-freeness)
/// against executed results. Exponential — small queries only.
pub fn all_subplans(query: &Query) -> (OptContext, Vec<Plan>) {
    let ctx = OptContext::new(query.clone());
    let n = ctx.query.table_count();
    let full = NodeSet::full(n);
    let mut table: HashMap<NodeSet, Vec<Plan>> = HashMap::new();
    let mut complete: Vec<Plan> = Vec::new();
    for i in 0..n {
        table.insert(NodeSet::single(i), vec![make_scan(&ctx, i)]);
    }
    enumerate_ccps(&ctx.cq.graph, |s1, s2| {
        for (sl, sr, op, extra) in orientations(&ctx, s1, s2) {
            let (Some(lefts), Some(rights)) = (table.get(&sl), table.get(&sr)) else {
                continue;
            };
            let (lefts, rights) = (lefts.clone(), rights.clone());
            let s = sl.union(sr);
            for t1 in &lefts {
                for t2 in &rights {
                    for t in op_trees(&ctx, op, &extra, t1, t2) {
                        if s == full {
                            if all_ops_applied(&ctx, &t) {
                                complete.push(t);
                            }
                        } else {
                            table.entry(s).or_default().push(t);
                        }
                    }
                }
            }
        }
    });
    let mut plans: Vec<Plan> = table.into_values().flatten().collect();
    plans.extend(complete);
    (ctx, plans)
}

/// Dominance (Def. 4): `a` dominates `b` when it is at most as expensive,
/// at most as large, duplicate-free whenever `b` is, and its key set
/// implies `b`'s (the practical weakening of `FD⁺(a) ⊇ FD⁺(b)` suggested
/// in §4.6). In the presence of groupjoins a pre-aggregated plan must not
/// shadow a raw plan (the groupjoin needs raw right inputs).
fn dominates(a: &Plan, b: &Plan, kind: DominanceKind, guard_groupjoin: bool) -> bool {
    if guard_groupjoin && a.has_grouping && !b.has_grouping {
        return false;
    }
    match kind {
        DominanceKind::CostOnly => a.cost <= b.cost,
        DominanceKind::CostCard => a.cost <= b.cost && a.card <= b.card,
        DominanceKind::Full => {
            a.cost <= b.cost
                && a.card <= b.card
                && (a.keyinfo.duplicate_free || !b.keyinfo.duplicate_free)
                && a.keyinfo.keys.implies(&b.keyinfo.keys)
        }
    }
}

/// `PruneDominatedPlans` (Fig. 13).
fn prune_dominated(list: &mut Vec<Plan>, t: Plan, kind: DominanceKind, guard_groupjoin: bool) {
    for old in list.iter() {
        if dominates(old, &t, kind, guard_groupjoin) {
            return;
        }
    }
    list.retain(|old| !dominates(&t, old, kind, guard_groupjoin));
    list.push(t);
}
