//! Shared optimization context: the conflicted query, attribute statistics,
//! grouping attributes `G⁺(S)` and aggregate metadata.
//!
//! [`OptContext`] is immutable after construction and `Sync`, so the
//! layered parallel engine can share one reference across worker threads.
//! All per-run mutable state — the fresh-attribute allocator, the memoized
//! `G⁺(S)` cache, the plans-built counter and the hot-path scratch buffers
//! — lives in [`Scratch`], of which every worker owns its own instance
//! (contention-free by construction; counters are summed at merge time).

use crate::fxhash::FxHashMap;
use dpnext_algebra::{AttrId, CmpOp};
use dpnext_conflict::{detect, ConflictedQuery};
use dpnext_hypergraph::NodeSet;
use dpnext_query::Query;
use std::sync::Arc;

/// Context shared by all plan constructors during one optimization run.
pub struct OptContext {
    /// The query being optimized.
    pub query: Query,
    /// Conflict-detection result (TES/SES sets) for the query's operators.
    pub cq: ConflictedQuery,
    /// Attribute → node set required for the attribute to exist.
    pub origins: FxHashMap<AttrId, NodeSet>,
    /// Base distinct counts for table attributes.
    pub base_distinct: FxHashMap<AttrId, f64>,
    /// Grouping attributes `G` of the query (empty when no grouping).
    pub group_by: Vec<AttrId>,
    /// Per normalized aggregate: the attributes its argument references.
    pub agg_args: Vec<Vec<AttrId>>,
    /// Per normalized aggregate: union of argument origins (empty for
    /// `count(*)`).
    pub agg_origin: Vec<NodeSet>,
    /// First attribute id above every catalog/query attribute — the base
    /// from which [`Scratch`] allocators hand out partial/count columns.
    first_fresh: u32,
}

// The layered engine shares `&OptContext` across `std::thread::scope`
// workers; keep the context free of interior mutability.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<OptContext>()
};

impl OptContext {
    /// Derive the full optimization context (conflict detection,
    /// attribute origins, base statistics) for one query.
    pub fn new(query: Query) -> Self {
        let cq = detect(&query);
        // Applied-operator tracking uses a u64 bitmask (`MemoPlan::applied`);
        // beyond 64 operators the `1 << op_idx` shifts would wrap silently
        // and `all_ops_applied` could accept plans that dropped a predicate.
        assert!(
            cq.ops.len() <= 64,
            "query has {} operators; applied-operator tracking supports at most 64",
            cq.ops.len()
        );
        let origins = query.attr_origins();
        let mut base_distinct = FxHashMap::default();
        for t in &query.tables {
            for (i, &a) in t.attrs.iter().enumerate() {
                base_distinct.insert(a, t.distinct[i]);
            }
        }
        let mut max_attr = 0u32;
        for &a in origins.keys() {
            max_attr = max_attr.max(a.0);
        }
        let (group_by, aggs) = match &query.grouping {
            Some(g) => (g.group_by.clone(), g.aggs.clone()),
            None => (Vec::new(), Vec::new()),
        };
        for call in &aggs {
            max_attr = max_attr.max(call.out.0);
        }
        if let Some(g) = &query.grouping {
            for (a, _) in &g.post {
                max_attr = max_attr.max(a.0);
            }
        }
        let agg_args: Vec<Vec<AttrId>> = aggs.iter().map(|c| c.referenced()).collect();
        let agg_origin: Vec<NodeSet> = agg_args
            .iter()
            .map(|args| {
                args.iter().fold(NodeSet::EMPTY, |acc, a| {
                    acc.union(
                        *origins
                            .get(a)
                            .expect("aggregate argument attribute unknown"),
                    )
                })
            })
            .collect();
        OptContext {
            query,
            cq,
            origins,
            base_distinct,
            group_by,
            agg_args,
            agg_origin,
            first_fresh: max_attr + 1,
        }
    }

    /// The normalized aggregation vector of the query.
    pub fn aggs(&self) -> &[dpnext_algebra::AggCall] {
        self.query
            .grouping
            .as_ref()
            .map(|g| g.aggs.as_slice())
            .unwrap_or(&[])
    }

    /// Whether the query has a `GROUP BY` (or scalar-aggregate) block.
    pub fn has_grouping(&self) -> bool {
        self.query.grouping.is_some()
    }

    /// First id strictly above every query attribute; fresh-attribute
    /// allocators must start at or above this.
    pub fn first_fresh_attr(&self) -> u32 {
        self.first_fresh
    }

    /// Node set an attribute originates from; panics on unknown ids.
    pub fn origin(&self, a: AttrId) -> NodeSet {
        *self
            .origins
            .get(&a)
            .unwrap_or_else(|| panic!("unknown attribute {a}"))
    }

    /// Base distinct count of an attribute (infinite when unknown, e.g.
    /// groupjoin outputs — grouping on them then gives no reduction).
    pub fn distinct(&self, a: AttrId) -> f64 {
        self.base_distinct.get(&a).copied().unwrap_or(f64::INFINITY)
    }

    /// `G⁺(S)` computed from scratch (see [`Scratch::gplus`] for the memoized
    /// variant the plan constructors use): the grouping attributes for a
    /// pushed-down grouping over the relation set `S` — the query's grouping
    /// attributes from `S` plus every attribute of `S` referenced by a
    /// predicate (or groupjoin aggregate) of an operator that is not fully
    /// contained in `S` (§4.2's `G⁺ᵢ = Gᵢ ∪ Jᵢ`, closed under the whole
    /// remaining query so the equivalences stay applicable above `S`).
    pub fn compute_gplus(&self, s: NodeSet) -> Vec<AttrId> {
        let mut attrs: Vec<AttrId> = Vec::new();
        let mut push = |a: AttrId, origins: &FxHashMap<AttrId, NodeSet>| {
            if let Some(org) = origins.get(&a) {
                if org.is_subset_of(s) && !attrs.contains(&a) {
                    attrs.push(a);
                }
            }
        };
        for &a in &self.group_by {
            push(a, &self.origins);
        }
        for op in &self.cq.ops {
            // An operator is applied inside every plan for S as soon as its
            // hyperedge (L-TES ∪ R-TES) lies within S — that is its
            // earliest application point under reordering, not its original
            // subtree position.
            if op.l_tes.union(op.r_tes).is_subset_of(s) {
                continue;
            }
            for a in op.pred.all_attrs() {
                push(a, &self.origins);
            }
            for call in &op.gj_aggs {
                for a in call.referenced() {
                    push(a, &self.origins);
                }
            }
        }
        attrs.sort_unstable();
        attrs
    }

    /// May a plan covering `s` be grouped at all? Every aggregate whose
    /// arguments lie inside `s` must be decomposable (§2.1.2); aggregates
    /// split across the boundary (impossible for single-table arguments)
    /// also forbid grouping.
    pub fn can_group(&self, s: NodeSet) -> bool {
        for (i, call) in self.aggs().iter().enumerate() {
            let org = self.agg_origin[i];
            if org.is_empty() {
                continue; // count(*) splits either way (special case S1)
            }
            if org.is_subset_of(s) {
                if !call.kind.is_decomposable() {
                    return false;
                }
            } else if org.intersects(s) {
                return false; // argument split across the boundary
            }
        }
        true
    }
}

/// Per-worker mutable state of one enumeration: the fresh-attribute
/// allocator, the memoized `G⁺(S)` cache, the plans-built counter, and the
/// predicate-term scratch buffer of [`crate::plan::make_apply`]. The
/// sequential engine owns exactly one; the layered engine hands each
/// worker thread its own (with a disjoint attribute range), so nothing
/// here is ever contended.
pub struct Scratch {
    /// Next fresh attribute id; advances by `step` per allocation, so the
    /// layered engine's workers can interleave disjoint ids (worker `w`
    /// of `t` hands out `base + w + k·t`) without pre-partitioning the
    /// id space.
    next_attr: u32,
    step: u32,
    attrs_used: u32,
    // Arc (not Rc) so a worker's scratch — and its warm G⁺ cache — can be
    // carried across the per-stratum thread spawns of the layered engine.
    gplus_cache: FxHashMap<NodeSet, Arc<Vec<AttrId>>>,
    /// Plans constructed (joins + groupings) by this scratch's owner.
    pub plans_built: u64,
    /// Scratch for the oriented, merged predicate terms of `make_apply`:
    /// terms are staged here so failed applications allocate nothing.
    pub terms: Vec<(AttrId, CmpOp, AttrId)>,
}

impl Scratch {
    /// Scratch for a sequential run: fresh attributes start right above
    /// the query's own.
    pub fn new(ctx: &OptContext) -> Scratch {
        Scratch::with_attr_base(ctx.first_fresh_attr())
    }

    /// Scratch whose fresh attributes start at `base`.
    pub fn with_attr_base(base: u32) -> Scratch {
        Scratch {
            next_attr: base,
            step: 1,
            attrs_used: 0,
            gplus_cache: FxHashMap::default(),
            plans_built: 0,
            terms: Vec::new(),
        }
    }

    /// Allocate the next fresh attribute id (stride-aware, so parallel
    /// workers draw from disjoint sequences).
    pub fn fresh_attr(&mut self) -> AttrId {
        let id = AttrId(self.next_attr);
        self.next_attr = self
            .next_attr
            .checked_add(self.step)
            .expect("fresh-attribute space (u32) exhausted");
        self.attrs_used += 1;
        id
    }

    /// Restart fresh-attribute allocation at `base` with stride 1,
    /// resetting the usage counter (the memoized `G⁺` cache survives —
    /// it is a pure function of the query). The layered engine uses this
    /// to keep its inline (non-fanned-out) strata on the global
    /// attribute cursor.
    pub fn set_attr_base(&mut self, base: u32) {
        self.set_attr_stride(base, 1);
    }

    /// Restart allocation at `base` handing out `base, base+step,
    /// base+2·step, …` — worker `w` of `t` uses `(base+w, t)` so the
    /// workers of one stratum interleave pairwise-disjoint ids from a
    /// shared cursor instead of pre-partitioning the id space (which
    /// would shrink it geometrically with every fanned-out stratum).
    pub fn set_attr_stride(&mut self, base: u32, step: u32) {
        debug_assert!(step >= 1);
        self.next_attr = base;
        self.step = step;
        self.attrs_used = 0;
    }

    /// Fresh attributes handed out so far.
    pub fn attrs_used(&self) -> u32 {
        self.attrs_used
    }

    /// Record one constructed plan in the scratch counter.
    pub fn count_plan(&mut self) {
        self.plans_built += 1;
    }

    /// Memoized `G⁺(S)` (§4.2); see [`OptContext::compute_gplus`].
    ///
    /// Returns a borrow of the cached vector: a cache hit is one map
    /// probe — no `Arc` refcount traffic on the enumeration hot path
    /// (every worker owns its scratch, so the borrow never contends).
    /// Callers that need the scratch again while holding the attributes
    /// use [`Scratch::gplus_arc`].
    pub fn gplus(&mut self, ctx: &OptContext, s: NodeSet) -> &[AttrId] {
        self.gplus_cache
            .entry(s)
            .or_insert_with(|| Arc::new(ctx.compute_gplus(s)))
    }

    /// Owning variant of [`Scratch::gplus`] for callers that must keep
    /// using the scratch (e.g. to allocate fresh attributes) while the
    /// grouping attributes are alive — clones the cache's `Arc`.
    pub fn gplus_arc(&mut self, ctx: &OptContext, s: NodeSet) -> Arc<Vec<AttrId>> {
        self.gplus_cache
            .entry(s)
            .or_insert_with(|| Arc::new(ctx.compute_gplus(s)))
            .clone()
    }
}
