//! Shared optimization context: the conflicted query, attribute statistics,
//! grouping attributes `G⁺(S)` and aggregate metadata.

use dpnext_algebra::{AttrGen, AttrId};
use dpnext_conflict::{detect, ConflictedQuery};
use dpnext_hypergraph::NodeSet;
use dpnext_query::Query;
use std::cell::RefCell;
use std::collections::HashMap;

/// Context shared by all plan constructors during one optimization run.
pub struct OptContext {
    pub query: Query,
    pub cq: ConflictedQuery,
    /// Attribute → node set required for the attribute to exist.
    pub origins: HashMap<AttrId, NodeSet>,
    /// Base distinct counts for table attributes.
    pub base_distinct: HashMap<AttrId, f64>,
    /// Grouping attributes `G` of the query (empty when no grouping).
    pub group_by: Vec<AttrId>,
    /// Per normalized aggregate: the attributes its argument references.
    pub agg_args: Vec<Vec<AttrId>>,
    /// Per normalized aggregate: union of argument origins (empty for
    /// `count(*)`).
    pub agg_origin: Vec<NodeSet>,
    /// Fresh-attribute allocator for partial/count columns.
    pub gen: RefCell<AttrGen>,
    /// Memoized `G⁺(S)` (§4.2; closed under all predicates crossing `S`).
    gplus_cache: RefCell<HashMap<NodeSet, std::rc::Rc<Vec<AttrId>>>>,
    /// Counter: plans constructed (joins + groupings), for the evaluation.
    pub plans_built: RefCell<u64>,
}

impl OptContext {
    pub fn new(query: Query) -> Self {
        let cq = detect(&query);
        // Applied-operator tracking uses a u64 bitmask (`MemoPlan::applied`);
        // beyond 64 operators the `1 << op_idx` shifts would wrap silently
        // and `all_ops_applied` could accept plans that dropped a predicate.
        assert!(
            cq.ops.len() <= 64,
            "query has {} operators; applied-operator tracking supports at most 64",
            cq.ops.len()
        );
        let origins = query.attr_origins();
        let mut base_distinct = HashMap::new();
        for t in &query.tables {
            for (i, &a) in t.attrs.iter().enumerate() {
                base_distinct.insert(a, t.distinct[i]);
            }
        }
        let mut max_attr = 0u32;
        for &a in origins.keys() {
            max_attr = max_attr.max(a.0);
        }
        let (group_by, aggs) = match &query.grouping {
            Some(g) => (g.group_by.clone(), g.aggs.clone()),
            None => (Vec::new(), Vec::new()),
        };
        for call in &aggs {
            max_attr = max_attr.max(call.out.0);
        }
        if let Some(g) = &query.grouping {
            for (a, _) in &g.post {
                max_attr = max_attr.max(a.0);
            }
        }
        let agg_args: Vec<Vec<AttrId>> = aggs.iter().map(|c| c.referenced()).collect();
        let agg_origin: Vec<NodeSet> = agg_args
            .iter()
            .map(|args| {
                args.iter().fold(NodeSet::EMPTY, |acc, a| {
                    acc.union(
                        *origins
                            .get(a)
                            .expect("aggregate argument attribute unknown"),
                    )
                })
            })
            .collect();
        OptContext {
            query,
            cq,
            origins,
            base_distinct,
            group_by,
            agg_args,
            agg_origin,
            gen: RefCell::new(AttrGen::new(max_attr + 1)),
            gplus_cache: RefCell::new(HashMap::new()),
            plans_built: RefCell::new(0),
        }
    }

    /// The normalized aggregation vector of the query.
    pub fn aggs(&self) -> &[dpnext_algebra::AggCall] {
        self.query
            .grouping
            .as_ref()
            .map(|g| g.aggs.as_slice())
            .unwrap_or(&[])
    }

    pub fn has_grouping(&self) -> bool {
        self.query.grouping.is_some()
    }

    pub fn fresh_attr(&self) -> AttrId {
        self.gen.borrow_mut().fresh()
    }

    pub fn count_plan(&self) {
        *self.plans_built.borrow_mut() += 1;
    }

    pub fn origin(&self, a: AttrId) -> NodeSet {
        *self
            .origins
            .get(&a)
            .unwrap_or_else(|| panic!("unknown attribute {a}"))
    }

    /// Base distinct count of an attribute (infinite when unknown, e.g.
    /// groupjoin outputs — grouping on them then gives no reduction).
    pub fn distinct(&self, a: AttrId) -> f64 {
        self.base_distinct.get(&a).copied().unwrap_or(f64::INFINITY)
    }

    /// `G⁺(S)`: the grouping attributes for a pushed-down grouping over the
    /// relation set `S` — the query's grouping attributes from `S` plus
    /// every attribute of `S` referenced by a predicate (or groupjoin
    /// aggregate) of an operator that is not fully contained in `S`
    /// (§4.2's `G⁺ᵢ = Gᵢ ∪ Jᵢ`, closed under the whole remaining query so
    /// the equivalences stay applicable above `S`).
    pub fn gplus(&self, s: NodeSet) -> std::rc::Rc<Vec<AttrId>> {
        if let Some(hit) = self.gplus_cache.borrow().get(&s) {
            return hit.clone();
        }
        let mut attrs: Vec<AttrId> = Vec::new();
        let mut push = |a: AttrId, origins: &HashMap<AttrId, NodeSet>| {
            if let Some(org) = origins.get(&a) {
                if org.is_subset_of(s) && !attrs.contains(&a) {
                    attrs.push(a);
                }
            }
        };
        for &a in &self.group_by {
            push(a, &self.origins);
        }
        for op in &self.cq.ops {
            // An operator is applied inside every plan for S as soon as its
            // hyperedge (L-TES ∪ R-TES) lies within S — that is its
            // earliest application point under reordering, not its original
            // subtree position.
            if op.l_tes.union(op.r_tes).is_subset_of(s) {
                continue;
            }
            for a in op.pred.all_attrs() {
                push(a, &self.origins);
            }
            for call in &op.gj_aggs {
                for a in call.referenced() {
                    push(a, &self.origins);
                }
            }
        }
        attrs.sort_unstable();
        let rc = std::rc::Rc::new(attrs);
        self.gplus_cache.borrow_mut().insert(s, rc.clone());
        rc
    }

    /// May a plan covering `s` be grouped at all? Every aggregate whose
    /// arguments lie inside `s` must be decomposable (§2.1.2); aggregates
    /// split across the boundary (impossible for single-table arguments)
    /// also forbid grouping.
    pub fn can_group(&self, s: NodeSet) -> bool {
        for (i, call) in self.aggs().iter().enumerate() {
            let org = self.agg_origin[i];
            if org.is_empty() {
                continue; // count(*) splits either way (special case S1)
            }
            if org.is_subset_of(s) {
                if !call.kind.is_decomposable() {
                    return false;
                }
            } else if org.intersects(s) {
                return false; // argument split across the boundary
            }
        }
        true
    }
}
