//! The arena-backed DP memo: plans are [`PlanId`] indices into a
//! contiguous arena, plan classes are per-[`NodeSet`] id lists owned by
//! the memo, and dominance pruning (Fig. 13) operates on ids without
//! cloning plan-class vectors.
//!
//! The arena is split structure-of-arrays into a **hot** lane
//! ([`PlanHot`]: set, cardinality, cost, applied mask, key/grouping
//! flags — everything the dominance test of Def. 4 reads) and a **cold**
//! lane ([`PlanCold`]: the operator tree, key sets, aggregation state and
//! visible attributes — touched only on materialization, key implication
//! and plan construction). A class scan for pruning walks a few dozen
//! 40-byte hot rows instead of dragging whole plan payloads through the
//! cache; see `docs/ARCHITECTURE.md` § "memo data layout".
//!
//! The memo is the optimizer's single source of truth for DP state; the
//! enumeration engine in [`crate::algo`] only decides *which* plans to
//! build and which ids a class keeps.

use crate::aggstate::AggState;
use crate::fxhash::FxHashMap;
use dpnext_algebra::{AggCall, AttrId, JoinPred};
use dpnext_hypergraph::NodeSet;
use dpnext_keys::KeyInfo;
use dpnext_query::OpKind;
use std::ops::Index;
use std::sync::Arc;

/// Index of a plan in the memo arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanId(u32);

impl PlanId {
    /// The arena slot this id refers to.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    #[inline]
    fn from_index(i: usize) -> PlanId {
        PlanId(u32::try_from(i).expect("memo arena overflows u32"))
    }
}

/// One operator of a plan tree; children are arena indices.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// Scan of a table occurrence.
    Scan {
        /// Index into the query's table vector.
        table: usize,
    },
    /// A binary operator application with the (oriented, merged) predicate.
    Apply {
        /// Operator kind (join, outer join, groupjoin, ...).
        op: OpKind,
        /// The merged predicate, oriented left-to-right. Shared: every
        /// plan of one orientation applies the identical predicate, so
        /// the enumeration stages it once per orientation and each plan
        /// holds a reference instead of a cloned term vector.
        pred: Arc<JoinPred>,
        /// Aggregates evaluated inline when `op` is a groupjoin.
        gj_aggs: Vec<AggCall>,
        /// Left input plan.
        left: PlanId,
        /// Right input plan.
        right: PlanId,
    },
    /// An eager-aggregation grouping `Γ_{G⁺(S); F¹ ∘ (c : count(*))}`.
    Group {
        /// Grouping attributes `G⁺(S)`.
        attrs: Vec<AttrId>,
        /// Partial aggregates plus the mandatory count column.
        aggs: Vec<AggCall>,
        /// The plan being grouped.
        input: PlanId,
    },
}

/// A plan plus its derived logical properties — the construction /
/// transfer representation. The memo stores it split into a [`PlanHot`]
/// and a [`PlanCold`] row; read both back through
/// [`PlanStore::plan`] / [`PlanRef`].
#[derive(Debug, Clone)]
pub struct MemoPlan {
    /// The root operator; children are arena ids.
    pub node: PlanNode,
    /// Relations covered.
    pub set: NodeSet,
    /// Estimated output cardinality.
    pub card: f64,
    /// Accumulated `C_out`.
    pub cost: f64,
    /// Candidate keys + duplicate-freeness.
    pub keyinfo: KeyInfo,
    /// Aggregation state (positions of original aggregates, count columns).
    pub agg: AggState,
    /// Attributes visible in the output.
    pub visible: Vec<AttrId>,
    /// Whether any `Group` node occurs in the tree.
    pub has_grouping: bool,
    /// Bitmask of applied operators (indices into the conflicted query's
    /// operator list). A complete plan must apply every operator exactly
    /// once; this is asserted before finalization.
    pub applied: u64,
}

impl MemoPlan {
    /// Whether the root operator is an eager-aggregation grouping.
    pub fn is_group(&self) -> bool {
        matches!(self.node, PlanNode::Group { .. })
    }

    /// Split into the hot/cold arena rows.
    #[inline]
    pub fn split(self) -> (PlanHot, PlanCold) {
        let mut flags = 0u8;
        if self.has_grouping {
            flags |= PlanHot::HAS_GROUPING;
        }
        if self.keyinfo.duplicate_free {
            flags |= PlanHot::DUP_FREE;
        }
        if matches!(self.node, PlanNode::Group { .. }) {
            flags |= PlanHot::IS_GROUP;
        }
        (
            PlanHot {
                set: self.set,
                card: self.card,
                cost: self.cost,
                applied: self.applied,
                flags,
            },
            PlanCold {
                node: self.node,
                keyinfo: self.keyinfo,
                agg: self.agg,
                visible: self.visible,
            },
        )
    }
}

/// The dominance-relevant properties of one plan, packed into a 40-byte
/// `Copy` row. A class scan during pruning reads only this array — the
/// operator tree and key sets stay out of the cache until a comparison
/// actually needs key implication or a plan is materialized.
#[derive(Debug, Clone, Copy)]
pub struct PlanHot {
    /// Relations covered.
    pub set: NodeSet,
    /// Estimated output cardinality.
    pub card: f64,
    /// Accumulated `C_out`.
    pub cost: f64,
    /// Bitmask of applied operators.
    pub applied: u64,
    /// Packed `HAS_GROUPING` / `DUP_FREE` / `IS_GROUP` bits.
    flags: u8,
}

impl PlanHot {
    const HAS_GROUPING: u8 = 1;
    const DUP_FREE: u8 = 2;
    const IS_GROUP: u8 = 4;

    /// Whether any `Group` node occurs in the plan tree.
    #[inline]
    pub fn has_grouping(&self) -> bool {
        self.flags & Self::HAS_GROUPING != 0
    }

    /// Whether the plan's output is duplicate-free
    /// (mirrors `keyinfo.duplicate_free` of the cold row).
    #[inline]
    pub fn duplicate_free(&self) -> bool {
        self.flags & Self::DUP_FREE != 0
    }

    /// Whether the root operator is an eager-aggregation grouping.
    #[inline]
    pub fn is_group(&self) -> bool {
        self.flags & Self::IS_GROUP != 0
    }
}

/// The materialization payload of one plan: everything dominance does not
/// read on its fast path. Reached through [`PlanStore::plan`].
#[derive(Debug, Clone)]
pub struct PlanCold {
    /// The root operator; children are arena ids.
    pub node: PlanNode,
    /// Candidate keys + duplicate-freeness.
    pub keyinfo: KeyInfo,
    /// Aggregation state (positions of original aggregates, count columns).
    pub agg: AggState,
    /// Attributes visible in the output.
    pub visible: Vec<AttrId>,
}

impl PlanCold {
    /// Estimated heap bytes owned by this row's payload vectors, counted
    /// by *length* (not capacity) so the estimate is identical wherever
    /// the row was built (streaming memo, worker shard). Nested heap of
    /// aggregate expressions is not chased — the estimate feeds the
    /// memory-budget abort, which needs a cheap, monotone, deterministic
    /// proxy for arena footprint, not an allocator-exact census.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        let node = match &self.node {
            PlanNode::Scan { .. } => 0,
            PlanNode::Apply { gj_aggs, .. } => gj_aggs.len() * size_of::<AggCall>(),
            PlanNode::Group { attrs, aggs, .. } => {
                attrs.len() * size_of::<AttrId>() + aggs.len() * size_of::<AggCall>()
            }
        };
        let keys: usize = self
            .keyinfo
            .keys
            .keys()
            .iter()
            .map(|k| size_of::<Vec<AttrId>>() + k.len() * size_of::<AttrId>())
            .sum();
        let agg = self.agg.pos.len() * size_of::<crate::aggstate::AggPos>()
            + self.agg.counts.len() * size_of::<(NodeSet, AttrId)>();
        node + keys + agg + self.visible.len() * size_of::<AttrId>()
    }
}

/// Bytes one arena slot occupies in the SoA lanes themselves (hot row +
/// cold row struct, excluding the cold row's heap payload).
pub const ARENA_ROW_BYTES: usize = size_of::<PlanHot>() + size_of::<PlanCold>();

/// A borrowed view of one plan's hot and cold rows.
#[derive(Clone, Copy)]
pub struct PlanRef<'a> {
    /// The dominance-relevant properties.
    pub hot: &'a PlanHot,
    /// The materialization payload.
    pub cold: &'a PlanCold,
}

impl PlanRef<'_> {
    /// Reassemble an owned [`MemoPlan`] (clones the cold payload) — for
    /// callers that construct new plans from existing ones.
    pub fn to_plan(&self) -> MemoPlan {
        MemoPlan {
            node: self.cold.node.clone(),
            set: self.hot.set,
            card: self.hot.card,
            cost: self.hot.cost,
            keyinfo: self.cold.keyinfo.clone(),
            agg: self.cold.agg.clone(),
            visible: self.cold.visible.clone(),
            has_grouping: self.hot.has_grouping(),
            applied: self.hot.applied,
        }
    }
}

/// Which conditions the dominance test of Def. 4 applies. `Full` is the
/// paper's (optimality-preserving) criterion; the weaker variants exist
/// for the ablation study in `dpnext-bench` — they prune harder but can
/// lose the optimal plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DominanceKind {
    /// Cost + cardinality + duplicate-freeness + key implication (§4.6).
    Full,
    /// Cost + cardinality only (ignores functional dependencies).
    CostCard,
    /// Cost only (Bellman-style pruning; equivalent to keeping the single
    /// cheapest plan per class when ties collapse).
    CostOnly,
}

/// Which rung of the adaptive degradation ladder produced the final plan
/// (`Algorithm::Adaptive`, see the `dpnext-adaptive` crate). `None` for
/// every non-adaptive run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdaptiveMode {
    /// Not an adaptive run (or the ladder never ran).
    #[default]
    None,
    /// The full exact DP stream completed within the budget: the result
    /// is the EA-Prune optimum.
    Exact,
    /// The exact DP stream was aborted for budget, but one of the plans
    /// it built before the abort still won — deeper than the linearized
    /// interval space, yet not provably optimal.
    PartialExact,
    /// The plan is the optimum of the linearized DP over connected
    /// sub-intervals of the greedy linear order (the rung completed, or
    /// one of its splits produced the winner before the budget ran out);
    /// exact DP was skipped or abandoned without beating it.
    Linearized,
    /// Only the greedy (GOO-style) construction produced the winning
    /// plan before the budget ran out.
    Greedy,
}

/// Why (and how) a budgeted/deadlined run fell short of its deepest rung.
///
/// The former single `budget_exhausted` flag, split by *cause*: a rung can
/// be gated off up front by the ccp count estimate, aborted mid-stream by
/// the plan budget, or aborted mid-stream by a wall-clock deadline. All
/// flags `false` means the run completed its deepest rung (or was never
/// budgeted at all).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Degradation {
    /// The exact rung was skipped up front: the capped ccp pre-count
    /// (`count_ccps_capped`) showed the remaining budget could not cover
    /// the full enumeration, so the ladder never started it.
    pub budget_gated: bool,
    /// A rung started and was aborted mid-stream because the plan budget
    /// ran out before the enumeration finished.
    pub budget_aborted: bool,
    /// A rung was aborted mid-stream (or skipped) because the wall-clock
    /// deadline passed; overshoot is bounded by one enumeration work unit.
    pub deadline_aborted: bool,
    /// A rung was aborted mid-stream (or skipped) because the memo's live
    /// bytes ([`Memo::live_bytes`]) reached the per-request memory budget;
    /// overshoot is bounded by one enumeration work unit's plans.
    pub memory_aborted: bool,
}

impl Degradation {
    /// True when any degradation occurred — the run's result comes from a
    /// shallower rung than the budget-free optimum would have used.
    pub fn any(&self) -> bool {
        self.budget_gated || self.budget_aborted || self.deadline_aborted || self.memory_aborted
    }

    /// True when a *resource* (wall clock or memory), as opposed to the
    /// plan budget, cut the run short — the causes a serving layer treats
    /// as pressure signals rather than configured depth limits.
    pub fn resource_aborted(&self) -> bool {
        self.deadline_aborted || self.memory_aborted
    }
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.any() {
            return f.write_str("none");
        }
        let mut first = true;
        for (set, name) in [
            (self.budget_gated, "budget-gated"),
            (self.budget_aborted, "budget-aborted"),
            (self.deadline_aborted, "deadline-aborted"),
            (self.memory_aborted, "memory-aborted"),
        ] {
            if set {
                if !first {
                    f.write_str("+")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for AdaptiveMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AdaptiveMode::None => "none",
            AdaptiveMode::Exact => "exact",
            AdaptiveMode::PartialExact => "partial-exact",
            AdaptiveMode::Linearized => "linearized",
            AdaptiveMode::Greedy => "greedy",
        };
        f.write_str(s)
    }
}

/// Aggregate statistics of one memo, reported on [`crate::Optimized`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoStats {
    /// Plans held in the arena at the end of the run: the retained DP
    /// state plus every evicted/replaced *partial* plan. Partial plans
    /// can be children of later plans (including the winner), so only
    /// losing *complete* plans are reclaimed during enumeration —
    /// reclaiming evicted partials would need reference counting.
    pub arena_plans: u64,
    /// Largest arena size observed (live DP state + transient plans).
    pub arena_peak: u64,
    /// Widest plan class observed during the run.
    pub peak_class_width: u64,
    /// Dominance-pruned insertions attempted.
    pub prune_attempts: u64,
    /// Attempted insertions rejected because an incumbent dominates.
    pub prune_rejected: u64,
    /// Incumbents evicted because the new plan dominates them.
    pub prune_evicted: u64,
    /// DP layers (strata by `|S1 ∪ S2|`) the layered engine processed;
    /// 0 on the streaming (threads = 1) path.
    pub layers: u64,
    /// Widest stratum: csg-cmp-pairs in the largest single layer — the
    /// fan-out bound for intra-layer parallelism.
    pub peak_layer_pairs: u64,
    /// Widest worker fan-out actually spawned by the layered engine
    /// (1 = sequential, or every stratum ran inline below the fan-out
    /// threshold).
    pub threads_used: u64,
    /// Nanoseconds spent building plans: the fanned-out worker phase of
    /// the layered engine plus its inline strata, or the whole
    /// enumeration on the streaming (threads = 1) path.
    pub worker_nanos: u64,
    /// Nanoseconds spent in the merge + replay phase of the layered
    /// engine (shard append, class bucketing, per-class folds). With the
    /// class-partitioned replay only the shard append remains serial;
    /// the bucketing and the folds fan out. 0 on the streaming path.
    pub replay_nanos: u64,
    /// Most plan classes replayed concurrently in one stratum by the
    /// class-partitioned replay (0 = every replay ran serially).
    pub peak_replay_classes: u64,
    /// Worst LPT load imbalance observed across parallel replays, as
    /// `max_worker_load · fanout · 100 / total_candidates`: 100 means the
    /// most loaded replay worker carried exactly its fair share, `k·100`
    /// that it carried `k×` its share (skewed strata). 0 when no replay
    /// ever fanned out.
    pub lpt_imbalance_x100: u64,
    /// Strata whose merge-candidate *bucketing* (grouping the shard
    /// streams by target class) itself fanned out over the worker pool
    /// instead of running on the merge thread.
    pub par_bucket_strata: u64,
    /// Effective plan budget enforced by a budgeted search (the requested
    /// budget clamped up to the greedy floor); 0 when the run was not
    /// budgeted. When non-zero, `plans_built <= plan_budget` holds.
    pub plan_budget: u64,
    /// Memory budget (bytes) enforced by a budgeted search; 0 when the
    /// run was not memory-budgeted. When non-zero, the checked rungs stop
    /// within one work unit of `live_bytes` reaching it (the guaranteed
    /// greedy rung runs unchecked, like it ignores the clock).
    pub memory_budget: u64,
    /// Largest [`Memo::live_bytes`] observed during the run — arena rows
    /// plus cold-side heap estimates, before rollbacks reclaimed losing
    /// complete plans.
    pub live_bytes_peak: u64,
    /// Why the budgeted search fell short of its deepest rung, split by
    /// cause (gate, mid-stream budget abort, deadline abort); all-false
    /// when the deepest rung completed or the run was not budgeted.
    pub degradation: Degradation,
    /// Which adaptive ladder rung produced the plan (`None` for
    /// non-adaptive runs).
    pub adaptive_mode: AdaptiveMode,
}

impl MemoStats {
    /// Fraction of pruned insertions that did any work (rejected the new
    /// plan or evicted an incumbent). 0 when pruning never ran.
    pub fn prune_hit_rate(&self) -> f64 {
        if self.prune_attempts == 0 {
            return 0.0;
        }
        (self.prune_rejected + self.prune_evicted) as f64 / self.prune_attempts as f64
    }

    /// Reduce one per-class fold tally into the shared statistics.
    fn merge_tally(&mut self, tally: &ClassTally) {
        self.prune_attempts += tally.prune_attempts;
        self.prune_rejected += tally.prune_rejected;
        self.prune_evicted += tally.prune_evicted;
        self.peak_class_width = self.peak_class_width.max(tally.peak_class_width);
    }

    /// Share of the instrumented engine time spent in the merge + replay
    /// phase — the Amdahl serial fraction the class-partitioned replay
    /// attacks. 0 when nothing was instrumented (streaming path).
    pub fn serial_fraction(&self) -> f64 {
        let total = self.worker_nanos + self.replay_nanos;
        if total == 0 {
            return 0.0;
        }
        self.replay_nanos as f64 / total as f64
    }
}

/// Per-worker counters of the class-partitioned replay: one tally per
/// fold, reduced into [`MemoStats`] when the class is installed — so
/// concurrent per-class folds never contend on the shared statistics.
/// All fields are sums or maxima, hence commutative across classes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassTally {
    /// Dominance tests performed.
    pub prune_attempts: u64,
    /// Candidate plans rejected on arrival.
    pub prune_rejected: u64,
    /// Resident plans evicted by a dominating arrival.
    pub prune_evicted: u64,
    /// Widest plan class observed.
    pub peak_class_width: u64,
}

/// The hot half of the dominance test: everything decidable from two
/// [`PlanHot`] rows. `Full` dominance additionally requires the cold-side
/// key implication, checked by the callers *after* this passes — the
/// `&&` order matches the original single-struct test exactly, so the
/// split changes no outcome.
#[inline]
fn dominates_hot(a: &PlanHot, b: &PlanHot, kind: DominanceKind, guard_groupjoin: bool) -> bool {
    if guard_groupjoin && a.has_grouping() && !b.has_grouping() {
        return false;
    }
    match kind {
        DominanceKind::CostOnly => a.cost <= b.cost,
        DominanceKind::CostCard => a.cost <= b.cost && a.card <= b.card,
        DominanceKind::Full => {
            a.cost <= b.cost && a.card <= b.card && (a.duplicate_free() || !b.duplicate_free())
        }
    }
}

/// Dominance test over split arenas: hot fast path first, cold key
/// implication only when everything else already holds (and only for
/// [`DominanceKind::Full`]).
#[inline]
fn dominates_split(
    a_hot: &PlanHot,
    b_hot: &PlanHot,
    cold: &[PlanCold],
    a: PlanId,
    b: PlanId,
    kind: DominanceKind,
    guard_groupjoin: bool,
) -> bool {
    if !dominates_hot(a_hot, b_hot, kind, guard_groupjoin) {
        return false;
    }
    kind != DominanceKind::Full
        || cold[a.index()]
            .keyinfo
            .keys
            .implies(&cold[b.index()].keyinfo.keys)
}

/// Dominance (Def. 4): `a` dominates `b` when it is at most as expensive,
/// at most as large, duplicate-free whenever `b` is, and its key set
/// implies `b`'s (the practical weakening of `FD⁺(a) ⊇ FD⁺(b)` suggested
/// in §4.6). In the presence of groupjoins a pre-aggregated plan must not
/// shadow a raw plan (the groupjoin needs raw right inputs).
pub fn dominates(
    a: PlanRef<'_>,
    b: PlanRef<'_>,
    kind: DominanceKind,
    guard_groupjoin: bool,
) -> bool {
    dominates_hot(a.hot, b.hot, kind, guard_groupjoin)
        && (kind != DominanceKind::Full || a.cold.keyinfo.keys.implies(&b.cold.keyinfo.keys))
}

/// `PruneDominatedPlans` (Fig. 13) against a detached class vector:
/// drop `id` if an incumbent dominates it, otherwise evict every
/// incumbent it dominates and append it. Plan data is read from the
/// split `hot`/`cold` arenas; counters go to `tally`. This is the
/// one-candidate form — [`Memo::class_prune_insert`] (streaming) calls
/// it; the per-class replay folds use the batched
/// [`prune_fold_slice`].
pub fn prune_insert_ids(
    hot: &[PlanHot],
    cold: &[PlanCold],
    class: &mut Vec<PlanId>,
    id: PlanId,
    kind: DominanceKind,
    guard_groupjoin: bool,
    tally: &mut ClassTally,
) {
    tally.prune_attempts += 1;
    let new = hot[id.index()];
    for &old in class.iter() {
        if dominates_split(
            &hot[old.index()],
            &new,
            cold,
            old,
            id,
            kind,
            guard_groupjoin,
        ) {
            tally.prune_rejected += 1;
            return;
        }
    }
    let before = class.len();
    class.retain(|&old| {
        !dominates_split(
            &new,
            &hot[old.index()],
            cold,
            id,
            old,
            kind,
            guard_groupjoin,
        )
    });
    tally.prune_evicted += (before - class.len()) as u64;
    class.push(id);
    tally.peak_class_width = tally.peak_class_width.max(class.len() as u64);
}

/// Fold a whole slice of unit-sorted candidates into one class — the
/// batched form of [`prune_insert_ids`] the class-partitioned replay
/// runs. Semantically identical to folding the candidates one by one
/// (same retain order, same tally), but the resident plans' hot rows are
/// mirrored into the caller-owned `rows` scratch so every dominance scan
/// walks one contiguous 40-byte-stride array instead of chasing arena
/// indices; evictions compact `class` and `rows` in lockstep.
#[allow(clippy::too_many_arguments)]
pub fn prune_fold_slice(
    hot: &[PlanHot],
    cold: &[PlanCold],
    class: &mut Vec<PlanId>,
    rows: &mut Vec<PlanHot>,
    candidates: &[PlanId],
    kind: DominanceKind,
    guard_groupjoin: bool,
    tally: &mut ClassTally,
) {
    rows.clear();
    rows.extend(class.iter().map(|&id| hot[id.index()]));
    'next: for &id in candidates {
        tally.prune_attempts += 1;
        let new = hot[id.index()];
        for (old, &old_id) in rows.iter().zip(class.iter()) {
            if dominates_split(old, &new, cold, old_id, id, kind, guard_groupjoin) {
                tally.prune_rejected += 1;
                continue 'next;
            }
        }
        // Order-preserving lockstep compaction of (class, rows). Copies
        // start only after the first eviction (like `Vec::retain`) — the
        // common no-eviction pass writes nothing.
        let before = class.len();
        let mut w = 0;
        for i in 0..before {
            if !dominates_split(&new, &rows[i], cold, id, class[i], kind, guard_groupjoin) {
                if w != i {
                    class[w] = class[i];
                    rows[w] = rows[i];
                }
                w += 1;
            }
        }
        class.truncate(w);
        rows.truncate(w);
        tally.prune_evicted += (before - w) as u64;
        class.push(id);
        rows.push(new);
        tally.peak_class_width = tally.peak_class_width.max(class.len() as u64);
    }
}

/// Append-and-read access to a plan arena — the interface the plan
/// constructors ([`crate::plan`], [`crate::optrees`]) and the finalizer
/// build against. Implemented by the [`Memo`] itself (sequential engine)
/// and by [`MemoShard`] (a worker's thread-local arena layered over the
/// frozen shared memo).
///
/// Indexing (`store[id]`) yields the [`PlanHot`] row — the fields the
/// enumeration hot path reads; [`PlanStore::plan`] materializes the full
/// [`PlanRef`] when the cold payload is needed.
pub trait PlanStore: Index<PlanId, Output = PlanHot> {
    /// Store a plan, returning its id (does not touch any class).
    fn push_plan(&mut self, plan: MemoPlan) -> PlanId;

    /// Ids handed out so far: the next push returns `PlanId(plan_count())`.
    fn plan_count(&self) -> usize;

    /// Roll the store back to `len` plans, reclaiming everything pushed
    /// since. Callers must guarantee no retained id references a
    /// truncated plan.
    fn truncate_plans(&mut self, len: usize);

    /// The plan class of `s` visible to the enumeration: the live classes
    /// of the [`Memo`], the frozen pre-stratum classes of a [`MemoShard`].
    fn plan_class(&self, s: NodeSet) -> &[PlanId];

    /// Both rows of one plan (hot + cold payload).
    fn plan(&self, id: PlanId) -> PlanRef<'_>;

    /// `Eagerness` of a plan (§4.5): the number of grouping operators that
    /// are a direct child of the topmost join operator.
    fn eagerness(&self, id: PlanId) -> u32 {
        match &self.plan(id).cold.node {
            PlanNode::Apply { left, right, .. } => {
                let l = self[*left].is_group() as u32;
                let r = self[*right].is_group() as u32;
                l + r
            }
            _ => 0,
        }
    }
}

/// The split arena plus the plan classes built over it.
#[derive(Debug, Default)]
pub struct Memo {
    hot: Vec<PlanHot>,
    cold: Vec<PlanCold>,
    classes: FxHashMap<NodeSet, Vec<PlanId>>,
    stats: MemoStats,
    /// Decaying high-water marks surviving [`Memo::reset`] — they bound
    /// how much allocation a pooled memo is allowed to carry across runs
    /// (not part of [`MemoStats`]: statistics reset per run).
    arena_high_water: usize,
    class_high_water: usize,
    /// Running sum of [`PlanCold::heap_bytes`] over the cold lane —
    /// maintained incrementally on push/truncate so [`Memo::live_bytes`]
    /// is O(1) and can be checked once per enumeration work unit.
    cold_heap_bytes: usize,
}

impl Index<PlanId> for Memo {
    type Output = PlanHot;

    #[inline]
    fn index(&self, id: PlanId) -> &PlanHot {
        &self.hot[id.index()]
    }
}

impl PlanStore for Memo {
    #[inline]
    fn push_plan(&mut self, plan: MemoPlan) -> PlanId {
        self.push(plan)
    }

    #[inline]
    fn plan_count(&self) -> usize {
        self.hot.len()
    }

    #[inline]
    fn truncate_plans(&mut self, len: usize) {
        self.truncate(len)
    }

    #[inline]
    fn plan_class(&self, s: NodeSet) -> &[PlanId] {
        self.class(s)
    }

    #[inline]
    fn plan(&self, id: PlanId) -> PlanRef<'_> {
        PlanRef {
            hot: &self.hot[id.index()],
            cold: &self.cold[id.index()],
        }
    }
}

impl Memo {
    /// Arena/class capacity floor kept through [`Memo::reset`]: shrinking
    /// below this saves nothing worth a re-malloc on the next run.
    const MIN_RETAINED_CAPACITY: usize = 1024;

    /// An empty memo.
    pub fn new() -> Memo {
        Memo::default()
    }

    /// Clear the memo for reuse, keeping (bounded) allocations.
    ///
    /// Every piece of per-run state is wiped: plans, classes and the
    /// whole [`MemoStats`] block — including the rollback high-water
    /// mark `arena_peak` and the prune counters, which would otherwise
    /// leak into the next run's report. A run on a reset memo produces
    /// bit-identical results and statistics to a run on a fresh one;
    /// only *capacity* carries over, which is the point: pooled
    /// back-to-back optimizations skip the re-malloc.
    ///
    /// Capacity is not kept unconditionally: a single huge query would
    /// otherwise pin worst-case arena and class-map footprint on the
    /// pooled memo forever. A decaying high-water mark (`hw = peak.max(hw/2)`
    /// per reset) tracks recent demand, and capacity above `2·hw` is
    /// released — repeat-heavy steady state keeps its warm allocation,
    /// while an outlier's footprint halves away within a few resets.
    pub fn reset(&mut self) {
        let arena_peak = (self.stats.arena_peak as usize).max(self.hot.len());
        self.arena_high_water = arena_peak.max(self.arena_high_water / 2);
        self.class_high_water = self.classes.len().max(self.class_high_water / 2);
        self.hot.clear();
        self.cold.clear();
        self.classes.clear();
        self.stats = MemoStats::default();
        self.cold_heap_bytes = 0;
        let arena_target = (self.arena_high_water * 2).max(Self::MIN_RETAINED_CAPACITY);
        if self.hot.capacity() > arena_target {
            self.hot.shrink_to(arena_target);
            self.cold.shrink_to(arena_target);
        }
        let class_target = (self.class_high_water * 2).max(Self::MIN_RETAINED_CAPACITY);
        if self.classes.capacity() > class_target {
            self.classes.shrink_to(class_target);
        }
    }

    /// Allocated arena capacity in plans (diagnostic for arena pooling:
    /// a warmed-up pool serves repeat queries without growing this).
    pub fn arena_capacity(&self) -> usize {
        self.hot.capacity()
    }

    /// Store a plan in the arena (does not touch any class).
    #[inline]
    pub fn push(&mut self, plan: MemoPlan) -> PlanId {
        let id = PlanId::from_index(self.hot.len());
        let (hot, cold) = plan.split();
        self.cold_heap_bytes += cold.heap_bytes();
        self.hot.push(hot);
        self.cold.push(cold);
        self.stats.live_bytes_peak = self.stats.live_bytes_peak.max(self.live_bytes());
        id
    }

    /// Estimated bytes of *live* plan state: both SoA lanes at their
    /// current length plus the cold rows' heap payloads
    /// ([`PlanCold::heap_bytes`]). O(1) — the heap term is a running
    /// counter — so the budgeted search can check it once per work unit.
    /// Class id lists and lane over-capacity are not counted; see
    /// [`Memo::footprint_bytes`] for the allocation-side view.
    #[inline]
    pub fn live_bytes(&self) -> u64 {
        (self.hot.len() * ARENA_ROW_BYTES + self.cold_heap_bytes) as u64
    }

    /// Estimated bytes this memo *holds allocated*: lane capacities (not
    /// lengths) plus the live cold heap and the class map's table. This is
    /// what a parked memo pins between runs — the quantity the serving
    /// layer's global ledger accounts.
    pub fn footprint_bytes(&self) -> u64 {
        let lanes = self.hot.capacity() * ARENA_ROW_BYTES;
        let classes = self.classes.capacity() * (size_of::<NodeSet>() + size_of::<Vec<PlanId>>())
            + self
                .classes
                .values()
                .map(|v| v.capacity() * size_of::<PlanId>())
                .sum::<usize>();
        (lanes + self.cold_heap_bytes + classes) as u64
    }

    /// Number of plans in the arena.
    pub fn arena_len(&self) -> usize {
        self.hot.len()
    }

    /// Roll the arena back to `len` entries, discarding plans pushed since.
    ///
    /// Callers must guarantee that no class and no retained id references
    /// a truncated plan. The enumeration engine uses this to reclaim
    /// complete (full-set) plans that lost the cost comparison — they are
    /// never inserted into a class, and on EA-All they outnumber retained
    /// plans by an order of magnitude.
    pub fn truncate(&mut self, len: usize) {
        debug_assert!(len <= self.hot.len());
        self.stats.arena_peak = self.stats.arena_peak.max(self.hot.len() as u64);
        // Reclaim the truncated rows' heap estimate: O(rows dropped),
        // proportional to the plans that were built — never a full-arena
        // walk.
        for row in &self.cold[len..] {
            self.cold_heap_bytes -= row.heap_bytes();
        }
        self.hot.truncate(len);
        self.cold.truncate(len);
    }

    /// Merge one worker's thread-local shard into the shared arena.
    ///
    /// `base` is the shared arena length every shard of the stratum was
    /// layered on. Plans are appended in shard order; child references
    /// `>= base` point into the shard itself (workers never see each
    /// other's plans) and are shifted by the shard's final offset, while
    /// references `< base` address the frozen shared prefix and pass
    /// through untouched. Returns the translation to apply to the shard's
    /// provisional ids (the candidate lists recorded by the worker).
    pub fn append_shard(
        &mut self,
        hot: Vec<PlanHot>,
        cold: Vec<PlanCold>,
        base: usize,
    ) -> ShardRemap {
        debug_assert!(base <= self.hot.len());
        debug_assert_eq!(hot.len(), cold.len());
        let delta = self.hot.len() - base;
        let remap = ShardRemap { base, delta };
        self.hot.reserve(hot.len());
        self.cold.reserve(cold.len());
        self.hot.extend_from_slice(&hot);
        for mut row in cold {
            match &mut row.node {
                PlanNode::Scan { .. } => {}
                PlanNode::Apply { left, right, .. } => {
                    *left = remap.apply(*left);
                    *right = remap.apply(*right);
                }
                PlanNode::Group { input, .. } => {
                    *input = remap.apply(*input);
                }
            }
            self.cold_heap_bytes += row.heap_bytes();
            self.cold.push(row);
        }
        self.stats.live_bytes_peak = self.stats.live_bytes_peak.max(self.live_bytes());
        remap
    }

    /// [`Memo::append_shard`] plus candidate bucketing: append the
    /// shard's plans, then translate its recorded candidate streams to
    /// merged ids and group the class candidates by target `NodeSet` in
    /// `buckets`. Plan classes are independent per `NodeSet` (the Fig. 13
    /// dominance test only ever compares plans within one class), so the
    /// buckets can later fold concurrently — this grouping is what the
    /// class-partitioned parallel replay fans out over. On wide strata
    /// the engine skips this serial form and fans the bucketing itself
    /// over the workers (see `enumerate_layered`).
    #[allow(clippy::too_many_arguments)]
    pub fn append_shard_bucketed(
        &mut self,
        hot: Vec<PlanHot>,
        cold: Vec<PlanCold>,
        base: usize,
        inserts: &[(u64, NodeSet, PlanId)],
        completes: &[(u64, PlanId)],
        buckets: &mut ClassBuckets,
    ) {
        let remap = self.append_shard(hot, cold, base);
        for &(unit, s, id) in inserts {
            buckets
                .classes
                .entry(s)
                .or_default()
                .push((unit, remap.apply(id)));
        }
        for &(unit, id) in completes {
            buckets.completes.push((unit, remap.apply(id)));
        }
    }

    /// Record layering statistics of the layered engine (a no-op for the
    /// streaming path, which reports `layers = 0`, `threads_used = 1`).
    pub fn record_layering(&mut self, layers: u64, peak_layer_pairs: u64, threads: u64) {
        self.stats.layers = layers;
        self.stats.peak_layer_pairs = peak_layer_pairs;
        self.stats.threads_used = threads;
    }

    /// Record the phase split of one enumeration: time spent building
    /// plans (`worker_nanos`), time spent merging and replaying
    /// (`replay_nanos`), and the widest per-class replay fan-out.
    pub fn record_phases(
        &mut self,
        worker_nanos: u64,
        replay_nanos: u64,
        peak_replay_classes: u64,
    ) {
        self.stats.worker_nanos = worker_nanos;
        self.stats.replay_nanos = replay_nanos;
        self.stats.peak_replay_classes = peak_replay_classes;
    }

    /// Fold one parallel replay's LPT assignment skew into the stats
    /// (keeps the worst stratum; see [`MemoStats::lpt_imbalance_x100`]).
    pub fn record_replay_imbalance(&mut self, imbalance_x100: u64) {
        self.stats.lpt_imbalance_x100 = self.stats.lpt_imbalance_x100.max(imbalance_x100);
    }

    /// Count one stratum whose merge-candidate bucketing fanned out.
    pub fn record_par_bucket_stratum(&mut self) {
        self.stats.par_bucket_strata += 1;
    }

    /// Record the outcome of a budgeted search: the effective plan and
    /// memory budgets, the per-cause degradation flags and the adaptive
    /// ladder rung that won.
    pub fn record_budget(
        &mut self,
        plan_budget: u64,
        memory_budget: u64,
        degradation: Degradation,
        mode: AdaptiveMode,
    ) {
        self.stats.plan_budget = plan_budget;
        self.stats.memory_budget = memory_budget;
        self.stats.degradation = degradation;
        self.stats.adaptive_mode = mode;
    }

    /// Check the structural invariants a healthy memo upholds: the hot and
    /// cold arenas are index-aligned, and every class entry points at an
    /// arena row whose `NodeSet` matches the class key. A memo that fails
    /// this was corrupted mid-run (e.g. truncated while classes still
    /// referenced the tail) and must not be reused — [`Memo::reset`] does
    /// not repair dangling *capacity* state reads would trip over first.
    /// Returns a description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.hot.len() != self.cold.len() {
            return Err(format!(
                "hot/cold arenas misaligned: {} hot rows vs {} cold rows",
                self.hot.len(),
                self.cold.len()
            ));
        }
        for (set, ids) in &self.classes {
            for &id in ids {
                let Some(hot) = self.hot.get(id.index()) else {
                    return Err(format!(
                        "class {set:?} references plan {} past arena end {}",
                        id.index(),
                        self.hot.len()
                    ));
                };
                if hot.set != *set {
                    return Err(format!(
                        "class {set:?} holds plan {} whose set is {:?}",
                        id.index(),
                        hot.set
                    ));
                }
            }
        }
        Ok(())
    }

    /// Fold the peak arena size of concurrently live worker shards into
    /// the peak statistic: while a stratum runs, the shared prefix and
    /// every shard are alive at once.
    pub fn record_shard_peak(&mut self, shard_peak_sum: u64) {
        let live = self.hot.len() as u64 + shard_peak_sum;
        self.stats.arena_peak = self.stats.arena_peak.max(live);
    }

    /// The plan class of `s` (empty when no plan covers `s` yet).
    #[inline]
    pub fn class(&self, s: NodeSet) -> &[PlanId] {
        self.classes.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Append `id` to the class of `s` unconditionally.
    pub fn class_push(&mut self, s: NodeSet, id: PlanId) {
        let class = self.classes.entry(s).or_default();
        class.push(id);
        self.stats.peak_class_width = self.stats.peak_class_width.max(class.len() as u64);
    }

    /// Make `id` the sole member of the class of `s` (single-plan DP).
    pub fn class_set_single(&mut self, s: NodeSet, id: PlanId) {
        let class = self.classes.entry(s).or_default();
        class.clear();
        class.push(id);
        self.stats.peak_class_width = self.stats.peak_class_width.max(1);
    }

    /// `PruneDominatedPlans` (Fig. 13) on ids: drop `id` if an incumbent
    /// of the class dominates it, otherwise evict every incumbent it
    /// dominates and append it.
    pub fn class_prune_insert(
        &mut self,
        s: NodeSet,
        id: PlanId,
        kind: DominanceKind,
        guard_groupjoin: bool,
    ) {
        let mut tally = ClassTally::default();
        let class = self.classes.entry(s).or_default();
        prune_insert_ids(
            &self.hot,
            &self.cold,
            class,
            id,
            kind,
            guard_groupjoin,
            &mut tally,
        );
        self.stats.merge_tally(&tally);
    }

    /// Shrink the class of `s` to its representative member(s): the
    /// cheapest plan, plus — when `keep_raw` and the cheapest plan
    /// contains a grouping — the cheapest grouping-free plan, so a later
    /// groupjoin application (which needs raw right inputs) is not
    /// structurally cut off. The greedy rung of the adaptive optimizer
    /// uses this to keep its per-component state GOO-sized (one or two
    /// plans) instead of letting class widths compound across merges.
    pub fn class_shrink_to_best(&mut self, s: NodeSet, keep_raw: bool) {
        let Some(class) = self.classes.get_mut(&s) else {
            return;
        };
        let best = class.iter().copied().min_by(|&a, &b| {
            self.hot[a.index()]
                .cost
                .total_cmp(&self.hot[b.index()].cost)
        });
        let Some(best) = best else { return };
        let raw = (keep_raw && self.hot[best.index()].has_grouping())
            .then(|| {
                class
                    .iter()
                    .copied()
                    .filter(|&id| !self.hot[id.index()].has_grouping())
                    .min_by(|&a, &b| {
                        self.hot[a.index()]
                            .cost
                            .total_cmp(&self.hot[b.index()].cost)
                    })
            })
            .flatten();
        class.clear();
        class.push(best);
        if let Some(raw) = raw {
            class.push(raw);
        }
    }

    /// Install a class produced by a detached (per-class replay) fold and
    /// fold its counter tally into the shared statistics. The class must
    /// not exist yet — every union size is produced by exactly one
    /// stratum, so a stratum's target classes always start empty.
    pub fn install_class(&mut self, s: NodeSet, ids: Vec<PlanId>, tally: &ClassTally) {
        self.stats.merge_tally(tally);
        if ids.is_empty() {
            return;
        }
        let prev = self.classes.insert(s, ids);
        debug_assert!(
            prev.is_none_or(|p| p.is_empty()),
            "install_class would clobber a non-empty class for {s}"
        );
    }

    /// Every hot row in arena order — read access for the detached
    /// per-class folds, which run against a frozen (fully merged) arena.
    #[inline]
    pub fn hot_plans(&self) -> &[PlanHot] {
        &self.hot
    }

    /// Every cold row in arena order (index-aligned with
    /// [`Memo::hot_plans`]).
    #[inline]
    pub fn cold_plans(&self) -> &[PlanCold] {
        &self.cold
    }

    /// Snapshot of all plan classes sorted by node set — a deterministic
    /// view of the DP state for tests and diagnostics (the map itself
    /// iterates in hash order).
    pub fn classes_sorted(&self) -> Vec<(NodeSet, &[PlanId])> {
        let mut all: Vec<(NodeSet, &[PlanId])> = self
            .classes
            .iter()
            .map(|(&s, ids)| (s, ids.as_slice()))
            .collect();
        all.sort_unstable_by_key(|&(s, _)| s);
        all
    }

    /// Number of classes holding at least one plan.
    pub fn class_count(&self) -> u64 {
        self.classes.len() as u64
    }

    /// Total plans retained across all classes.
    pub fn retained(&self) -> u64 {
        self.classes.values().map(|v| v.len() as u64).sum()
    }

    /// Every id retained in some class, in ascending arena order (the
    /// class map itself iterates in hash order — sort for determinism).
    pub fn retained_ids(&self) -> Vec<PlanId> {
        let mut ids: Vec<PlanId> = self.classes.values().flatten().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Snapshot of the memo statistics (arena sizes filled in).
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            arena_plans: self.hot.len() as u64,
            arena_peak: self.stats.arena_peak.max(self.hot.len() as u64),
            live_bytes_peak: self.stats.live_bytes_peak.max(self.live_bytes()),
            ..self.stats
        }
    }
}

/// One stratum's merged candidate streams, grouped for the
/// class-partitioned replay ([`Memo::append_shard_bucketed`]).
///
/// Candidates arrive shard-major (worker 0's stream, then worker 1's, …),
/// each shard stream in ascending work-unit order; a stable per-class
/// sort by unit therefore restores the exact sequential fold order —
/// all candidates of one unit come from the single worker that owned it
/// and stay contiguous.
#[derive(Debug, Default)]
pub struct ClassBuckets {
    /// Target class → unit-tagged candidate ids (merged, shard-major).
    pub classes: FxHashMap<NodeSet, Vec<(u64, PlanId)>>,
    /// Complete (full-set) plans surviving the worker filters,
    /// unit-tagged and shard-major like the class streams.
    pub completes: Vec<(u64, PlanId)>,
}

impl ClassBuckets {
    /// Total class candidates across all buckets.
    pub fn candidate_count(&self) -> usize {
        self.classes.values().map(Vec::len).sum()
    }
}

/// Shard-id translation returned by [`Memo::append_shard`]: provisional
/// ids at or above the shard's base shift to their merged position,
/// references into the frozen shared prefix pass through.
#[derive(Debug, Clone, Copy)]
pub struct ShardRemap {
    base: usize,
    delta: usize,
}

impl ShardRemap {
    /// Translate a shard-local plan id into the merged arena.
    #[inline]
    pub fn apply(self, id: PlanId) -> PlanId {
        if id.index() >= self.base {
            PlanId::from_index(id.index() + self.delta)
        } else {
            id
        }
    }
}

/// A worker's thread-local plan arena, layered over the shared [`Memo`].
///
/// During one stratum of the layered engine the shared memo is frozen:
/// workers only read plans and classes below `base` (= the shared arena
/// length at stratum start) and push new plans into their own local
/// hot/cold vectors, with provisional ids `base + local index`. Because
/// every shard uses the same `base` and workers never see each other's
/// plans, a provisional id `>= base` always refers to the owning shard;
/// the merge ([`Memo::append_shard`]) shifts those references to final
/// positions.
pub struct MemoShard<'a> {
    shared: &'a Memo,
    base: usize,
    local_hot: Vec<PlanHot>,
    local_cold: Vec<PlanCold>,
    /// Largest local arena observed (before rollbacks), for peak stats.
    peak: usize,
}

impl<'a> MemoShard<'a> {
    /// Layer a fresh shard over `shared` (frozen for the stratum).
    pub fn new(shared: &'a Memo) -> MemoShard<'a> {
        MemoShard {
            shared,
            base: shared.arena_len(),
            local_hot: Vec::new(),
            local_cold: Vec::new(),
            peak: 0,
        }
    }

    /// The frozen plan class of `s` from the shared memo.
    #[inline]
    pub fn class(&self, s: NodeSet) -> &[PlanId] {
        self.shared.class(s)
    }

    /// Largest local plan count observed.
    pub fn peak(&self) -> usize {
        self.peak.max(self.local_hot.len())
    }

    /// Tear the shard apart into its locally built hot/cold rows
    /// (rollbacks already applied) for [`Memo::append_shard`].
    pub fn into_local(self) -> (Vec<PlanHot>, Vec<PlanCold>) {
        (self.local_hot, self.local_cold)
    }
}

impl Index<PlanId> for MemoShard<'_> {
    type Output = PlanHot;

    #[inline]
    fn index(&self, id: PlanId) -> &PlanHot {
        if id.index() < self.base {
            &self.shared[id]
        } else {
            &self.local_hot[id.index() - self.base]
        }
    }
}

impl PlanStore for MemoShard<'_> {
    #[inline]
    fn push_plan(&mut self, plan: MemoPlan) -> PlanId {
        let id = PlanId::from_index(self.base + self.local_hot.len());
        let (hot, cold) = plan.split();
        self.local_hot.push(hot);
        self.local_cold.push(cold);
        id
    }

    #[inline]
    fn plan_count(&self) -> usize {
        self.base + self.local_hot.len()
    }

    #[inline]
    fn truncate_plans(&mut self, len: usize) {
        debug_assert!(len >= self.base);
        self.peak = self.peak.max(self.local_hot.len());
        self.local_hot.truncate(len - self.base);
        self.local_cold.truncate(len - self.base);
    }

    #[inline]
    fn plan_class(&self, s: NodeSet) -> &[PlanId] {
        self.shared.class(s)
    }

    #[inline]
    fn plan(&self, id: PlanId) -> PlanRef<'_> {
        if id.index() < self.base {
            self.shared.plan(id)
        } else {
            PlanRef {
                hot: &self.local_hot[id.index() - self.base],
                cold: &self.local_cold[id.index() - self.base],
            }
        }
    }
}
