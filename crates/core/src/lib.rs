//! # dpnext-core
//!
//! The paper's primary contribution: a DP-based plan generator that
//! explores **join ordering and grouping placement simultaneously**
//! (Eich & Moerkotte, *Dynamic Programming: The Next Step*, ICDE 2015).
//!
//! Public entry point: [`optimize`] with an [`Algorithm`]:
//!
//! * [`Algorithm::DPhyp`] — the baseline: join reordering only,
//! * [`Algorithm::EaAll`] — complete eager-aggregation enumeration (Fig. 9),
//! * [`Algorithm::EaPrune`] — with optimality-preserving dominance pruning
//!   (Figs. 13/14),
//! * [`Algorithm::H1`] / [`Algorithm::H2`] — the two heuristics
//!   (Figs. 10/12).
//!
//! Optimized plans compile into executable [`dpnext_algebra::AlgExpr`]
//! trees, so every transformation can be validated against the canonical
//! plan on real data.
#![warn(missing_docs)]

pub mod aggstate;
pub mod algo;
pub mod context;
pub mod explain;
pub mod finalize;
pub mod fusion;
pub mod fxhash;
pub mod memo;
pub mod optrees;
pub mod plan;
pub mod recost;
pub mod validate;

#[cfg(test)]
mod tests;

pub use algo::{
    all_subplans, all_subplans_with, applied_ops_mask, optimize, optimize_into, optimize_with,
    optimize_with_pruning, resolve_threads, Algorithm, BudgetedOutcome, BudgetedSearch,
    OptimizeOptions, Optimized, UNIT_MAX_PLANS,
};
pub use context::{OptContext, Scratch};
pub use explain::explain;
pub use finalize::{compile, finalize, FinalPlan};
pub use fusion::fuse_groupjoins;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use memo::{
    AdaptiveMode, ClassBuckets, ClassTally, Degradation, DominanceKind, Memo, MemoPlan, MemoShard,
    MemoStats, PlanCold, PlanHot, PlanId, PlanNode, PlanRef, PlanStore, ShardRemap,
    ARENA_ROW_BYTES,
};
pub use plan::{apply_staged, make_apply, make_group, make_scan, stage_apply, StagedApply};
pub use recost::{recost_plan, Recosted};
pub use validate::{validate_complete_plan, validate_subplan};
