//! Plan constructors: build scan / apply / grouping nodes with their
//! derived logical properties directly into a [`PlanStore`] — the shared
//! [`crate::memo::Memo`] arena on the sequential path, a thread-local
//! [`crate::memo::MemoShard`] inside the layered engine's workers.

use crate::aggstate::{build_group_aggs, AggState};
use crate::context::{OptContext, Scratch};
use crate::memo::{MemoPlan, PlanId, PlanNode, PlanStore};
use dpnext_algebra::{AttrId, JoinPred};
use dpnext_cost::{distinct_in, grouping_card, join_card};
use dpnext_hypergraph::NodeSet;
use dpnext_keys::{grouping_keys, infer_join_keys, KeyInfo, KeySet};
use dpnext_query::OpKind;

/// Build a scan plan for table occurrence `i`.
pub fn make_scan<S: PlanStore>(ctx: &OptContext, store: &mut S, i: usize) -> PlanId {
    let t = &ctx.query.tables[i];
    let keys = KeySet::from_keys(t.keys.iter().cloned());
    store.push_plan(MemoPlan {
        node: PlanNode::Scan { table: i },
        set: NodeSet::single(i),
        card: t.card,
        cost: 0.0, // scans are free under C_out
        keyinfo: KeyInfo::base(keys),
        agg: AggState::fresh(ctx.aggs().len()),
        visible: t.attrs.clone(),
        has_grouping: false,
        applied: 0,
    })
}

/// Cap a cardinality estimate by the key-implied bound: a duplicate-free
/// result has at most one tuple per key value, so it cannot exceed the
/// product of any key's distinct counts. Without this cap the estimate can
/// contradict the key info, and `NeedsGrouping` then elides a grouping the
/// estimator still thinks would shrink the input — which breaks the
/// monotonicity argument behind the §4.6 dominance pruning (a dominating
/// keyed plan could forfeit a reduction the dominated raw plan kept).
/// The cap is constant in the input cardinalities, so estimates stay
/// monotone as the pruning proof requires.
fn key_bounded_card(ctx: &OptContext, card: f64, keyinfo: &KeyInfo) -> f64 {
    if !keyinfo.duplicate_free {
        return card;
    }
    let mut bounded = card;
    for key in keyinfo.keys.keys() {
        // Unknown distinct counts are infinite: no cap from such keys.
        let bound: f64 = key.iter().map(|&a| ctx.distinct(a).max(1.0)).product();
        bounded = bounded.min(bound);
    }
    bounded
}

/// Orient one predicate term so its left attribute comes from `left_set`.
fn orient_term(
    ctx: &OptContext,
    (l, op, r): (AttrId, dpnext_algebra::CmpOp, AttrId),
    left_set: NodeSet,
) -> (AttrId, dpnext_algebra::CmpOp, AttrId) {
    if ctx.origin(l).is_subset_of(left_set) {
        (l, op, r)
    } else {
        debug_assert!(ctx.origin(r).is_subset_of(left_set));
        (r, op.flip(), l)
    }
}

/// Apply operator `op_idx` (plus any extra inner-join edges crossing the
/// same cut, for cyclic queries) on two plans. `left`/`right` are already
/// in physical orientation. Returns `None` when required attributes are
/// unavailable (structurally prevented, checked defensively).
pub fn make_apply<S: PlanStore>(
    ctx: &OptContext,
    scratch: &mut Scratch,
    store: &mut S,
    op_idx: usize,
    extra: &[usize],
    left_id: PlanId,
    right_id: PlanId,
) -> Option<PlanId> {
    let op = &ctx.cq.ops[op_idx];
    let kind = op.op;
    let (left, right) = (&store[left_id], &store[right_id]);
    // Groupjoins evaluate their aggregates over raw right-side tuples: a
    // pre-aggregated right side would aggregate groups instead.
    if kind == OpKind::GroupJoin && right.has_grouping {
        return None;
    }
    // Merge and orient all predicates crossing this cut — staged in the
    // scratch buffer so rejected applications allocate nothing.
    scratch.terms.clear();
    let mut sel = op.sel;
    for t in &op.pred.terms {
        scratch.terms.push(orient_term(ctx, *t, left.set));
    }
    for &ei in extra {
        let e = &ctx.cq.ops[ei];
        debug_assert_eq!(OpKind::Join, e.op, "only inner joins may share a cut");
        sel *= e.sel;
        for t in &e.pred.terms {
            scratch.terms.push(orient_term(ctx, *t, left.set));
        }
    }
    // Defensive visibility check.
    for &(l, _, r) in &scratch.terms {
        if !left.visible.contains(&l) || !right.visible.contains(&r) {
            return None;
        }
    }
    for call in &op.gj_aggs {
        for a in call.referenced() {
            if !right.visible.contains(&a) {
                return None;
            }
        }
    }
    let pred = JoinPred {
        terms: scratch.terms.clone(),
    };

    let set = left.set.union(right.set);
    // Distinct join-value counts per side (products of the base distinct
    // counts of the predicate attributes) for the match probability.
    let d_left: f64 = pred.left_attrs().iter().map(|&a| ctx.distinct(a)).product();
    let d_right: f64 = pred
        .right_attrs()
        .iter()
        .map(|&a| ctx.distinct(a))
        .product();
    let raw_card = join_card(kind, left.card, right.card, sel, d_left, d_right);
    let keyinfo = infer_join_keys(kind, &left.keyinfo, &right.keyinfo, &pred);
    let card = key_bounded_card(ctx, raw_card, &keyinfo);
    let cost = left.cost + right.cost + card;
    let agg = if kind.preserves_right() {
        left.agg.merge(&right.agg)
    } else {
        left.agg.merge(&right.agg).keep_left(left.set)
    };
    let mut visible = left.visible.clone();
    if kind.preserves_right() {
        visible.extend_from_slice(&right.visible);
    }
    visible.extend(op.gj_aggs.iter().map(|c| c.out));

    let mut applied = left.applied | right.applied | (1u64 << op_idx);
    for &ei in extra {
        applied |= 1u64 << ei;
    }
    debug_assert_eq!(
        left.applied & right.applied,
        0,
        "operator applied twice across join inputs"
    );
    let has_grouping = left.has_grouping || right.has_grouping;

    scratch.count_plan();
    Some(store.push_plan(MemoPlan {
        node: PlanNode::Apply {
            op: kind,
            pred,
            gj_aggs: op.gj_aggs.clone(),
            left: left_id,
            right: right_id,
        },
        set,
        card,
        cost,
        keyinfo,
        agg,
        visible,
        has_grouping,
        applied,
    }))
}

/// Wrap a plan in an eager-aggregation grouping over `G⁺(S)`.
///
/// Callers must have checked `ctx.can_group(input.set)` and the usefulness
/// condition (`NeedsGrouping`); this constructor only assembles the node.
pub fn make_group<S: PlanStore>(
    ctx: &OptContext,
    scratch: &mut Scratch,
    store: &mut S,
    input_id: PlanId,
) -> PlanId {
    let s = store[input_id].set;
    // Owning handle: `build_group_aggs` below needs the scratch mutably
    // while the grouping attributes are still in use.
    let gattrs = scratch.gplus_arc(ctx, s);
    let input = &store[input_id];
    debug_assert!(
        gattrs.iter().all(|a| input.visible.contains(a)),
        "G⁺({s}) not fully visible"
    );
    let (aggs, state) = build_group_aggs(ctx, scratch, &input.agg, s);
    let distincts: Vec<f64> = gattrs
        .iter()
        .map(|&a| distinct_in(ctx.distinct(a), input.card))
        .collect();
    let card = grouping_card(input.card, &distincts);
    let cost = input.cost + card;
    let mut visible: Vec<AttrId> = gattrs.to_vec();
    visible.extend(aggs.iter().map(|c| c.out));
    let applied = input.applied;
    let node = MemoPlan {
        node: PlanNode::Group {
            attrs: gattrs.to_vec(),
            aggs,
            input: input_id,
        },
        set: s,
        card,
        cost,
        keyinfo: grouping_keys(&gattrs),
        agg: state,
        visible,
        has_grouping: true,
        applied,
    };
    scratch.count_plan();
    store.push_plan(node)
}
