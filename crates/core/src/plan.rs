//! Plan constructors: build scan / apply / grouping nodes with their
//! derived logical properties directly into a [`PlanStore`] — the shared
//! [`crate::memo::Memo`] arena on the sequential path, a thread-local
//! [`crate::memo::MemoShard`] inside the layered engine's workers.
//!
//! Operator applications are split into a **staging** step
//! ([`stage_apply`]: orient and merge the predicate terms, fold the
//! selectivities, take the distinct-count products, precompute the
//! applied-mask bits — everything that depends only on the cut, not on
//! the particular plan pair) and a per-pair **application** step
//! ([`apply_staged`]). The enumeration stages once per orientation and
//! then applies across the whole `t1 × t2` candidate grid, so the hot
//! loop does no per-plan predicate cloning or re-orientation.

use crate::aggstate::{build_group_aggs, AggState};
use crate::context::{OptContext, Scratch};
use crate::memo::{MemoPlan, PlanId, PlanNode, PlanStore};
use dpnext_algebra::{AttrId, JoinPred};
use dpnext_cost::{distinct_in, grouping_card, join_card};
use dpnext_hypergraph::NodeSet;
use dpnext_keys::{grouping_keys, infer_join_keys_presorted, KeyInfo, KeySet};
use dpnext_query::OpKind;
use std::sync::Arc;

/// Build a scan plan for table occurrence `i`.
pub fn make_scan<S: PlanStore>(ctx: &OptContext, store: &mut S, i: usize) -> PlanId {
    let t = &ctx.query.tables[i];
    let keys = KeySet::from_keys(t.keys.iter().cloned());
    store.push_plan(MemoPlan {
        node: PlanNode::Scan { table: i },
        set: NodeSet::single(i),
        card: t.card,
        cost: 0.0, // scans are free under C_out
        keyinfo: KeyInfo::base(keys),
        agg: AggState::fresh(ctx.aggs().len()),
        visible: t.attrs.clone(),
        has_grouping: false,
        applied: 0,
    })
}

/// Cap a cardinality estimate by the key-implied bound: a duplicate-free
/// result has at most one tuple per key value, so it cannot exceed the
/// product of any key's distinct counts. Without this cap the estimate can
/// contradict the key info, and `NeedsGrouping` then elides a grouping the
/// estimator still thinks would shrink the input — which breaks the
/// monotonicity argument behind the §4.6 dominance pruning (a dominating
/// keyed plan could forfeit a reduction the dominated raw plan kept).
/// The cap is constant in the input cardinalities, so estimates stay
/// monotone as the pruning proof requires.
fn key_bounded_card(ctx: &OptContext, card: f64, keyinfo: &KeyInfo) -> f64 {
    if !keyinfo.duplicate_free {
        return card;
    }
    let mut bounded = card;
    for key in keyinfo.keys.keys() {
        // Unknown distinct counts are infinite: no cap from such keys.
        let bound: f64 = key.iter().map(|&a| ctx.distinct(a).max(1.0)).product();
        bounded = bounded.min(bound);
    }
    bounded
}

/// Orient one predicate term so its left attribute comes from `left_set`.
fn orient_term(
    ctx: &OptContext,
    (l, op, r): (AttrId, dpnext_algebra::CmpOp, AttrId),
    left_set: NodeSet,
) -> (AttrId, dpnext_algebra::CmpOp, AttrId) {
    if ctx.origin(l).is_subset_of(left_set) {
        (l, op, r)
    } else {
        debug_assert!(ctx.origin(r).is_subset_of(left_set));
        (r, op.flip(), l)
    }
}

/// The cut-level constants of one operator application: identical for
/// every plan pair of one orientation, computed once by [`stage_apply`].
pub struct StagedApply {
    /// Index of the primary operator into the conflicted query's list.
    pub op_idx: usize,
    /// Operator kind (join, outer join, groupjoin, ...).
    pub kind: OpKind,
    /// Oriented, merged predicate — shared (`Arc`) by every plan built
    /// from this staging, instead of cloned per plan.
    pub pred: Arc<JoinPred>,
    /// Merged selectivity (primary × extra same-cut inner joins).
    pub sel: f64,
    /// Product of the left predicate attributes' distinct counts.
    pub d_left: f64,
    /// Product of the right predicate attributes' distinct counts.
    pub d_right: f64,
    /// Applied-mask bits this cut contributes (primary + extras).
    pub applied_bits: u64,
    /// Is the predicate a non-empty conjunction of equalities? Gates the
    /// key-preserving cases of the §2.3 propagation.
    pub pred_equi: bool,
    /// Left-side predicate attributes, sorted and deduplicated — the
    /// per-pair key inference runs its cover tests straight off these
    /// slices instead of re-collecting and re-sorting per plan.
    pub left_attrs: Vec<AttrId>,
    /// Right-side predicate attributes, sorted and deduplicated.
    pub right_attrs: Vec<AttrId>,
}

/// Stage operator `op_idx` (plus any extra inner-join edges crossing the
/// same cut, for cyclic queries) for application with `left_set` as the
/// physical left side: orient and merge all predicate terms, fold the
/// selectivities and take the per-side distinct products. Every plan of
/// one orientation shares the staged values — all plans in a class cover
/// the same relation set, so term orientation and attribute origins
/// cannot differ across the candidate grid.
pub fn stage_apply(
    ctx: &OptContext,
    scratch: &mut Scratch,
    op_idx: usize,
    extra: &[usize],
    left_set: NodeSet,
) -> StagedApply {
    let op = &ctx.cq.ops[op_idx];
    // Merge and orient all predicates crossing this cut — staged in the
    // scratch buffer, cloned once into the shared predicate.
    scratch.terms.clear();
    let mut sel = op.sel;
    let mut applied_bits = 1u64 << op_idx;
    for t in &op.pred.terms {
        scratch.terms.push(orient_term(ctx, *t, left_set));
    }
    for &ei in extra {
        let e = &ctx.cq.ops[ei];
        debug_assert_eq!(OpKind::Join, e.op, "only inner joins may share a cut");
        sel *= e.sel;
        for t in &e.pred.terms {
            scratch.terms.push(orient_term(ctx, *t, left_set));
        }
        applied_bits |= 1u64 << ei;
    }
    let pred = Arc::new(JoinPred {
        terms: scratch.terms.clone(),
    });
    // Distinct join-value counts per side (products of the base distinct
    // counts of the predicate attributes) for the match probability.
    let d_left: f64 = pred.left_attrs().iter().map(|&a| ctx.distinct(a)).product();
    let d_right: f64 = pred
        .right_attrs()
        .iter()
        .map(|&a| ctx.distinct(a))
        .product();
    // Pre-digest the predicate for the per-pair key inference: equi
    // classification plus sorted, deduplicated per-side attribute sets.
    let pred_equi = pred.is_equi() && !pred.terms.is_empty();
    let mut left_attrs = pred.left_attrs();
    let mut right_attrs = pred.right_attrs();
    left_attrs.sort_unstable();
    left_attrs.dedup();
    right_attrs.sort_unstable();
    right_attrs.dedup();
    StagedApply {
        op_idx,
        kind: op.op,
        pred,
        sel,
        d_left,
        d_right,
        applied_bits,
        pred_equi,
        left_attrs,
        right_attrs,
    }
}

/// Apply a staged operator on two plans. `left`/`right` are already in
/// physical orientation (the staging's `left_set` side). Returns `None`
/// when required attributes are unavailable (structurally prevented,
/// checked defensively) or a groupjoin would consume a pre-aggregated
/// right side.
pub fn apply_staged<S: PlanStore>(
    ctx: &OptContext,
    scratch: &mut Scratch,
    store: &mut S,
    staged: &StagedApply,
    left_id: PlanId,
    right_id: PlanId,
) -> Option<PlanId> {
    let op = &ctx.cq.ops[staged.op_idx];
    let kind = staged.kind;
    let (left, right) = (store.plan(left_id), store.plan(right_id));
    // Groupjoins evaluate their aggregates over raw right-side tuples: a
    // pre-aggregated right side would aggregate groups instead.
    if kind == OpKind::GroupJoin && right.hot.has_grouping() {
        return None;
    }
    // Defensive visibility check — per plan, not per cut: a pushed-down
    // grouping changes which attributes its side exposes.
    for &(l, _, r) in &staged.pred.terms {
        if !left.cold.visible.contains(&l) || !right.cold.visible.contains(&r) {
            return None;
        }
    }
    for call in &op.gj_aggs {
        for a in call.referenced() {
            if !right.cold.visible.contains(&a) {
                return None;
            }
        }
    }

    let set = left.hot.set.union(right.hot.set);
    let raw_card = join_card(
        kind,
        left.hot.card,
        right.hot.card,
        staged.sel,
        staged.d_left,
        staged.d_right,
    );
    let keyinfo = infer_join_keys_presorted(
        kind,
        &left.cold.keyinfo,
        &right.cold.keyinfo,
        staged.pred_equi,
        &staged.left_attrs,
        &staged.right_attrs,
    );
    let card = key_bounded_card(ctx, raw_card, &keyinfo);
    let cost = left.hot.cost + right.hot.cost + card;
    let agg = if kind.preserves_right() {
        left.cold.agg.merge(&right.cold.agg)
    } else {
        // Semi/anti/groupjoin keep only left tuples, so the merged state
        // restricted to the left set collapses to the left state: left
        // scopes are subsets of `left.set` by construction, right scopes
        // are disjoint from it.
        debug_assert_eq!(
            left.cold.agg.merge(&right.cold.agg).keep_left(left.hot.set),
            left.cold.agg
        );
        left.cold.agg.clone()
    };
    let right_visible: &[AttrId] = if kind.preserves_right() {
        &right.cold.visible
    } else {
        &[]
    };
    let mut visible =
        Vec::with_capacity(left.cold.visible.len() + right_visible.len() + op.gj_aggs.len());
    visible.extend_from_slice(&left.cold.visible);
    visible.extend_from_slice(right_visible);
    visible.extend(op.gj_aggs.iter().map(|c| c.out));

    debug_assert_eq!(
        left.hot.applied & right.hot.applied,
        0,
        "operator applied twice across join inputs"
    );
    let applied = left.hot.applied | right.hot.applied | staged.applied_bits;
    let has_grouping = left.hot.has_grouping() || right.hot.has_grouping();

    scratch.count_plan();
    Some(store.push_plan(MemoPlan {
        node: PlanNode::Apply {
            op: kind,
            pred: Arc::clone(&staged.pred),
            gj_aggs: op.gj_aggs.clone(),
            left: left_id,
            right: right_id,
        },
        set,
        card,
        cost,
        keyinfo,
        agg,
        visible,
        has_grouping,
        applied,
    }))
}

/// Apply operator `op_idx` (plus any extra inner-join edges crossing the
/// same cut) on two plans — the one-shot convenience form: stages and
/// applies in one call. The enumeration hot loop uses
/// [`stage_apply`] + [`apply_staged`] directly to amortize the staging
/// over a whole candidate grid.
pub fn make_apply<S: PlanStore>(
    ctx: &OptContext,
    scratch: &mut Scratch,
    store: &mut S,
    op_idx: usize,
    extra: &[usize],
    left_id: PlanId,
    right_id: PlanId,
) -> Option<PlanId> {
    let staged = stage_apply(ctx, scratch, op_idx, extra, store[left_id].set);
    apply_staged(ctx, scratch, store, &staged, left_id, right_id)
}

/// Wrap a plan in an eager-aggregation grouping over `G⁺(S)`.
///
/// Callers must have checked `ctx.can_group(input.set)` and the usefulness
/// condition (`NeedsGrouping`); this constructor only assembles the node.
pub fn make_group<S: PlanStore>(
    ctx: &OptContext,
    scratch: &mut Scratch,
    store: &mut S,
    input_id: PlanId,
) -> PlanId {
    let s = store[input_id].set;
    // Owning handle: `build_group_aggs` below needs the scratch mutably
    // while the grouping attributes are still in use.
    let gattrs = scratch.gplus_arc(ctx, s);
    let input = store.plan(input_id);
    debug_assert!(
        gattrs.iter().all(|a| input.cold.visible.contains(a)),
        "G⁺({s}) not fully visible"
    );
    let (aggs, state) = build_group_aggs(ctx, scratch, &input.cold.agg, s);
    let distincts: Vec<f64> = gattrs
        .iter()
        .map(|&a| distinct_in(ctx.distinct(a), input.hot.card))
        .collect();
    let card = grouping_card(input.hot.card, &distincts);
    let cost = input.hot.cost + card;
    let mut visible: Vec<AttrId> = gattrs.to_vec();
    visible.extend(aggs.iter().map(|c| c.out));
    let applied = input.hot.applied;
    let node = MemoPlan {
        node: PlanNode::Group {
            attrs: gattrs.to_vec(),
            aggs,
            input: input_id,
        },
        set: s,
        card,
        cost,
        keyinfo: grouping_keys(&gattrs),
        agg: state,
        visible,
        has_grouping: true,
        applied,
    };
    scratch.count_plan();
    store.push_plan(node)
}
