//! Unit tests for the optimizer internals: context (`G⁺`, `can_group`),
//! aggregation-state rewriting, plan constructors, `OpTrees` and
//! finalization.

use crate::aggstate::{AggPos, AggState};
use crate::algo::applied_ops_mask;
use crate::context::{OptContext, Scratch};
use crate::finalize::finalize;
use crate::memo::{Memo, PlanId, PlanStore};
use crate::optrees::op_trees;
use crate::plan::{make_apply, make_group, make_scan, stage_apply};
use dpnext_algebra::{AggCall, AggKind, AttrGen, AttrId, Expr, JoinPred, Value};
use dpnext_hypergraph::NodeSet;
use dpnext_query::{GroupSpec, OpKind, OpTree, Query, QueryTable};

fn a(i: u32) -> AttrId {
    AttrId(i)
}

/// Wrap `op_trees` for tests that only count the produced variants.
fn op_tree_ids(
    ctx: &OptContext,
    sc: &mut Scratch,
    memo: &mut Memo,
    op_idx: usize,
    t1: PlanId,
    t2: PlanId,
) -> Vec<PlanId> {
    let mut out = Vec::new();
    let staged = stage_apply(ctx, sc, op_idx, &[], memo[t1].set);
    op_trees(ctx, sc, memo, &staged, t1, t2, &mut out);
    out
}

/// `r0(a0 key, a1) ⋈ r1(a2, a3)`, group by a1, aggregates
/// `count(*), sum(a3)`.
fn two_table_ctx(op: OpKind) -> OptContext {
    let t0 = QueryTable::new("r0", vec![a(0), a(1)], 100.0)
        .with_distinct(vec![100.0, 10.0])
        .with_key(vec![a(0)]);
    let t1 = QueryTable::new("r1", vec![a(2), a(3)], 50.0).with_distinct(vec![25.0, 5.0]);
    // Join on the non-key column a1 so that G⁺ of the left side does not
    // cover r0's key (otherwise pushing a grouping there is useless and
    // OpTrees rightly skips it).
    let tree = OpTree::binary_sel(
        op,
        JoinPred::eq(a(1), a(2)),
        0.01,
        OpTree::rel(0),
        OpTree::rel(1),
    );
    let mut gen = AttrGen::new(100);
    let grouping = if op.preserves_right() {
        GroupSpec::new(
            vec![a(1)],
            vec![
                AggCall::count_star(a(50)),
                AggCall::new(a(51), AggKind::Sum, Expr::attr(a(3))),
            ],
            &mut gen,
        )
    } else {
        GroupSpec::new(vec![a(1)], vec![AggCall::count_star(a(50))], &mut gen)
    };
    let q = Query::new(vec![t0, t1], tree, Some(grouping));
    OptContext::new(q)
}

mod context {
    use super::*;

    #[test]
    fn gplus_includes_group_and_crossing_join_attrs() {
        let ctx = two_table_ctx(OpKind::Join);
        let mut sc = Scratch::new(&ctx);
        let g0 = sc.gplus(&ctx, NodeSet::single(0));
        // a1 is both the grouping attribute and the crossing join attribute.
        assert_eq!(vec![a(1)], g0);
        let g1 = sc.gplus(&ctx, NodeSet::single(1));
        assert_eq!(vec![a(2)], g1); // join attr only
                                    // Full set: nothing crosses; only the grouping attribute remains.
        let gf = sc.gplus(&ctx, NodeSet::full(2));
        assert_eq!(vec![a(1)], gf);
    }

    #[test]
    fn gplus_is_cached() {
        let ctx = two_table_ctx(OpKind::Join);
        let mut sc = Scratch::new(&ctx);
        let p1 = sc.gplus_arc(&ctx, NodeSet::single(0));
        let p2 = sc.gplus_arc(&ctx, NodeSet::single(0));
        // A hit returns the memoized allocation, not a recomputation.
        assert!(std::sync::Arc::ptr_eq(&p1, &p2));
    }

    #[test]
    fn gplus_hit_borrows_the_memoized_value() {
        // The borrowing accessor must serve hits from the same cache the
        // owning accessor fills (and vice versa), and agree with the
        // uncached computation — pins that neither path recomputes.
        let ctx = two_table_ctx(OpKind::Join);
        let s = NodeSet::single(0);
        let mut sc = Scratch::new(&ctx);
        let owned = sc.gplus_arc(&ctx, s);
        assert_eq!(owned.as_slice(), sc.gplus(&ctx, s));
        assert_eq!(ctx.compute_gplus(s), sc.gplus(&ctx, s));
        // Warming via the borrow also feeds the Arc accessor.
        let mut sc2 = Scratch::new(&ctx);
        assert_eq!(ctx.compute_gplus(s), sc2.gplus(&ctx, s));
        let warm = sc2.gplus_arc(&ctx, s);
        let again = sc2.gplus_arc(&ctx, s);
        assert!(std::sync::Arc::ptr_eq(&warm, &again));
    }

    #[test]
    fn can_group_blocks_non_decomposable() {
        let t0 = QueryTable::new("r0", vec![a(0)], 10.0);
        let t1 = QueryTable::new("r1", vec![a(1)], 10.0);
        let tree = OpTree::binary(
            OpKind::Join,
            JoinPred::eq(a(0), a(1)),
            OpTree::rel(0),
            OpTree::rel(1),
        );
        let mut gen = AttrGen::new(100);
        let spec = GroupSpec::new(
            vec![a(0)],
            vec![AggCall::new(a(50), AggKind::SumDistinct, Expr::attr(a(1)))],
            &mut gen,
        );
        let ctx = OptContext::new(Query::new(vec![t0, t1], tree, Some(spec)));
        // sum(distinct a1) is not decomposable: side {1} cannot be grouped.
        assert!(!ctx.can_group(NodeSet::single(1)));
        // Side {0} holds no aggregate arguments: free to group.
        assert!(ctx.can_group(NodeSet::single(0)));
    }

    #[test]
    fn count_star_never_blocks_grouping() {
        let ctx = two_table_ctx(OpKind::Join);
        assert!(ctx.can_group(NodeSet::single(0)));
        assert!(ctx.can_group(NodeSet::single(1)));
        assert!(ctx.can_group(NodeSet::full(2)));
    }

    #[test]
    fn fresh_attrs_above_query_attrs() {
        let ctx = two_table_ctx(OpKind::Join);
        let mut sc = Scratch::new(&ctx);
        let f = sc.fresh_attr();
        assert!(f.0 > 51);
        assert_eq!(1, sc.attrs_used());
    }
}

mod aggstate {
    use super::*;

    #[test]
    fn merge_prefers_partials() {
        let raw = AggState::fresh(2);
        let mut grouped = AggState::fresh(2);
        grouped.pos[1] = AggPos::Partial {
            col: a(60),
            scope: NodeSet::single(1),
        };
        grouped.counts.push((NodeSet::single(1), a(61)));
        let merged = raw.merge(&grouped);
        assert_eq!(AggPos::Raw, merged.pos[0]);
        assert!(matches!(merged.pos[1], AggPos::Partial { .. }));
        assert_eq!(1, merged.counts.len());
    }

    #[test]
    fn keep_left_drops_right_state() {
        let mut st = AggState::fresh(1);
        st.counts.push((NodeSet::single(1), a(61)));
        st.counts.push((NodeSet::single(0), a(62)));
        let kept = st.keep_left(NodeSet::single(0));
        assert_eq!(vec![(NodeSet::single(0), a(62))], kept.counts);
    }

    #[test]
    fn multiplier_products() {
        let mut st = AggState::fresh(0);
        assert!(st.multiplier().is_none());
        st.counts.push((NodeSet::single(0), a(60)));
        assert_eq!(Expr::attr(a(60)), st.multiplier().unwrap());
        st.counts.push((NodeSet::single(1), a(61)));
        let m = st.multiplier().unwrap();
        assert_eq!(Expr::attr(a(60)).mul(Expr::attr(a(61))), m);
        // Excluding one scope removes exactly its column.
        assert_eq!(
            Expr::attr(a(61)),
            st.multiplier_excluding(NodeSet::single(0)).unwrap()
        );
    }

    #[test]
    fn padding_defaults_per_kind() {
        let aggs = vec![
            AggCall::new(a(50), AggKind::Sum, Expr::attr(a(3))),
            AggCall::new(a(51), AggKind::Count, Expr::attr(a(3))),
        ];
        let mut st = AggState::fresh(2);
        st.counts.push((NodeSet::single(1), a(60)));
        st.pos[0] = AggPos::Partial {
            col: a(61),
            scope: NodeSet::single(1),
        };
        st.pos[1] = AggPos::Partial {
            col: a(62),
            scope: NodeSet::single(1),
        };
        let d = st.padding_defaults(&aggs);
        assert!(d.contains(&(a(60), Value::Int(1)))); // count column → 1
        assert!(d.contains(&(a(61), Value::Null))); // sum partial → NULL
        assert!(d.contains(&(a(62), Value::Int(0)))); // count partial → 0
    }
}

mod plans {
    use super::*;

    #[test]
    fn scan_properties() {
        let ctx = two_table_ctx(OpKind::Join);
        let mut memo = Memo::new();
        let s = make_scan(&ctx, &mut memo, 0);
        assert_eq!(100.0, memo[s].card);
        assert_eq!(0.0, memo[s].cost); // scans free under C_out
        assert!(memo.plan(s).cold.keyinfo.duplicate_free);
        assert_eq!(0, memo[s].applied);
    }

    #[test]
    fn apply_costs_and_bitmask() {
        let ctx = two_table_ctx(OpKind::Join);
        let mut memo = Memo::new();
        let mut sc = Scratch::new(&ctx);
        let l = make_scan(&ctx, &mut memo, 0);
        let r = make_scan(&ctx, &mut memo, 1);
        let j = make_apply(&ctx, &mut sc, &mut memo, 0, &[], l, r).unwrap();
        assert_eq!(50.0, memo[j].card); // 100 × 50 × 0.01
        assert_eq!(50.0, memo[j].cost);
        assert_eq!(1, memo[j].applied);
        assert_eq!(0, memo.eagerness(j));
    }

    #[test]
    fn join_card_capped_by_key_bound() {
        // Regression for the EA-Prune optimality loss (paper-scale seed
        // 1020, n=6): a left side keyed on its join attribute joined with
        // a right side keyed elsewhere is duplicate-free with the right
        // side's key, so the estimate must not exceed that key's distinct
        // count — otherwise `NeedsGrouping` and the estimator disagree and
        // the §4.6 dominance pruning can discard the optimal plan.
        let t0 = QueryTable::new("r0", vec![a(0), a(1)], 100.0)
            .with_distinct(vec![100.0, 10.0])
            .with_key(vec![a(0)]);
        let t1 = QueryTable::new("r1", vec![a(2), a(3)], 50.0)
            .with_distinct(vec![25.0, 50.0])
            .with_key(vec![a(3)]);
        let tree = OpTree::binary_sel(
            OpKind::Join,
            JoinPred::eq(a(0), a(2)),
            0.1,
            OpTree::rel(0),
            OpTree::rel(1),
        );
        let ctx = OptContext::new(Query::new(vec![t0, t1], tree, None));
        let mut memo = Memo::new();
        let mut sc = Scratch::new(&ctx);
        let l = make_scan(&ctx, &mut memo, 0);
        let r = make_scan(&ctx, &mut memo, 1);
        let j = make_apply(&ctx, &mut sc, &mut memo, 0, &[], l, r).unwrap();
        assert!(memo.plan(j).cold.keyinfo.duplicate_free);
        assert!(memo.plan(j).cold.keyinfo.keys.some_key_within(&[a(3)]));
        // Raw estimate 100 × 50 × 0.1 = 500; the key {a3} bounds it at
        // d(a3) = 50.
        assert_eq!(50.0, memo[j].card);
        assert_eq!(50.0, memo[j].cost);
    }

    #[test]
    fn group_reduces_cardinality_and_sets_keys() {
        let ctx = two_table_ctx(OpKind::Join);
        let mut memo = Memo::new();
        let mut sc = Scratch::new(&ctx);
        let l = make_scan(&ctx, &mut memo, 0);
        let g = make_group(&ctx, &mut sc, &mut memo, l);
        // G⁺({0}) = {a1} with 10 distinct values.
        assert_eq!(10.0, memo[g].card);
        assert!(memo.plan(g).cold.keyinfo.duplicate_free);
        assert!(memo[g].has_grouping());
        // Grouping the small side: G⁺({1}) = {a2} with 25 distinct values.
        let r = make_scan(&ctx, &mut memo, 1);
        let gr = make_group(&ctx, &mut sc, &mut memo, r);
        assert_eq!(25.0, memo[gr].card);
        assert_eq!(25.0 + 0.0, memo[gr].cost);
    }

    #[test]
    fn group_rewrites_aggregates() {
        let ctx = two_table_ctx(OpKind::Join);
        let mut memo = Memo::new();
        let mut sc = Scratch::new(&ctx);
        let r = make_scan(&ctx, &mut memo, 1);
        let g = make_group(&ctx, &mut sc, &mut memo, r);
        // sum(a3) is partialed; count(*) stays raw (derived from counts).
        assert!(matches!(
            memo.plan(g).cold.agg.pos[1],
            AggPos::Partial { .. }
        ));
        assert_eq!(AggPos::Raw, memo.plan(g).cold.agg.pos[0]);
        assert_eq!(1, memo.plan(g).cold.agg.counts.len());
    }

    #[test]
    fn groupjoin_rejects_grouped_right() {
        let t0 = QueryTable::new("r0", vec![a(0)], 10.0);
        let t1 = QueryTable::new("r1", vec![a(1), a(2)], 10.0);
        let gj = vec![AggCall::new(a(60), AggKind::Sum, Expr::attr(a(2)))];
        let tree = OpTree::groupjoin(JoinPred::eq(a(0), a(1)), gj, OpTree::rel(0), OpTree::rel(1));
        let mut gen = AttrGen::new(100);
        let spec = GroupSpec::new(vec![a(0)], vec![AggCall::count_star(a(70))], &mut gen);
        let ctx = OptContext::new(Query::new(vec![t0, t1], tree, Some(spec)));
        let mut memo = Memo::new();
        let mut sc = Scratch::new(&ctx);
        let l = make_scan(&ctx, &mut memo, 0);
        let r = make_scan(&ctx, &mut memo, 1);
        let grouped_r = make_group(&ctx, &mut sc, &mut memo, r);
        assert!(make_apply(&ctx, &mut sc, &mut memo, 0, &[], l, grouped_r).is_none());
        assert!(make_apply(&ctx, &mut sc, &mut memo, 0, &[], l, r).is_some());
    }
}

mod optrees {
    use super::*;

    fn variants(op: OpKind) -> usize {
        let ctx = two_table_ctx(op);
        let mut memo = Memo::new();
        let mut sc = Scratch::new(&ctx);
        let l = make_scan(&ctx, &mut memo, 0);
        let r = make_scan(&ctx, &mut memo, 1);
        op_tree_ids(&ctx, &mut sc, &mut memo, 0, l, r).len()
    }

    #[test]
    fn join_yields_up_to_four_variants() {
        // plain, Γ(left), Γ(right), Γ(both) — Fig. 8 (a)-(d).
        assert_eq!(4, variants(OpKind::Join));
    }

    #[test]
    fn outerjoins_push_both_sides() {
        assert_eq!(4, variants(OpKind::LeftOuter));
        assert_eq!(4, variants(OpKind::FullOuter));
    }

    #[test]
    fn semi_anti_push_left_only() {
        assert_eq!(2, variants(OpKind::Semi));
        assert_eq!(2, variants(OpKind::Anti));
    }

    #[test]
    fn useless_grouping_skipped_when_gplus_covers_key() {
        // Make the left side's G⁺ contain its key: grouping is a waste and
        // must not be generated (Fig. 6 line 10).
        let t0 = QueryTable::new("r0", vec![a(0)], 100.0).with_key(vec![a(0)]);
        let t1 = QueryTable::new("r1", vec![a(2), a(3)], 50.0);
        let tree = OpTree::binary(
            OpKind::Join,
            JoinPred::eq(a(0), a(2)),
            OpTree::rel(0),
            OpTree::rel(1),
        );
        let mut gen = AttrGen::new(100);
        let spec = GroupSpec::new(vec![a(3)], vec![AggCall::count_star(a(50))], &mut gen);
        let ctx = OptContext::new(Query::new(vec![t0, t1], tree, Some(spec)));
        let mut memo = Memo::new();
        let mut sc = Scratch::new(&ctx);
        let l = make_scan(&ctx, &mut memo, 0);
        let r = make_scan(&ctx, &mut memo, 1);
        // G⁺({0}) = {a0} ⊇ key {a0} of duplicate-free r0 → only the right
        // side may be grouped: plain + Γ(right) = 2 variants.
        assert_eq!(2, op_tree_ids(&ctx, &mut sc, &mut memo, 0, l, r).len());
    }
}

mod finalization {
    use super::*;

    #[test]
    fn top_grouping_added_when_needed() {
        let ctx = two_table_ctx(OpKind::Join);
        let mut memo = Memo::new();
        let mut sc = Scratch::new(&ctx);
        let l = make_scan(&ctx, &mut memo, 0);
        let r = make_scan(&ctx, &mut memo, 1);
        let j = make_apply(&ctx, &mut sc, &mut memo, 0, &[], l, r).unwrap();
        let f = finalize(&ctx, &memo, j);
        assert!(f.top_grouping);
        // Cost = join output + grouping output (10 groups on a1).
        assert_eq!(50.0 + 10.0, f.cost);
    }

    #[test]
    fn top_grouping_eliminated_when_g_covers_key() {
        // Group by the key a0 of duplicate-free r0 joined FK-style.
        let t0 = QueryTable::new("r0", vec![a(0), a(1)], 100.0).with_key(vec![a(0)]);
        let t1 = QueryTable::new("r1", vec![a(2)], 50.0).with_key(vec![a(2)]);
        let tree = OpTree::binary_sel(
            OpKind::Join,
            JoinPred::eq(a(1), a(2)),
            1.0 / 50.0,
            OpTree::rel(0),
            OpTree::rel(1),
        );
        let mut gen = AttrGen::new(100);
        let spec = GroupSpec::new(vec![a(0)], vec![AggCall::count_star(a(50))], &mut gen);
        let ctx = OptContext::new(Query::new(vec![t0, t1], tree, Some(spec)));
        let mut memo = Memo::new();
        let mut sc = Scratch::new(&ctx);
        let l = make_scan(&ctx, &mut memo, 0);
        let r = make_scan(&ctx, &mut memo, 1);
        // a2 is a key of r1: each r0 tuple joins at most once → keys of r0
        // survive; G = {a0} ⊇ key → grouping eliminated.
        let j = make_apply(&ctx, &mut sc, &mut memo, 0, &[], l, r).unwrap();
        let f = finalize(&ctx, &memo, j);
        assert!(!f.top_grouping);
        assert_eq!(memo[j].cost, f.cost); // map + projection are free
    }

    #[test]
    fn no_grouping_query_finalizes_trivially() {
        let t0 = QueryTable::new("r0", vec![a(0)], 10.0);
        let t1 = QueryTable::new("r1", vec![a(1)], 10.0);
        let tree = OpTree::binary(
            OpKind::Join,
            JoinPred::eq(a(0), a(1)),
            OpTree::rel(0),
            OpTree::rel(1),
        );
        let ctx = OptContext::new(Query::new(vec![t0, t1], tree, None));
        let mut memo = Memo::new();
        let mut sc = Scratch::new(&ctx);
        let l = make_scan(&ctx, &mut memo, 0);
        let r = make_scan(&ctx, &mut memo, 1);
        let j = make_apply(&ctx, &mut sc, &mut memo, 0, &[], l, r).unwrap();
        let f = finalize(&ctx, &memo, j);
        assert!(!f.top_grouping);
        assert_eq!(memo[j].cost, f.cost);
    }
}

mod applied_mask {
    use super::*;

    #[test]
    fn mask_is_width_safe_across_the_full_range() {
        assert_eq!(0, applied_ops_mask(0));
        assert_eq!(0b1, applied_ops_mask(1));
        assert_eq!(0b111, applied_ops_mask(3));
        assert_eq!(u64::MAX >> 1, applied_ops_mask(63));
        // The old `(1u64 << n_ops) - 1` overflowed here; 64 operators are
        // exactly representable and must yield the all-ones mask.
        assert_eq!(u64::MAX, applied_ops_mask(64));
    }

    #[test]
    #[should_panic(expected = "at most 64 operators")]
    fn mask_rejects_more_than_64_ops() {
        applied_ops_mask(65);
    }

    #[test]
    fn masks_are_distinct_per_width() {
        // A plan that misses one operator must never compare equal to the
        // full mask, for any width — including the boundary widths where
        // shifting used to wrap.
        for n_ops in 1..=64usize {
            let full = applied_ops_mask(n_ops);
            let missing_one = full & !(1u64 << (n_ops - 1));
            assert_ne!(full, missing_one, "width {n_ops}");
        }
    }
}
