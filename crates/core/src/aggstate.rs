//! Aggregation-state rewriting: the mechanical core of the paper's
//! equivalences (Fig. 3), generalized to arbitrary nesting.
//!
//! Every plan carries, per original aggregate, a position
//! (`Raw` or `Partial{col, scope}`) plus the list of active *count columns*
//! `(scope, col)` with pairwise-disjoint scopes. Introducing a grouping
//! applies `F¹ ∘ (c : count(*))` to its own side's aggregates and the
//! `F ⊗ c` duplicate adjustment of §2.1.3 to everything duplicate
//! sensitive:
//!
//! * the new count column is `count(*)`, or `sum(Π old counts)` when the
//!   input is already pre-aggregated (`count(*) ⊗ c = sum(c)`),
//! * a raw duplicate-sensitive aggregate is adjusted by the product of
//!   **all** active counts (each row stands for that many original tuples),
//! * a partial aggregate is adjusted by all counts **except its own
//!   scope's** — exactly `F² ⊗ c` of the Eager/Lazy Split equivalences
//!   (Eqvs. 34–36).

use crate::context::{OptContext, Scratch};
use dpnext_algebra::{AggCall, AggKind, AttrId, Expr, Value};
use dpnext_hypergraph::NodeSet;

/// Where an original aggregate currently lives in a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggPos {
    /// Not yet (partially) computed; its argument attributes are visible.
    Raw,
    /// Partially aggregated into `col` by a grouping over `scope`.
    Partial {
        /// Attribute holding the partial aggregate.
        col: AttrId,
        /// Node set of the grouping that produced the partial.
        scope: NodeSet,
    },
}

/// The aggregation state of a plan.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AggState {
    /// Indexed like the query's normalized aggregation vector.
    /// `count(*)` aggregates stay `Raw` forever: their value is derived
    /// from the count columns (`count(*) = sum(Π cᵢ)`).
    pub pos: Vec<AggPos>,
    /// Active count columns with pairwise-disjoint scopes.
    pub counts: Vec<(NodeSet, AttrId)>,
}

impl AggState {
    /// The state of a base-table plan: every aggregate raw, no counts.
    pub fn fresh(n_aggs: usize) -> Self {
        AggState {
            pos: vec![AggPos::Raw; n_aggs],
            counts: Vec::new(),
        }
    }

    /// Merge the states of two joined plans (disjoint relation sets).
    pub fn merge(&self, other: &AggState) -> AggState {
        debug_assert_eq!(self.pos.len(), other.pos.len());
        let pos = self
            .pos
            .iter()
            .zip(&other.pos)
            .map(|(l, r)| match (l, r) {
                (AggPos::Raw, AggPos::Raw) => AggPos::Raw,
                (p @ AggPos::Partial { .. }, AggPos::Raw) => *p,
                (AggPos::Raw, p @ AggPos::Partial { .. }) => *p,
                (AggPos::Partial { .. }, AggPos::Partial { .. }) => {
                    unreachable!("aggregate partially computed on both sides of a join")
                }
            })
            .collect();
        let mut counts = Vec::with_capacity(self.counts.len() + other.counts.len());
        counts.extend_from_slice(&self.counts);
        counts.extend_from_slice(&other.counts);
        AggState { pos, counts }
    }

    /// Drop the state contributed by a vanishing right side (semijoin /
    /// antijoin): its count columns and partials disappear with the
    /// attributes. Sound because the operators do not duplicate left
    /// tuples, so no `⊗` adjustment is lost.
    pub fn keep_left(&self, left_set: NodeSet) -> AggState {
        let pos = self
            .pos
            .iter()
            .map(|p| match p {
                AggPos::Partial { scope, .. } if !scope.is_subset_of(left_set) => AggPos::Raw,
                other => *other,
            })
            .collect();
        let counts = self
            .counts
            .iter()
            .copied()
            .filter(|(scope, _)| scope.is_subset_of(left_set))
            .collect();
        AggState { pos, counts }
    }

    /// The multiplicity expression `Π cᵢ` over all count columns, if any.
    pub fn multiplier(&self) -> Option<Expr> {
        product(self.counts.iter().map(|&(_, c)| c))
    }

    /// `Π cᵢ` over all count columns except the one owning `scope`.
    pub fn multiplier_excluding(&self, scope: NodeSet) -> Option<Expr> {
        product(
            self.counts
                .iter()
                .filter(|(s, _)| *s != scope)
                .map(|&(_, c)| c),
        )
    }

    /// True when the plan was pre-aggregated anywhere.
    pub fn is_grouped(&self) -> bool {
        !self.counts.is_empty()
    }

    /// All columns (count + partial) this state materializes, with the
    /// default value each must take when the side is NULL-padded by an
    /// outerjoin: `F¹({⊥})` and `c : 1` (Eqvs. 11/12, 14/15, 20/21, …).
    pub fn padding_defaults(&self, aggs: &[AggCall]) -> Vec<(AttrId, Value)> {
        let mut out = Vec::new();
        for &(_, c) in &self.counts {
            out.push((c, Value::Int(1)));
        }
        for (i, p) in self.pos.iter().enumerate() {
            if let AggPos::Partial { col, .. } = p {
                out.push((*col, aggs[i].eval_null_tuple()));
            }
        }
        out
    }
}

fn product(mut cols: impl Iterator<Item = AttrId>) -> Option<Expr> {
    let first = cols.next()?;
    Some(cols.fold(Expr::attr(first), |acc, c| acc.mul(Expr::attr(c))))
}

/// Multiply an expression by an optional multiplier.
fn times(e: Expr, m: Option<&Expr>) -> Expr {
    match m {
        Some(m) => e.mul(m.clone()),
        None => e,
    }
}

/// `count(arg) ⊗ c`: `sum(arg IS NULL ? 0 : c)`. Falls back to plain
/// `count(arg)` without counts.
fn count_times(arg: &Expr, m: Option<&Expr>, out: AttrId) -> AggCall {
    match m {
        None => AggCall::new(out, AggKind::Count, arg.clone()),
        Some(m) => {
            let attr = match arg {
                Expr::Attr(a) => *a,
                other => panic!("count(⊗) requires an attribute argument, got {other}"),
            };
            AggCall::new(
                out,
                AggKind::Sum,
                Expr::IfNull(attr, Box::new(Expr::int(0)), Box::new(m.clone())),
            )
        }
    }
}

/// The aggregate calls a new grouping node must compute for one original
/// aggregate, plus its new position. `None` when the aggregate is
/// untouched by a grouping over `s`.
fn group_one(
    ctx: &OptContext,
    scratch: &mut Scratch,
    i: usize,
    state: &AggState,
    s: NodeSet,
) -> Option<(AggCall, AggPos)> {
    let call = &ctx.aggs()[i];
    if call.kind == AggKind::CountStar {
        return None; // derived from the count columns
    }
    let org = ctx.agg_origin[i];
    if org.is_empty() || !org.is_subset_of(s) {
        debug_assert!(!org.intersects(s), "can_group must reject split aggregates");
        return None;
    }
    let out = scratch.fresh_attr();
    let arg = call
        .arg
        .as_ref()
        .expect("non-count(*) aggregate needs an argument");
    let new_call = match state.pos[i] {
        AggPos::Raw => {
            let m = state.multiplier();
            match call.kind {
                AggKind::Min | AggKind::Max => AggCall::new(out, call.kind, arg.clone()),
                AggKind::Sum => AggCall::new(out, AggKind::Sum, times(arg.clone(), m.as_ref())),
                AggKind::Count => count_times(arg, m.as_ref(), out),
                other => unreachable!("grouping over non-decomposable aggregate {other}"),
            }
        }
        AggPos::Partial { col, scope } => {
            let m = state.multiplier_excluding(scope);
            match call.kind.combine() {
                AggKind::Min => AggCall::new(out, AggKind::Min, Expr::attr(col)),
                AggKind::Max => AggCall::new(out, AggKind::Max, Expr::attr(col)),
                _ => AggCall::new(out, AggKind::Sum, times(Expr::attr(col), m.as_ref())),
            }
        }
    };
    Some((new_call, AggPos::Partial { col: out, scope: s }))
}

/// Build the aggregation vector of a pushed-down grouping `Γ_{G⁺(S); F¹ ∘
/// (c : count(*))}` over a plan with state `state` covering `s`.
/// Returns `(agg calls, new state)`.
pub fn build_group_aggs(
    ctx: &OptContext,
    scratch: &mut Scratch,
    state: &AggState,
    s: NodeSet,
) -> (Vec<AggCall>, AggState) {
    let c_new = scratch.fresh_attr();
    let count_call = match state.multiplier() {
        None => AggCall::count_star(c_new),
        Some(m) => AggCall::new(c_new, AggKind::Sum, m),
    };
    let mut calls = vec![count_call];
    let mut pos = state.pos.clone();
    for (i, slot) in pos.iter_mut().enumerate() {
        if let Some((call, p)) = group_one(ctx, scratch, i, state, s) {
            calls.push(call);
            *slot = p;
        }
    }
    (
        calls,
        AggState {
            pos,
            counts: vec![(s, c_new)],
        },
    )
}

/// The final aggregation vector for the top grouping `Γ_G` over a plan in
/// state `state` — every aggregate lands in its original output attribute.
pub fn final_agg_vector(ctx: &OptContext, state: &AggState) -> Vec<AggCall> {
    let m = state.multiplier();
    let mut calls = Vec::with_capacity(ctx.aggs().len());
    for (i, call) in ctx.aggs().iter().enumerate() {
        let out = call.out;
        let built = match state.pos[i] {
            AggPos::Raw => match call.kind {
                AggKind::CountStar => match &m {
                    None => AggCall::count_star(out),
                    Some(m) => AggCall::new(out, AggKind::Sum, m.clone()),
                },
                AggKind::Sum => AggCall::new(
                    out,
                    AggKind::Sum,
                    times(call.arg.clone().unwrap(), m.as_ref()),
                ),
                AggKind::Count => count_times(call.arg.as_ref().unwrap(), m.as_ref(), out),
                // Duplicate-agnostic functions ignore multiplicities.
                AggKind::Min
                | AggKind::Max
                | AggKind::CountDistinct
                | AggKind::SumDistinct
                | AggKind::AvgDistinct => AggCall {
                    out,
                    kind: call.kind,
                    arg: call.arg.clone(),
                },
                AggKind::Avg => unreachable!("avg is normalized away"),
            },
            AggPos::Partial { col, scope } => {
                let m_ex = state.multiplier_excluding(scope);
                match call.kind.combine() {
                    AggKind::Min => AggCall::new(out, AggKind::Min, Expr::attr(col)),
                    AggKind::Max => AggCall::new(out, AggKind::Max, Expr::attr(col)),
                    _ => AggCall::new(out, AggKind::Sum, times(Expr::attr(col), m_ex.as_ref())),
                }
            }
        };
        calls.push(built);
    }
    calls
}

/// The per-row expressions replacing an *eliminated* top grouping
/// (Eqv. 42: `Γ_{G;F}(e) ≡ Π_C(χ_F̂(e))` when `G` contains a key and `e`
/// is duplicate-free): each group holds exactly one tuple, which may still
/// stand for `Π cᵢ` original tuples.
pub fn final_map_exprs(ctx: &OptContext, state: &AggState) -> Vec<(AttrId, Expr)> {
    let m = state.multiplier();
    let one_or_m = || m.clone().unwrap_or_else(|| Expr::int(1));
    let mut exts = Vec::with_capacity(ctx.aggs().len());
    for (i, call) in ctx.aggs().iter().enumerate() {
        let out = call.out;
        let expr = match state.pos[i] {
            AggPos::Raw => match call.kind {
                AggKind::CountStar => one_or_m(),
                AggKind::Sum => times(call.arg.clone().unwrap(), m.as_ref()),
                AggKind::Count | AggKind::CountDistinct => {
                    let attr = match call.arg.as_ref().unwrap() {
                        Expr::Attr(a) => *a,
                        other => panic!("count elimination requires attribute arg, got {other}"),
                    };
                    let v = if call.kind == AggKind::Count {
                        one_or_m()
                    } else {
                        Expr::int(1)
                    };
                    Expr::IfNull(attr, Box::new(Expr::int(0)), Box::new(v))
                }
                AggKind::Min | AggKind::Max | AggKind::SumDistinct => call.arg.clone().unwrap(),
                // `avg` of a single value, typed as a decimal.
                AggKind::AvgDistinct => call.arg.clone().unwrap().div(Expr::int(1)),
                AggKind::Avg => unreachable!("avg is normalized away"),
            },
            AggPos::Partial { col, scope } => {
                let m_ex = state.multiplier_excluding(scope);
                match call.kind.combine() {
                    AggKind::Min | AggKind::Max => Expr::attr(col),
                    _ => times(Expr::attr(col), m_ex.as_ref()),
                }
            }
        };
        exts.push((out, expr));
    }
    exts
}
