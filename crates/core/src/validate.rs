//! Structural plan validation: an independent re-check that a memo plan
//! is a legal answer to its query — every relation scanned exactly once,
//! every operator applied exactly once at a cut its TES and conflict
//! rules allow, and aggregation placement legal (groupings only where
//! `G⁺`/decomposability permit, groupjoins fed raw right inputs).
//!
//! The enumeration engine establishes these invariants by construction;
//! the validator re-derives them from the plan tree so tests can hold
//! *any* plan producer — the exact DP, the heuristics, and especially the
//! budgeted/greedy paths of `dpnext-adaptive` — to the same contract.

use crate::algo::applied_ops_mask;
use crate::context::OptContext;
use crate::memo::{PlanId, PlanNode, PlanStore};
use dpnext_hypergraph::NodeSet;
use dpnext_query::OpKind;

/// Validate a (possibly partial) plan rooted at `id`. Checks, per node:
///
/// * scans cover exactly their single table occurrence;
/// * apply nodes join disjoint inputs whose union matches the stored set,
///   with disjoint applied-operator masks, at least one operator applied
///   at the cut, every such operator's `(L-TES, R-TES)` satisfied in the
///   node's physical orientation (or swapped, for commutative operators),
///   its conflict rules satisfied by the union, extra same-cut operators
///   all inner joins, and predicate attributes visible in the inputs;
/// * groupjoins have grouping-free right inputs;
/// * groupings sit on non-grouped inputs over sets that may be grouped
///   (`can_group`), with exactly the grouping attributes `G⁺(S)`;
/// * costs are finite, non-negative and monotone in the children, and
///   `has_grouping` flags are consistent.
///
/// Returns a description of the first violation found.
pub fn validate_subplan<S: PlanStore + ?Sized>(
    ctx: &OptContext,
    store: &S,
    id: PlanId,
) -> Result<(), String> {
    let plan = store.plan(id);
    let hot = plan.hot;
    if !hot.cost.is_finite() || hot.cost < 0.0 {
        return Err(format!("plan {id:?} has invalid cost {}", hot.cost));
    }
    if !hot.card.is_finite() || hot.card < 0.0 {
        return Err(format!("plan {id:?} has invalid cardinality {}", hot.card));
    }
    match &plan.cold.node {
        PlanNode::Scan { table } => {
            if *table >= ctx.query.table_count() {
                return Err(format!("scan of unknown table occurrence {table}"));
            }
            if hot.set != NodeSet::single(*table) {
                return Err(format!("scan of table {table} covers set {}", hot.set));
            }
            if hot.applied != 0 {
                return Err(format!("scan of table {table} claims applied operators"));
            }
            if hot.has_grouping() {
                return Err(format!("scan of table {table} flagged has_grouping"));
            }
            Ok(())
        }
        PlanNode::Apply {
            op,
            pred,
            left,
            right,
            ..
        } => {
            validate_subplan(ctx, store, *left)?;
            validate_subplan(ctx, store, *right)?;
            let (l, r) = (&store[*left], &store[*right]);
            if !l.set.is_disjoint(r.set) {
                return Err(format!(
                    "apply joins overlapping inputs {} and {}",
                    l.set, r.set
                ));
            }
            if hot.set != l.set.union(r.set) {
                return Err(format!(
                    "apply set {} is not the union of {} and {}",
                    hot.set, l.set, r.set
                ));
            }
            if l.applied & r.applied != 0 {
                return Err("operator applied twice across join inputs".into());
            }
            let here = hot.applied & !(l.applied | r.applied);
            if here == 0 {
                return Err(format!("apply over {} applies no operator", hot.set));
            }
            let mut primaries = 0u32;
            for idx in 0..ctx.cq.ops.len() {
                if here & (1u64 << idx) == 0 {
                    continue;
                }
                let info = &ctx.cq.ops[idx];
                if info.op != OpKind::Join {
                    primaries += 1;
                    if info.op != *op {
                        return Err(format!(
                            "operator {idx} ({}) applied under a {op} node",
                            info.op
                        ));
                    }
                }
                let normal = info.l_tes.is_subset_of(l.set) && info.r_tes.is_subset_of(r.set);
                let swapped = info.l_tes.is_subset_of(r.set) && info.r_tes.is_subset_of(l.set);
                if !(normal || (swapped && info.op.is_commutative())) {
                    return Err(format!(
                        "operator {idx} TES ({}, {}) violated at cut ({}, {})",
                        info.l_tes, info.r_tes, l.set, r.set
                    ));
                }
                for rule in &info.rules {
                    if rule.when.intersects(hot.set) && !rule.then.is_subset_of(hot.set) {
                        return Err(format!(
                            "operator {idx} conflict rule {} → {} violated by {}",
                            rule.when, rule.then, hot.set
                        ));
                    }
                }
            }
            if primaries > 1 {
                return Err("multiple non-inner operators merged at one cut".into());
            }
            if *op != OpKind::Join && here.count_ones() > 1 {
                return Err(format!("extra operators merged into a {op} application"));
            }
            if *op == OpKind::GroupJoin && r.has_grouping() {
                return Err("groupjoin applied to a pre-aggregated right input".into());
            }
            for &a in &pred.left_attrs() {
                if !store.plan(*left).cold.visible.contains(&a) {
                    return Err(format!("predicate attribute {a} not visible on the left"));
                }
            }
            for &a in &pred.right_attrs() {
                if !store.plan(*right).cold.visible.contains(&a) {
                    return Err(format!("predicate attribute {a} not visible on the right"));
                }
            }
            if hot.has_grouping() != (l.has_grouping() || r.has_grouping()) {
                return Err("has_grouping flag inconsistent with inputs".into());
            }
            if hot.cost + 1e-6 < l.cost + r.cost {
                return Err(format!(
                    "apply cost {} below the cost of its inputs {} + {}",
                    hot.cost, l.cost, r.cost
                ));
            }
            Ok(())
        }
        PlanNode::Group { attrs, input, .. } => {
            validate_subplan(ctx, store, *input)?;
            let inp = &store[*input];
            if inp.is_group() {
                return Err("grouping stacked directly on a grouping".into());
            }
            if hot.set != inp.set {
                return Err(format!(
                    "grouping changes the relation set ({} vs {})",
                    hot.set, inp.set
                ));
            }
            if hot.applied != inp.applied {
                return Err("grouping changes the applied-operator mask".into());
            }
            if !ctx.can_group(hot.set) {
                return Err(format!(
                    "grouping over {} with non-decomposable or split aggregates",
                    hot.set
                ));
            }
            if *attrs != ctx.compute_gplus(hot.set) {
                return Err(format!(
                    "grouping attributes {attrs:?} differ from G⁺({})",
                    hot.set
                ));
            }
            if !hot.has_grouping() {
                return Err("grouping node not flagged has_grouping".into());
            }
            if hot.cost + 1e-6 < inp.cost {
                return Err(format!(
                    "grouping cost {} below its input cost {}",
                    hot.cost, inp.cost
                ));
            }
            Ok(())
        }
    }
}

/// [`validate_subplan`] plus the completeness conditions: the plan covers
/// every relation of the query (each exactly once — implied by coverage
/// plus the per-node disjointness checks) and applies every operator.
pub fn validate_complete_plan<S: PlanStore + ?Sized>(
    ctx: &OptContext,
    store: &S,
    id: PlanId,
) -> Result<(), String> {
    validate_subplan(ctx, store, id)?;
    let plan = &store[id];
    let full = NodeSet::full(ctx.query.table_count());
    if plan.set != full {
        return Err(format!(
            "complete plan covers {} instead of all {} relations",
            plan.set,
            ctx.query.table_count()
        ));
    }
    let want = applied_ops_mask(ctx.cq.ops.len());
    if plan.applied != want {
        return Err(format!(
            "complete plan applied mask {:#x} misses operators (want {want:#x})",
            plan.applied
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::{Memo, MemoPlan, PlanNode};
    use crate::plan::{make_apply, make_scan};
    use crate::Scratch;
    use dpnext_algebra::{AttrGen, AttrId, JoinPred};
    use dpnext_query::{GroupSpec, OpTree, Query, QueryTable};

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    /// `r(a0, a1) ⋈_{a1 = a2} s(a2, a3)` grouped by `a0`.
    fn ctx2() -> OptContext {
        let t0 = QueryTable::new("r", vec![a(0), a(1)], 10.0);
        let t1 = QueryTable::new("s", vec![a(2), a(3)], 10.0);
        let tree = OpTree::binary(
            OpKind::Join,
            JoinPred::eq(a(1), a(2)),
            OpTree::rel(0),
            OpTree::rel(1),
        );
        let mut gen = AttrGen::new(100);
        let spec = GroupSpec::new(vec![a(0)], vec![], &mut gen);
        OptContext::new(Query::new(vec![t0, t1], tree, Some(spec)))
    }

    #[test]
    fn engine_built_plan_validates() {
        let ctx = ctx2();
        let mut memo = Memo::new();
        let mut scratch = Scratch::new(&ctx);
        let l = make_scan(&ctx, &mut memo, 0);
        let r = make_scan(&ctx, &mut memo, 1);
        let j = make_apply(&ctx, &mut scratch, &mut memo, 0, &[], l, r).unwrap();
        validate_subplan(&ctx, &memo, l).unwrap();
        validate_complete_plan(&ctx, &memo, j).unwrap();
    }

    #[test]
    fn duplicate_relation_is_rejected() {
        let ctx = ctx2();
        let mut memo = Memo::new();
        let mut scratch = Scratch::new(&ctx);
        let l = make_scan(&ctx, &mut memo, 0);
        let r = make_scan(&ctx, &mut memo, 1);
        let j = make_apply(&ctx, &mut scratch, &mut memo, 0, &[], l, r).unwrap();
        // Corrupt the tree: the right child now covers relation 0 too.
        let mut bogus = memo.plan(j).to_plan();
        if let PlanNode::Apply { right, .. } = &mut bogus.node {
            *right = l;
        }
        let id = memo.push(bogus);
        let err = validate_complete_plan(&ctx, &memo, id).unwrap_err();
        assert!(err.contains("overlapping"), "{err}");
    }

    #[test]
    fn missing_operator_is_rejected() {
        let ctx = ctx2();
        let mut memo = Memo::new();
        let mut scratch = Scratch::new(&ctx);
        let l = make_scan(&ctx, &mut memo, 0);
        let r = make_scan(&ctx, &mut memo, 1);
        let j = make_apply(&ctx, &mut scratch, &mut memo, 0, &[], l, r).unwrap();
        let mut bogus = memo.plan(j).to_plan();
        bogus.applied = 0;
        let id = memo.push(bogus);
        // The apply node no longer applies anything at its cut.
        let err = validate_complete_plan(&ctx, &memo, id).unwrap_err();
        assert!(err.contains("applies no operator"), "{err}");
    }

    #[test]
    fn illegal_grouping_placement_is_rejected() {
        let ctx = ctx2();
        let mut memo = Memo::new();
        let l = make_scan(&ctx, &mut memo, 0);
        // A hand-rolled grouping with the wrong grouping attributes.
        let scan = memo.plan(l).to_plan();
        let bogus = MemoPlan {
            node: PlanNode::Group {
                attrs: vec![a(3)],
                aggs: vec![],
                input: l,
            },
            has_grouping: true,
            cost: scan.cost + scan.card,
            ..scan
        };
        let id = memo.push(bogus);
        let err = validate_subplan(&ctx, &memo, id).unwrap_err();
        assert!(err.contains("differ from G⁺"), "{err}");
    }

    #[test]
    fn tes_violation_is_rejected() {
        let ctx = ctx2();
        let mut memo = Memo::new();
        let mut scratch = Scratch::new(&ctx);
        let l = make_scan(&ctx, &mut memo, 0);
        let r = make_scan(&ctx, &mut memo, 1);
        let j = make_apply(&ctx, &mut scratch, &mut memo, 0, &[], l, r).unwrap();
        // Swap the children: the inner join is commutative, so the TES
        // check passes both ways — but the predicate attribute visibility
        // flags the swap (left attrs now come from the right child).
        let mut bogus = memo.plan(j).to_plan();
        if let PlanNode::Apply { left, right, .. } = &mut bogus.node {
            std::mem::swap(left, right);
        }
        let id = memo.push(bogus);
        assert!(validate_complete_plan(&ctx, &memo, id).is_err());
    }
}
