//! Fast hashing for the optimizer's hot maps.
//!
//! The hasher itself lives in `dpnext_hypergraph::fxhash` (next to
//! [`dpnext_hypergraph::NodeSet`], its primary key type, so the
//! hypergraph crate's own dedup structures can use it without a
//! dependency cycle); this module is the core-crate face of it. Every
//! `NodeSet`- or attribute-keyed map on the enumeration hot path — the
//! memo's plan classes, the memoized `G⁺` cache, the context's
//! origin/distinct statistics, the replay buckets — hashes through
//! [`FxHasher`] instead of the standard library's SipHash: the keys are
//! one or two machine words and produced by the optimizer itself, so
//! HashDoS resistance is irrelevant and the multiply-xor mix wins the
//! probe cost outright (see `crates/core/benches/fxhash.rs`).

pub use dpnext_hypergraph::fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
