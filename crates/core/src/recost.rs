//! Re-cost a chosen plan's *structure* under a different set of statistics.
//!
//! The q-error robustness study needs the answer to: "the optimizer picked
//! this plan believing the perturbed stats — what does that plan actually
//! cost under the true stats?" Reading the stored `cost` field back is the
//! wrong answer (it was computed from the perturbed cardinalities), and
//! hand-rolling a second cost walk would drift from the real model. So
//! [`recost_plan`] **rebuilds** the chosen plan tree node by node through
//! the real constructors ([`crate::make_scan`] / [`crate::make_apply`] /
//! [`crate::make_group`]) against an [`OptContext`] built from the
//! true-stat query, into a fresh throwaway memo. Every cardinality,
//! selectivity, key bound and grouping estimate is then the production
//! code path's own number — bit-comparable with a plan the optimizer would
//! have chosen under true stats, which is what makes the drift ratio
//! `recost(chosen) / true_optimum` meaningful (and `>= 1` by construction
//! when the optimum is exact).
//!
//! The perturbed and true queries must be *structurally identical* (same
//! tables, operators and operator indices — only `card`/`distinct`/`sel`
//! numbers may differ), which [`dpnext_cost`]'s `StatsPerturbation`
//! guarantees: it rewrites numbers in a clone of the query and touches
//! nothing else.

use crate::context::{OptContext, Scratch};
use crate::finalize::final_numbers;
use crate::memo::{Memo, PlanId, PlanNode, PlanStore};
use crate::plan::{make_apply, make_group, make_scan};

/// The true-stat numbers of a rebuilt plan (see [`recost_plan`]): the full
/// `C_out` including the top grouping, and the final cardinality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recosted {
    /// Total `C_out` of the rebuilt plan under the re-costing context's
    /// statistics, top grouping included (matches
    /// [`crate::finalize::final_numbers`] semantics).
    pub cost: f64,
    /// Estimated result cardinality under the re-costing context's
    /// statistics (before any top grouping).
    pub card: f64,
}

/// Rebuild the plan `id` of `src` inside a fresh memo against `ctx` and
/// return its true-stat cost/cardinality. `ctx` must be built from a query
/// structurally identical to the one that produced `src` (same operator
/// indices); only statistics may differ. Errors describe a structural
/// mismatch — a plan that cannot be rebuilt was not produced from a
/// stats-only perturbation of `ctx`'s query.
pub fn recost_plan<S: PlanStore + ?Sized>(
    ctx: &OptContext,
    src: &S,
    id: PlanId,
) -> Result<Recosted, String> {
    let mut memo = Memo::new();
    let mut scratch = Scratch::new(ctx);
    let new_id = rebuild(ctx, src, id, &mut memo, &mut scratch)?;
    let (cost, card, _top) = final_numbers(ctx, &memo, new_id);
    Ok(Recosted { cost, card })
}

/// Recursively rebuild `id` of `src` into `memo`, returning the new id.
fn rebuild<S: PlanStore + ?Sized>(
    ctx: &OptContext,
    src: &S,
    id: PlanId,
    memo: &mut Memo,
    scratch: &mut Scratch,
) -> Result<PlanId, String> {
    let plan = src.plan(id);
    match &plan.cold.node {
        PlanNode::Scan { table } => Ok(make_scan(ctx, memo, *table)),
        PlanNode::Group { input, .. } => {
            let input = *input;
            let new_input = rebuild(ctx, src, input, memo, scratch)?;
            Ok(make_group(ctx, scratch, memo, new_input))
        }
        PlanNode::Apply {
            op, left, right, ..
        } => {
            let (op, left, right) = (*op, *left, *right);
            let applied = plan.hot.applied;
            let l_applied = src.plan(left).hot.applied;
            let r_applied = src.plan(right).hot.applied;
            let new_left = rebuild(ctx, src, left, memo, scratch)?;
            let new_right = rebuild(ctx, src, right, memo, scratch)?;
            // The operators applied at *this* cut are exactly the bits the
            // node added over its children. The primary operator (whose
            // kind the node carries) is the lowest matching-kind bit; the
            // rest ride along as `extra` merged predicates — selectivities
            // multiply commutatively, so the split does not affect cost.
            let here = applied ^ (l_applied | r_applied);
            let mut primary: Option<usize> = None;
            let mut extra: Vec<usize> = Vec::new();
            for idx in 0..ctx.cq.ops.len() {
                if here & (1u64 << idx) == 0 {
                    continue;
                }
                if primary.is_none() && ctx.cq.ops[idx].op == op {
                    primary = Some(idx);
                } else {
                    extra.push(idx);
                }
            }
            let Some(primary) = primary else {
                return Err(format!(
                    "apply node has no {op:?} operator among its own bits {here:#x}"
                ));
            };
            make_apply(ctx, scratch, memo, primary, &extra, new_left, new_right).ok_or_else(|| {
                format!("operator {primary} not re-applicable (structural mismatch)")
            })
        }
    }
}
