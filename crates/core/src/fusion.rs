//! Groupjoin fusion (§A.5.1, Eqvs. 98–100): a post-optimization pass that
//! rewrites
//!
//! * `e1 ⟕^{D}_{G1=G2} Γ_{G2;F}(e2)`  →  `e1 Z^{D}_{G1=G2;F} e2`
//! * `e1 ⋈_{G1=G2} Γ_{G2;F∘(c:count(*))}(e2)`  →  `σ_{c>0}(e1 Z e2)`
//!
//! whenever the grouped side's grouping attributes are exactly the join
//! attributes and nothing above the join references them. The generalized
//! groupjoin's *empty defaults* carry the outerjoin's `F¹({⊥}), c : 1`
//! vector, which is precisely the `count(*)(∅) := 1` convention the paper
//! introduces to make these equivalences hold.
//!
//! Under `C_out` the fusion is always beneficial: the grouped intermediate
//! and the join result are replaced by a single operator producing one
//! tuple per left tuple.

use dpnext_algebra::{AggCall, AggKind, AlgExpr, AttrId, CmpOp, Expr};
use std::collections::HashSet;

/// Attributes an ancestor chain still needs from a subtree's output.
/// `None` means unknown (assume everything is needed — no fusion).
type Needed = Option<HashSet<AttrId>>;

/// Fuse eligible outerjoin/join + grouping pairs into groupjoins.
/// Returns the rewritten tree and the number of fusions performed.
pub fn fuse_groupjoins(root: &AlgExpr) -> (AlgExpr, usize) {
    let mut count = 0;
    // The needed set at the root: a final projection tells us exactly.
    let needed: Needed = match root {
        AlgExpr::Project { attrs, .. } => Some(attrs.iter().copied().collect()),
        _ => None,
    };
    let fused = fuse(root, &needed, &mut count);
    (fused, count)
}

fn union_refs(needed: &Needed, extra: impl IntoIterator<Item = AttrId>) -> Needed {
    needed.as_ref().map(|set| {
        let mut s = set.clone();
        s.extend(extra);
        s
    })
}

/// Is `e1 (⋈|⟕) Γ_{g2;aggs}(..)` fusable at this point?
fn fusable(pred: &dpnext_algebra::JoinPred, g2: &[AttrId], needed: &Needed) -> bool {
    let Some(needed) = needed else {
        return false;
    };
    if !pred.is_equi() || pred.terms.is_empty() {
        return false;
    }
    // The grouping attributes must be exactly the join attributes …
    let mut rattrs: Vec<AttrId> = pred.right_attrs();
    rattrs.sort_unstable();
    rattrs.dedup();
    let mut gattrs: Vec<AttrId> = g2.to_vec();
    gattrs.sort_unstable();
    if rattrs != gattrs {
        return false;
    }
    // … and nobody above may still need them (the groupjoin drops them).
    g2.iter().all(|a| !needed.contains(a))
}

/// The count column used to filter an inner-join fusion: only a literal
/// `count(*)` is guaranteed positive for matched groups and 0 for the
/// empty group. (A `sum` column could be a *user* aggregate whose values
/// may be negative or NULL — never filter on those.)
fn countish_column(aggs: &[AggCall]) -> Option<AttrId> {
    aggs.iter()
        .find(|c| c.kind == AggKind::CountStar)
        .map(|c| c.out)
}

fn fuse(node: &AlgExpr, needed: &Needed, count: &mut usize) -> AlgExpr {
    match node {
        AlgExpr::Scan(_) => node.clone(),
        AlgExpr::Project {
            input,
            attrs,
            dedup,
        } => AlgExpr::Project {
            input: Box::new(fuse(input, &Some(attrs.iter().copied().collect()), count)),
            attrs: attrs.clone(),
            dedup: *dedup,
        },
        AlgExpr::Map { input, exts } => {
            let refs = exts.iter().flat_map(|(_, e)| {
                let mut v = Vec::new();
                e.referenced(&mut v);
                v
            });
            let child = union_refs(needed, refs);
            AlgExpr::Map {
                input: Box::new(fuse(input, &child, count)),
                exts: exts.clone(),
            }
        }
        AlgExpr::GroupBy { input, attrs, aggs } => {
            // A grouping reads exactly its attributes and arguments.
            let mut set: HashSet<AttrId> = attrs.iter().copied().collect();
            for c in aggs {
                set.extend(c.referenced());
            }
            AlgExpr::GroupBy {
                input: Box::new(fuse(input, &Some(set), count)),
                attrs: attrs.clone(),
                aggs: aggs.clone(),
            }
        }
        AlgExpr::Select {
            input,
            left,
            op,
            right,
        } => {
            let mut refs = Vec::new();
            left.referenced(&mut refs);
            right.referenced(&mut refs);
            let child = union_refs(needed, refs);
            AlgExpr::Select {
                input: Box::new(fuse(input, &child, count)),
                left: left.clone(),
                op: *op,
                right: right.clone(),
            }
        }
        AlgExpr::LeftOuterJoin {
            left,
            right,
            pred,
            defaults,
        } => {
            let child = union_refs(needed, pred.all_attrs());
            if let AlgExpr::GroupBy { input, attrs, aggs } = right.as_ref() {
                if fusable(pred, attrs, needed)
                    && defaults
                        .iter()
                        .all(|(d, _)| aggs.iter().any(|c| c.out == *d))
                {
                    *count += 1;
                    return AlgExpr::GroupJoin {
                        left: Box::new(fuse(left, &child, count)),
                        right: Box::new(fuse(input, &group_input_needed(attrs, aggs), count)),
                        pred: pred.clone(),
                        aggs: aggs.clone(),
                        empty_defaults: defaults.clone(),
                    };
                }
            }
            AlgExpr::LeftOuterJoin {
                left: Box::new(fuse(left, &child, count)),
                right: Box::new(fuse(right, &child, count)),
                pred: pred.clone(),
                defaults: defaults.clone(),
            }
        }
        AlgExpr::InnerJoin { left, right, pred } => {
            let child = union_refs(needed, pred.all_attrs());
            if let AlgExpr::GroupBy { input, attrs, aggs } = right.as_ref() {
                if fusable(pred, attrs, needed) {
                    if let Some(c) = countish_column(aggs) {
                        *count += 1;
                        let gj = AlgExpr::GroupJoin {
                            left: Box::new(fuse(left, &child, count)),
                            right: Box::new(fuse(input, &group_input_needed(attrs, aggs), count)),
                            pred: pred.clone(),
                            aggs: aggs.clone(),
                            empty_defaults: vec![],
                        };
                        return AlgExpr::Select {
                            input: Box::new(gj),
                            left: Expr::attr(c),
                            op: CmpOp::Gt,
                            right: Expr::int(0),
                        };
                    }
                }
            }
            AlgExpr::InnerJoin {
                left: Box::new(fuse(left, &child, count)),
                right: Box::new(fuse(right, &child, count)),
                pred: pred.clone(),
            }
        }
        AlgExpr::SemiJoin { left, right, pred } => {
            let child = union_refs(needed, pred.all_attrs());
            AlgExpr::SemiJoin {
                left: Box::new(fuse(left, &child, count)),
                right: Box::new(fuse(right, &child, count)),
                pred: pred.clone(),
            }
        }
        AlgExpr::AntiJoin { left, right, pred } => {
            let child = union_refs(needed, pred.all_attrs());
            AlgExpr::AntiJoin {
                left: Box::new(fuse(left, &child, count)),
                right: Box::new(fuse(right, &child, count)),
                pred: pred.clone(),
            }
        }
        AlgExpr::FullOuterJoin {
            left,
            right,
            pred,
            d1,
            d2,
        } => {
            // A full outerjoin keeps unmatched right tuples: not fusable.
            let child = union_refs(needed, pred.all_attrs());
            AlgExpr::FullOuterJoin {
                left: Box::new(fuse(left, &child, count)),
                right: Box::new(fuse(right, &child, count)),
                pred: pred.clone(),
                d1: d1.clone(),
                d2: d2.clone(),
            }
        }
        AlgExpr::GroupJoin {
            left,
            right,
            pred,
            aggs,
            empty_defaults,
        } => {
            let mut child_refs: Vec<AttrId> = pred.all_attrs();
            for c in aggs {
                child_refs.extend(c.referenced());
            }
            let child = union_refs(needed, child_refs);
            AlgExpr::GroupJoin {
                left: Box::new(fuse(left, &child, count)),
                right: Box::new(fuse(right, &child, count)),
                pred: pred.clone(),
                aggs: aggs.clone(),
                empty_defaults: empty_defaults.clone(),
            }
        }
        AlgExpr::Cross(l, r) => AlgExpr::Cross(
            Box::new(fuse(l, &None, count)),
            Box::new(fuse(r, &None, count)),
        ),
        AlgExpr::UnionAll(l, r) => AlgExpr::UnionAll(
            Box::new(fuse(l, &None, count)),
            Box::new(fuse(r, &None, count)),
        ),
    }
}

/// What the input of a (fused-away) grouping must still provide.
fn group_input_needed(attrs: &[AttrId], aggs: &[AggCall]) -> Needed {
    let mut set: HashSet<AttrId> = attrs.iter().copied().collect();
    for c in aggs {
        set.extend(c.referenced());
    }
    Some(set)
}
