//! Property-based verification of the *specialized* equivalence families
//! of Fig. 3 — Eager/Lazy Group-by (16–21), Eager/Lazy Count (22–27),
//! Double Eager/Lazy (28–33), the groupjoin simplifications (40–41) and
//! the top-grouping elimination (42) — complementing the main families in
//! `equivalences.rs`.

use dpnext_algebra::ops::{
    full_outer_join, groupjoin, inner_join, left_outer_join, project, Defaults,
};
use dpnext_algebra::{group_by, AggCall, AggKind, AttrId, Expr, JoinPred, Relation, Value};
use proptest::prelude::*;

const G1: AttrId = AttrId(0);
const J1: AttrId = AttrId(1);
const A1: AttrId = AttrId(2);
const G2: AttrId = AttrId(10);
const J2: AttrId = AttrId(11);
const A2: AttrId = AttrId(12);
const B1: AttrId = AttrId(21);
const B2: AttrId = AttrId(24);
const C1: AttrId = AttrId(30);
const B1P: AttrId = AttrId(31);
const C2: AttrId = AttrId(40);
const B2P: AttrId = AttrId(41);

fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => (0i64..4).prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

fn rel(attrs: [AttrId; 3], max_rows: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec([small_value(), small_value(), small_value()], 0..=max_rows).prop_map(
        move |rows| {
            Relation::from_rows(
                attrs.to_vec(),
                rows.into_iter().map(|r| r.to_vec()).collect(),
            )
        },
    )
}

fn e1() -> impl Strategy<Value = Relation> {
    rel([G1, J1, A1], 6)
}

fn e2() -> impl Strategy<Value = Relation> {
    rel([G2, J2, A2], 6)
}

fn pred() -> JoinPred {
    JoinPred::eq(J1, J2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Eqv. 16 — Eager/Lazy Group-by: `F₂` empty, no counts needed.
    /// `Γ_{G;F}(e1 ⋈ e2) ≡ Γ_{G;F²₁}(Γ_{G⁺₁;F¹₁}(e1) ⋈ e2)`.
    #[test]
    fn eqv16_eager_groupby_left(r1 in e1(), r2 in e2()) {
        let f = vec![
            AggCall::new(B1, AggKind::Sum, Expr::attr(A1)),
            AggCall::new(AttrId(22), AggKind::Min, Expr::attr(A1)),
        ];
        let lhs = group_by(&inner_join(&r1, &r2, &pred()), &[G1, G2], &f);
        let inner = vec![
            AggCall::new(B1P, AggKind::Sum, Expr::attr(A1)),
            AggCall::new(AttrId(32), AggKind::Min, Expr::attr(A1)),
        ];
        let outer = vec![
            AggCall::new(B1, AggKind::Sum, Expr::attr(B1P)),
            AggCall::new(AttrId(22), AggKind::Min, Expr::attr(AttrId(32))),
        ];
        let rhs = group_by(
            &inner_join(&group_by(&r1, &[G1, J1], &inner), &r2, &pred()),
            &[G1, G2],
            &outer,
        );
        prop_assert!(lhs.bag_eq(&rhs));
    }

    /// Eqv. 18 — full outerjoin with `F¹₁({⊥})` defaults only (no count).
    #[test]
    fn eqv18_eager_groupby_full_outer(r1 in e1(), r2 in e2()) {
        let f = vec![AggCall::new(B1, AggKind::Sum, Expr::attr(A1))];
        let lhs = group_by(
            &full_outer_join(&r1, &r2, &pred(), &vec![], &vec![]),
            &[G1, G2],
            &f,
        );
        let inner = vec![AggCall::new(B1P, AggKind::Sum, Expr::attr(A1))];
        let d1: Defaults = vec![(B1P, Value::Null)]; // F¹₁({⊥}) for sum
        let rhs = group_by(
            &full_outer_join(&group_by(&r1, &[G1, J1], &inner), &r2, &pred(), &d1, &vec![]),
            &[G1, G2],
            &[AggCall::new(B1, AggKind::Sum, Expr::attr(B1P))],
        );
        prop_assert!(lhs.bag_eq(&rhs));
    }

    /// Eqv. 22 — Eager/Lazy Count: `F₁` empty; only a count is pushed and
    /// the other side's aggregates are `⊗`-adjusted.
    #[test]
    fn eqv22_eager_count_left(r1 in e1(), r2 in e2()) {
        let f = vec![AggCall::new(B2, AggKind::Sum, Expr::attr(A2))];
        let lhs = group_by(&inner_join(&r1, &r2, &pred()), &[G1, G2], &f);
        let counted = group_by(&r1, &[G1, J1], &[AggCall::count_star(C1)]);
        let rhs = group_by(
            &inner_join(&counted, &r2, &pred()),
            &[G1, G2],
            &[AggCall::new(B2, AggKind::Sum, Expr::attr(A2).mul(Expr::attr(C1)))],
        );
        prop_assert!(lhs.bag_eq(&rhs));
    }

    /// Eqv. 26 — Eager/Lazy Count on the left outerjoin: defaults `c2 : 1`.
    #[test]
    fn eqv26_eager_count_outer_right(r1 in e1(), r2 in e2()) {
        let f = vec![AggCall::new(B1, AggKind::Sum, Expr::attr(A1))];
        let lhs = group_by(&left_outer_join(&r1, &r2, &pred(), &vec![]), &[G1, G2], &f);
        let counted = group_by(&r2, &[G2, J2], &[AggCall::count_star(C2)]);
        let d2: Defaults = vec![(C2, Value::Int(1))];
        let rhs = group_by(
            &left_outer_join(&r1, &counted, &pred(), &d2),
            &[G1, G2],
            &[AggCall::new(B1, AggKind::Sum, Expr::attr(A1).mul(Expr::attr(C2)))],
        );
        prop_assert!(lhs.bag_eq(&rhs));
    }

    /// Eqv. 28 — Double Eager/Lazy: group left for `F₁`, count right.
    #[test]
    fn eqv28_double_eager(r1 in e1(), r2 in e2()) {
        let f = vec![AggCall::new(B1, AggKind::Sum, Expr::attr(A1))];
        let lhs = group_by(&inner_join(&r1, &r2, &pred()), &[G1, G2], &f);
        let left = group_by(&r1, &[G1, J1], &[AggCall::new(B1P, AggKind::Sum, Expr::attr(A1))]);
        let right = group_by(&r2, &[G2, J2], &[AggCall::count_star(C2)]);
        let rhs = group_by(
            &inner_join(&left, &right, &pred()),
            &[G1, G2],
            &[AggCall::new(B1, AggKind::Sum, Expr::attr(B1P).mul(Expr::attr(C2)))],
        );
        prop_assert!(lhs.bag_eq(&rhs));
    }

    /// Eqv. 29 — Double Eager/Lazy on the left outerjoin.
    #[test]
    fn eqv29_double_eager_left_outer(r1 in e1(), r2 in e2()) {
        let f = vec![AggCall::new(B1, AggKind::Sum, Expr::attr(A1))];
        let lhs = group_by(&left_outer_join(&r1, &r2, &pred(), &vec![]), &[G1, G2], &f);
        let left = group_by(&r1, &[G1, J1], &[AggCall::new(B1P, AggKind::Sum, Expr::attr(A1))]);
        let right = group_by(&r2, &[G2, J2], &[AggCall::count_star(C2)]);
        let d2: Defaults = vec![(C2, Value::Int(1))];
        let rhs = group_by(
            &left_outer_join(&left, &right, &pred(), &d2),
            &[G1, G2],
            &[AggCall::new(B1, AggKind::Sum, Expr::attr(B1P).mul(Expr::attr(C2)))],
        );
        prop_assert!(lhs.bag_eq(&rhs));
    }

    /// Eqv. 31 — Double Eager/Lazy, aggregates from the right side.
    #[test]
    fn eqv31_double_eager_right_aggs(r1 in e1(), r2 in e2()) {
        let f = vec![AggCall::new(B2, AggKind::Sum, Expr::attr(A2))];
        let lhs = group_by(&inner_join(&r1, &r2, &pred()), &[G1, G2], &f);
        let left = group_by(&r1, &[G1, J1], &[AggCall::count_star(C1)]);
        let right = group_by(&r2, &[G2, J2], &[AggCall::new(B2P, AggKind::Sum, Expr::attr(A2))]);
        let rhs = group_by(
            &inner_join(&left, &right, &pred()),
            &[G1, G2],
            &[AggCall::new(B2, AggKind::Sum, Expr::attr(B2P).mul(Expr::attr(C1)))],
        );
        prop_assert!(lhs.bag_eq(&rhs));
    }

    /// Eqv. 40 — groupjoin, `F₂` empty: plain partial aggregation of the
    /// left input (no `⊗` needed).
    #[test]
    fn eqv40_groupjoin_groupby(r1 in e1(), r2 in e2()) {
        let gj = vec![AggCall::new(AttrId(50), AggKind::Max, Expr::attr(A2))];
        let f = vec![AggCall::new(B1, AggKind::Sum, Expr::attr(A1))];
        let lhs = group_by(&groupjoin(&r1, &r2, &pred(), &gj), &[G1], &f);
        let inner = group_by(&r1, &[G1, J1], &[AggCall::new(B1P, AggKind::Sum, Expr::attr(A1))]);
        let rhs = group_by(
            &groupjoin(&inner, &r2, &pred(), &gj),
            &[G1],
            &[AggCall::new(B1, AggKind::Sum, Expr::attr(B1P))],
        );
        prop_assert!(lhs.bag_eq(&rhs));
    }

    /// Eqv. 41 — groupjoin, `F₁` empty: push only a count, `⊗`-adjust the
    /// aggregates over the groupjoin's output.
    #[test]
    fn eqv41_groupjoin_count(r1 in e1(), r2 in e2()) {
        let gj = vec![AggCall::new(AttrId(50), AggKind::Sum, Expr::attr(A2))];
        let f = vec![AggCall::new(B2, AggKind::Sum, Expr::attr(AttrId(50)))];
        let lhs = group_by(&groupjoin(&r1, &r2, &pred(), &gj), &[G1], &f);
        let counted = group_by(&r1, &[G1, J1], &[AggCall::count_star(C1)]);
        let rhs = group_by(
            &groupjoin(&counted, &r2, &pred(), &gj),
            &[G1],
            &[AggCall::new(B2, AggKind::Sum, Expr::attr(AttrId(50)).mul(Expr::attr(C1)))],
        );
        prop_assert!(lhs.bag_eq(&rhs));
    }

    /// Eqv. 42 — eliminating the top grouping: when `G` is a key of a
    /// duplicate-free input, `Γ_{G;F}(e) ≡ Π_C(χ_F̂(e))`.
    #[test]
    fn eqv42_top_elimination(rows in proptest::collection::btree_set(0i64..50, 0..8)) {
        // Build a duplicate-free relation keyed on G1.
        let tuples: Vec<Vec<Value>> = rows
            .into_iter()
            .map(|k| vec![Value::Int(k), Value::Int(k % 5), Value::Int(k % 3)])
            .collect();
        let r = Relation::from_rows(vec![G1, J1, A1], tuples);
        let f = vec![
            AggCall::count_star(AttrId(60)),
            AggCall::new(AttrId(61), AggKind::Sum, Expr::attr(A1)),
            AggCall::new(AttrId(62), AggKind::Min, Expr::attr(A1)),
        ];
        let lhs = group_by(&r, &[G1], &f);
        // χ_F̂: per-row single-value aggregates.
        let mapped = dpnext_algebra::ops::map(
            &r,
            &[
                (AttrId(60), Expr::int(1)),
                (AttrId(61), Expr::attr(A1)),
                (AttrId(62), Expr::attr(A1)),
            ],
        );
        let rhs = project(&mapped, &[G1, AttrId(60), AttrId(61), AttrId(62)], false);
        prop_assert!(lhs.bag_eq(&rhs));
    }

    /// Grouping by a *superset* of the grouping attributes then
    /// re-grouping is the identity used throughout §4: partial groupings
    /// compose.
    #[test]
    fn grouping_composition(r1 in e1()) {
        let f = vec![
            AggCall::count_star(AttrId(60)),
            AggCall::new(B1, AggKind::Sum, Expr::attr(A1)),
        ];
        let direct = group_by(&r1, &[G1], &f);
        let fine = group_by(
            &r1,
            &[G1, J1],
            &[AggCall::count_star(C1), AggCall::new(B1P, AggKind::Sum, Expr::attr(A1))],
        );
        let recombined = group_by(
            &fine,
            &[G1],
            &[
                AggCall::new(AttrId(60), AggKind::Sum, Expr::attr(C1)),
                AggCall::new(B1, AggKind::Sum, Expr::attr(B1P)),
            ],
        );
        prop_assert!(direct.bag_eq(&recombined));
    }
}
