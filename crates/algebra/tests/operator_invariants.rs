//! Algebraic invariants of the operator implementations, checked on
//! random relations: commutativity of `⋈`/`⟗`, the semijoin/antijoin
//! partition, outerjoin containment, groupjoin arity, and idempotence of
//! duplicate elimination.

use dpnext_algebra::ops::{
    anti_join, cross, full_outer_join, groupjoin, inner_join, left_outer_join, project, semi_join,
    union_all,
};
use dpnext_algebra::{group_by, AggCall, AggKind, AttrId, Expr, JoinPred, Relation, Value};
use proptest::prelude::*;

const A1: AttrId = AttrId(0);
const J1: AttrId = AttrId(1);
const A2: AttrId = AttrId(10);
const J2: AttrId = AttrId(11);

fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => (0i64..4).prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

fn rel(attrs: [AttrId; 2]) -> impl Strategy<Value = Relation> {
    proptest::collection::vec([small_value(), small_value()], 0..=7).prop_map(move |rows| {
        Relation::from_rows(
            attrs.to_vec(),
            rows.into_iter().map(|r| r.to_vec()).collect(),
        )
    })
}

fn pred() -> JoinPred {
    JoinPred::eq(J1, J2)
}

fn flipped() -> JoinPred {
    JoinPred::eq(J2, J1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `e1 ⋈ e2 ≡ e2 ⋈ e1` (up to column order).
    #[test]
    fn inner_join_commutes(r1 in rel([A1, J1]), r2 in rel([A2, J2])) {
        let ab = inner_join(&r1, &r2, &pred());
        let ba = inner_join(&r2, &r1, &flipped());
        prop_assert!(ab.bag_eq(&ba));
    }

    /// `e1 ⟗ e2 ≡ e2 ⟗ e1`.
    #[test]
    fn full_outer_commutes(r1 in rel([A1, J1]), r2 in rel([A2, J2])) {
        let ab = full_outer_join(&r1, &r2, &pred(), &vec![], &vec![]);
        let ba = full_outer_join(&r2, &r1, &flipped(), &vec![], &vec![]);
        prop_assert!(ab.bag_eq(&ba));
    }

    /// `(e1 ⋉ e2) ∪ (e1 ▷ e2) ≡ e1` — the semijoin/antijoin partition.
    #[test]
    fn semi_anti_partition(r1 in rel([A1, J1]), r2 in rel([A2, J2])) {
        let semi = semi_join(&r1, &r2, &pred());
        let anti = anti_join(&r1, &r2, &pred());
        prop_assert!(union_all(&semi, &anti).bag_eq(&r1));
    }

    /// `e1 ⟕ e2 = (e1 ⋈ e2) ∪ ((e1 ▷ e2) × {⊥})` — Eqv. 5 verbatim.
    #[test]
    fn left_outer_definition(r1 in rel([A1, J1]), r2 in rel([A2, J2])) {
        let lo = left_outer_join(&r1, &r2, &pred(), &vec![]);
        let join = inner_join(&r1, &r2, &pred());
        let nulls = Relation::from_ints(vec![A2, J2], &[&[None, None]]);
        let padded = cross(&anti_join(&r1, &r2, &pred()), &nulls);
        prop_assert!(lo.bag_eq(&union_all(&join, &padded)));
    }

    /// `e1 ⟗ e2 = (e1 ⟕ e2) ∪ ({⊥} × (e2 ▷ e1))` — Eqv. 6.
    #[test]
    fn full_outer_definition(r1 in rel([A1, J1]), r2 in rel([A2, J2])) {
        let fo = full_outer_join(&r1, &r2, &pred(), &vec![], &vec![]);
        let lo = left_outer_join(&r1, &r2, &pred(), &vec![]);
        let nulls = Relation::from_ints(vec![A1, J1], &[&[None, None]]);
        let right_orphans = cross(&nulls, &anti_join(&r2, &r1, &flipped()));
        prop_assert!(fo.bag_eq(&union_all(&lo, &right_orphans)));
    }

    /// The groupjoin yields exactly one tuple per left tuple (Def. 9).
    #[test]
    fn groupjoin_arity(r1 in rel([A1, J1]), r2 in rel([A2, J2])) {
        let gj = groupjoin(&r1, &r2, &pred(), &[AggCall::count_star(AttrId(30))]);
        prop_assert_eq!(r1.len(), gj.len());
        // Its count column sums to the inner-join cardinality.
        let total: i64 = gj
            .tuples()
            .iter()
            .map(|t| t[gj.schema().pos_of(AttrId(30))].as_int().unwrap())
            .sum();
        prop_assert_eq!(inner_join(&r1, &r2, &pred()).len() as i64, total);
    }

    /// Duplicate-removing projection is idempotent and its result is
    /// duplicate-free.
    #[test]
    fn dedup_projection_idempotent(r1 in rel([A1, J1])) {
        let once = project(&r1, &[A1], true);
        prop_assert!(once.is_duplicate_free());
        let twice = project(&once, &[A1], true);
        prop_assert!(once.bag_eq(&twice));
    }

    /// Grouping then summing the per-group counts reproduces the input
    /// cardinality.
    #[test]
    fn group_counts_partition_input(r1 in rel([A1, J1])) {
        let g = group_by(&r1, &[A1], &[AggCall::count_star(AttrId(30))]);
        let total: i64 = g
            .tuples()
            .iter()
            .map(|t| t[g.schema().pos_of(AttrId(30))].as_int().unwrap())
            .sum();
        prop_assert_eq!(r1.len() as i64, total);
        // Group keys are unique.
        prop_assert!(project(&g, &[A1], false).is_duplicate_free());
    }

    /// Hash and nested-loop join paths agree on arbitrary inputs (the
    /// nested-loop path is forced via a redundant theta term).
    #[test]
    fn join_paths_agree(r1 in rel([A1, J1]), r2 in rel([A2, J2])) {
        use dpnext_algebra::CmpOp;
        let fast = inner_join(&r1, &r2, &pred());
        let theta = JoinPred::eq(J1, J2).and(J1, CmpOp::Le, J2);
        let slow = inner_join(&r1, &r2, &theta);
        prop_assert!(fast.bag_eq(&slow));
    }

    /// `sum`/`min`/`max` over a group never depend on tuple order.
    #[test]
    fn aggregation_is_order_insensitive(r1 in rel([A1, J1])) {
        let aggs = vec![
            AggCall::new(AttrId(30), AggKind::Sum, Expr::attr(J1)),
            AggCall::new(AttrId(31), AggKind::Min, Expr::attr(J1)),
            AggCall::new(AttrId(32), AggKind::Max, Expr::attr(J1)),
            AggCall::new(AttrId(33), AggKind::Count, Expr::attr(J1)),
        ];
        let forward = group_by(&r1, &[A1], &aggs);
        let reversed_rel = Relation::from_rows(
            r1.schema().attrs().to_vec(),
            r1.tuples().iter().rev().map(|t| t.to_vec()).collect(),
        );
        let backward = group_by(&reversed_rel, &[A1], &aggs);
        prop_assert!(forward.bag_eq(&backward));
    }
}
