//! Property-based verification of the paper's equivalences (Fig. 3):
//! for random relations, the left- and right-hand sides are constructed
//! operator-by-operator and must be bag-equal.
//!
//! Naming follows the paper: `e1(g1, j1, a1)`, `e2(g2, j2, a2)`,
//! `F = (c : count(*), b1 : sum(a1), n1 : count(a1), m1 : min(a1),
//! b2 : sum(a2), x2 : max(a2))`, grouping on `G = {g1, g2}`,
//! join predicate `j1 = j2`, `G⁺₁ = {g1, j1}`, `G⁺₂ = {g2, j2}`.

use dpnext_algebra::ops::{
    anti_join, full_outer_join, groupjoin, inner_join, left_outer_join, project, semi_join,
    union_all, Defaults,
};
use dpnext_algebra::{group_by, AggCall, AggKind, AttrId, Expr, JoinPred, Relation, Value};
use proptest::prelude::*;

// Attribute layout (fixed ids keep the test readable).
const G1: AttrId = AttrId(0);
const J1: AttrId = AttrId(1);
const A1: AttrId = AttrId(2);
const G2: AttrId = AttrId(10);
const J2: AttrId = AttrId(11);
const A2: AttrId = AttrId(12);
// Aggregate outputs.
const C: AttrId = AttrId(20);
const B1: AttrId = AttrId(21);
const N1: AttrId = AttrId(22);
const M1: AttrId = AttrId(23);
const B2: AttrId = AttrId(24);
const X2: AttrId = AttrId(25);
// Partials and counts.
const C1: AttrId = AttrId(30);
const B1P: AttrId = AttrId(31);
const N1P: AttrId = AttrId(32);
const M1P: AttrId = AttrId(33);
const C2: AttrId = AttrId(40);
const B2P: AttrId = AttrId(41);
const X2P: AttrId = AttrId(42);

fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => (0i64..4).prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

fn rel(attrs: [AttrId; 3], max_rows: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec([small_value(), small_value(), small_value()], 0..=max_rows).prop_map(
        move |rows| {
            Relation::from_rows(
                attrs.to_vec(),
                rows.into_iter().map(|r| r.to_vec()).collect(),
            )
        },
    )
}

fn e1() -> impl Strategy<Value = Relation> {
    rel([G1, J1, A1], 6)
}

fn e2() -> impl Strategy<Value = Relation> {
    rel([G2, J2, A2], 6)
}

fn pred() -> JoinPred {
    JoinPred::eq(J1, J2)
}

/// The full aggregation vector `F` of the running example.
fn f_vec() -> Vec<AggCall> {
    vec![
        AggCall::count_star(C),
        AggCall::new(B1, AggKind::Sum, Expr::attr(A1)),
        AggCall::new(N1, AggKind::Count, Expr::attr(A1)),
        AggCall::new(M1, AggKind::Min, Expr::attr(A1)),
        AggCall::new(B2, AggKind::Sum, Expr::attr(A2)),
        AggCall::new(X2, AggKind::Max, Expr::attr(A2)),
    ]
}

/// Inner grouping vector `F¹₁ ∘ (c1 : count(*))` for pushing into `e1`.
fn f1_inner() -> Vec<AggCall> {
    vec![
        AggCall::count_star(C1),
        AggCall::new(B1P, AggKind::Sum, Expr::attr(A1)),
        AggCall::new(N1P, AggKind::Count, Expr::attr(A1)),
        AggCall::new(M1P, AggKind::Min, Expr::attr(A1)),
    ]
}

/// Outer vector `(F₂ ⊗ c1) ∘ F²₁` after pushing into `e1` (Eqv. 10 ff.).
fn f1_outer() -> Vec<AggCall> {
    vec![
        AggCall::new(C, AggKind::Sum, Expr::attr(C1)),
        AggCall::new(B1, AggKind::Sum, Expr::attr(B1P)),
        AggCall::new(N1, AggKind::Sum, Expr::attr(N1P)),
        AggCall::new(M1, AggKind::Min, Expr::attr(M1P)),
        // F₂ ⊗ c1: sum(a2) → sum(a2 * c1); max is duplicate agnostic.
        AggCall::new(B2, AggKind::Sum, Expr::attr(A2).mul(Expr::attr(C1))),
        AggCall::new(X2, AggKind::Max, Expr::attr(A2)),
    ]
}

/// Inner grouping vector `F¹₂ ∘ (c2 : count(*))` for pushing into `e2`.
fn f2_inner() -> Vec<AggCall> {
    vec![
        AggCall::count_star(C2),
        AggCall::new(B2P, AggKind::Sum, Expr::attr(A2)),
        AggCall::new(X2P, AggKind::Max, Expr::attr(A2)),
    ]
}

/// Outer vector `(F₁ ⊗ c2) ∘ F²₂` after pushing into `e2`.
fn f2_outer() -> Vec<AggCall> {
    vec![
        AggCall::new(C, AggKind::Sum, Expr::attr(C2)),
        AggCall::new(B1, AggKind::Sum, Expr::attr(A1).mul(Expr::attr(C2))),
        AggCall::new(
            N1,
            AggKind::Sum,
            Expr::IfNull(A1, Box::new(Expr::int(0)), Box::new(Expr::attr(C2))),
        ),
        AggCall::new(M1, AggKind::Min, Expr::attr(A1)),
        AggCall::new(B2, AggKind::Sum, Expr::attr(B2P)),
        AggCall::new(X2, AggKind::Max, Expr::attr(X2P)),
    ]
}

/// `F¹₁({⊥}), c1 : 1` — the default vector when the pre-aggregated `e1`
/// side is padded by a full outerjoin (Eqv. 12).
fn d1_defaults() -> Defaults {
    vec![
        (C1, Value::Int(1)),
        (B1P, Value::Null),
        (N1P, Value::Int(0)),
        (M1P, Value::Null),
    ]
}

/// `F¹₂({⊥}), c2 : 1` (Eqvs. 14/15).
fn d2_defaults() -> Defaults {
    vec![(C2, Value::Int(1)), (B2P, Value::Null), (X2P, Value::Null)]
}

fn lhs(join: impl Fn(&Relation, &Relation) -> Relation, r1: &Relation, r2: &Relation) -> Relation {
    group_by(&join(r1, r2), &[G1, G2], &f_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Eqv. 10 — Eager/Lazy Groupby-Count, inner join, push left.
    #[test]
    fn eqv10_join_push_left(r1 in e1(), r2 in e2()) {
        let left = lhs(|a, b| inner_join(a, b, &pred()), &r1, &r2);
        let inner = group_by(&r1, &[G1, J1], &f1_inner());
        let right = group_by(&inner_join(&inner, &r2, &pred()), &[G1, G2], &f1_outer());
        prop_assert!(left.bag_eq(&right), "lhs:\n{left}\nrhs:\n{right}");
    }

    /// Eqv. 13 — inner join, push right.
    #[test]
    fn eqv13_join_push_right(r1 in e1(), r2 in e2()) {
        let left = lhs(|a, b| inner_join(a, b, &pred()), &r1, &r2);
        let inner = group_by(&r2, &[G2, J2], &f2_inner());
        let right = group_by(&inner_join(&r1, &inner, &pred()), &[G1, G2], &f2_outer());
        prop_assert!(left.bag_eq(&right));
    }

    /// Eqv. 11 — left outerjoin, push left (no defaults needed).
    #[test]
    fn eqv11_left_outer_push_left(r1 in e1(), r2 in e2()) {
        let left = lhs(|a, b| left_outer_join(a, b, &pred(), &vec![]), &r1, &r2);
        let inner = group_by(&r1, &[G1, J1], &f1_inner());
        let right = group_by(
            &left_outer_join(&inner, &r2, &pred(), &vec![]),
            &[G1, G2],
            &f1_outer(),
        );
        prop_assert!(left.bag_eq(&right));
    }

    /// Eqv. 14 — left outerjoin, push right, with `F¹₂({⊥}), c2 : 1`
    /// defaults on the padded side.
    #[test]
    fn eqv14_left_outer_push_right(r1 in e1(), r2 in e2()) {
        let left = lhs(|a, b| left_outer_join(a, b, &pred(), &vec![]), &r1, &r2);
        let inner = group_by(&r2, &[G2, J2], &f2_inner());
        let right = group_by(
            &left_outer_join(&r1, &inner, &pred(), &d2_defaults()),
            &[G1, G2],
            &f2_outer(),
        );
        prop_assert!(left.bag_eq(&right), "lhs:\n{left}\nrhs:\n{right}");
    }

    /// Eqv. 12 — full outerjoin, push left, defaults on the left columns.
    #[test]
    fn eqv12_full_outer_push_left(r1 in e1(), r2 in e2()) {
        let left = lhs(|a, b| full_outer_join(a, b, &pred(), &vec![], &vec![]), &r1, &r2);
        let inner = group_by(&r1, &[G1, J1], &f1_inner());
        let right = group_by(
            &full_outer_join(&inner, &r2, &pred(), &d1_defaults(), &vec![]),
            &[G1, G2],
            &f1_outer(),
        );
        prop_assert!(left.bag_eq(&right), "lhs:\n{left}\nrhs:\n{right}");
    }

    /// Eqv. 15 — full outerjoin, push right.
    #[test]
    fn eqv15_full_outer_push_right(r1 in e1(), r2 in e2()) {
        let left = lhs(|a, b| full_outer_join(a, b, &pred(), &vec![], &vec![]), &r1, &r2);
        let inner = group_by(&r2, &[G2, J2], &f2_inner());
        let right = group_by(
            &full_outer_join(&r1, &inner, &pred(), &vec![], &d2_defaults()),
            &[G1, G2],
            &f2_outer(),
        );
        prop_assert!(left.bag_eq(&right));
    }

    /// Eqv. 36 — Eager/Lazy Split on the full outerjoin: push into both
    /// sides, adjust each side's partials by the other side's count.
    #[test]
    fn eqv36_full_outer_split(r1 in e1(), r2 in e2()) {
        let left = lhs(|a, b| full_outer_join(a, b, &pred(), &vec![], &vec![]), &r1, &r2);
        let i1 = group_by(&r1, &[G1, J1], &f1_inner());
        let i2 = group_by(&r2, &[G2, J2], &f2_inner());
        let joined = full_outer_join(&i1, &i2, &pred(), &d1_defaults(), &d2_defaults());
        let outer = vec![
            AggCall::new(C, AggKind::Sum, Expr::attr(C1).mul(Expr::attr(C2))),
            AggCall::new(B1, AggKind::Sum, Expr::attr(B1P).mul(Expr::attr(C2))),
            AggCall::new(N1, AggKind::Sum, Expr::attr(N1P).mul(Expr::attr(C2))),
            AggCall::new(M1, AggKind::Min, Expr::attr(M1P)),
            AggCall::new(B2, AggKind::Sum, Expr::attr(B2P).mul(Expr::attr(C1))),
            AggCall::new(X2, AggKind::Max, Expr::attr(X2P)),
        ];
        let right = group_by(&joined, &[G1, G2], &outer);
        prop_assert!(left.bag_eq(&right), "lhs:\n{left}\nrhs:\n{right}");
    }

    /// Eqv. 34 — Eager/Lazy Split on the inner join.
    #[test]
    fn eqv34_join_split(r1 in e1(), r2 in e2()) {
        let left = lhs(|a, b| inner_join(a, b, &pred()), &r1, &r2);
        let i1 = group_by(&r1, &[G1, J1], &f1_inner());
        let i2 = group_by(&r2, &[G2, J2], &f2_inner());
        let joined = inner_join(&i1, &i2, &pred());
        let outer = vec![
            AggCall::new(C, AggKind::Sum, Expr::attr(C1).mul(Expr::attr(C2))),
            AggCall::new(B1, AggKind::Sum, Expr::attr(B1P).mul(Expr::attr(C2))),
            AggCall::new(N1, AggKind::Sum, Expr::attr(N1P).mul(Expr::attr(C2))),
            AggCall::new(M1, AggKind::Min, Expr::attr(M1P)),
            AggCall::new(B2, AggKind::Sum, Expr::attr(B2P).mul(Expr::attr(C1))),
            AggCall::new(X2, AggKind::Max, Expr::attr(X2P)),
        ];
        let right = group_by(&joined, &[G1, G2], &outer);
        prop_assert!(left.bag_eq(&right));
    }

    /// Eqv. 37 — semijoin: grouping commutes when the left join attributes
    /// are grouping attributes (`F(q) ∩ A(e1) ⊆ G`).
    #[test]
    fn eqv37_semijoin(r1 in e1(), r2 in e2()) {
        let f1_only = vec![
            AggCall::count_star(C),
            AggCall::new(B1, AggKind::Sum, Expr::attr(A1)),
            AggCall::new(M1, AggKind::Min, Expr::attr(A1)),
        ];
        let g = [G1, J1];
        let left = group_by(&semi_join(&r1, &r2, &pred()), &g, &f1_only);
        let right = semi_join(&group_by(&r1, &g, &f1_only), &r2, &pred());
        prop_assert!(left.bag_eq(&right));
    }

    /// Eqv. 38 — antijoin, same side condition.
    #[test]
    fn eqv38_antijoin(r1 in e1(), r2 in e2()) {
        let f1_only = vec![
            AggCall::count_star(C),
            AggCall::new(B1, AggKind::Sum, Expr::attr(A1)),
        ];
        let g = [G1, J1];
        let left = group_by(&anti_join(&r1, &r2, &pred()), &g, &f1_only);
        let right = anti_join(&group_by(&r1, &g, &f1_only), &r2, &pred());
        prop_assert!(left.bag_eq(&right));
    }

    /// Eqv. 39 — groupjoin: push the grouping into the left argument
    /// (with the groupby-count adjustment).
    #[test]
    fn eqv39_groupjoin_push_left(r1 in e1(), r2 in e2()) {
        let gj_aggs = vec![AggCall::new(AttrId(50), AggKind::Sum, Expr::attr(A2))];
        // F references a1 and the groupjoin output.
        let f = vec![
            AggCall::count_star(C),
            AggCall::new(B1, AggKind::Sum, Expr::attr(A1)),
            AggCall::new(B2, AggKind::Sum, Expr::attr(AttrId(50))),
        ];
        let left = group_by(&groupjoin(&r1, &r2, &pred(), &gj_aggs), &[G1], &f);
        // Push: Γ_{G⁺₁; F¹₁ ∘ c1}(e1), then the groupjoin, then the
        // adjusted outer vector (the groupjoin output is "from e2": ⊗ c1).
        let i1 = group_by(&r1, &[G1, J1], &f1_inner());
        let outer = vec![
            AggCall::new(C, AggKind::Sum, Expr::attr(C1)),
            AggCall::new(B1, AggKind::Sum, Expr::attr(B1P)),
            AggCall::new(B2, AggKind::Sum, Expr::attr(AttrId(50)).mul(Expr::attr(C1))),
        ];
        let right = group_by(&groupjoin(&i1, &r2, &pred(), &gj_aggs), &[G1], &outer);
        prop_assert!(left.bag_eq(&right), "lhs:\n{left}\nrhs:\n{right}");
    }

    /// Eqv. 98/100 — the groupjoin expressed via outerjoin + grouping,
    /// with `count(*)(∅) := 1` fixed up through the default vector.
    #[test]
    fn eqv100_groupjoin_via_outerjoin(r1 in e1(), r2 in e2()) {
        let gj_aggs = vec![
            AggCall::new(AttrId(50), AggKind::Sum, Expr::attr(A2)),
            AggCall::count_star(AttrId(51)),
        ];
        let left = groupjoin(&r1, &r2, &pred(), &gj_aggs);
        // Π_C(e1 ⟕^{F({⊥})}_{j1=j2} Γ_{j2;F}(e2)), count default 0 → the
        // groupjoin counts the empty bag as 0 (Definition 9 semantics).
        let grouped = group_by(&r2, &[J2], &gj_aggs);
        let defaults: Defaults = vec![(AttrId(50), Value::Null), (AttrId(51), Value::Int(0))];
        let joined = left_outer_join(&r1, &grouped, &pred(), &defaults);
        let right = project(&joined, &[G1, J1, A1, AttrId(50), AttrId(51)], false);
        prop_assert!(left.bag_eq(&right), "lhs:\n{left}\nrhs:\n{right}");
    }

    /// Eqv. 45/46 — grouping distributes over union (with decomposable
    /// aggregates re-combined).
    #[test]
    fn eqv46_group_over_union(r1 in e1(), r2 in rel([G1, J1, A1], 6)) {
        let f1 = vec![
            AggCall::count_star(C1),
            AggCall::new(B1P, AggKind::Sum, Expr::attr(A1)),
        ];
        let f2 = vec![
            AggCall::new(C, AggKind::Sum, Expr::attr(C1)),
            AggCall::new(B1, AggKind::Sum, Expr::attr(B1P)),
        ];
        let direct = group_by(
            &union_all(&r1, &r2),
            &[G1],
            &[AggCall::count_star(C), AggCall::new(B1, AggKind::Sum, Expr::attr(A1))],
        );
        let pieces = union_all(&group_by(&r1, &[G1], &f1), &group_by(&r2, &[G1], &f1));
        let recombined = group_by(&pieces, &[G1], &f2);
        prop_assert!(direct.bag_eq(&recombined));
    }
}

/// The concrete worked example of Fig. 4 (Eqvs. 10 and 12).
#[cfg(test)]
mod fig4 {
    use super::*;

    fn fig4_e1() -> Relation {
        Relation::from_ints(
            vec![G1, J1, A1],
            &[
                &[Some(1), Some(1), Some(2)],
                &[Some(1), Some(2), Some(4)],
                &[Some(1), Some(2), Some(8)],
            ],
        )
    }

    fn fig4_e2() -> Relation {
        Relation::from_ints(
            vec![G2, J2, A2],
            &[
                &[Some(1), Some(1), Some(2)],
                &[Some(1), Some(1), Some(4)],
                &[Some(1), Some(2), Some(8)],
            ],
        )
    }

    fn fig4_f() -> Vec<AggCall> {
        vec![
            AggCall::count_star(C),
            AggCall::new(B1, AggKind::Sum, Expr::attr(A1)),
            AggCall::new(B2, AggKind::Sum, Expr::attr(A2)),
        ]
    }

    /// `e4 = Γ_{g1,g2;F}(e3)`: a single tuple (1, 4, 16, 22).
    #[test]
    fn fig4_lazy_side() {
        let e3 = inner_join(&fig4_e1(), &fig4_e2(), &pred());
        assert_eq!(4, e3.len());
        let e4 = group_by(&e3, &[G1, G2], &fig4_f());
        let expect = Relation::from_ints(
            vec![G1, G2, C, B1, B2],
            &[&[Some(1), Some(1), Some(4), Some(16), Some(22)]],
        );
        assert!(e4.bag_eq(&expect), "got {e4}");
    }

    /// The eager side of Eqv. 10 reproduces the same single tuple, and the
    /// inner grouping `e5 = Γ_{g1,j1;F¹}(e1)` has the paper's two tuples.
    #[test]
    fn fig4_eager_side() {
        let inner_aggs = vec![
            AggCall::count_star(C1),
            AggCall::new(B1P, AggKind::Sum, Expr::attr(A1)),
        ];
        let e5 = group_by(&fig4_e1(), &[G1, J1], &inner_aggs);
        let e5_expect = Relation::from_ints(
            vec![G1, J1, C1, B1P],
            &[
                &[Some(1), Some(1), Some(1), Some(2)],
                &[Some(1), Some(2), Some(2), Some(12)],
            ],
        );
        assert!(e5.bag_eq(&e5_expect), "e5 = {e5}");

        let e6 = inner_join(&e5, &fig4_e2(), &pred());
        assert_eq!(3, e6.len()); // the paper's e6 has 3 tuples
        let outer = vec![
            AggCall::new(C, AggKind::Sum, Expr::attr(C1)),
            AggCall::new(B1, AggKind::Sum, Expr::attr(B1P)),
            AggCall::new(B2, AggKind::Sum, Expr::attr(A2).mul(Expr::attr(C1))),
        ];
        let e7 = group_by(&e6, &[G1, G2], &outer);
        let expect = Relation::from_ints(
            vec![G1, G2, C, B1, B2],
            &[&[Some(1), Some(1), Some(4), Some(16), Some(22)]],
        );
        assert!(e7.bag_eq(&expect), "e7 = {e7}");
    }

    /// Eqv. 12 on the full Fig. 4 relations (including the tuples below
    /// the separating line — here: all of them) with the outerjoin
    /// defaults `F¹₁({⊥}), c1 : 1`.
    #[test]
    fn fig4_full_outer_with_defaults() {
        let lhs = group_by(
            &full_outer_join(&fig4_e1(), &fig4_e2(), &pred(), &vec![], &vec![]),
            &[G1, G2],
            &fig4_f(),
        );
        let inner_aggs = vec![
            AggCall::count_star(C1),
            AggCall::new(B1P, AggKind::Sum, Expr::attr(A1)),
        ];
        let e5 = group_by(&fig4_e1(), &[G1, J1], &inner_aggs);
        let d1: Defaults = vec![(C1, Value::Int(1)), (B1P, Value::Null)];
        let joined = full_outer_join(&e5, &fig4_e2(), &pred(), &d1, &vec![]);
        let outer = vec![
            AggCall::new(C, AggKind::Sum, Expr::attr(C1)),
            AggCall::new(B1, AggKind::Sum, Expr::attr(B1P)),
            AggCall::new(B2, AggKind::Sum, Expr::attr(A2).mul(Expr::attr(C1))),
        ];
        let rhs = group_by(&joined, &[G1, G2], &outer);
        assert!(lhs.bag_eq(&rhs), "lhs:\n{lhs}\nrhs:\n{rhs}");
    }
}
