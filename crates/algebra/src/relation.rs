//! Bag-semantics relations.

use crate::schema::{AttrId, Schema, Tuple};
use crate::value::Value;
use std::fmt;

/// A relation: a schema plus a bag (multiset) of tuples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Relation {
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    pub fn with_tuples(schema: Schema, tuples: Vec<Tuple>) -> Self {
        debug_assert!(tuples.iter().all(|t| t.len() == schema.len()));
        Relation { schema, tuples }
    }

    /// Convenience constructor from rows of values.
    pub fn from_rows(attrs: Vec<AttrId>, rows: Vec<Vec<Value>>) -> Self {
        let schema = Schema::new(attrs);
        let tuples = rows
            .into_iter()
            .map(|r| {
                assert_eq!(r.len(), schema.len(), "row arity mismatch");
                r.into_boxed_slice()
            })
            .collect();
        Relation { schema, tuples }
    }

    /// Convenience constructor from integer rows (NULL encoded as `None`).
    pub fn from_ints(attrs: Vec<AttrId>, rows: &[&[Option<i64>]]) -> Self {
        let schema = Schema::new(attrs);
        let tuples = rows
            .iter()
            .map(|r| {
                assert_eq!(r.len(), schema.len(), "row arity mismatch");
                r.iter()
                    .map(|v| v.map_or(Value::Null, Value::Int))
                    .collect::<Vec<_>>()
                    .into_boxed_slice()
            })
            .collect();
        Relation { schema, tuples }
    }

    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    pub fn push(&mut self, t: Tuple) {
        debug_assert_eq!(t.len(), self.schema.len());
        self.tuples.push(t);
    }

    /// Value of `attr` in row `row`.
    pub fn value(&self, row: usize, attr: AttrId) -> &Value {
        &self.tuples[row][self.schema.pos_of(attr)]
    }

    /// Bag equality up to tuple order and column order.
    ///
    /// Columns are aligned by attribute id (both relations must have the same
    /// attribute set), then tuples are compared as sorted multisets.
    pub fn bag_eq(&self, other: &Relation) -> bool {
        if self.schema.len() != other.schema.len() || self.len() != other.len() {
            return false;
        }
        let mut my_attrs: Vec<AttrId> = self.schema.attrs().to_vec();
        let mut their_attrs: Vec<AttrId> = other.schema.attrs().to_vec();
        my_attrs.sort_unstable();
        their_attrs.sort_unstable();
        if my_attrs != their_attrs {
            return false;
        }
        let mut a = self.canonical_rows(&my_attrs);
        let mut b = other.canonical_rows(&my_attrs);
        sort_rows(&mut a);
        sort_rows(&mut b);
        a == b
    }

    fn canonical_rows(&self, order: &[AttrId]) -> Vec<Vec<Value>> {
        let positions: Vec<usize> = order.iter().map(|&a| self.schema.pos_of(a)).collect();
        self.tuples
            .iter()
            .map(|t| positions.iter().map(|&p| t[p].clone()).collect())
            .collect()
    }

    /// True when no two tuples agree on all attributes (null-tolerant
    /// comparison, as used for duplicate elimination).
    pub fn is_duplicate_free(&self) -> bool {
        let mut rows = self.canonical_rows(self.schema.attrs());
        sort_rows(&mut rows);
        rows.windows(2).all(|w| w[0] != w[1])
    }
}

fn sort_rows(rows: &mut [Vec<Value>]) {
    rows.sort_unstable_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in self.schema.attrs() {
            write!(f, "{a}\t")?;
        }
        writeln!(f)?;
        for t in &self.tuples {
            for v in t.iter() {
                write!(f, "{v}\t")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    #[test]
    fn bag_eq_ignores_order() {
        let r1 = Relation::from_ints(vec![a(0), a(1)], &[&[Some(1), Some(2)], &[Some(3), None]]);
        let r2 = Relation::from_ints(vec![a(1), a(0)], &[&[None, Some(3)], &[Some(2), Some(1)]]);
        assert!(r1.bag_eq(&r2));
    }

    #[test]
    fn bag_eq_respects_multiplicity() {
        let r1 = Relation::from_ints(vec![a(0)], &[&[Some(1)], &[Some(1)]]);
        let r2 = Relation::from_ints(vec![a(0)], &[&[Some(1)], &[Some(2)]]);
        assert!(!r1.bag_eq(&r2));
        let r3 = Relation::from_ints(vec![a(0)], &[&[Some(1)], &[Some(1)]]);
        assert!(r1.bag_eq(&r3));
    }

    #[test]
    fn bag_eq_different_attr_sets() {
        let r1 = Relation::from_ints(vec![a(0)], &[&[Some(1)]]);
        let r2 = Relation::from_ints(vec![a(1)], &[&[Some(1)]]);
        assert!(!r1.bag_eq(&r2));
    }

    #[test]
    fn duplicate_free() {
        let dup = Relation::from_ints(vec![a(0)], &[&[Some(1)], &[Some(1)]]);
        assert!(!dup.is_duplicate_free());
        let nodup = Relation::from_ints(vec![a(0)], &[&[Some(1)], &[Some(2)]]);
        assert!(nodup.is_duplicate_free());
        // NULLs compare equal for duplicate detection.
        let nulls = Relation::from_ints(vec![a(0)], &[&[None], &[None]]);
        assert!(!nulls.is_duplicate_free());
    }

    #[test]
    fn value_access() {
        let r = Relation::from_ints(vec![a(5), a(6)], &[&[Some(10), Some(20)]]);
        assert_eq!(&Value::Int(20), r.value(0, a(6)));
    }
}
