//! The grouping operator `Γ^θ_{G; F}` (§2.2).

use crate::agg::AggCall;
use crate::expr::CmpOp;
use crate::relation::Relation;
use crate::schema::{AttrId, Schema, Tuple};
use crate::value::Value;
use std::collections::HashMap;

/// Equality grouping `Γ_{G; F}(e)`: the common case, hash based.
///
/// Grouping keys use null-tolerant equality (two NULLs are the same group),
/// matching SQL `GROUP BY`.
pub fn group_by(input: &Relation, group_attrs: &[AttrId], aggs: &[AggCall]) -> Relation {
    let key_pos: Vec<usize> = group_attrs
        .iter()
        .map(|&a| input.schema().pos_of(a))
        .collect();
    let mut groups: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for t in input.tuples() {
        let key: Vec<Value> = key_pos.iter().map(|&p| t[p].clone()).collect();
        match groups.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(t),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(vec![t]);
                order.push(key);
            }
        }
    }
    let out_attrs: Vec<AttrId> = group_attrs
        .iter()
        .copied()
        .chain(aggs.iter().map(|a| a.out))
        .collect();
    let mut out = Relation::new(Schema::new(out_attrs));
    for key in order {
        let members = &groups[&key];
        let mut vals = key;
        for agg in aggs {
            vals.push(agg.eval_group(input.schema(), members));
        }
        out.push(vals.into_boxed_slice());
    }
    out
}

/// Theta grouping `Γ^θ_{G; F}(e)` for an arbitrary comparison operator:
/// one output tuple per distinct `G`-value `y`, aggregating
/// `{z ∈ e | z.G θ y.G}` (§2.2). `θ = Eq` degenerates to [`group_by`]
/// except that here the group membership uses SQL comparison semantics.
pub fn group_by_theta(
    input: &Relation,
    group_attrs: &[AttrId],
    theta: CmpOp,
    aggs: &[AggCall],
) -> Relation {
    if theta == CmpOp::Eq {
        return group_by(input, group_attrs, aggs);
    }
    let key_pos: Vec<usize> = group_attrs
        .iter()
        .map(|&a| input.schema().pos_of(a))
        .collect();
    // Distinct prototypes y ∈ Π^D_G(e), null-tolerant.
    let mut seen: HashMap<Vec<Value>, ()> = HashMap::new();
    let mut prototypes: Vec<Vec<Value>> = Vec::new();
    for t in input.tuples() {
        let key: Vec<Value> = key_pos.iter().map(|&p| t[p].clone()).collect();
        if !seen.contains_key(&key) {
            seen.insert(key.clone(), ());
            prototypes.push(key);
        }
    }
    let out_attrs: Vec<AttrId> = group_attrs
        .iter()
        .copied()
        .chain(aggs.iter().map(|a| a.out))
        .collect();
    let mut out = Relation::new(Schema::new(out_attrs));
    for proto in prototypes {
        let members: Vec<&Tuple> = input
            .tuples()
            .iter()
            .filter(|t| {
                key_pos
                    .iter()
                    .zip(proto.iter())
                    .all(|(&p, y)| theta.test(&t[p], y))
            })
            .collect();
        let mut vals = proto;
        for agg in aggs {
            vals.push(agg.eval_group(input.schema(), &members));
        }
        out.push(vals.into_boxed_slice());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggKind;
    use crate::expr::Expr;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    #[test]
    fn simple_group_by() {
        let r = Relation::from_ints(
            vec![a(0), a(1)],
            &[
                &[Some(1), Some(10)],
                &[Some(1), Some(20)],
                &[Some(2), Some(5)],
            ],
        );
        let res = group_by(
            &r,
            &[a(0)],
            &[
                AggCall::new(a(9), AggKind::Sum, Expr::attr(a(1))),
                AggCall::count_star(a(8)),
            ],
        );
        let expect = Relation::from_ints(
            vec![a(0), a(9), a(8)],
            &[&[Some(1), Some(30), Some(2)], &[Some(2), Some(5), Some(1)]],
        );
        assert!(res.bag_eq(&expect));
    }

    #[test]
    fn nulls_form_one_group() {
        let r = Relation::from_ints(vec![a(0)], &[&[None], &[None], &[Some(1)]]);
        let res = group_by(&r, &[a(0)], &[AggCall::count_star(a(9))]);
        assert_eq!(2, res.len());
        let null_group = res.tuples().iter().find(|t| t[0].is_null()).unwrap();
        assert_eq!(Value::Int(2), null_group[1]);
    }

    #[test]
    fn empty_input_no_groups() {
        let r = Relation::from_ints(vec![a(0)], &[]);
        let res = group_by(&r, &[a(0)], &[AggCall::count_star(a(9))]);
        assert!(res.is_empty());
    }

    #[test]
    fn grouping_on_no_attrs_single_group() {
        // Γ_{∅;F} over a non-empty input yields one global group.
        let r = Relation::from_ints(vec![a(0)], &[&[Some(1)], &[Some(2)]]);
        let res = group_by(
            &r,
            &[],
            &[AggCall::new(a(9), AggKind::Sum, Expr::attr(a(0)))],
        );
        assert_eq!(1, res.len());
        assert_eq!(Value::Int(3), res.tuples()[0][0]);
    }

    #[test]
    fn theta_grouping_le() {
        // For each distinct value y, aggregate all tuples with value <= y.
        let r = Relation::from_ints(vec![a(0)], &[&[Some(1)], &[Some(2)], &[Some(3)]]);
        let res = group_by_theta(&r, &[a(0)], CmpOp::Le, &[AggCall::count_star(a(9))]);
        let expect = Relation::from_ints(
            vec![a(0), a(9)],
            &[
                &[Some(1), Some(3)],
                &[Some(2), Some(2)],
                &[Some(3), Some(1)],
            ],
        );
        // θ is z.G θ y.G with z ranging over tuples: z <= y counts tuples <= y.
        let fixed = Relation::from_ints(
            vec![a(0), a(9)],
            &[
                &[Some(1), Some(1)],
                &[Some(2), Some(2)],
                &[Some(3), Some(3)],
            ],
        );
        // count of {z | z.a <= y.a}: y=1 → 1, y=2 → 2, y=3 → 3.
        assert!(
            res.bag_eq(&fixed),
            "got {res} expected one of {expect}/{fixed}"
        );
    }

    #[test]
    fn group_result_is_duplicate_free_on_keys() {
        let r = Relation::from_ints(
            vec![a(0), a(1)],
            &[
                &[Some(1), Some(1)],
                &[Some(1), Some(2)],
                &[Some(2), Some(1)],
            ],
        );
        let res = group_by(&r, &[a(0)], &[AggCall::count_star(a(9))]);
        let proj = crate::ops::project(&res, &[a(0)], false);
        assert!(proj.is_duplicate_free());
    }
}
