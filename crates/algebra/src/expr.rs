//! Scalar expressions and predicates.

use crate::schema::{AttrId, Schema, Tuple};
use crate::value::Value;
use std::fmt;

/// A scalar expression evaluated against a single tuple.
///
/// The language is intentionally small: it is exactly what the aggregation
/// rewrites of the paper need (`F ⊗ c` introduces products with count
/// columns, `count(e)` becomes `sum(e = NULL ? 0 : c)`, `avg` becomes a
/// division of two partials).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Attr(AttrId),
    Const(Value),
    Mul(Box<Expr>, Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    /// `IfNull(a, then, else)`: evaluates `then` when attribute `a` is NULL,
    /// `else` otherwise (SQL `CASE WHEN a IS NULL THEN .. ELSE .. END`).
    IfNull(AttrId, Box<Expr>, Box<Expr>),
}

// The fluent constructors deliberately mirror the paper's arithmetic; they
// build expression trees rather than evaluating, so the std ops traits
// (which would require ownership juggling at every call site) are not a
// better fit.
#[allow(clippy::should_implement_trait)]
impl Expr {
    pub fn attr(a: AttrId) -> Expr {
        Expr::Attr(a)
    }

    pub fn int(v: i64) -> Expr {
        Expr::Const(Value::Int(v))
    }

    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// Evaluate against a tuple described by `schema`.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Value {
        match self {
            Expr::Attr(a) => tuple[schema.pos_of(*a)].clone(),
            Expr::Const(v) => v.clone(),
            Expr::Mul(l, r) => l.eval(schema, tuple).mul(&r.eval(schema, tuple)),
            Expr::Add(l, r) => l.eval(schema, tuple).add(&r.eval(schema, tuple)),
            Expr::Div(l, r) => l.eval(schema, tuple).div(&r.eval(schema, tuple)),
            Expr::IfNull(a, then, els) => {
                if tuple[schema.pos_of(*a)].is_null() {
                    then.eval(schema, tuple)
                } else {
                    els.eval(schema, tuple)
                }
            }
        }
    }

    /// All attributes referenced by this expression (`F(e)` in the paper).
    pub fn referenced(&self, out: &mut Vec<AttrId>) {
        match self {
            Expr::Attr(a) => out.push(*a),
            Expr::Const(_) => {}
            Expr::Mul(l, r) | Expr::Add(l, r) | Expr::Div(l, r) => {
                l.referenced(out);
                r.referenced(out);
            }
            Expr::IfNull(a, t, e) => {
                out.push(*a);
                t.referenced(out);
                e.referenced(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Attr(a) => write!(f, "{a}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Mul(l, r) => write!(f, "({l}*{r})"),
            Expr::Add(l, r) => write!(f, "({l}+{r})"),
            Expr::Div(l, r) => write!(f, "({l}/{r})"),
            Expr::IfNull(a, t, e) => write!(f, "if_null({a},{t},{e})"),
        }
    }
}

/// Comparison operators for theta predicates (`θ ∈ {=, ≠, ≤, ≥, <, >}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Le,
    Ge,
    Lt,
    Gt,
}

impl CmpOp {
    pub fn test(self, l: &Value, r: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self.and_then_cmp(l, r) {
            None => false,
            Some(ord) => match self {
                CmpOp::Eq => ord == Equal,
                CmpOp::Ne => ord != Equal,
                CmpOp::Le => ord != Greater,
                CmpOp::Ge => ord != Less,
                CmpOp::Lt => ord == Less,
                CmpOp::Gt => ord == Greater,
            },
        }
    }

    fn and_then_cmp(self, l: &Value, r: &Value) -> Option<std::cmp::Ordering> {
        l.sql_cmp(r)
    }

    /// The mirrored operator: `l θ r ⟺ r θ' l`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
        };
        f.write_str(s)
    }
}

/// A conjunctive join predicate over attribute comparisons.
///
/// `left` attributes come from the left input, `right` from the right input.
/// SQL semantics: a comparison involving NULL is unknown, so NULLs never
/// join (the predicates are *null rejecting* on both sides — the side
/// condition required by several reorderings of the conflict detector).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JoinPred {
    pub terms: Vec<(AttrId, CmpOp, AttrId)>,
}

impl JoinPred {
    pub fn eq(l: AttrId, r: AttrId) -> Self {
        JoinPred {
            terms: vec![(l, CmpOp::Eq, r)],
        }
    }

    pub fn and(mut self, l: AttrId, op: CmpOp, r: AttrId) -> Self {
        self.terms.push((l, op, r));
        self
    }

    /// Evaluate on a pair of tuples from the two inputs.
    pub fn matches(
        &self,
        lschema: &Schema,
        ltuple: &Tuple,
        rschema: &Schema,
        rtuple: &Tuple,
    ) -> bool {
        self.terms
            .iter()
            .all(|&(l, op, r)| op.test(&ltuple[lschema.pos_of(l)], &rtuple[rschema.pos_of(r)]))
    }

    /// True when every term is an equality.
    pub fn is_equi(&self) -> bool {
        self.terms.iter().all(|&(_, op, _)| op == CmpOp::Eq)
    }

    /// Attributes referenced from the left / right input.
    pub fn left_attrs(&self) -> Vec<AttrId> {
        self.terms.iter().map(|&(l, _, _)| l).collect()
    }

    pub fn right_attrs(&self) -> Vec<AttrId> {
        self.terms.iter().map(|&(_, _, r)| r).collect()
    }

    /// All referenced attributes (`F(q)`).
    pub fn all_attrs(&self) -> Vec<AttrId> {
        self.terms.iter().flat_map(|&(l, _, r)| [l, r]).collect()
    }
}

impl fmt::Display for JoinPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (l, op, r)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{l}{op}{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    #[test]
    fn eval_arithmetic() {
        let s = Schema::new(vec![a(0), a(1)]);
        let t: Tuple = vec![Value::Int(3), Value::Int(4)].into_boxed_slice();
        let e = Expr::attr(a(0)).mul(Expr::attr(a(1))).add(Expr::int(1));
        assert_eq!(Value::Int(13), e.eval(&s, &t));
    }

    #[test]
    fn eval_if_null() {
        let s = Schema::new(vec![a(0), a(1)]);
        let t: Tuple = vec![Value::Null, Value::Int(7)].into_boxed_slice();
        let e = Expr::IfNull(a(0), Box::new(Expr::int(0)), Box::new(Expr::attr(a(1))));
        assert_eq!(Value::Int(0), e.eval(&s, &t));
        let t2: Tuple = vec![Value::Int(1), Value::Int(7)].into_boxed_slice();
        assert_eq!(Value::Int(7), e.eval(&s, &t2));
    }

    #[test]
    fn referenced_attrs() {
        let e = Expr::attr(a(2)).mul(Expr::attr(a(5)));
        let mut out = vec![];
        e.referenced(&mut out);
        assert_eq!(vec![a(2), a(5)], out);
    }

    #[test]
    fn cmp_null_is_unknown() {
        assert!(!CmpOp::Eq.test(&Value::Null, &Value::Null));
        assert!(!CmpOp::Ne.test(&Value::Null, &Value::Int(1)));
        assert!(CmpOp::Lt.test(&Value::Int(1), &Value::Int(2)));
        assert!(CmpOp::Ge.test(&Value::Int(2), &Value::Int(2)));
    }

    #[test]
    fn join_pred_matches() {
        let ls = Schema::new(vec![a(0)]);
        let rs = Schema::new(vec![a(1)]);
        let p = JoinPred::eq(a(0), a(1));
        let lt: Tuple = vec![Value::Int(5)].into_boxed_slice();
        let rt: Tuple = vec![Value::Int(5)].into_boxed_slice();
        assert!(p.matches(&ls, &lt, &rs, &rt));
        let rt2: Tuple = vec![Value::Null].into_boxed_slice();
        assert!(!p.matches(&ls, &lt, &rs, &rt2));
    }

    #[test]
    fn join_pred_attr_sides() {
        let p = JoinPred::eq(a(0), a(1)).and(a(2), CmpOp::Lt, a(3));
        assert_eq!(vec![a(0), a(2)], p.left_attrs());
        assert_eq!(vec![a(1), a(3)], p.right_attrs());
        assert!(!p.is_equi());
    }
}
