//! Attribute identities, schemas and tuples.

use crate::value::Value;
use std::fmt;

/// Globally unique attribute identifier.
///
/// Attribute names live in the catalog; the algebra layer only needs
/// identity. New attributes introduced by rewrites (partial-aggregate and
/// count columns) are allocated from an [`AttrGen`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Monotonic allocator for fresh [`AttrId`]s.
#[derive(Debug, Clone)]
pub struct AttrGen {
    next: u32,
}

impl AttrGen {
    /// Start allocating at `first` (must be above all catalog attributes).
    pub fn new(first: u32) -> Self {
        AttrGen { next: first }
    }

    pub fn fresh(&mut self) -> AttrId {
        let id = AttrId(self.next);
        self.next += 1;
        id
    }

    /// The id the next [`AttrGen::fresh`] call will return, without
    /// allocating it. Lets a caller persist the cursor (e.g. a catalog
    /// recording how far instantiation advanced).
    pub fn peek(&self) -> u32 {
        self.next
    }
}

/// An ordered list of attributes describing the columns of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    attrs: Vec<AttrId>,
}

impl Schema {
    pub fn new(attrs: Vec<AttrId>) -> Self {
        debug_assert!(
            {
                let mut s = attrs.clone();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate attribute in schema: {attrs:?}"
        );
        Schema { attrs }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    #[inline]
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Column position of `attr`, if present.
    #[inline]
    pub fn pos(&self, attr: AttrId) -> Option<usize> {
        self.attrs.iter().position(|&a| a == attr)
    }

    /// Column position of `attr`; panics if absent (programming error).
    #[inline]
    #[track_caller]
    pub fn pos_of(&self, attr: AttrId) -> usize {
        match self.pos(attr) {
            Some(p) => p,
            None => panic!("attribute {attr} not in schema {:?}", self.attrs),
        }
    }

    pub fn contains(&self, attr: AttrId) -> bool {
        self.pos(attr).is_some()
    }

    /// Schema of the concatenation `self ◦ other`.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut attrs = Vec::with_capacity(self.len() + other.len());
        attrs.extend_from_slice(&self.attrs);
        attrs.extend_from_slice(&other.attrs);
        Schema::new(attrs)
    }

    /// Schema extended by new attributes.
    pub fn extend(&self, extra: &[AttrId]) -> Schema {
        let mut attrs = Vec::with_capacity(self.len() + extra.len());
        attrs.extend_from_slice(&self.attrs);
        attrs.extend_from_slice(extra);
        Schema::new(attrs)
    }
}

impl FromIterator<AttrId> for Schema {
    fn from_iter<T: IntoIterator<Item = AttrId>>(iter: T) -> Self {
        Schema::new(iter.into_iter().collect())
    }
}

/// A tuple: values positionally aligned with a [`Schema`].
pub type Tuple = Box<[Value]>;

/// Concatenate two tuples (`r ◦ s` in the paper's notation).
pub fn concat_tuples(left: &[Value], right: &[Value]) -> Tuple {
    let mut out = Vec::with_capacity(left.len() + right.len());
    out.extend_from_slice(left);
    out.extend_from_slice(right);
    out.into_boxed_slice()
}

/// The all-NULL tuple `⊥_A` for a schema of `n` attributes.
pub fn null_tuple(n: usize) -> Tuple {
    vec![Value::Null; n].into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_positions() {
        let s = Schema::new(vec![AttrId(3), AttrId(7), AttrId(1)]);
        assert_eq!(Some(1), s.pos(AttrId(7)));
        assert_eq!(None, s.pos(AttrId(2)));
        assert_eq!(2, s.pos_of(AttrId(1)));
        assert!(s.contains(AttrId(3)));
        assert_eq!(3, s.len());
    }

    #[test]
    fn schema_concat() {
        let a = Schema::new(vec![AttrId(0), AttrId(1)]);
        let b = Schema::new(vec![AttrId(2)]);
        assert_eq!(
            Schema::new(vec![AttrId(0), AttrId(1), AttrId(2)]),
            a.concat(&b)
        );
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn pos_of_panics_on_missing() {
        Schema::new(vec![AttrId(0)]).pos_of(AttrId(9));
    }

    #[test]
    fn fresh_attrs_are_distinct() {
        let mut g = AttrGen::new(100);
        let a = g.fresh();
        let b = g.fresh();
        assert_ne!(a, b);
        assert_eq!(AttrId(100), a);
    }

    #[test]
    fn tuple_helpers() {
        let t = concat_tuples(&[Value::Int(1)], &[Value::Int(2), Value::Null]);
        assert_eq!(3, t.len());
        let n = null_tuple(2);
        assert!(n.iter().all(Value::is_null));
    }
}
