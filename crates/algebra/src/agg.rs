//! Aggregate functions and their algebraic properties (§2.1 of the paper):
//! splittability, decomposability, duplicate sensitivity, and the `F ⊗ c`
//! duplicate adjustment.

use crate::expr::Expr;
use crate::schema::{AttrId, Schema, Tuple};
use crate::value::Value;
use std::collections::HashSet;
use std::fmt;

/// The aggregate functions supported by the system (SQL standard set plus
/// the `distinct` variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    CountStar,
    Count,
    Sum,
    Min,
    Max,
    Avg,
    CountDistinct,
    SumDistinct,
    AvgDistinct,
}

impl AggKind {
    /// Duplicate agnostic (Yan & Larson's *Class D*): the result does not
    /// depend on duplicates in the argument.
    pub fn is_duplicate_agnostic(self) -> bool {
        matches!(
            self,
            AggKind::Min
                | AggKind::Max
                | AggKind::CountDistinct
                | AggKind::SumDistinct
                | AggKind::AvgDistinct
        )
    }

    /// Duplicate sensitive (*Class C*).
    pub fn is_duplicate_sensitive(self) -> bool {
        !self.is_duplicate_agnostic()
    }

    /// Decomposable (Def. 2): `agg(X ∪ Y) = agg2(agg1(X), agg1(Y))`.
    ///
    /// `avg` is decomposable via `sum`/`countNN` — the query layer
    /// normalizes it away before plan generation, so it is reported as
    /// non-decomposable here to keep the optimizer honest.
    pub fn is_decomposable(self) -> bool {
        matches!(
            self,
            AggKind::CountStar | AggKind::Count | AggKind::Sum | AggKind::Min | AggKind::Max
        )
    }

    /// The inner function `agg1` of the decomposition.
    pub fn partial(self) -> AggKind {
        debug_assert!(self.is_decomposable());
        self
    }

    /// The outer (combining) function `agg2` of the decomposition:
    /// `min → min`, `max → max`, `sum/count/count(*) → sum`.
    pub fn combine(self) -> AggKind {
        debug_assert!(self.is_decomposable());
        match self {
            AggKind::Min => AggKind::Min,
            AggKind::Max => AggKind::Max,
            _ => AggKind::Sum,
        }
    }
}

impl fmt::Display for AggKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggKind::CountStar => "count(*)",
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Min => "min",
            AggKind::Max => "max",
            AggKind::Avg => "avg",
            AggKind::CountDistinct => "count(distinct)",
            AggKind::SumDistinct => "sum(distinct)",
            AggKind::AvgDistinct => "avg(distinct)",
        };
        f.write_str(s)
    }
}

/// One entry of an aggregation vector: `out : kind(arg)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub out: AttrId,
    pub kind: AggKind,
    /// `None` only for `count(*)`.
    pub arg: Option<Expr>,
}

impl AggCall {
    pub fn count_star(out: AttrId) -> Self {
        AggCall {
            out,
            kind: AggKind::CountStar,
            arg: None,
        }
    }

    pub fn new(out: AttrId, kind: AggKind, arg: Expr) -> Self {
        debug_assert!(kind != AggKind::CountStar);
        AggCall {
            out,
            kind,
            arg: Some(arg),
        }
    }

    /// Attributes referenced by the argument (`F(F)` for splittability).
    pub fn referenced(&self) -> Vec<AttrId> {
        let mut out = Vec::new();
        if let Some(arg) = &self.arg {
            arg.referenced(&mut out);
        }
        out
    }

    /// Evaluate over a group of tuples, with SQL NULL semantics:
    /// `sum`/`min`/`max` ignore NULLs and yield NULL on empty input,
    /// `count` counts non-NULL values, `count(*)` counts tuples.
    pub fn eval_group(&self, schema: &Schema, group: &[&Tuple]) -> Value {
        match self.kind {
            AggKind::CountStar => Value::Int(group.len() as i64),
            AggKind::Count => {
                let arg = self.arg.as_ref().expect("count needs an argument");
                let n = group
                    .iter()
                    .filter(|t| !arg.eval(schema, t).is_null())
                    .count();
                Value::Int(n as i64)
            }
            AggKind::Sum => fold_nonnull(self.arg(), schema, group, |acc, v| acc.add(&v)),
            AggKind::Min => fold_nonnull(self.arg(), schema, group, |acc, v| {
                if v.total_cmp(&acc).is_lt() {
                    v
                } else {
                    acc
                }
            }),
            AggKind::Max => fold_nonnull(self.arg(), schema, group, |acc, v| {
                if v.total_cmp(&acc).is_gt() {
                    v
                } else {
                    acc
                }
            }),
            AggKind::Avg => {
                let arg = self.arg();
                let mut sum = Value::Null;
                let mut n = 0i64;
                for t in group {
                    let v = arg.eval(schema, t);
                    if !v.is_null() {
                        sum = if sum.is_null() { v } else { sum.add(&v) };
                        n += 1;
                    }
                }
                if n == 0 {
                    Value::Null
                } else {
                    sum.div(&Value::Int(n))
                }
            }
            AggKind::CountDistinct => {
                Value::Int(distinct_values(self.arg(), schema, group).len() as i64)
            }
            AggKind::SumDistinct => {
                let vals = distinct_values(self.arg(), schema, group);
                vals.into_iter().fold(
                    Value::Null,
                    |acc, v| if acc.is_null() { v } else { acc.add(&v) },
                )
            }
            AggKind::AvgDistinct => {
                let vals = distinct_values(self.arg(), schema, group);
                if vals.is_empty() {
                    return Value::Null;
                }
                let n = vals.len() as i64;
                let sum =
                    vals.into_iter().fold(
                        Value::Null,
                        |acc, v| if acc.is_null() { v } else { acc.add(&v) },
                    );
                sum.div(&Value::Int(n))
            }
        }
    }

    /// The value of this aggregate applied to the single null tuple
    /// `{⊥}` — `F¹({⊥})` in the paper, used as the default vector of
    /// generalized outerjoins (Eqvs. 11/12, 14/15, …).
    ///
    /// `count(*)({⊥}) = 1`, `count(a)({⊥}) = 0`, everything else NULL.
    pub fn eval_null_tuple(&self) -> Value {
        match self.kind {
            AggKind::CountStar => Value::Int(1),
            AggKind::Count | AggKind::CountDistinct => Value::Int(0),
            _ => Value::Null,
        }
    }

    fn arg(&self) -> &Expr {
        self.arg.as_ref().expect("aggregate needs an argument")
    }
}

fn fold_nonnull(
    arg: &Expr,
    schema: &Schema,
    group: &[&Tuple],
    f: impl Fn(Value, Value) -> Value,
) -> Value {
    let mut acc = Value::Null;
    for t in group {
        let v = arg.eval(schema, t);
        if v.is_null() {
            continue;
        }
        acc = if acc.is_null() { v } else { f(acc, v) };
    }
    acc
}

fn distinct_values(arg: &Expr, schema: &Schema, group: &[&Tuple]) -> Vec<Value> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for t in group {
        let v = arg.eval(schema, t);
        if !v.is_null() && seen.insert(v.clone()) {
            out.push(v);
        }
    }
    out
}

/// An aggregation vector `F = (b1 : f1, …, bk : fk)`.
pub type AggVec = Vec<AggCall>;

/// Splittability check (Def. 1): every aggregate references attributes of
/// only one side. `count(*)` references nothing and splits either way
/// (special case *S1*).
pub fn is_splittable(aggs: &[AggCall], left: &Schema, right: &Schema) -> bool {
    aggs.iter().all(|a| {
        let refs = a.referenced();
        refs.iter().all(|&r| left.contains(r)) || refs.iter().all(|&r| right.contains(r))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn group_of(rel: &Relation) -> Vec<&Tuple> {
        rel.tuples().iter().collect()
    }

    #[test]
    fn properties() {
        assert!(AggKind::Min.is_duplicate_agnostic());
        assert!(AggKind::Sum.is_duplicate_sensitive());
        assert!(AggKind::CountStar.is_decomposable());
        assert!(!AggKind::SumDistinct.is_decomposable());
        assert_eq!(AggKind::Sum, AggKind::Count.combine());
        assert_eq!(AggKind::Min, AggKind::Min.combine());
    }

    #[test]
    fn sum_ignores_nulls() {
        let r = Relation::from_ints(vec![a(0)], &[&[Some(1)], &[None], &[Some(4)]]);
        let call = AggCall::new(a(9), AggKind::Sum, Expr::attr(a(0)));
        assert_eq!(Value::Int(5), call.eval_group(r.schema(), &group_of(&r)));
    }

    #[test]
    fn sum_of_all_nulls_is_null() {
        let r = Relation::from_ints(vec![a(0)], &[&[None], &[None]]);
        let call = AggCall::new(a(9), AggKind::Sum, Expr::attr(a(0)));
        assert!(call.eval_group(r.schema(), &group_of(&r)).is_null());
    }

    #[test]
    fn counts() {
        let r = Relation::from_ints(vec![a(0)], &[&[Some(1)], &[None], &[Some(1)]]);
        let star = AggCall::count_star(a(9));
        let cnt = AggCall::new(a(9), AggKind::Count, Expr::attr(a(0)));
        let cd = AggCall::new(a(9), AggKind::CountDistinct, Expr::attr(a(0)));
        let g = group_of(&r);
        assert_eq!(Value::Int(3), star.eval_group(r.schema(), &g));
        assert_eq!(Value::Int(2), cnt.eval_group(r.schema(), &g));
        assert_eq!(Value::Int(1), cd.eval_group(r.schema(), &g));
    }

    #[test]
    fn min_max() {
        let r = Relation::from_ints(vec![a(0)], &[&[Some(5)], &[None], &[Some(2)]]);
        let g = group_of(&r);
        let mn = AggCall::new(a(9), AggKind::Min, Expr::attr(a(0)));
        let mx = AggCall::new(a(9), AggKind::Max, Expr::attr(a(0)));
        assert_eq!(Value::Int(2), mn.eval_group(r.schema(), &g));
        assert_eq!(Value::Int(5), mx.eval_group(r.schema(), &g));
    }

    #[test]
    fn avg_and_distinct() {
        let r = Relation::from_ints(vec![a(0)], &[&[Some(1)], &[Some(2)], &[Some(2)], &[None]]);
        let g = group_of(&r);
        let avg = AggCall::new(a(9), AggKind::Avg, Expr::attr(a(0)));
        assert_eq!(
            Value::Int(1)
                .add(&Value::Int(2))
                .add(&Value::Int(2))
                .div(&Value::Int(3)),
            avg.eval_group(r.schema(), &g)
        );
        let sd = AggCall::new(a(9), AggKind::SumDistinct, Expr::attr(a(0)));
        assert_eq!(Value::Int(3), sd.eval_group(r.schema(), &g));
        let ad = AggCall::new(a(9), AggKind::AvgDistinct, Expr::attr(a(0)));
        assert_eq!(
            Value::Int(3).div(&Value::Int(2)),
            ad.eval_group(r.schema(), &g)
        );
    }

    #[test]
    fn null_tuple_defaults() {
        assert_eq!(Value::Int(1), AggCall::count_star(a(9)).eval_null_tuple());
        assert_eq!(
            Value::Int(0),
            AggCall::new(a(9), AggKind::Count, Expr::attr(a(0))).eval_null_tuple()
        );
        assert!(AggCall::new(a(9), AggKind::Sum, Expr::attr(a(0)))
            .eval_null_tuple()
            .is_null());
    }

    #[test]
    fn splittability() {
        let left = Schema::new(vec![a(0)]);
        let right = Schema::new(vec![a(1)]);
        let ok = vec![
            AggCall::new(a(8), AggKind::Sum, Expr::attr(a(0))),
            AggCall::count_star(a(9)),
        ];
        assert!(is_splittable(&ok, &left, &right));
        let bad = vec![AggCall::new(
            a(8),
            AggKind::Sum,
            Expr::attr(a(0)).mul(Expr::attr(a(1))),
        )];
        assert!(!is_splittable(&bad, &left, &right));
    }
}
