//! # dpnext-algebra
//!
//! Bag-semantics relational algebra underpinning the `dpnext` reproduction
//! of Eich & Moerkotte, *"Dynamic Programming: The Next Step"* (ICDE 2015).
//!
//! The crate provides:
//!
//! * SQL-style [`Value`]s with three-valued NULL semantics,
//! * [`Relation`]s (bags of tuples over attribute [`Schema`]s),
//! * scalar [`Expr`]essions and conjunctive [`JoinPred`]icates,
//! * aggregate functions ([`agg`]) with the properties the paper builds on —
//!   splittability, decomposability and duplicate sensitivity (§2.1),
//! * all algebraic operators of §2.2 ([`ops`], [`grouping`]), including the
//!   **left/full outerjoins with default vectors** and the **groupjoin**,
//! * an interpreter for executable operator trees ([`eval`]).
//!
//! Everything is deterministic and pure; the executor doubles as the
//! correctness oracle for the optimizer's plan transformations.

pub mod agg;
pub mod eval;
pub mod expr;
pub mod grouping;
pub mod ops;
pub mod relation;
pub mod schema;
pub mod value;

pub use agg::{AggCall, AggKind, AggVec};
pub use eval::{AlgExpr, Database};
pub use expr::{CmpOp, Expr, JoinPred};
pub use grouping::{group_by, group_by_theta};
pub use relation::Relation;
pub use schema::{AttrGen, AttrId, Schema, Tuple};
pub use value::Value;
