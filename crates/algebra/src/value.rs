//! SQL-style values with three-valued NULL semantics.

use std::cmp::Ordering;
use std::fmt;

/// A single attribute value.
///
/// `Null` models the SQL NULL. Comparison semantics are context dependent:
/// join predicates use [`Value::sql_eq`] (NULL never matches), while grouping
/// and duplicate elimination use the null-tolerant [`Eq`] implementation
/// ("two attributes are equal if they agree in value or they are both null",
/// §2.3 of the paper, following Paulley).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    Null,
    Int(i64),
    /// Fixed-point decimal with 4 fractional digits, stored scaled by 10^4.
    /// Used for `avg` results and TPC-H money columns; avoids `f64` hashing
    /// pitfalls while still supporting division.
    Dec(i64),
    Str(Box<str>),
}

impl Value {
    /// SQL equality: `NULL = x` is unknown (treated as false in predicates).
    #[inline]
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self == other
    }

    /// SQL comparison for theta predicates; `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Total order used for canonicalization (sorting relations in tests).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Dec(a), Dec(b)) => a.cmp(b),
            (Int(a), Dec(b)) => (a.saturating_mul(DEC_SCALE)).cmp(b),
            (Dec(a), Int(b)) => a.cmp(&b.saturating_mul(DEC_SCALE)),
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
        }
    }

    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric value as a scaled decimal, if numeric.
    pub fn as_dec(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v.saturating_mul(DEC_SCALE)),
            Value::Dec(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer value, if an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// NULL-propagating multiplication (used by `F ⊗ c` rewrites).
    pub fn mul(&self, other: &Value) -> Value {
        match (self.as_dec_kind(), other.as_dec_kind()) {
            (Some((a, ad)), Some((b, bd))) => match (ad, bd) {
                (false, false) => Value::Int(a.saturating_mul(b)),
                (true, false) | (false, true) => {
                    Value::Dec(scaled(a, ad).saturating_mul(scaled(b, bd)) / DEC_SCALE)
                }
                (true, true) => Value::Dec(a.saturating_mul(b) / DEC_SCALE),
            },
            _ => Value::Null,
        }
    }

    /// NULL-propagating addition.
    pub fn add(&self, other: &Value) -> Value {
        match (self.as_dec_kind(), other.as_dec_kind()) {
            (Some((a, false)), Some((b, false))) => Value::Int(a.saturating_add(b)),
            (Some((a, ad)), Some((b, bd))) => {
                Value::Dec(scaled(a, ad).saturating_add(scaled(b, bd)))
            }
            _ => Value::Null,
        }
    }

    /// NULL-propagating division producing a decimal; division by zero is NULL.
    pub fn div(&self, other: &Value) -> Value {
        match (self.as_dec(), other.as_dec()) {
            (Some(_), Some(0)) => Value::Null,
            (Some(a), Some(b)) => Value::Dec((a.saturating_mul(DEC_SCALE)) / b),
            _ => Value::Null,
        }
    }

    fn as_dec_kind(&self) -> Option<(i64, bool)> {
        match self {
            Value::Int(v) => Some((*v, false)),
            Value::Dec(v) => Some((*v, true)),
            _ => None,
        }
    }

    pub fn str(s: impl Into<Box<str>>) -> Value {
        Value::Str(s.into())
    }
}

/// Scaling factor for [`Value::Dec`].
pub const DEC_SCALE: i64 = 10_000;

#[inline]
fn scaled(v: i64, already: bool) -> i64 {
    if already {
        v
    } else {
        v.saturating_mul(DEC_SCALE)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "-"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Dec(v) => write!(f, "{}.{:04}", v / DEC_SCALE, (v % DEC_SCALE).abs()),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_eq_rejects_null() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(1)));
        assert!(Value::Int(3).sql_eq(&Value::Int(3)));
        assert!(!Value::Int(3).sql_eq(&Value::Int(4)));
    }

    #[test]
    fn grouping_eq_accepts_null() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn arithmetic_propagates_null() {
        assert!(Value::Null.mul(&Value::Int(2)).is_null());
        assert!(Value::Int(2).add(&Value::Null).is_null());
        assert_eq!(Value::Int(6), Value::Int(2).mul(&Value::Int(3)));
        assert_eq!(Value::Int(5), Value::Int(2).add(&Value::Int(3)));
    }

    #[test]
    fn decimal_division() {
        let v = Value::Int(7).div(&Value::Int(2));
        assert_eq!(Value::Dec(35_000), v);
        assert!(Value::Int(1).div(&Value::Int(0)).is_null());
    }

    #[test]
    fn mixed_numeric_compare() {
        assert_eq!(
            Ordering::Equal,
            Value::Int(2).total_cmp(&Value::Dec(20_000))
        );
        assert_eq!(Ordering::Less, Value::Int(1).total_cmp(&Value::Dec(20_000)));
    }

    #[test]
    fn display() {
        assert_eq!("-", Value::Null.to_string());
        assert_eq!("3.5000", Value::Dec(35_000).to_string());
        assert_eq!("abc", Value::str("abc").to_string());
    }
}
