//! The algebraic operators of §2.2 (Fig. 1): cross product, inner join,
//! left semi/antijoin, left/full outerjoin **with default vectors**,
//! groupjoin, selection, projection, map and union.
//!
//! Equi-join predicates take a hash-based fast path; arbitrary theta
//! predicates fall back to nested loops. All operators implement bag
//! semantics.

use crate::expr::{Expr, JoinPred};
use crate::relation::Relation;
use crate::schema::{concat_tuples, null_tuple, AttrId, Schema, Tuple};
use crate::value::Value;
use std::collections::HashMap;

/// Cross product `e1 × e2`.
pub fn cross(l: &Relation, r: &Relation) -> Relation {
    let schema = l.schema().concat(r.schema());
    let mut out = Relation::new(schema);
    for lt in l.tuples() {
        for rt in r.tuples() {
            out.push(concat_tuples(lt, rt));
        }
    }
    out
}

/// Key of an equi-join hash table; NULL keys are excluded by callers
/// (join predicates are null rejecting).
type HashKey = Vec<Value>;

fn equi_key(schema: &Schema, tuple: &Tuple, attrs: &[AttrId]) -> Option<HashKey> {
    let mut key = Vec::with_capacity(attrs.len());
    for &a in attrs {
        let v = &tuple[schema.pos_of(a)];
        if v.is_null() {
            return None;
        }
        key.push(v.clone());
    }
    Some(key)
}

fn build_hash<'a>(rel: &'a Relation, attrs: &[AttrId]) -> HashMap<HashKey, Vec<&'a Tuple>> {
    let mut table: HashMap<HashKey, Vec<&Tuple>> = HashMap::with_capacity(rel.len());
    for t in rel.tuples() {
        if let Some(k) = equi_key(rel.schema(), t, attrs) {
            table.entry(k).or_default().push(t);
        }
    }
    table
}

/// Inner join `e1 ⋈_p e2`.
pub fn inner_join(l: &Relation, r: &Relation, pred: &JoinPred) -> Relation {
    let schema = l.schema().concat(r.schema());
    let mut out = Relation::new(schema);
    if pred.is_equi() && !pred.terms.is_empty() {
        let rattrs = pred.right_attrs();
        let lattrs = pred.left_attrs();
        let table = build_hash(r, &rattrs);
        for lt in l.tuples() {
            if let Some(k) = equi_key(l.schema(), lt, &lattrs) {
                if let Some(matches) = table.get(&k) {
                    for rt in matches {
                        out.push(concat_tuples(lt, rt));
                    }
                }
            }
        }
    } else {
        for lt in l.tuples() {
            for rt in r.tuples() {
                if pred.matches(l.schema(), lt, r.schema(), rt) {
                    out.push(concat_tuples(lt, rt));
                }
            }
        }
    }
    out
}

fn has_partner(l: &Relation, lt: &Tuple, r: &Relation, pred: &JoinPred) -> bool {
    r.tuples()
        .iter()
        .any(|rt| pred.matches(l.schema(), lt, r.schema(), rt))
}

/// Left semijoin `e1 ⋉_p e2`.
pub fn semi_join(l: &Relation, r: &Relation, pred: &JoinPred) -> Relation {
    filter_by_partner(l, r, pred, true)
}

/// Left antijoin `e1 ▷_p e2`.
pub fn anti_join(l: &Relation, r: &Relation, pred: &JoinPred) -> Relation {
    filter_by_partner(l, r, pred, false)
}

fn filter_by_partner(l: &Relation, r: &Relation, pred: &JoinPred, keep_matched: bool) -> Relation {
    let mut out = Relation::new(l.schema().clone());
    if pred.is_equi() && !pred.terms.is_empty() {
        let table = build_hash(r, &pred.right_attrs());
        let lattrs = pred.left_attrs();
        for lt in l.tuples() {
            let matched = equi_key(l.schema(), lt, &lattrs).is_some_and(|k| table.contains_key(&k));
            if matched == keep_matched {
                out.push(lt.clone());
            }
        }
    } else {
        for lt in l.tuples() {
            if has_partner(l, lt, r, pred) == keep_matched {
                out.push(lt.clone());
            }
        }
    }
    out
}

/// A default vector `D = (d1 : c1, …, dk : ck)` for generalized outerjoins
/// (Eqvs. 7/8): instead of padding with NULL, the listed attributes receive
/// the given constants.
pub type Defaults = Vec<(AttrId, Value)>;

fn padded_tuple(schema: &Schema, defaults: &Defaults) -> Tuple {
    let mut t = null_tuple(schema.len());
    for (attr, val) in defaults {
        t[schema.pos_of(*attr)] = val.clone();
    }
    t
}

/// Left outerjoin with defaults `e1 ⟕_p^{D2} e2` (Eqv. 7).
///
/// Unmatched `e1` tuples are padded with NULLs on `A(e2)` except for the
/// attributes in `d2`, which receive their default values. Pass an empty
/// vector for the plain left outerjoin (Eqv. 5).
pub fn left_outer_join(l: &Relation, r: &Relation, pred: &JoinPred, d2: &Defaults) -> Relation {
    let schema = l.schema().concat(r.schema());
    let pad = padded_tuple(r.schema(), d2);
    let mut out = Relation::new(schema);
    if pred.is_equi() && !pred.terms.is_empty() {
        let table = build_hash(r, &pred.right_attrs());
        let lattrs = pred.left_attrs();
        for lt in l.tuples() {
            let matches = equi_key(l.schema(), lt, &lattrs).and_then(|k| table.get(&k));
            match matches {
                Some(ms) => {
                    for rt in ms {
                        out.push(concat_tuples(lt, rt));
                    }
                }
                None => out.push(concat_tuples(lt, &pad)),
            }
        }
    } else {
        for lt in l.tuples() {
            let mut matched = false;
            for rt in r.tuples() {
                if pred.matches(l.schema(), lt, r.schema(), rt) {
                    out.push(concat_tuples(lt, rt));
                    matched = true;
                }
            }
            if !matched {
                out.push(concat_tuples(lt, &pad));
            }
        }
    }
    out
}

/// Full outerjoin with defaults `e1 ⟗_p^{D1;D2} e2` (Eqv. 8).
///
/// `d2` pads unmatched `e1` tuples (on `A(e2)`), `d1` pads unmatched `e2`
/// tuples (on `A(e1)`). Empty vectors yield the plain full outerjoin.
pub fn full_outer_join(
    l: &Relation,
    r: &Relation,
    pred: &JoinPred,
    d1: &Defaults,
    d2: &Defaults,
) -> Relation {
    let schema = l.schema().concat(r.schema());
    let pad_r = padded_tuple(r.schema(), d2);
    let pad_l = padded_tuple(l.schema(), d1);
    let mut out = Relation::new(schema);
    let mut r_matched = vec![false; r.len()];
    for lt in l.tuples() {
        let mut matched = false;
        for (ri, rt) in r.tuples().iter().enumerate() {
            if pred.matches(l.schema(), lt, r.schema(), rt) {
                out.push(concat_tuples(lt, rt));
                matched = true;
                r_matched[ri] = true;
            }
        }
        if !matched {
            out.push(concat_tuples(lt, &pad_r));
        }
    }
    for (ri, rt) in r.tuples().iter().enumerate() {
        if !r_matched[ri] {
            out.push(concat_tuples(&pad_l, rt));
        }
    }
    out
}

/// Left groupjoin `e1 ⋲_{p; F} e2` (Eqv. 9, von Bültzingsloewen).
///
/// Every `e1` tuple is extended by the aggregates of its join partners in
/// `e2`; tuples without partners aggregate the empty bag (SQL semantics:
/// `count` yields 0, `sum`/`min`/`max` yield NULL).
pub fn groupjoin(
    l: &Relation,
    r: &Relation,
    pred: &JoinPred,
    aggs: &[crate::agg::AggCall],
) -> Relation {
    groupjoin_with_defaults(l, r, pred, aggs, &Vec::new())
}

/// Generalized groupjoin: aggregate columns of partner-less tuples take
/// the values from `empty_defaults` instead of `F(∅)`.
///
/// This is the `count(*)(∅) := 1` convention of §A.5.1 (Eqvs. 98–100),
/// needed so that a `⟕` with default vectors can be fused into a
/// groupjoin without changing semantics.
pub fn groupjoin_with_defaults(
    l: &Relation,
    r: &Relation,
    pred: &JoinPred,
    aggs: &[crate::agg::AggCall],
    empty_defaults: &Defaults,
) -> Relation {
    let out_attrs: Vec<AttrId> = aggs.iter().map(|a| a.out).collect();
    let schema = l.schema().extend(&out_attrs);
    let mut out = Relation::new(schema);
    let use_hash = pred.is_equi() && !pred.terms.is_empty();
    let table = if use_hash {
        Some(build_hash(r, &pred.right_attrs()))
    } else {
        None
    };
    let lattrs = pred.left_attrs();
    let empty: Vec<&Tuple> = Vec::new();
    for lt in l.tuples() {
        let partners: Vec<&Tuple> = if let Some(table) = &table {
            equi_key(l.schema(), lt, &lattrs)
                .and_then(|k| table.get(&k))
                .map_or_else(|| empty.clone(), |v| v.clone())
        } else {
            r.tuples()
                .iter()
                .filter(|rt| pred.matches(l.schema(), lt, r.schema(), rt))
                .collect()
        };
        let mut vals: Vec<Value> = lt.to_vec();
        for agg in aggs {
            if partners.is_empty() {
                if let Some((_, v)) = empty_defaults.iter().find(|(a, _)| *a == agg.out) {
                    vals.push(v.clone());
                    continue;
                }
            }
            vals.push(agg.eval_group(r.schema(), &partners));
        }
        out.push(vals.into_boxed_slice());
    }
    out
}

/// Selection `σ_p(e)` with an arbitrary boolean given as a comparison of an
/// expression against a constant.
pub fn select(input: &Relation, pred: impl Fn(&Schema, &Tuple) -> bool) -> Relation {
    let mut out = Relation::new(input.schema().clone());
    for t in input.tuples() {
        if pred(input.schema(), t) {
            out.push(t.clone());
        }
    }
    out
}

/// Projection `Π_A(e)` (duplicate preserving) or `Π^D_A(e)` (duplicate
/// removing, null-tolerant equality).
pub fn project(input: &Relation, attrs: &[AttrId], dedup: bool) -> Relation {
    let positions: Vec<usize> = attrs.iter().map(|&a| input.schema().pos_of(a)).collect();
    let schema = Schema::new(attrs.to_vec());
    let mut out = Relation::new(schema);
    let mut seen: HashMap<Vec<Value>, ()> = HashMap::new();
    for t in input.tuples() {
        let vals: Vec<Value> = positions.iter().map(|&p| t[p].clone()).collect();
        if dedup {
            if seen.contains_key(&vals) {
                continue;
            }
            seen.insert(vals.clone(), ());
        }
        out.push(vals.into_boxed_slice());
    }
    out
}

/// Map `χ_{a1:e1,…}(e)`: extends every tuple by computed attributes.
pub fn map(input: &Relation, exts: &[(AttrId, Expr)]) -> Relation {
    let new_attrs: Vec<AttrId> = exts.iter().map(|(a, _)| *a).collect();
    let schema = input.schema().extend(&new_attrs);
    let mut out = Relation::new(schema);
    for t in input.tuples() {
        let mut vals: Vec<Value> = t.to_vec();
        for (_, e) in exts {
            vals.push(e.eval(input.schema(), t));
        }
        out.push(vals.into_boxed_slice());
    }
    out
}

/// Bag union `e1 ∪ e2` (schemas must cover the same attributes; columns of
/// `r` are permuted to `l`'s order).
pub fn union_all(l: &Relation, r: &Relation) -> Relation {
    let positions: Vec<usize> = l
        .schema()
        .attrs()
        .iter()
        .map(|&a| r.schema().pos_of(a))
        .collect();
    let mut out = Relation::with_tuples(l.schema().clone(), l.tuples().to_vec());
    for t in r.tuples() {
        let vals: Vec<Value> = positions.iter().map(|&p| t[p].clone()).collect();
        out.push(vals.into_boxed_slice());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggCall, AggKind};

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    /// The example relations of Fig. 2 in the paper.
    fn fig2_e1() -> Relation {
        Relation::from_ints(
            vec![a(0), a(1), a(2)], // a, b, c
            &[
                &[Some(0), Some(0), Some(1)],
                &[Some(1), Some(0), Some(1)],
                &[Some(2), Some(1), Some(3)],
                &[Some(3), Some(2), Some(3)],
            ],
        )
    }

    fn fig2_e2() -> Relation {
        Relation::from_ints(
            vec![a(3), a(4), a(5)], // d, e, f
            &[
                &[Some(0), Some(0), Some(1)],
                &[Some(1), Some(1), Some(1)],
                &[Some(2), Some(2), Some(1)],
                &[Some(3), Some(4), Some(2)],
            ],
        )
    }

    #[test]
    fn fig2_inner_join() {
        // e1 ⋈_{e1.b = e2.d} e2 — 4 result tuples.
        let res = inner_join(&fig2_e1(), &fig2_e2(), &JoinPred::eq(a(1), a(3)));
        let expect = Relation::from_ints(
            vec![a(0), a(1), a(2), a(3), a(4), a(5)],
            &[
                &[Some(0), Some(0), Some(1), Some(0), Some(0), Some(1)],
                &[Some(1), Some(0), Some(1), Some(0), Some(0), Some(1)],
                &[Some(2), Some(1), Some(3), Some(1), Some(1), Some(1)],
                &[Some(3), Some(2), Some(3), Some(2), Some(2), Some(1)],
            ],
        );
        assert!(res.bag_eq(&expect));
    }

    #[test]
    fn fig2_semi_and_anti() {
        // e1 ⋉_{e1.b = e2.d} e2 keeps all four tuples.
        let semi = semi_join(&fig2_e1(), &fig2_e2(), &JoinPred::eq(a(1), a(3)));
        assert!(semi.bag_eq(&fig2_e1()));
        // e1 ▷_{e1.a = e2.e} e2 keeps only (3,2,3).
        let anti = anti_join(&fig2_e1(), &fig2_e2(), &JoinPred::eq(a(0), a(4)));
        let expect = Relation::from_ints(vec![a(0), a(1), a(2)], &[&[Some(3), Some(2), Some(3)]]);
        assert!(anti.bag_eq(&expect));
    }

    #[test]
    fn fig2_left_outer() {
        let res = left_outer_join(&fig2_e1(), &fig2_e2(), &JoinPred::eq(a(0), a(4)), &vec![]);
        let expect = Relation::from_ints(
            vec![a(0), a(1), a(2), a(3), a(4), a(5)],
            &[
                &[Some(0), Some(0), Some(1), Some(0), Some(0), Some(1)],
                &[Some(1), Some(0), Some(1), Some(1), Some(1), Some(1)],
                &[Some(2), Some(1), Some(3), Some(2), Some(2), Some(1)],
                &[Some(3), Some(2), Some(3), None, None, None],
            ],
        );
        assert!(res.bag_eq(&expect));
    }

    #[test]
    fn fig2_full_outer() {
        let res = full_outer_join(
            &fig2_e1(),
            &fig2_e2(),
            &JoinPred::eq(a(0), a(4)),
            &vec![],
            &vec![],
        );
        let expect = Relation::from_ints(
            vec![a(0), a(1), a(2), a(3), a(4), a(5)],
            &[
                &[Some(0), Some(0), Some(1), Some(0), Some(0), Some(1)],
                &[Some(1), Some(0), Some(1), Some(1), Some(1), Some(1)],
                &[Some(2), Some(1), Some(3), Some(2), Some(2), Some(1)],
                &[Some(3), Some(2), Some(3), None, None, None],
                &[None, None, None, Some(3), Some(4), Some(2)],
            ],
        );
        assert!(res.bag_eq(&expect));
    }

    #[test]
    fn outer_join_defaults() {
        let d2: Defaults = vec![(a(5), Value::Int(1))];
        let res = left_outer_join(&fig2_e1(), &fig2_e2(), &JoinPred::eq(a(0), a(4)), &d2);
        // The unmatched tuple (3,2,3) gets f = 1 instead of NULL.
        let row = res.tuples().iter().find(|t| t[0] == Value::Int(3)).unwrap();
        assert_eq!(Value::Int(1), row[5]);
        assert!(row[3].is_null() && row[4].is_null());
    }

    #[test]
    fn full_outer_defaults_on_both_sides() {
        let d1: Defaults = vec![(a(2), Value::Int(7))];
        let d2: Defaults = vec![(a(5), Value::Int(9))];
        let res = full_outer_join(&fig2_e1(), &fig2_e2(), &JoinPred::eq(a(0), a(4)), &d1, &d2);
        let left_orphan = res.tuples().iter().find(|t| t[0] == Value::Int(3)).unwrap();
        assert_eq!(Value::Int(9), left_orphan[5]);
        let right_orphan = res.tuples().iter().find(|t| t[3] == Value::Int(3)).unwrap();
        assert_eq!(Value::Int(7), right_orphan[2]);
        assert!(right_orphan[0].is_null());
    }

    #[test]
    fn groupjoin_definition() {
        // e1 ⋲_{e1.a = e2.f; g : sum(e2.f)} e2 — per Definition 9 every e1
        // tuple survives; unmatched tuples aggregate the empty bag.
        let aggs = vec![AggCall::new(a(9), AggKind::Sum, Expr::attr(a(5)))];
        let res = groupjoin(&fig2_e1(), &fig2_e2(), &JoinPred::eq(a(0), a(5)), &aggs);
        assert_eq!(4, res.len());
        let row1 = res.tuples().iter().find(|t| t[0] == Value::Int(1)).unwrap();
        assert_eq!(Value::Int(3), row1[3]); // three partners with f = 1
        let row2 = res.tuples().iter().find(|t| t[0] == Value::Int(2)).unwrap();
        assert_eq!(Value::Int(2), row2[3]); // one partner with f = 2
        let row0 = res.tuples().iter().find(|t| t[0] == Value::Int(0)).unwrap();
        assert!(row0[3].is_null()); // sum over the empty bag
    }

    #[test]
    fn groupjoin_count_star_empty_group_is_zero() {
        let aggs = vec![AggCall::count_star(a(9))];
        let res = groupjoin(&fig2_e1(), &fig2_e2(), &JoinPred::eq(a(0), a(5)), &aggs);
        let row0 = res.tuples().iter().find(|t| t[0] == Value::Int(0)).unwrap();
        assert_eq!(Value::Int(0), row0[3]);
    }

    #[test]
    fn null_never_joins() {
        let l = Relation::from_ints(vec![a(0)], &[&[None], &[Some(1)]]);
        let r = Relation::from_ints(vec![a(1)], &[&[None], &[Some(1)]]);
        let res = inner_join(&l, &r, &JoinPred::eq(a(0), a(1)));
        assert_eq!(1, res.len());
        // Left outer join keeps the NULL tuple, padded.
        let lo = left_outer_join(&l, &r, &JoinPred::eq(a(0), a(1)), &vec![]);
        assert_eq!(2, lo.len());
    }

    #[test]
    fn hash_and_nested_loop_agree() {
        use crate::expr::CmpOp;
        let l = fig2_e1();
        let r = fig2_e2();
        let equi = JoinPred::eq(a(1), a(3));
        // Force the nested-loop path with a redundant non-equi term.
        let theta = JoinPred::eq(a(1), a(3)).and(a(1), CmpOp::Le, a(3));
        let fast = inner_join(&l, &r, &equi);
        let slow = inner_join(&l, &r, &theta);
        assert!(fast.bag_eq(&slow));
    }

    #[test]
    fn project_and_map() {
        let r = fig2_e1();
        let p = project(&r, &[a(1)], true);
        assert_eq!(3, p.len()); // b ∈ {0, 1, 2}
        let m = map(&r, &[(a(9), Expr::attr(a(0)).add(Expr::attr(a(2))))]);
        assert_eq!(4, m.schema().len());
        assert_eq!(Value::Int(1), m.tuples()[0][3]);
    }

    #[test]
    fn union_permutes_columns() {
        let l = Relation::from_ints(vec![a(0), a(1)], &[&[Some(1), Some(2)]]);
        let r = Relation::from_ints(vec![a(1), a(0)], &[&[Some(4), Some(3)]]);
        let u = union_all(&l, &r);
        assert_eq!(2, u.len());
        assert_eq!(Value::Int(3), u.tuples()[1][0]);
        assert_eq!(Value::Int(4), u.tuples()[1][1]);
    }

    #[test]
    fn cross_product() {
        let l = Relation::from_ints(vec![a(0)], &[&[Some(1)], &[Some(2)]]);
        let r = Relation::from_ints(vec![a(1)], &[&[Some(3)]]);
        assert_eq!(2, cross(&l, &r).len());
    }
}
