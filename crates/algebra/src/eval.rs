//! Executable operator trees and their interpreter.
//!
//! Optimized plans are compiled into [`AlgExpr`] trees and evaluated against
//! a [`Database`] of named base relations. This is the execution substrate
//! used in place of the paper's HyPer / commercial systems (see DESIGN.md).

use crate::agg::AggCall;
use crate::expr::{CmpOp, Expr, JoinPred};
use crate::ops::{self, Defaults};
use crate::relation::Relation;
use crate::schema::AttrId;
use std::collections::HashMap;
use std::fmt;

/// A database: named base relations.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: HashMap<String, Relation>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) {
        self.relations.insert(name.into(), rel);
    }

    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }
}

/// An executable algebra tree.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgExpr {
    /// Scan of a named base relation.
    Scan(String),
    Cross(Box<AlgExpr>, Box<AlgExpr>),
    InnerJoin {
        left: Box<AlgExpr>,
        right: Box<AlgExpr>,
        pred: JoinPred,
    },
    SemiJoin {
        left: Box<AlgExpr>,
        right: Box<AlgExpr>,
        pred: JoinPred,
    },
    AntiJoin {
        left: Box<AlgExpr>,
        right: Box<AlgExpr>,
        pred: JoinPred,
    },
    LeftOuterJoin {
        left: Box<AlgExpr>,
        right: Box<AlgExpr>,
        pred: JoinPred,
        defaults: Defaults,
    },
    FullOuterJoin {
        left: Box<AlgExpr>,
        right: Box<AlgExpr>,
        pred: JoinPred,
        d1: Defaults,
        d2: Defaults,
    },
    GroupJoin {
        left: Box<AlgExpr>,
        right: Box<AlgExpr>,
        pred: JoinPred,
        aggs: Vec<AggCall>,
        empty_defaults: Defaults,
    },
    GroupBy {
        input: Box<AlgExpr>,
        attrs: Vec<AttrId>,
        aggs: Vec<AggCall>,
    },
    Map {
        input: Box<AlgExpr>,
        exts: Vec<(AttrId, Expr)>,
    },
    Project {
        input: Box<AlgExpr>,
        attrs: Vec<AttrId>,
        dedup: bool,
    },
    Select {
        input: Box<AlgExpr>,
        left: Expr,
        op: CmpOp,
        right: Expr,
    },
    UnionAll(Box<AlgExpr>, Box<AlgExpr>),
}

impl AlgExpr {
    pub fn scan(name: impl Into<String>) -> AlgExpr {
        AlgExpr::Scan(name.into())
    }

    /// Evaluate the tree bottom-up.
    ///
    /// Panics if a scanned relation is missing or an attribute is not in
    /// scope — both indicate a malformed plan, which tests must surface.
    pub fn eval(&self, db: &Database) -> Relation {
        let kids: Vec<Relation> = self.children().iter().map(|c| c.eval(db)).collect();
        self.eval_node(db, &kids)
    }

    /// Evaluate one operator given its children's already-computed results
    /// (in [`AlgExpr::children`] order). Shared by [`AlgExpr::eval`] and
    /// [`AlgExpr::eval_counting`] so each node is evaluated exactly once.
    fn eval_node(&self, db: &Database, kids: &[Relation]) -> Relation {
        match self {
            AlgExpr::Scan(name) => db
                .get(name)
                .unwrap_or_else(|| panic!("relation {name} not in database"))
                .clone(),
            AlgExpr::Cross(..) => ops::cross(&kids[0], &kids[1]),
            AlgExpr::InnerJoin { pred, .. } => ops::inner_join(&kids[0], &kids[1], pred),
            AlgExpr::SemiJoin { pred, .. } => ops::semi_join(&kids[0], &kids[1], pred),
            AlgExpr::AntiJoin { pred, .. } => ops::anti_join(&kids[0], &kids[1], pred),
            AlgExpr::LeftOuterJoin { pred, defaults, .. } => {
                ops::left_outer_join(&kids[0], &kids[1], pred, defaults)
            }
            AlgExpr::FullOuterJoin { pred, d1, d2, .. } => {
                ops::full_outer_join(&kids[0], &kids[1], pred, d1, d2)
            }
            AlgExpr::GroupJoin {
                pred,
                aggs,
                empty_defaults,
                ..
            } => ops::groupjoin_with_defaults(&kids[0], &kids[1], pred, aggs, empty_defaults),
            AlgExpr::GroupBy { attrs, aggs, .. } => {
                crate::grouping::group_by(&kids[0], attrs, aggs)
            }
            AlgExpr::Map { exts, .. } => ops::map(&kids[0], exts),
            AlgExpr::Project { attrs, dedup, .. } => ops::project(&kids[0], attrs, *dedup),
            AlgExpr::Select {
                left, op, right, ..
            } => ops::select(&kids[0], |schema, t| {
                op.test(&left.eval(schema, t), &right.eval(schema, t))
            }),
            AlgExpr::UnionAll(..) => ops::union_all(&kids[0], &kids[1]),
        }
    }

    /// Evaluate while recording the cardinality of every intermediate
    /// result (the *measured* `C_out`). Returns `(result, total C_out)`.
    /// Scans and the final projection are free, matching §4.4.
    pub fn eval_counting(&self, db: &Database) -> (Relation, u64) {
        let mut inner = 0u64;
        let kids: Vec<Relation> = self
            .children()
            .iter()
            .map(|child| {
                let (rel, c) = child.eval_counting(db);
                inner += c;
                rel
            })
            .collect();
        let result = self.eval_node(db, &kids);
        let own = match self {
            // Scans, the final projection and column extensions are free.
            AlgExpr::Scan(_) | AlgExpr::Project { .. } | AlgExpr::Map { .. } => 0,
            _ => result.len() as u64,
        };
        (result, inner + own)
    }

    fn children(&self) -> Vec<&AlgExpr> {
        match self {
            AlgExpr::Scan(_) => vec![],
            AlgExpr::Cross(l, r) | AlgExpr::UnionAll(l, r) => vec![l, r],
            AlgExpr::InnerJoin { left, right, .. }
            | AlgExpr::SemiJoin { left, right, .. }
            | AlgExpr::AntiJoin { left, right, .. }
            | AlgExpr::LeftOuterJoin { left, right, .. }
            | AlgExpr::FullOuterJoin { left, right, .. }
            | AlgExpr::GroupJoin { left, right, .. } => vec![left, right],
            AlgExpr::GroupBy { input, .. }
            | AlgExpr::Map { input, .. }
            | AlgExpr::Project { input, .. }
            | AlgExpr::Select { input, .. } => vec![input],
        }
    }

    /// Number of operators in the tree (scans excluded).
    pub fn operator_count(&self) -> usize {
        let own = usize::from(!matches!(self, AlgExpr::Scan(_)));
        own + self
            .children()
            .iter()
            .map(|c| c.operator_count())
            .sum::<usize>()
    }

    /// Number of grouping operators (Γ) in the tree.
    pub fn grouping_count(&self) -> usize {
        let own = usize::from(matches!(self, AlgExpr::GroupBy { .. }));
        own + self
            .children()
            .iter()
            .map(|c| c.grouping_count())
            .sum::<usize>()
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            AlgExpr::Scan(name) => writeln!(f, "{pad}Scan({name})"),
            AlgExpr::Cross(l, r) => {
                writeln!(f, "{pad}Cross")?;
                l.fmt_indent(f, indent + 1)?;
                r.fmt_indent(f, indent + 1)
            }
            AlgExpr::InnerJoin { left, right, pred } => {
                writeln!(f, "{pad}Join[{pred}]")?;
                left.fmt_indent(f, indent + 1)?;
                right.fmt_indent(f, indent + 1)
            }
            AlgExpr::SemiJoin { left, right, pred } => {
                writeln!(f, "{pad}SemiJoin[{pred}]")?;
                left.fmt_indent(f, indent + 1)?;
                right.fmt_indent(f, indent + 1)
            }
            AlgExpr::AntiJoin { left, right, pred } => {
                writeln!(f, "{pad}AntiJoin[{pred}]")?;
                left.fmt_indent(f, indent + 1)?;
                right.fmt_indent(f, indent + 1)
            }
            AlgExpr::LeftOuterJoin {
                left,
                right,
                pred,
                defaults,
            } => {
                writeln!(f, "{pad}LeftOuterJoin[{pred}] defaults={defaults:?}")?;
                left.fmt_indent(f, indent + 1)?;
                right.fmt_indent(f, indent + 1)
            }
            AlgExpr::FullOuterJoin {
                left,
                right,
                pred,
                d1,
                d2,
            } => {
                writeln!(f, "{pad}FullOuterJoin[{pred}] d1={d1:?} d2={d2:?}")?;
                left.fmt_indent(f, indent + 1)?;
                right.fmt_indent(f, indent + 1)
            }
            AlgExpr::GroupJoin {
                left,
                right,
                pred,
                aggs,
                ..
            } => {
                writeln!(f, "{pad}GroupJoin[{pred}] aggs={}", aggs.len())?;
                left.fmt_indent(f, indent + 1)?;
                right.fmt_indent(f, indent + 1)
            }
            AlgExpr::GroupBy { input, attrs, aggs } => {
                writeln!(f, "{pad}GroupBy[{attrs:?}] aggs={}", aggs.len())?;
                input.fmt_indent(f, indent + 1)
            }
            AlgExpr::Map { input, exts } => {
                writeln!(f, "{pad}Map[{} exts]", exts.len())?;
                input.fmt_indent(f, indent + 1)
            }
            AlgExpr::Project {
                input,
                attrs,
                dedup,
            } => {
                writeln!(f, "{pad}Project[{attrs:?}] dedup={dedup}")?;
                input.fmt_indent(f, indent + 1)
            }
            AlgExpr::Select {
                input,
                left,
                op,
                right,
            } => {
                writeln!(f, "{pad}Select[{left} {op} {right}]")?;
                input.fmt_indent(f, indent + 1)
            }
            AlgExpr::UnionAll(l, r) => {
                writeln!(f, "{pad}UnionAll")?;
                l.fmt_indent(f, indent + 1)?;
                r.fmt_indent(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for AlgExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggKind;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(
            "r",
            Relation::from_ints(
                vec![a(0), a(1)],
                &[&[Some(1), Some(10)], &[Some(2), Some(20)]],
            ),
        );
        db.insert(
            "s",
            Relation::from_ints(
                vec![a(2), a(3)],
                &[&[Some(1), Some(5)], &[Some(1), Some(6)]],
            ),
        );
        db
    }

    #[test]
    fn eval_join_group() {
        let tree = AlgExpr::GroupBy {
            input: Box::new(AlgExpr::InnerJoin {
                left: Box::new(AlgExpr::scan("r")),
                right: Box::new(AlgExpr::scan("s")),
                pred: JoinPred::eq(a(0), a(2)),
            }),
            attrs: vec![a(0)],
            aggs: vec![AggCall::new(a(9), AggKind::Sum, Expr::attr(a(3)))],
        };
        let res = tree.eval(&db());
        let expect = Relation::from_ints(vec![a(0), a(9)], &[&[Some(1), Some(11)]]);
        assert!(res.bag_eq(&expect));
    }

    #[test]
    fn eval_counting_matches_cout() {
        // Join yields 2 tuples, group 1 tuple → C_out = 3; scans free.
        let tree = AlgExpr::GroupBy {
            input: Box::new(AlgExpr::InnerJoin {
                left: Box::new(AlgExpr::scan("r")),
                right: Box::new(AlgExpr::scan("s")),
                pred: JoinPred::eq(a(0), a(2)),
            }),
            attrs: vec![a(0)],
            aggs: vec![AggCall::count_star(a(9))],
        };
        let (_, cost) = tree.eval_counting(&db());
        assert_eq!(3, cost);
    }

    #[test]
    fn select_filters() {
        let tree = AlgExpr::Select {
            input: Box::new(AlgExpr::scan("r")),
            left: Expr::attr(a(1)),
            op: CmpOp::Gt,
            right: Expr::int(15),
        };
        assert_eq!(1, tree.eval(&db()).len());
    }

    #[test]
    fn operator_counts() {
        let tree = AlgExpr::GroupBy {
            input: Box::new(AlgExpr::InnerJoin {
                left: Box::new(AlgExpr::scan("r")),
                right: Box::new(AlgExpr::scan("s")),
                pred: JoinPred::eq(a(0), a(2)),
            }),
            attrs: vec![a(0)],
            aggs: vec![],
        };
        assert_eq!(2, tree.operator_count());
        assert_eq!(1, tree.grouping_count());
    }

    #[test]
    #[should_panic(expected = "not in database")]
    fn missing_relation_panics() {
        AlgExpr::scan("zzz").eval(&db());
    }

    #[test]
    fn display_renders_tree() {
        let tree = AlgExpr::InnerJoin {
            left: Box::new(AlgExpr::scan("r")),
            right: Box::new(AlgExpr::scan("s")),
            pred: JoinPred::eq(a(0), a(2)),
        };
        let s = tree.to_string();
        assert!(s.contains("Join"));
        assert!(s.contains("Scan(r)"));
    }
}
