//! Micro-benchmark backing the word-batched neighborhood expansion: DPhyp
//! calls `neighborhood(s, x)` once per emitted csg/cmp pair, so its cost
//! multiplies directly into the enumeration hot path. The batched
//! implementation unions per-node simple-adjacency words (`simple_adj`)
//! in whole-`u64` steps and only walks the (usually short) complex-edge
//! list; the per-pair reference below re-scans every hyperedge per call,
//! which is what the pre-batching code did.
//!
//! Run with `cargo bench --bench neighborhood`; CI compiles it on every
//! PR (`cargo bench --no-run`) and archives the binary so the perf
//! surface cannot silently rot.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpnext_hypergraph::{Hyperedge, Hypergraph, NodeSet};

/// Per-edge-scan reference: the exact loop `Hypergraph::neighborhood` ran
/// before simple edges were batched into adjacency words (mirrors the
/// `naive_neighborhood` oracle in the crate's unit tests).
fn edge_scan_neighborhood(g: &Hypergraph, s: NodeSet, x: NodeSet) -> NodeSet {
    let forbidden = s.union(x);
    let mut n = NodeSet::EMPTY;
    for e in g.edges() {
        if e.left.is_subset_of(s) && e.right.is_disjoint(forbidden) {
            n = n.insert(e.right.min());
        } else if e.right.is_subset_of(s) && e.left.is_disjoint(forbidden) {
            n = n.insert(e.left.min());
        }
    }
    n
}

/// Chain of `n` relations: the sparse extreme (every node sees ≤ 2
/// neighbors, edge list length `n - 1`).
fn chain(n: usize) -> Hypergraph {
    let mut g = Hypergraph::new(n);
    for i in 0..n - 1 {
        g.add_simple(i, i + 1, i);
    }
    g
}

/// Clique over `n` relations: the dense extreme — the per-edge scan walks
/// `n·(n-1)/2` edges per call while the batched version unions `|s|`
/// words.
fn clique(n: usize) -> Hypergraph {
    let mut g = Hypergraph::new(n);
    for i in 0..n {
        for j in i + 1..n {
            g.add_simple(i, j, i * n + j);
        }
    }
    g
}

/// Cycle plus a sprinkling of complex hyperedges: exercises the mixed
/// path where the batched version still has to walk `complex`.
fn cycle_hyper(n: usize) -> Hypergraph {
    let mut g = Hypergraph::new(n);
    for i in 0..n {
        g.add_simple(i, (i + 1) % n, i);
    }
    for (k, i) in (0..n.saturating_sub(4)).step_by(3).enumerate() {
        let left = NodeSet::single(i).insert(i + 1);
        let right = NodeSet::single(i + 3);
        g.add_edge(Hyperedge::new(left, right, n + k));
    }
    g
}

/// Deterministic (s, x) probe set shaped like a real DPhyp expansion: all
/// contiguous runs `s` with the exclusion prefix `x = {0..min(s)} \ s`
/// DPhyp uses when enumerating csg-cmp pairs in min-node order.
fn probes(n: usize) -> Vec<(NodeSet, NodeSet)> {
    let mut out = Vec::new();
    for len in 1..=n {
        for start in 0..=(n - len) {
            let s = NodeSet(((1u64 << len) - 1) << start);
            let x = NodeSet(if start == 0 { 0 } else { (1u64 << start) - 1 });
            out.push((s, x));
        }
    }
    out
}

fn bench_neighborhood(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighborhood");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for (label, g) in [
        ("chain16", chain(16)),
        ("clique14", clique(14)),
        ("cycle_hyper16", cycle_hyper(16)),
    ] {
        let ps = probes(g.node_count());
        // Sanity: both implementations agree on every probe, so the
        // comparison below is apples-to-apples.
        for &(s, x) in &ps {
            assert_eq!(g.neighborhood(s, x), edge_scan_neighborhood(&g, s, x));
        }
        group.bench_function(format!("word_batched_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &(s, x) in &ps {
                    acc ^= g.neighborhood(black_box(s), black_box(x)).0;
                }
                black_box(acc)
            })
        });
        group.bench_function(format!("edge_scan_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &(s, x) in &ps {
                    acc ^= edge_scan_neighborhood(&g, black_box(s), black_box(x)).0;
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_neighborhood);
criterion_main!(benches);
