//! In-tree FxHasher-style multiply-xor hasher for the optimizer's hot
//! maps (no crates.io access, so this is a minimal re-implementation of
//! the well-known `rustc-hash` scheme rather than a dependency).
//!
//! The DP memo, the `G⁺` cache and the context statistics maps are all
//! keyed by trivially small keys — [`crate::NodeSet`] is one `u64`,
//! attribute ids are one `u32` — for which SipHash's per-lookup setup and
//! finalization dominate the probe cost. The multiply-xor mix below
//! hashes such a key in a couple of ALU instructions. It is *not*
//! HashDoS-resistant; every keyed map in this workspace is fed by the
//! optimizer itself (relation bitsets, attribute ids), never by untrusted
//! input, so the resistance would buy nothing.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Zero-sized deterministic builder: no per-map random state.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Odd multiplier (from the golden ratio, as used by rustc's FxHash):
/// spreads single-word keys across the full 64-bit range so the map's
/// power-of-two bucket mask sees well-mixed high bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Multiply-xor hasher: `hash = (rotl5(hash) ^ word) * SEED` per word.
/// One multiply and two cheap ops per 8 bytes of key.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" + "" and "a" + "b" differ.
            self.add_word(u64::from_le_bytes(tail) ^ (rest.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_word(v as u64);
        self.add_word((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_i8(&mut self, v: i8) {
        self.add_word(v as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, v: i16) {
        self.add_word(v as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add_word(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.add_word(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeSet;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        let s = NodeSet(0b1011_0110);
        assert_eq!(hash_of(&s), hash_of(&s));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinct_single_word_keys_get_distinct_hashes() {
        // Not a collision-resistance claim — just a sanity check that the
        // mix actually depends on the input for the key shapes we use.
        let mut seen = FxHashSet::default();
        for bits in 0u64..4096 {
            assert!(seen.insert(hash_of(&NodeSet(bits))), "collision at {bits}");
        }
    }

    #[test]
    fn byte_stream_boundaries_matter() {
        // `write` does NOT buffer across calls: each call folds its own
        // remainder with its own length. A split that lands exactly on
        // the 8-byte chunk boundary therefore produces the same word
        // sequence as the unsplit stream...
        let mut h1 = FxHasher::default();
        h1.write(b"abcdefgh");
        h1.write(b"i");
        let mut h2 = FxHasher::default();
        h2.write(b"abcdefghi");
        assert_eq!(h1.finish(), h2.finish());
        // ...but a non-aligned split does not — do not rely on
        // split-invariance for incremental hashing of composite keys.
        let mut h4 = FxHasher::default();
        h4.write(b"abcd");
        h4.write(b"efghi");
        assert_ne!(h2.finish(), h4.finish());
        let mut h3 = FxHasher::default();
        h3.write(b"abcdefgihbc");
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut map: FxHashMap<NodeSet, usize> = FxHashMap::default();
        for i in 0..64 {
            map.insert(NodeSet::single(i), i);
        }
        assert_eq!(64, map.len());
        for i in 0..64 {
            assert_eq!(Some(&i), map.get(&NodeSet::single(i)));
        }
    }
}
