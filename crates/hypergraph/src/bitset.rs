//! Compact node sets over at most 64 query relations.

use std::fmt;

/// A set of hypergraph nodes (relations), represented as a 64-bit mask.
///
/// The paper's experiments go up to 20 relations; 64 is a comfortable cap
/// and keeps every set operation a single machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeSet(pub u64);

impl NodeSet {
    pub const EMPTY: NodeSet = NodeSet(0);

    /// The singleton `{i}`.
    #[inline]
    pub fn single(i: usize) -> NodeSet {
        debug_assert!(i < 64);
        NodeSet(1u64 << i)
    }

    /// `{0, 1, …, n-1}`.
    #[inline]
    pub fn full(n: usize) -> NodeSet {
        debug_assert!(n <= 64);
        if n == 64 {
            NodeSet(u64::MAX)
        } else {
            NodeSet((1u64 << n) - 1)
        }
    }

    /// `{0, 1, …, i}` — the `B_i` sets of DPhyp.
    #[inline]
    pub fn upto(i: usize) -> NodeSet {
        NodeSet::full(i + 1)
    }

    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    #[inline]
    pub fn contains(self, i: usize) -> bool {
        self.0 & (1u64 << i) != 0
    }

    #[inline]
    pub fn is_subset_of(self, other: NodeSet) -> bool {
        self.0 & !other.0 == 0
    }

    #[inline]
    pub fn intersects(self, other: NodeSet) -> bool {
        self.0 & other.0 != 0
    }

    #[inline]
    pub fn is_disjoint(self, other: NodeSet) -> bool {
        !self.intersects(other)
    }

    #[inline]
    pub fn union(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 | other.0)
    }

    #[inline]
    pub fn intersect(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & other.0)
    }

    #[inline]
    pub fn difference(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & !other.0)
    }

    #[inline]
    pub fn insert(self, i: usize) -> NodeSet {
        NodeSet(self.0 | (1u64 << i))
    }

    #[inline]
    pub fn remove(self, i: usize) -> NodeSet {
        NodeSet(self.0 & !(1u64 << i))
    }

    /// Smallest element; panics when empty.
    #[inline]
    #[track_caller]
    pub fn min(self) -> usize {
        assert!(!self.is_empty(), "min of empty NodeSet");
        self.0.trailing_zeros() as usize
    }

    /// Largest element; panics when empty.
    #[inline]
    #[track_caller]
    pub fn max(self) -> usize {
        assert!(!self.is_empty(), "max of empty NodeSet");
        63 - self.0.leading_zeros() as usize
    }

    /// Iterate elements in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        BitIter(self.0)
    }

    /// Iterate elements in descending order (DPhyp processes nodes this way).
    pub fn iter_desc(self) -> impl Iterator<Item = usize> {
        BitIterDesc(self.0)
    }

    /// Iterate all non-empty subsets of this set in the canonical
    /// `(sub - 1) & mask` order (ascending as integers).
    pub fn subsets(self) -> SubsetIter {
        SubsetIter {
            mask: self.0,
            sub: 0,
            done: self.0 == 0,
        }
    }
}

struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(i)
    }
}

struct BitIterDesc(u64);

impl Iterator for BitIterDesc {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let i = 63 - self.0.leading_zeros() as usize;
        self.0 &= !(1u64 << i);
        Some(i)
    }
}

/// Iterator over the non-empty subsets of a mask.
pub struct SubsetIter {
    mask: u64,
    sub: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = NodeSet;

    #[inline]
    fn next(&mut self) -> Option<NodeSet> {
        if self.done {
            return None;
        }
        self.sub = self.sub.wrapping_sub(self.mask) & self.mask;
        if self.sub == 0 {
            self.done = true;
            return None;
        }
        Some(NodeSet(self.sub))
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for NodeSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        iter.into_iter().fold(NodeSet::EMPTY, NodeSet::insert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let s = NodeSet::single(3).union(NodeSet::single(5));
        assert_eq!(2, s.len());
        assert!(s.contains(3) && s.contains(5) && !s.contains(4));
        assert_eq!(3, s.min());
        assert_eq!(5, s.max());
        assert!(NodeSet::single(3).is_subset_of(s));
        assert!(s.is_disjoint(NodeSet::single(0)));
        assert_eq!(NodeSet::single(5), s.remove(3));
    }

    #[test]
    fn full_and_upto() {
        assert_eq!(NodeSet(0b111), NodeSet::full(3));
        assert_eq!(NodeSet(0b111), NodeSet::upto(2));
        assert_eq!(NodeSet(u64::MAX), NodeSet::full(64));
    }

    #[test]
    fn iteration() {
        let s: NodeSet = [0, 2, 7].into_iter().collect();
        assert_eq!(vec![0, 2, 7], s.iter().collect::<Vec<_>>());
        assert_eq!(vec![7, 2, 0], s.iter_desc().collect::<Vec<_>>());
    }

    #[test]
    fn subset_enumeration() {
        let s: NodeSet = [1, 3].into_iter().collect();
        let subs: Vec<NodeSet> = s.subsets().collect();
        assert_eq!(3, subs.len());
        assert!(subs.contains(&NodeSet::single(1)));
        assert!(subs.contains(&NodeSet::single(3)));
        assert!(subs.contains(&s));
        assert!(NodeSet::EMPTY.subsets().next().is_none());
    }

    #[test]
    fn subset_count_is_2n_minus_1() {
        let s = NodeSet::full(6);
        assert_eq!(63, s.subsets().count());
    }

    #[test]
    fn display() {
        let s: NodeSet = [0, 2].into_iter().collect();
        assert_eq!("{0,2}", s.to_string());
    }
}
