//! # dpnext-hypergraph
//!
//! Query hypergraphs and the DPhyp csg-cmp-pair enumerator — the second
//! component of the plan generator of §4.1 (Moerkotte & Neumann's
//! algorithm, cited as \[8\] in the paper).

pub mod bitset;
pub mod dpccp;
pub mod dphyp;
pub mod fxhash;
pub mod graph;

pub use bitset::NodeSet;
pub use dpccp::{count_ccps_simple, enumerate_ccps_simple, SimpleGraph};
pub use dphyp::{
    count_ccps, count_ccps_bruteforce, count_ccps_capped, enumerate_ccps, stratify_ccps,
    try_enumerate_ccps, CcpStrata,
};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use graph::{Hyperedge, Hypergraph};
