//! Query hypergraphs (Def. 3 context).

use crate::bitset::NodeSet;

/// A hyperedge `(u, v)`: two disjoint, non-empty hypernodes.
///
/// For simple query graphs both sides are singletons; the conflict detector
/// produces complex hypernodes (`L-TES`, `R-TES`) to encode reordering
/// constraints. `label` identifies the originating operator/predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hyperedge {
    pub left: NodeSet,
    pub right: NodeSet,
    pub label: usize,
}

impl Hyperedge {
    pub fn new(left: NodeSet, right: NodeSet, label: usize) -> Self {
        debug_assert!(!left.is_empty() && !right.is_empty());
        debug_assert!(left.is_disjoint(right), "hyperedge sides must be disjoint");
        Hyperedge { left, right, label }
    }

    /// Simple edge between two single nodes.
    pub fn simple(a: usize, b: usize, label: usize) -> Self {
        Hyperedge::new(NodeSet::single(a), NodeSet::single(b), label)
    }

    /// True when this edge connects `s1` and `s2` (one side inside each).
    #[inline]
    pub fn connects(&self, s1: NodeSet, s2: NodeSet) -> bool {
        (self.left.is_subset_of(s1) && self.right.is_subset_of(s2))
            || (self.left.is_subset_of(s2) && self.right.is_subset_of(s1))
    }
}

/// A query hypergraph `H = (V, E)`.
///
/// Besides the edge list, the graph maintains a word-batched adjacency
/// index: per-node `u64` neighbor masks for the simple edges (the common
/// case) and the indices of the complex hyperedges (both-sides-singleton
/// fails). The enumeration hot paths — [`Hypergraph::neighborhood`],
/// [`Hypergraph::has_connecting_edge`], [`Hypergraph::component_of`] —
/// then run word-at-a-time over the masks instead of scanning the whole
/// edge list per query.
#[derive(Debug, Clone, Default)]
pub struct Hypergraph {
    n: usize,
    edges: Vec<Hyperedge>,
    /// `simple_adj[v]` = bitmask of nodes connected to `v` by a *simple*
    /// edge (both sides singletons). Symmetric by construction.
    simple_adj: Vec<u64>,
    /// Indices into `edges` of the non-simple (complex) hyperedges.
    complex: Vec<usize>,
}

impl Hypergraph {
    pub fn new(n: usize) -> Self {
        assert!(n <= 64, "at most 64 relations supported");
        Hypergraph {
            n,
            edges: Vec::new(),
            simple_adj: vec![0; n],
            complex: Vec::new(),
        }
    }

    pub fn add_edge(&mut self, e: Hyperedge) {
        debug_assert!(e.left.union(e.right).is_subset_of(NodeSet::full(self.n)));
        if e.left.len() == 1 && e.right.len() == 1 {
            self.simple_adj[e.left.min()] |= e.right.0;
            self.simple_adj[e.right.min()] |= e.left.0;
        } else {
            self.complex.push(self.edges.len());
        }
        self.edges.push(e);
    }

    /// Union of the simple-edge neighbor masks over all nodes of `s`.
    #[inline]
    fn simple_union(&self, s: NodeSet) -> u64 {
        let mut mask = 0u64;
        let mut bits = s.0;
        while bits != 0 {
            mask |= self.simple_adj[bits.trailing_zeros() as usize];
            bits &= bits - 1;
        }
        mask
    }

    pub fn add_simple(&mut self, a: usize, b: usize, label: usize) {
        self.add_edge(Hyperedge::simple(a, b, label));
    }

    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn edges(&self) -> &[Hyperedge] {
        &self.edges
    }

    #[inline]
    pub fn all_nodes(&self) -> NodeSet {
        NodeSet::full(self.n)
    }

    /// Edges connecting `s1` to `s2`.
    pub fn connecting_edges(&self, s1: NodeSet, s2: NodeSet) -> impl Iterator<Item = &Hyperedge> {
        self.edges.iter().filter(move |e| e.connects(s1, s2))
    }

    /// True when some edge connects `s1` and `s2` (condition 3 of Def. 3).
    pub fn has_connecting_edge(&self, s1: NodeSet, s2: NodeSet) -> bool {
        // Simple edges word-at-a-time: any neighbor of an `s1` node inside
        // `s2` is a connecting simple edge (adjacency is symmetric, so one
        // direction covers both orientations).
        if self.simple_union(s1) & s2.0 != 0 {
            return true;
        }
        self.complex.iter().any(|&i| self.edges[i].connects(s1, s2))
    }

    /// Neighborhood `N(S, X)` for DPhyp: the set of *representative* nodes
    /// (minimum element of each reachable hypernode) adjacent to `S`,
    /// excluding anything in `S` or the forbidden set `X`.
    ///
    /// Simple edges are resolved as one OR over the per-node adjacency
    /// masks followed by a single AND-NOT of the forbidden word; only the
    /// complex hyperedges still walk the edge list.
    pub fn neighborhood(&self, s: NodeSet, x: NodeSet) -> NodeSet {
        let forbidden = s.union(x);
        let mut n = NodeSet(self.simple_union(s) & !forbidden.0);
        for &i in &self.complex {
            let e = &self.edges[i];
            if e.left.is_subset_of(s) && e.right.is_disjoint(forbidden) {
                n = n.insert(e.right.min());
            } else if e.right.is_subset_of(s) && e.left.is_disjoint(forbidden) {
                n = n.insert(e.left.min());
            }
        }
        n
    }

    /// The maximal connected component of `s` containing `s.min()`:
    /// fixpoint closure over the hyperedges fully contained in `s` (a
    /// hyperedge is traversable once one side lies inside the component
    /// and both sides lie within `s`).
    pub fn component_of(&self, s: NodeSet) -> NodeSet {
        if s.is_empty() {
            return NodeSet::EMPTY;
        }
        let within = s.0;
        let mut comp = NodeSet::single(s.min()).0;
        loop {
            // Simple-edge closure: frontier BFS over the adjacency masks,
            // restricted to `s`. (`comp ⊆ s` throughout, so a reached
            // neighbor inside `s` always has its whole edge inside `s`.)
            let mut frontier = comp;
            while frontier != 0 {
                let next = self.simple_union(NodeSet(frontier)) & within & !comp;
                comp |= next;
                frontier = next;
            }
            // One complex-edge pass; a growth re-enters the closure loop.
            let mut grown = comp;
            for &i in &self.complex {
                let e = &self.edges[i];
                if (e.left.0 | e.right.0) & !within != 0 {
                    continue;
                }
                if e.left.0 & !grown == 0 {
                    grown |= e.right.0;
                }
                if e.right.0 & !grown == 0 {
                    grown |= e.left.0;
                }
            }
            if grown == comp {
                return NodeSet(comp);
            }
            comp = grown;
        }
    }

    /// Partition `within` into its connected components, ascending by
    /// minimum element. Large-query planners use this to fail fast on
    /// disconnected graphs (no complete plan can exist) and to seed
    /// per-component greedy passes.
    pub fn components_within(&self, within: NodeSet) -> Vec<NodeSet> {
        let mut out = Vec::new();
        let mut rest = within;
        while !rest.is_empty() {
            let comp = self.component_of(rest);
            out.push(comp);
            rest = rest.difference(comp);
        }
        out
    }

    /// [`Hypergraph::components_within`] over all nodes of the graph.
    pub fn components(&self) -> Vec<NodeSet> {
        self.components_within(self.all_nodes())
    }

    /// True when `s` induces a connected subgraph.
    ///
    /// A hyperedge `(u, v)` can be traversed once one side is fully inside
    /// the current component and the other side lies within `s`; fixpoint
    /// closure from the minimum element.
    pub fn is_connected(&self, s: NodeSet) -> bool {
        if s.is_empty() {
            return false;
        }
        if s.len() == 1 {
            return true;
        }
        self.component_of(s) == s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(bits: &[usize]) -> NodeSet {
        bits.iter().copied().collect()
    }

    #[test]
    fn chain_connectivity() {
        // 0 - 1 - 2
        let mut g = Hypergraph::new(3);
        g.add_simple(0, 1, 0);
        g.add_simple(1, 2, 1);
        assert!(g.is_connected(ns(&[0, 1])));
        assert!(g.is_connected(ns(&[0, 1, 2])));
        assert!(!g.is_connected(ns(&[0, 2])));
        assert!(g.is_connected(ns(&[2])));
        assert!(!g.is_connected(NodeSet::EMPTY));
    }

    #[test]
    fn hyperedge_requires_full_side() {
        // Edge ({0,1}, {2}): {0,2} is not connected because side {0,1} is
        // not fully contained.
        let mut g = Hypergraph::new(3);
        g.add_edge(Hyperedge::new(ns(&[0, 1]), ns(&[2]), 0));
        g.add_simple(0, 1, 1);
        assert!(!g.is_connected(ns(&[0, 2])));
        assert!(g.is_connected(ns(&[0, 1, 2])));
    }

    #[test]
    fn neighborhood_representatives() {
        let mut g = Hypergraph::new(4);
        g.add_simple(0, 1, 0);
        g.add_edge(Hyperedge::new(ns(&[0]), ns(&[2, 3]), 1));
        // From {0}: neighbors are 1 and the representative min{2,3} = 2.
        assert_eq!(ns(&[1, 2]), g.neighborhood(ns(&[0]), NodeSet::EMPTY));
        // Forbidding 2 removes the hyperedge's representative.
        assert_eq!(ns(&[1]), g.neighborhood(ns(&[0]), ns(&[2])));
    }

    #[test]
    fn components_partition_the_node_set() {
        // Two components: 0-1-2 chain and 3-4 edge.
        let mut g = Hypergraph::new(5);
        g.add_simple(0, 1, 0);
        g.add_simple(1, 2, 1);
        g.add_simple(3, 4, 2);
        assert_eq!(vec![ns(&[0, 1, 2]), ns(&[3, 4])], g.components());
        // Restricting the node set splits the chain.
        assert_eq!(
            vec![ns(&[0]), ns(&[2]), ns(&[3, 4])],
            g.components_within(ns(&[0, 2, 3, 4]))
        );
        assert_eq!(ns(&[0, 1, 2]), g.component_of(NodeSet::full(5)));
        assert!(g.components_within(NodeSet::EMPTY).is_empty());
    }

    /// Reference implementation of `neighborhood`: the pre-index per-edge
    /// linear scan. The word-batched index must agree on every (s, x).
    fn naive_neighborhood(g: &Hypergraph, s: NodeSet, x: NodeSet) -> NodeSet {
        let forbidden = s.union(x);
        let mut n = NodeSet::EMPTY;
        for e in g.edges() {
            if e.left.is_subset_of(s) && e.right.is_disjoint(forbidden) {
                n = n.insert(e.right.min());
            } else if e.right.is_subset_of(s) && e.left.is_disjoint(forbidden) {
                n = n.insert(e.left.min());
            }
        }
        n
    }

    #[test]
    fn word_batched_neighborhood_matches_edge_scan() {
        // A 6-node graph mixing simple edges with two complex hyperedges,
        // exercised over every (s, x ⊆ complement) pair.
        let mut g = Hypergraph::new(6);
        g.add_simple(0, 1, 0);
        g.add_simple(1, 2, 1);
        g.add_simple(3, 4, 2);
        g.add_edge(Hyperedge::new(ns(&[1, 2]), ns(&[3]), 3));
        g.add_edge(Hyperedge::new(ns(&[0]), ns(&[4, 5]), 4));
        for s_bits in 1u64..(1 << 6) {
            let s = NodeSet(s_bits);
            for x in NodeSet(!s_bits & ((1 << 6) - 1)).subsets() {
                assert_eq!(
                    naive_neighborhood(&g, s, x),
                    g.neighborhood(s, x),
                    "neighborhood diverges at s={s} x={x}"
                );
                for s2 in x.subsets() {
                    let naive = g.edges().iter().any(|e| e.connects(s, s2));
                    assert_eq!(
                        naive,
                        g.has_connecting_edge(s, s2),
                        "connectivity diverges at s1={s} s2={s2}"
                    );
                }
            }
        }
    }

    #[test]
    fn connecting_edges() {
        let mut g = Hypergraph::new(3);
        g.add_simple(0, 1, 7);
        g.add_simple(1, 2, 8);
        let found: Vec<usize> = g
            .connecting_edges(ns(&[0]), ns(&[1, 2]))
            .map(|e| e.label)
            .collect();
        assert_eq!(vec![7], found);
        assert!(g.has_connecting_edge(ns(&[0, 1]), ns(&[2])));
        assert!(!g.has_connecting_edge(ns(&[0]), ns(&[2])));
    }
}
