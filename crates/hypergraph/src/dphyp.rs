//! Enumeration of csg-cmp-pairs (Def. 3) following DPhyp
//! (Moerkotte & Neumann: *Dynamic Programming Strikes Back*, SIGMOD 2008).
//!
//! [`enumerate_ccps`] emits every csg-cmp-pair `(S1, S2)` exactly once (up
//! to symmetry) in an order that guarantees all pairs for proper subsets are
//! emitted before pairs producing their union — the invariant dynamic
//! programming needs.

use crate::bitset::NodeSet;
use crate::graph::Hypergraph;
use std::ops::ControlFlow;

/// Enumerate all csg-cmp-pairs of `graph`, invoking `emit(s1, s2)` for each.
///
/// Pairs are emitted unordered: `(s1, s2)` is emitted but `(s2, s1)` is not;
/// the consumer decides about commutativity.
pub fn enumerate_ccps(graph: &Hypergraph, mut emit: impl FnMut(NodeSet, NodeSet)) {
    let _ = try_enumerate_ccps(graph, |s1, s2| {
        emit(s1, s2);
        ControlFlow::Continue(())
    });
}

/// Abortable variant of [`enumerate_ccps`]: the walk stops as soon as
/// `emit` returns [`ControlFlow::Break`], and the break value is
/// propagated. Consumers that cannot afford the full stream — budgeted
/// plan generators, capped counters — use this to bail out mid-walk
/// instead of paying for the (potentially exponential) remainder.
pub fn try_enumerate_ccps(
    graph: &Hypergraph,
    mut emit: impl FnMut(NodeSet, NodeSet) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let n = graph.node_count();
    if n == 0 {
        return ControlFlow::Continue(());
    }
    let mut e = Enumerator {
        graph,
        emit: &mut emit,
    };
    for v in (0..n).rev() {
        let s1 = NodeSet::single(v);
        e.emit_csg(s1)?;
        // B_v: all nodes with index <= v are forbidden for expansion, so
        // each csg is generated from its minimum element exactly once.
        let bv = NodeSet::upto(v);
        e.enumerate_csg_rec(s1, bv)?;
    }
    ControlFlow::Continue(())
}

struct Enumerator<'a, F: FnMut(NodeSet, NodeSet) -> ControlFlow<()>> {
    graph: &'a Hypergraph,
    emit: &'a mut F,
}

impl<F: FnMut(NodeSet, NodeSet) -> ControlFlow<()>> Enumerator<'_, F> {
    /// Grow the connected subgraph `s1` by neighborhood subsets.
    fn enumerate_csg_rec(&mut self, s1: NodeSet, x: NodeSet) -> ControlFlow<()> {
        let neigh = self.graph.neighborhood(s1, x);
        if neigh.is_empty() {
            return ControlFlow::Continue(());
        }
        for sub in neigh.subsets() {
            let grown = s1.union(sub);
            if self.graph.is_connected(grown) {
                self.emit_csg(grown)?;
            }
        }
        let x2 = x.union(neigh);
        for sub in neigh.subsets() {
            self.enumerate_csg_rec(s1.union(sub), x2)?;
        }
        ControlFlow::Continue(())
    }

    /// Find all complements for the connected subgraph `s1`.
    fn emit_csg(&mut self, s1: NodeSet) -> ControlFlow<()> {
        let x = s1.union(NodeSet::upto(s1.min()));
        let neigh = self.graph.neighborhood(s1, x);
        for v in neigh.iter_desc() {
            let s2 = NodeSet::single(v);
            if self.graph.has_connecting_edge(s1, s2) {
                (self.emit)(s1, s2)?;
            }
            // Forbid neighbors with index <= v so each complement is found
            // from its minimal representative only.
            let bv = neigh.intersect(NodeSet::upto(v));
            self.enumerate_cmp_rec(s1, s2, x.union(bv))?;
        }
        ControlFlow::Continue(())
    }

    /// Grow the complement `s2`.
    fn enumerate_cmp_rec(&mut self, s1: NodeSet, s2: NodeSet, x: NodeSet) -> ControlFlow<()> {
        let neigh = self.graph.neighborhood(s2, x);
        if neigh.is_empty() {
            return ControlFlow::Continue(());
        }
        for sub in neigh.subsets() {
            let grown = s2.union(sub);
            if self.graph.is_connected(grown) && self.graph.has_connecting_edge(s1, grown) {
                (self.emit)(s1, grown)?;
            }
        }
        let x2 = x.union(neigh);
        for sub in neigh.subsets() {
            self.enumerate_cmp_rec(s1, s2.union(sub), x2)?;
        }
        ControlFlow::Continue(())
    }
}

/// The csg-cmp-pairs of `graph` layered by union size — a DPsize-style
/// stratification of the DPhyp stream.
///
/// `strata[k]` holds every pair `(S1, S2)` with `|S1 ∪ S2| = k`, in DPhyp
/// emission order (the stratification is stable). Because both components
/// of a pair are strictly smaller than their union and DPhyp emits every
/// pair producing a set before any pair consuming it, all plans a
/// stratum-`k` pair reads live in strata `< k`: pairs **within** one
/// stratum are data-independent and may be evaluated in any order — the
/// monotone-DP structure layered/parallel evaluation exploits.
pub fn stratify_ccps(graph: &Hypergraph) -> CcpStrata {
    let n = graph.node_count();
    let mut strata: Vec<Vec<(NodeSet, NodeSet)>> = vec![Vec::new(); n + 1];
    enumerate_ccps(graph, |s1, s2| {
        strata[s1.union(s2).len()].push((s1, s2));
    });
    CcpStrata { strata }
}

/// The result of [`stratify_ccps`]: one pair list per union size.
#[derive(Debug, Clone, Default)]
pub struct CcpStrata {
    /// `strata[k]` = pairs whose union covers exactly `k` nodes. Indices
    /// `0` and `1` are always empty (a ccp union has at least two nodes).
    pub strata: Vec<Vec<(NodeSet, NodeSet)>>,
}

impl CcpStrata {
    /// Total number of pairs across all strata (equals [`count_ccps`]).
    pub fn pair_count(&self) -> u64 {
        self.strata.iter().map(|s| s.len() as u64).sum()
    }

    /// Number of non-empty strata (DP layers with work).
    pub fn layer_count(&self) -> u64 {
        self.strata.iter().filter(|s| !s.is_empty()).count() as u64
    }

    /// Size of the widest stratum — the upper bound on how much work one
    /// barrier-separated layer can fan out.
    pub fn peak_layer_pairs(&self) -> u64 {
        self.strata
            .iter()
            .map(|s| s.len() as u64)
            .max()
            .unwrap_or(0)
    }
}

/// Count the csg-cmp-pairs of a hypergraph (`#ccp` in the paper's complexity
/// bound `O(2^{2n-1} · #ccp)`).
pub fn count_ccps(graph: &Hypergraph) -> u64 {
    let mut count = 0;
    enumerate_ccps(graph, |_, _| count += 1);
    count
}

/// Count csg-cmp-pairs, giving up once the count exceeds `cap`: returns
/// `Some(count)` when the graph has at most `cap` pairs and `None`
/// otherwise. `#ccp` is exponential on dense graphs (a 30-relation star
/// has billions of pairs), so a budgeted optimizer probing "does exact DP
/// fit my budget?" must not pay for the full count — the capped walk
/// stops after at most `cap + 1` emissions.
pub fn count_ccps_capped(graph: &Hypergraph, cap: u64) -> Option<u64> {
    let mut count = 0u64;
    let flow = try_enumerate_ccps(graph, |_, _| {
        count += 1;
        if count > cap {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    flow.is_continue().then_some(count)
}

/// Brute-force reference: enumerate all unordered pairs of disjoint,
/// connected, edge-connected subsets. Exponential; for tests only.
pub fn count_ccps_bruteforce(graph: &Hypergraph) -> u64 {
    let n = graph.node_count();
    let mut count = 0;
    for s1_bits in 1u64..(1u64 << n) {
        let s1 = NodeSet(s1_bits);
        if !graph.is_connected(s1) {
            continue;
        }
        for s2_bits in (s1_bits + 1)..(1u64 << n) {
            let s2 = NodeSet(s2_bits);
            if !s1.is_disjoint(s2) || !graph.is_connected(s2) {
                continue;
            }
            if graph.has_connecting_edge(s1, s2) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Hyperedge;
    // Dogfood the in-tree hasher: these dedup sets are NodeSet/word-pair
    // keyed, exactly the shape `fxhash` is built for.
    use crate::fxhash::FxHashSet;

    fn chain(n: usize) -> Hypergraph {
        let mut g = Hypergraph::new(n);
        for i in 0..n - 1 {
            g.add_simple(i, i + 1, i);
        }
        g
    }

    fn star(n: usize) -> Hypergraph {
        let mut g = Hypergraph::new(n);
        for i in 1..n {
            g.add_simple(0, i, i - 1);
        }
        g
    }

    fn clique(n: usize) -> Hypergraph {
        let mut g = Hypergraph::new(n);
        let mut label = 0;
        for i in 0..n {
            for j in i + 1..n {
                g.add_simple(i, j, label);
                label += 1;
            }
        }
        g
    }

    fn cycle(n: usize) -> Hypergraph {
        let mut g = chain(n);
        g.add_simple(n - 1, 0, n - 1);
        g
    }

    #[test]
    fn chain_formula() {
        // #ccp for a chain of n relations: (n^3 - n) / 6.
        for n in 2..=10 {
            let expect = ((n * n * n - n) / 6) as u64;
            assert_eq!(expect, count_ccps(&chain(n)), "chain n={n}");
        }
    }

    #[test]
    fn star_formula() {
        // #ccp for a star: (n - 1) * 2^(n - 2).
        for n in 2..=10 {
            let expect = (n as u64 - 1) * (1u64 << (n - 2));
            assert_eq!(expect, count_ccps(&star(n)), "star n={n}");
        }
    }

    #[test]
    fn clique_formula() {
        // #ccp for a clique: (3^n - 2^(n+1) + 1) / 2.
        for n in 2..=8 {
            let expect = (3u64.pow(n as u32) - (1u64 << (n + 1))).div_ceil(2);
            assert_eq!(expect, count_ccps(&clique(n)), "clique n={n}");
        }
    }

    #[test]
    fn matches_bruteforce_on_cycles() {
        for n in 3..=8 {
            assert_eq!(
                count_ccps_bruteforce(&cycle(n)),
                count_ccps(&cycle(n)),
                "cycle n={n}"
            );
        }
    }

    #[test]
    fn matches_bruteforce_with_hyperedges() {
        // A hypergraph with a complex edge forcing {1,2} to stay together.
        let mut g = Hypergraph::new(4);
        g.add_simple(0, 1, 0);
        g.add_simple(1, 2, 1);
        g.add_edge(Hyperedge::new(
            NodeSet::from_iter([1, 2]),
            NodeSet::from_iter([3]),
            2,
        ));
        assert_eq!(count_ccps_bruteforce(&g), count_ccps(&g));
    }

    #[test]
    fn no_duplicates_and_valid_pairs() {
        let g = cycle(6);
        let mut seen = FxHashSet::default();
        enumerate_ccps(&g, |s1, s2| {
            assert!(s1.is_disjoint(s2));
            assert!(g.is_connected(s1), "{s1} not connected");
            assert!(g.is_connected(s2), "{s2} not connected");
            assert!(g.has_connecting_edge(s1, s2));
            let key = (s1.0.min(s2.0), s1.0.max(s2.0));
            assert!(seen.insert(key), "duplicate ccp ({s1},{s2})");
        });
    }

    #[test]
    fn emission_order_supports_dp() {
        // When (s1, s2) is emitted, every ccp whose union is a proper
        // subset of s1 ∪ s2 must already have been emitted. We check the
        // weaker DP-sufficient property: unions are emitted in
        // non-decreasing... no — we check directly that for non-singleton
        // s1/s2 some earlier pair produced exactly that set.
        let g = clique(5);
        let mut built: FxHashSet<u64> = (0..5).map(|i| 1u64 << i).collect();
        enumerate_ccps(&g, |s1, s2| {
            assert!(built.contains(&s1.0), "s1={s1} not built yet");
            assert!(built.contains(&s2.0), "s2={s2} not built yet");
            built.insert(s1.union(s2).0);
        });
    }

    #[test]
    fn empty_and_single_node_graphs() {
        assert_eq!(0, count_ccps(&Hypergraph::new(0)));
        assert_eq!(0, count_ccps(&Hypergraph::new(1)));
    }

    #[test]
    fn capped_count_matches_uncapped_when_under_cap() {
        for g in [chain(8), star(8), clique(6), cycle(7)] {
            let exact = count_ccps(&g);
            assert_eq!(Some(exact), count_ccps_capped(&g, exact));
            assert_eq!(Some(exact), count_ccps_capped(&g, exact + 100));
        }
    }

    #[test]
    fn capped_count_gives_up_above_cap() {
        let g = star(10); // 9 * 2^8 = 2304 pairs
        assert_eq!(None, count_ccps_capped(&g, 100));
        assert_eq!(None, count_ccps_capped(&g, 2303));
        assert_eq!(Some(2304), count_ccps_capped(&g, 2304));
    }

    #[test]
    fn try_enumerate_stops_at_break() {
        // The walk must visit no more than cap + 1 pairs before bailing:
        // this is what makes budget probes affordable on dense graphs.
        let g = clique(8);
        let mut visited = 0u64;
        let flow = try_enumerate_ccps(&g, |_, _| {
            visited += 1;
            if visited > 10 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(flow.is_break());
        assert_eq!(11, visited);
    }

    #[test]
    fn strata_partition_the_ccp_stream_by_union_size() {
        for g in [chain(7), star(6), clique(5), cycle(6)] {
            let s = stratify_ccps(&g);
            assert_eq!(count_ccps(&g), s.pair_count());
            assert_eq!(g.node_count() + 1, s.strata.len());
            assert!(s.strata[0].is_empty() && s.strata[1].is_empty());
            for (k, stratum) in s.strata.iter().enumerate() {
                for &(s1, s2) in stratum {
                    assert_eq!(k, s1.union(s2).len(), "pair ({s1},{s2}) in stratum {k}");
                }
            }
        }
    }

    #[test]
    fn stratification_is_stable() {
        // Within a stratum, pairs keep their DPhyp emission order — the
        // property that makes layered replay bit-identical to streaming.
        let g = cycle(6);
        let s = stratify_ccps(&g);
        let mut streamed: Vec<Vec<(NodeSet, NodeSet)>> = vec![Vec::new(); 7];
        enumerate_ccps(&g, |s1, s2| streamed[s1.union(s2).len()].push((s1, s2)));
        assert_eq!(streamed, s.strata);
    }

    #[test]
    fn strata_respect_dp_dependencies() {
        // Every component of a stratum-k pair is a singleton or was the
        // union of some pair in a strictly smaller stratum: a layer only
        // reads plan classes frozen by earlier layers.
        let g = clique(5);
        let s = stratify_ccps(&g);
        let mut built: FxHashSet<u64> = (0..5).map(|i| 1u64 << i).collect();
        for stratum in &s.strata {
            for &(s1, s2) in stratum {
                assert!(built.contains(&s1.0), "{s1} read before built");
                assert!(built.contains(&s2.0), "{s2} read before built");
            }
            // Unions become readable only after the whole layer.
            for &(s1, s2) in stratum {
                built.insert(s1.union(s2).0);
            }
        }
    }

    #[test]
    fn strata_shape_helpers() {
        let s = stratify_ccps(&chain(4));
        // Chain of 4: 3 pairs of size 2, 4 of size 3, 3 of size 4 = 10.
        assert_eq!(10, s.pair_count());
        assert_eq!(3, s.layer_count());
        assert_eq!(4, s.peak_layer_pairs());
        assert_eq!(0, stratify_ccps(&Hypergraph::new(1)).layer_count());
    }
}
