//! DPccp: csg-cmp-pair enumeration for **simple** query graphs
//! (Moerkotte & Neumann, *Analysis of two existing and one new dynamic
//! programming algorithm for the generation of optimal bushy join trees
//! without cross products*, VLDB 2006 — cited as \[8\]).
//!
//! This is an independent implementation (adjacency sets instead of
//! hyperedges) used to cross-validate the DPhyp enumerator: on a simple
//! graph both must emit exactly the same pairs.

use crate::bitset::NodeSet;

/// A simple undirected graph over `n` nodes, as adjacency sets.
#[derive(Debug, Clone)]
pub struct SimpleGraph {
    adj: Vec<NodeSet>,
}

impl SimpleGraph {
    pub fn new(n: usize) -> Self {
        assert!(n <= 64);
        SimpleGraph {
            adj: vec![NodeSet::EMPTY; n],
        }
    }

    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert_ne!(a, b);
        self.adj[a] = self.adj[a].insert(b);
        self.adj[b] = self.adj[b].insert(a);
    }

    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Neighborhood of a set: all adjacent nodes outside the set.
    pub fn neighborhood(&self, s: NodeSet) -> NodeSet {
        let mut n = NodeSet::EMPTY;
        for v in s.iter() {
            n = n.union(self.adj[v]);
        }
        n.difference(s)
    }

    /// Is there an edge between the two (disjoint) sets?
    pub fn connects(&self, s1: NodeSet, s2: NodeSet) -> bool {
        self.neighborhood(s1).intersects(s2)
    }
}

/// Enumerate all csg-cmp-pairs of a simple graph, emitting each unordered
/// pair exactly once.
pub fn enumerate_ccps_simple(g: &SimpleGraph, mut emit: impl FnMut(NodeSet, NodeSet)) {
    let n = g.node_count();
    for v in (0..n).rev() {
        let s1 = NodeSet::single(v);
        emit_cmp(g, s1, &mut emit);
        enumerate_csg_rec(g, s1, NodeSet::upto(v), &mut emit);
    }
}

fn enumerate_csg_rec(
    g: &SimpleGraph,
    s: NodeSet,
    x: NodeSet,
    emit: &mut impl FnMut(NodeSet, NodeSet),
) {
    let neigh = g.neighborhood(s).difference(x);
    if neigh.is_empty() {
        return;
    }
    for sub in neigh.subsets() {
        // Every neighborhood subset keeps the grown set connected in a
        // simple graph: each added node touches `s` directly.
        emit_cmp(g, s.union(sub), emit);
    }
    let x2 = x.union(neigh);
    for sub in neigh.subsets() {
        enumerate_csg_rec(g, s.union(sub), x2, emit);
    }
}

/// Enumerate the complements of a csg `s1`.
fn emit_cmp(g: &SimpleGraph, s1: NodeSet, emit: &mut impl FnMut(NodeSet, NodeSet)) {
    let x = s1.union(NodeSet::upto(s1.min()));
    let neigh = g.neighborhood(s1).difference(x);
    for v in neigh.iter_desc() {
        let s2 = NodeSet::single(v);
        emit(s1, s2);
        // Restrict to neighbors above v so every complement is reached
        // from its minimal element exactly once.
        let below: NodeSet = neigh.iter().filter(|&w| w <= v).collect();
        enumerate_cmp_rec(g, s1, s2, x.union(below), emit);
    }
}

fn enumerate_cmp_rec(
    g: &SimpleGraph,
    s1: NodeSet,
    s2: NodeSet,
    x: NodeSet,
    emit: &mut impl FnMut(NodeSet, NodeSet),
) {
    let neigh = g.neighborhood(s2).difference(x);
    if neigh.is_empty() {
        return;
    }
    for sub in neigh.subsets() {
        let grown = s2.union(sub);
        if g.connects(s1, grown) {
            emit(s1, grown);
        }
    }
    let x2 = x.union(neigh);
    for sub in neigh.subsets() {
        enumerate_cmp_rec(g, s1, s2.union(sub), x2, emit);
    }
}

/// Count the csg-cmp-pairs of a simple graph.
pub fn count_ccps_simple(g: &SimpleGraph) -> u64 {
    let mut count = 0;
    enumerate_ccps_simple(g, |_, _| count += 1);
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dphyp::count_ccps;
    use crate::graph::Hypergraph;
    // Dogfood the in-tree hasher: these dedup sets are NodeSet/word-pair
    // keyed, exactly the shape `fxhash` is built for.
    use crate::fxhash::FxHashSet;

    /// Build the same topology as both a simple graph and a hypergraph.
    fn both(n: usize, edges: &[(usize, usize)]) -> (SimpleGraph, Hypergraph) {
        let mut s = SimpleGraph::new(n);
        let mut h = Hypergraph::new(n);
        for (i, &(a, b)) in edges.iter().enumerate() {
            s.add_edge(a, b);
            h.add_simple(a, b, i);
        }
        (s, h)
    }

    #[test]
    fn chain_star_clique_formulas() {
        for n in 2..=10usize {
            let chain: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            let (s, _) = both(n, &chain);
            assert_eq!(
                ((n * n * n - n) / 6) as u64,
                count_ccps_simple(&s),
                "chain {n}"
            );

            let star: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
            let (s, _) = both(n, &star);
            assert_eq!((n as u64 - 1) << (n - 2), count_ccps_simple(&s), "star {n}");
        }
        for n in 2..=8usize {
            let clique: Vec<(usize, usize)> = (0..n)
                .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
                .collect();
            let (s, _) = both(n, &clique);
            let expect = (3u64.pow(n as u32) - (1u64 << (n + 1))).div_ceil(2);
            assert_eq!(expect, count_ccps_simple(&s), "clique {n}");
        }
    }

    #[test]
    fn agrees_with_dphyp_on_random_graphs() {
        // Deterministic pseudo-random graphs: both enumerators must emit
        // exactly the same set of pairs.
        let mut state = 0x2545F491_u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in 3..=8usize {
            for _ in 0..10 {
                // Random spanning tree + extra edges.
                let mut edges: Vec<(usize, usize)> =
                    (1..n).map(|v| (v, (rand() % v as u64) as usize)).collect();
                for _ in 0..(rand() % 4) {
                    let a = (rand() % n as u64) as usize;
                    let b = (rand() % n as u64) as usize;
                    if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
                        edges.push((a, b));
                    }
                }
                let (s, h) = both(n, &edges);
                let mut pairs_simple = FxHashSet::default();
                enumerate_ccps_simple(&s, |a, b| {
                    pairs_simple.insert((a.0.min(b.0), a.0.max(b.0)));
                });
                let mut pairs_hyp = FxHashSet::default();
                crate::dphyp::enumerate_ccps(&h, |a, b| {
                    pairs_hyp.insert((a.0.min(b.0), a.0.max(b.0)));
                });
                assert_eq!(pairs_hyp, pairs_simple, "n={n} edges={edges:?}");
                assert_eq!(count_ccps(&h), count_ccps_simple(&s));
            }
        }
    }

    #[test]
    fn no_duplicate_emissions() {
        let mut g = SimpleGraph::new(6);
        for i in 0..5 {
            g.add_edge(i, i + 1);
        }
        g.add_edge(5, 0); // cycle
        let mut seen = FxHashSet::default();
        enumerate_ccps_simple(&g, |a, b| {
            assert!(a.is_disjoint(b));
            assert!(seen.insert((a.0.min(b.0), a.0.max(b.0))), "dup ({a},{b})");
        });
    }

    #[test]
    fn neighborhood_and_connects() {
        let mut g = SimpleGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert_eq!(
            NodeSet::from_iter([0, 2]),
            g.neighborhood(NodeSet::single(1))
        );
        assert!(g.connects(NodeSet::single(0), NodeSet::single(1)));
        assert!(!g.connects(NodeSet::single(0), NodeSet::single(3)));
    }
}
