//! Recursive-descent parser for the dialect:
//!
//! ```text
//! query      := SELECT items FROM from_expr [GROUP BY names]
//! items      := item (',' item)*
//! item       := agg ['AS' ident] | qname
//! agg        := COUNT '(' '*' ')'
//!             | (COUNT|SUM|MIN|MAX|AVG) '(' [DISTINCT] qname ')'
//! from_expr  := term (join term ON condition)*
//! term       := table [['AS'] ident] | '(' from_expr ')'
//! join       := [INNER] JOIN | LEFT [OUTER] JOIN | FULL [OUTER] JOIN
//!             | SEMI JOIN | ANTI JOIN
//! condition  := cmp ('AND' cmp)*
//! cmp        := qname (= | <> | != | <= | >= | < | >) qname
//! qname      := ident ['.' ident]
//! ```

use crate::ast::{AstComparison, AstFrom, AstItem, AstJoinKind, AstQuery, QName};
use crate::lexer::{lex, SqlError, Token};
use dpnext_algebra::CmpOp;

/// Parse a query string into an AST.
pub fn parse(input: &str) -> Result<AstQuery, SqlError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(SqlError::new(format!(
            "trailing input at token {}",
            p.peek_desc()
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

const AGG_FUNCS: [&str; 5] = ["count", "sum", "min", "max", "avg"];
const RESERVED: [&str; 15] = [
    "select", "from", "group", "by", "join", "inner", "left", "full", "outer", "semi", "anti",
    "on", "and", "as", "distinct",
];

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_desc(&self) -> String {
        self.peek()
            .map_or_else(|| "<end>".into(), |t| t.to_string())
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::new(format!(
                "expected {kw}, found {}",
                self.peek_desc()
            )))
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), SqlError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SqlError::new(format!(
                "expected {t}, found {}",
                self.peek_desc()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::new(format!(
                "expected identifier, found {}",
                other.map_or_else(|| "<end>".into(), |t| t.to_string())
            ))),
        }
    }

    fn query(&mut self) -> Result<AstQuery, SqlError> {
        self.expect_kw("select")?;
        let mut items = vec![self.item()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            items.push(self.item()?);
        }
        self.expect_kw("from")?;
        let from = self.from_expr()?;
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.qname()?);
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                group_by.push(self.qname()?);
            }
        }
        Ok(AstQuery {
            items,
            from,
            group_by,
        })
    }

    fn item(&mut self) -> Result<AstItem, SqlError> {
        // Aggregate call?
        if let Some(Token::Ident(name)) = self.peek() {
            let lower = name.to_ascii_lowercase();
            if AGG_FUNCS.contains(&lower.as_str())
                && self.tokens.get(self.pos + 1) == Some(&Token::LParen)
            {
                let func = lower;
                self.pos += 2; // func + '('
                if func == "count" && self.peek() == Some(&Token::Star) {
                    self.pos += 1;
                    self.expect(&Token::RParen)?;
                    let alias = self.opt_alias()?;
                    return Ok(AstItem::Agg {
                        func: "count*".into(),
                        distinct: false,
                        arg: None,
                        alias,
                    });
                }
                let distinct = self.eat_kw("distinct");
                let arg = self.qname()?;
                self.expect(&Token::RParen)?;
                let alias = self.opt_alias()?;
                return Ok(AstItem::Agg {
                    func,
                    distinct,
                    arg: Some(arg),
                    alias,
                });
            }
        }
        Ok(AstItem::Column(self.qname()?))
    }

    fn opt_alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.eat_kw("as") {
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    #[allow(clippy::wrong_self_convention)] // parses a FROM clause, not a conversion
    fn from_expr(&mut self) -> Result<AstFrom, SqlError> {
        let mut left = self.term()?;
        loop {
            let kind = if self.eat_kw("join") {
                AstJoinKind::Inner
            } else if self.eat_kw("inner") {
                self.expect_kw("join")?;
                AstJoinKind::Inner
            } else if self.eat_kw("left") {
                self.eat_kw("outer");
                self.expect_kw("join")?;
                AstJoinKind::LeftOuter
            } else if self.eat_kw("full") {
                self.eat_kw("outer");
                self.expect_kw("join")?;
                AstJoinKind::FullOuter
            } else if self.eat_kw("semi") {
                self.expect_kw("join")?;
                AstJoinKind::Semi
            } else if self.eat_kw("anti") {
                self.expect_kw("join")?;
                AstJoinKind::Anti
            } else {
                return Ok(left);
            };
            let right = self.term()?;
            self.expect_kw("on")?;
            let condition = self.condition()?;
            left = AstFrom::Join {
                kind,
                condition,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn term(&mut self) -> Result<AstFrom, SqlError> {
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let inner = self.from_expr()?;
            self.expect(&Token::RParen)?;
            return Ok(inner);
        }
        let name = self.ident()?;
        // Optional alias: `t a`, `t as a` — but not a following keyword.
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            if RESERVED.contains(&s.to_ascii_lowercase().as_str()) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(AstFrom::Table { name, alias })
    }

    fn condition(&mut self) -> Result<Vec<AstComparison>, SqlError> {
        let mut out = vec![self.comparison()?];
        while self.eat_kw("and") {
            out.push(self.comparison()?);
        }
        Ok(out)
    }

    fn comparison(&mut self) -> Result<AstComparison, SqlError> {
        let left = self.qname()?;
        let op = match self.next() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Ge) => CmpOp::Ge,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Gt) => CmpOp::Gt,
            other => {
                return Err(SqlError::new(format!(
                    "expected comparison operator, found {}",
                    other.map_or_else(|| "<end>".into(), |t| t.to_string())
                )))
            }
        };
        let right = self.qname()?;
        Ok(AstComparison { left, op, right })
    }

    fn qname(&mut self) -> Result<QName, SqlError> {
        let first = self.ident()?;
        if self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            let name = self.ident()?;
            Ok(QName::qualified(first, name))
        } else {
            Ok(QName::bare(first))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_join_group() {
        let q = parse(
            "select x.a, count(*), sum(y.b) as total \
             from t1 x join t2 y on x.a = y.a group by x.a",
        )
        .unwrap();
        assert_eq!(3, q.items.len());
        assert_eq!(vec![QName::qualified("x", "a")], q.group_by);
        match &q.from {
            AstFrom::Join {
                kind, condition, ..
            } => {
                assert_eq!(AstJoinKind::Inner, *kind);
                assert_eq!(1, condition.len());
            }
            other => panic!("unexpected from: {other:?}"),
        }
        assert!(matches!(&q.items[2], AstItem::Agg { alias: Some(a), .. } if a == "total"));
    }

    #[test]
    fn the_paper_intro_query_parses() {
        let q = parse(
            "select ns.n_name, nc.n_name, count(*) \
             from (nation ns join supplier s on ns.n_nationkey = s.s_nationkey) \
             full outer join \
             (nation nc join customer c on nc.n_nationkey = c.c_nationkey) \
             on ns.n_nationkey = nc.n_nationkey \
             group by ns.n_name, nc.n_name",
        )
        .unwrap();
        assert_eq!(2, q.group_by.len());
        match &q.from {
            AstFrom::Join { kind, .. } => assert_eq!(AstJoinKind::FullOuter, *kind),
            other => panic!("unexpected from: {other:?}"),
        }
    }

    #[test]
    fn semi_anti_and_left() {
        let q = parse(
            "select a from t1 semi join t2 on t1.x = t2.y \
             left join t3 on t1.x = t3.z anti join t4 on t1.x = t4.w",
        )
        .unwrap();
        // Left-associative chain: ((t1 ⋉ t2) ⟕ t3) ▷ t4.
        let AstFrom::Join { kind, left, .. } = &q.from else {
            panic!()
        };
        assert_eq!(AstJoinKind::Anti, *kind);
        let AstFrom::Join { kind, left, .. } = left.as_ref() else {
            panic!()
        };
        assert_eq!(AstJoinKind::LeftOuter, *kind);
        let AstFrom::Join { kind, .. } = left.as_ref() else {
            panic!()
        };
        assert_eq!(AstJoinKind::Semi, *kind);
    }

    #[test]
    fn conjunctive_conditions_and_theta() {
        let q = parse("select a from t1 join t2 on t1.x = t2.y and t1.u < t2.v").unwrap();
        let AstFrom::Join { condition, .. } = &q.from else {
            panic!()
        };
        assert_eq!(2, condition.len());
        assert_eq!(CmpOp::Lt, condition[1].op);
    }

    #[test]
    fn distinct_and_avg() {
        let q = parse("select avg(t.a), count(distinct t.b) from t group by t.c").unwrap();
        assert!(matches!(&q.items[0], AstItem::Agg { func, distinct: false, .. } if func == "avg"));
        assert!(
            matches!(&q.items[1], AstItem::Agg { func, distinct: true, .. } if func == "count")
        );
        // "group" must not be swallowed as a table alias.
        assert_eq!(1, q.group_by.len());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("select from t").is_err());
        assert!(parse("select a from t join").is_err());
        assert!(parse("select a from t1 join t2 on t1.a ~ t2.b").is_err());
        assert!(parse("select a from t extra garbage +").is_err());
        assert!(parse("select count(* from t").is_err());
    }
}
