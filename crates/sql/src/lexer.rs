//! Tokenizer for the SQL dialect.

use std::fmt;

/// A token of the query language.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved).
    Ident(String),
    /// Integer literal.
    Number(i64),
    /// String literal (single quotes).
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Eq,
    Ne,
    Le,
    Ge,
    Lt,
    Gt,
}

impl Token {
    /// Case-insensitive keyword match.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Le => write!(f, "<="),
            Token::Ge => write!(f, ">="),
            Token::Lt => write!(f, "<"),
            Token::Gt => write!(f, ">"),
        }
    }
}

/// Lexing / parsing / binding errors with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    pub message: String,
}

impl SqlError {
    pub fn new(message: impl Into<String>) -> Self {
        SqlError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error: {}", self.message)
    }
}

impl std::error::Error for SqlError {}

/// Tokenize `input`.
pub fn lex(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(SqlError::new(format!(
                        "unexpected character '!' at byte {i}"
                    )));
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(SqlError::new("unterminated string literal"));
                }
                tokens.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = input[start..i]
                    .parse()
                    .map_err(|_| SqlError::new("integer literal out of range"))?;
                tokens.push(Token::Number(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(SqlError::new(format!(
                    "unexpected character '{other}' at byte {i}"
                )));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_symbols() {
        let t = lex("select count(*), sum(x.a) from t1 x").unwrap();
        assert!(t[0].is_kw("SELECT"));
        assert_eq!(Token::LParen, t[2]);
        assert_eq!(Token::Star, t[3]);
        assert_eq!(Token::Comma, t[5]);
        assert!(t.iter().any(|x| x.is_kw("from")));
    }

    #[test]
    fn comparison_operators() {
        let t = lex("a = b <> c <= d >= e < f > g != h").unwrap();
        let ops: Vec<&Token> = t.iter().filter(|t| !matches!(t, Token::Ident(_))).collect();
        assert_eq!(
            vec![
                &Token::Eq,
                &Token::Ne,
                &Token::Le,
                &Token::Ge,
                &Token::Lt,
                &Token::Gt,
                &Token::Ne
            ],
            ops
        );
    }

    #[test]
    fn literals() {
        let t = lex("42 'hello world'").unwrap();
        assert_eq!(Token::Number(42), t[0]);
        assert_eq!(Token::Str("hello world".into()), t[1]);
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("a ; b").is_err());
    }

    #[test]
    fn qualified_name() {
        let t = lex("ns.n_name").unwrap();
        assert_eq!(3, t.len());
        assert_eq!(Token::Dot, t[1]);
    }
}
