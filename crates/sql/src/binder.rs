//! Name resolution and semantic analysis: AST → optimizable [`Query`].

use crate::ast::{AstFrom, AstItem, AstJoinKind, AstQuery, QName};
use crate::lexer::SqlError;
use dpnext_algebra::{AggCall, AggKind, AttrId, CmpOp, Expr, JoinPred};
use dpnext_catalog::Catalog;
use dpnext_query::{GroupSpec, OpKind, OpTree, Query, QueryTable};
use std::collections::HashMap;

/// A bound query, ready for the optimizer, plus the metadata needed to
/// generate data or label output columns.
pub struct BoundQuery {
    pub query: Query,
    /// `(catalog table, alias, column mapping)` per occurrence, in table
    /// index order.
    pub occurrences: Vec<(String, String, HashMap<String, AttrId>)>,
    /// Human-readable labels of the output columns.
    pub output_names: Vec<String>,
}

/// Parse and bind in one step.
pub fn plan(input: &str, catalog: &Catalog) -> Result<BoundQuery, SqlError> {
    let ast = crate::parser::parse(input)?;
    bind(&ast, catalog)
}

/// Bind a parsed query against a catalog.
///
/// Binding only reads the catalog; occurrence attributes come from a
/// query-local allocator seeded at the catalog's high-water mark. This
/// makes binding deterministic — the same text against the same catalog
/// always yields bit-identical attribute ids — and lets many binders
/// share one catalog concurrently.
pub fn bind(ast: &AstQuery, catalog: &Catalog) -> Result<BoundQuery, SqlError> {
    let gen = catalog.attr_gen();
    let mut binder = Binder {
        catalog,
        gen,
        tables: Vec::new(),
        occurrences: Vec::new(),
    };
    let tree = binder.from(&ast.from)?;

    // Resolve grouping attributes.
    let group_by: Vec<AttrId> = ast
        .group_by
        .iter()
        .map(|q| binder.resolve(q))
        .collect::<Result<_, _>>()?;

    // Select list: aggregates and plain columns. The binder's allocator
    // continues past the occurrence attributes it just handed out.
    let mut gen = binder.gen.clone();
    let mut aggs: Vec<AggCall> = Vec::new();
    let mut output_names = Vec::new();
    let mut plain_columns: Vec<AttrId> = Vec::new();
    for item in &ast.items {
        match item {
            AstItem::Column(q) => {
                let a = binder.resolve(q)?;
                plain_columns.push(a);
                output_names.push(q.to_string());
            }
            AstItem::Agg {
                func,
                distinct,
                arg,
                alias,
            } => {
                let kind = agg_kind(func, *distinct)?;
                let out = gen.fresh();
                let call = match arg {
                    None => AggCall::count_star(out),
                    Some(q) => AggCall::new(out, kind, Expr::attr(binder.resolve(q)?)),
                };
                output_names.push(alias.clone().unwrap_or_else(|| match arg {
                    None => "count(*)".to_string(),
                    Some(q) => format!("{func}({}{q})", if *distinct { "distinct " } else { "" }),
                }));
                aggs.push(call);
            }
        }
    }

    let has_grouping = !ast.group_by.is_empty() || !aggs.is_empty();
    let grouping = if has_grouping {
        // SQL rule: plain select columns must be grouping columns.
        for &c in &plain_columns {
            if !group_by.contains(&c) {
                return Err(SqlError::new(format!(
                    "column {c} must appear in GROUP BY or inside an aggregate"
                )));
            }
        }
        Some(GroupSpec::new(group_by, aggs, &mut gen))
    } else {
        None
    };

    let query = Query::new(binder.tables, tree, grouping);
    Ok(BoundQuery {
        query,
        occurrences: binder.occurrences,
        output_names,
    })
}

fn agg_kind(func: &str, distinct: bool) -> Result<AggKind, SqlError> {
    Ok(match (func, distinct) {
        ("count*", _) => AggKind::CountStar,
        ("count", false) => AggKind::Count,
        ("count", true) => AggKind::CountDistinct,
        ("sum", false) => AggKind::Sum,
        ("sum", true) => AggKind::SumDistinct,
        ("avg", false) => AggKind::Avg,
        ("avg", true) => AggKind::AvgDistinct,
        // DISTINCT is a no-op for min/max.
        ("min", _) => AggKind::Min,
        ("max", _) => AggKind::Max,
        (other, _) => return Err(SqlError::new(format!("unknown aggregate function {other}"))),
    })
}

struct Binder<'a> {
    catalog: &'a Catalog,
    /// Query-local fresh-attribute allocator, seeded at the catalog's
    /// high-water mark; occurrence and aggregate-output ids come from
    /// here instead of mutating the shared catalog.
    gen: dpnext_algebra::AttrGen,
    tables: Vec<QueryTable>,
    occurrences: Vec<(String, String, HashMap<String, AttrId>)>,
}

impl Binder<'_> {
    /// Bind a FROM tree, returning the operator tree. Table indices are
    /// assigned left to right.
    fn from(&mut self, f: &AstFrom) -> Result<OpTree, SqlError> {
        match f {
            AstFrom::Table { name, alias } => {
                let alias = alias.clone().unwrap_or_else(|| name.clone());
                if self.occurrences.iter().any(|(_, a, _)| *a == alias) {
                    return Err(SqlError::new(format!("duplicate table alias {alias}")));
                }
                // Unknown tables surface as a catalog panic; map to error.
                if !self.catalog.relations().iter().any(|r| r.name == *name) {
                    return Err(SqlError::new(format!("unknown table {name}")));
                }
                let (table, mapping) = self.catalog.instantiate_with(&mut self.gen, name, &alias);
                let idx = self.tables.len();
                self.tables.push(table);
                self.occurrences.push((name.clone(), alias, mapping));
                Ok(OpTree::rel(idx))
            }
            AstFrom::Join {
                kind,
                condition,
                left,
                right,
            } => {
                let lstart = self.occurrences.len();
                let ltree = self.from(left)?;
                let lend = self.occurrences.len();
                let rtree = self.from(right)?;
                let rend = self.occurrences.len();

                let in_left = |i: usize| (lstart..lend).contains(&i);
                let in_right = |i: usize| (lend..rend).contains(&i);

                let mut pred = JoinPred::default();
                let mut sel = 1.0f64;
                for cmp in condition {
                    let (la, lo) = self.resolve_with_occ(&cmp.left)?;
                    let (ra, ro) = self.resolve_with_occ(&cmp.right)?;
                    let (l, op, r) = if in_left(lo) && in_right(ro) {
                        (la, cmp.op, ra)
                    } else if in_left(ro) && in_right(lo) {
                        (ra, cmp.op.flip(), la)
                    } else {
                        return Err(SqlError::new(format!(
                            "join condition {} {} does not connect the two sides",
                            cmp.left, cmp.right
                        )));
                    };
                    sel *= term_selectivity(&self.tables, l, r, op);
                    pred = pred.and(l, op, r);
                }
                if pred.terms.is_empty() {
                    return Err(SqlError::new("join requires an ON condition"));
                }
                let op = match kind {
                    AstJoinKind::Inner => OpKind::Join,
                    AstJoinKind::LeftOuter => OpKind::LeftOuter,
                    AstJoinKind::FullOuter => OpKind::FullOuter,
                    AstJoinKind::Semi => OpKind::Semi,
                    AstJoinKind::Anti => OpKind::Anti,
                };
                Ok(OpTree::binary_sel(op, pred, sel, ltree, rtree))
            }
        }
    }

    /// Resolve a (possibly qualified) column to an attribute.
    fn resolve(&self, q: &QName) -> Result<AttrId, SqlError> {
        self.resolve_with_occ(q).map(|(a, _)| a)
    }

    fn resolve_with_occ(&self, q: &QName) -> Result<(AttrId, usize), SqlError> {
        match &q.qualifier {
            Some(alias) => {
                let (i, (_, _, mapping)) = self
                    .occurrences
                    .iter()
                    .enumerate()
                    .find(|(_, (_, a, _))| a == alias)
                    .ok_or_else(|| SqlError::new(format!("unknown table alias {alias}")))?;
                let attr = mapping
                    .get(&q.name)
                    .ok_or_else(|| SqlError::new(format!("no column {} in {alias}", q.name)))?;
                Ok((*attr, i))
            }
            None => {
                let mut found = None;
                for (i, (_, alias, mapping)) in self.occurrences.iter().enumerate() {
                    if let Some(attr) = mapping.get(&q.name) {
                        if found.is_some() {
                            return Err(SqlError::new(format!(
                                "ambiguous column {} (qualify with an alias)",
                                q.name
                            )));
                        }
                        found = Some((*attr, i, alias.clone()));
                    }
                }
                found
                    .map(|(a, i, _)| (a, i))
                    .ok_or_else(|| SqlError::new(format!("unknown column {}", q.name)))
            }
        }
    }
}

/// The textbook selectivity for one predicate term: `1/max(d_l, d_r)` for
/// equality, a fixed `1/3` for inequalities.
fn term_selectivity(tables: &[QueryTable], l: AttrId, r: AttrId, op: CmpOp) -> f64 {
    if op != CmpOp::Eq {
        return 1.0 / 3.0;
    }
    let d = |a: AttrId| {
        tables
            .iter()
            .find(|t| t.has_attr(a))
            .map(|t| t.distinct_of(a))
            .unwrap_or(1.0)
    };
    1.0 / d(l).max(d(r)).max(1.0)
}
