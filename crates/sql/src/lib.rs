//! # dpnext-sql
//!
//! A SQL frontend for the `dpnext` optimizer: the dialect covers exactly
//! the paper's query class — inner / left outer / full outer joins plus
//! `SEMI JOIN` / `ANTI JOIN`, conjunctive equality and theta `ON`
//! conditions, grouping, and the SQL aggregates of §2.1 (including
//! `distinct` variants and `avg`).
//!
//! ```
//! use dpnext_catalog::tpch_catalog;
//! use dpnext_sql::plan;
//!
//! let catalog = tpch_catalog();
//! let bound = plan(
//!     "select n.n_name, count(*) \
//!      from nation n join supplier s on n.n_nationkey = s.s_nationkey \
//!      group by n.n_name",
//!     &catalog,
//! ).unwrap();
//! assert_eq!(2, bound.query.table_count());
//! ```

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

pub use ast::{AstFrom, AstItem, AstJoinKind, AstQuery, QName};
pub use binder::{bind, plan, BoundQuery};
pub use lexer::{lex, SqlError, Token};
pub use parser::parse;
