//! Abstract syntax for the query dialect.

use dpnext_algebra::CmpOp;

/// A possibly qualified column name (`alias.column` or `column`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QName {
    pub qualifier: Option<String>,
    pub name: String,
}

impl QName {
    pub fn bare(name: impl Into<String>) -> Self {
        QName {
            qualifier: None,
            name: name.into(),
        }
    }

    pub fn qualified(q: impl Into<String>, name: impl Into<String>) -> Self {
        QName {
            qualifier: Some(q.into()),
            name: name.into(),
        }
    }
}

impl std::fmt::Display for QName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Join operators of the dialect — the paper's operator set (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstJoinKind {
    Inner,
    LeftOuter,
    FullOuter,
    /// `SEMI JOIN` (non-standard syntax for `⋉`).
    Semi,
    /// `ANTI JOIN` (non-standard syntax for `▷`).
    Anti,
}

/// One conjunct of an `ON` condition.
#[derive(Debug, Clone, PartialEq)]
pub struct AstComparison {
    pub left: QName,
    pub op: CmpOp,
    pub right: QName,
}

/// A `FROM` tree.
#[derive(Debug, Clone, PartialEq)]
pub enum AstFrom {
    Table {
        name: String,
        alias: Option<String>,
    },
    Join {
        kind: AstJoinKind,
        condition: Vec<AstComparison>,
        left: Box<AstFrom>,
        right: Box<AstFrom>,
    },
}

/// A select-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum AstItem {
    /// A plain column (must be a grouping column when grouping is present).
    Column(QName),
    /// An aggregate call.
    Agg {
        func: String,
        distinct: bool,
        /// `None` only for `count(*)`.
        arg: Option<QName>,
        alias: Option<String>,
    },
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct AstQuery {
    pub items: Vec<AstItem>,
    pub from: AstFrom,
    pub group_by: Vec<QName>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qname_display() {
        assert_eq!("x.a", QName::qualified("x", "a").to_string());
        assert_eq!("a", QName::bare("a").to_string());
    }
}
