//! End-to-end: SQL text → parse → bind → optimize → execute.

use dpnext_catalog::{generate_database, tpch_catalog};
use dpnext_core::{optimize, Algorithm};
use dpnext_sql::plan;

/// The paper's introductory query, straight from its SQL text.
const EX: &str = "select ns.n_name, nc.n_name, count(*) \
    from (nation ns join supplier s on ns.n_nationkey = s.s_nationkey) \
    full outer join \
    (nation nc join customer c on nc.n_nationkey = c.c_nationkey) \
    on ns.n_nationkey = nc.n_nationkey \
    group by ns.n_name, nc.n_name";

#[test]
fn intro_query_from_sql_text() {
    let catalog = tpch_catalog();
    let bound = plan(EX, &catalog).unwrap();
    assert_eq!(4, bound.query.table_count());
    assert_eq!(
        vec!["ns.n_name", "nc.n_name", "count(*)"],
        bound.output_names
    );

    // Optimize and execute at a small scale; all algorithms must agree
    // with the canonical plan.
    let occs: Vec<_> = bound
        .occurrences
        .iter()
        .enumerate()
        .map(|(i, (t, _, m))| (t.as_str(), &bound.query.tables[i], m))
        .collect();
    let db = generate_database(0.002, 11, &occs);
    let reference = bound.query.canonical_plan().eval(&db);
    for algo in [Algorithm::DPhyp, Algorithm::H1, Algorithm::EaPrune] {
        let opt = optimize(&bound.query, algo);
        assert!(
            opt.plan.root.eval(&db).bag_eq(&reference),
            "{}",
            algo.name()
        );
    }

    // And the eager plan must beat the baseline by orders of magnitude.
    let lazy = optimize(&bound.query, Algorithm::DPhyp).plan.cost;
    let eager = optimize(&bound.query, Algorithm::EaPrune).plan.cost;
    assert!(lazy / eager > 1000.0, "gain only {}", lazy / eager);
}

#[test]
fn aliases_and_self_joins_resolve() {
    let catalog = tpch_catalog();
    let bound = plan(
        "select a.n_name, count(*) from nation a join nation b on a.n_regionkey = b.n_regionkey \
         group by a.n_name",
        &catalog,
    )
    .unwrap();
    assert_eq!(2, bound.query.table_count());
    // Self-join: distinct attributes per occurrence.
    let a_key = bound.occurrences[0].2["n_nationkey"];
    let b_key = bound.occurrences[1].2["n_nationkey"];
    assert_ne!(a_key, b_key);
}

#[test]
fn unqualified_columns_resolve_when_unique() {
    let catalog = tpch_catalog();
    let bound = plan(
        "select n_name, count(s_suppkey) from nation join supplier on n_nationkey = s_nationkey \
         group by n_name",
        &catalog,
    )
    .unwrap();
    assert_eq!(2, bound.query.table_count());
    let opt = optimize(&bound.query, Algorithm::EaPrune);
    assert!(opt.plan.cost.is_finite());
}

#[test]
fn semantic_errors() {
    let catalog = tpch_catalog();
    // Unknown table.
    assert!(plan("select a from nowhere", &catalog).is_err());
    // Unknown column.
    assert!(plan("select nation.bogus from nation", &catalog).is_err());
    // Ambiguous column in a self-join.
    assert!(plan(
        "select n_name from nation a join nation b on a.n_nationkey = b.n_nationkey",
        &catalog
    )
    .is_err());
    // Non-grouped plain column.
    assert!(plan(
        "select n_name, count(*) from nation group by n_regionkey",
        &catalog
    )
    .is_err());
    // Join condition not connecting the sides.
    assert!(plan(
        "select r_name from region join nation on region.r_regionkey = region.r_name",
        &catalog
    )
    .is_err());
    // Duplicate alias.
    assert!(plan(
        "select r_name from region x join nation x on x.r_regionkey = x.n_regionkey",
        &catalog
    )
    .is_err());
}

#[test]
fn avg_and_distinct_aggregates_bind() {
    let catalog = tpch_catalog();
    let bound = plan(
        "select n_name, avg(s_acctbal), count(distinct s_nationkey) \
         from nation join supplier on n_nationkey = s_nationkey group by n_name",
        &catalog,
    )
    .unwrap();
    // avg is normalized into sum/count partials with a post-map.
    let g = bound.query.grouping.as_ref().unwrap();
    assert_eq!(3, g.aggs.len()); // sum + countNN + count(distinct)
    assert_eq!(1, g.post.len());
}

#[test]
fn scalar_aggregate_without_group_by() {
    let catalog = tpch_catalog();
    let bound = plan(
        "select count(*) from nation join supplier on n_nationkey = s_nationkey",
        &catalog,
    )
    .unwrap();
    let g = bound.query.grouping.as_ref().unwrap();
    assert!(g.group_by.is_empty());
    let opt = optimize(&bound.query, Algorithm::EaPrune);
    assert!(opt.plan.cost.is_finite());
}

#[test]
fn semi_and_anti_join_queries() {
    let catalog = tpch_catalog();
    let bound = plan(
        "select n_name, count(*) from nation semi join supplier on n_nationkey = s_nationkey \
         group by n_name",
        &catalog,
    )
    .unwrap();
    let occs: Vec<_> = bound
        .occurrences
        .iter()
        .enumerate()
        .map(|(i, (t, _, m))| (t.as_str(), &bound.query.tables[i], m))
        .collect();
    let db = generate_database(0.005, 3, &occs);
    let reference = bound.query.canonical_plan().eval(&db);
    let opt = optimize(&bound.query, Algorithm::EaPrune);
    assert!(opt.plan.root.eval(&db).bag_eq(&reference));
}
