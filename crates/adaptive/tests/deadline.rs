//! Deadline robustness for the degradation ladder: no matter how tight
//! the clock (including already-expired deadlines and artificially slowed
//! enumeration), every run must return a structurally valid plan that
//! never beats the exact optimum, with the abort attributed to the
//! deadline in [`dpnext_core::MemoStats::degradation`].

use dpnext_adaptive::optimize_adaptive_run;
use dpnext_core::{
    optimize_with, validate_complete_plan, AdaptiveMode, Algorithm, OptimizeOptions,
};
use dpnext_workload::{generate_query, GenConfig, Topology};
use proptest::prelude::*;
use std::time::{Duration, Instant};

fn base() -> OptimizeOptions {
    OptimizeOptions {
        explain: false,
        threads: 1,
        ..OptimizeOptions::default()
    }
}

fn deadlined(deadline: Duration) -> OptimizeOptions {
    OptimizeOptions {
        deadline: Some(deadline),
        ..base()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Deadline-aborted runs on chains, stars and cliques return
    /// `validate_complete_plan`-clean plans that never beat the exact
    /// EA-Prune optimum — for deadlines from "already expired" to
    /// "ample", optionally with an injected per-work-unit delay forcing
    /// mid-stream aborts.
    #[test]
    fn deadlined_plans_are_valid_and_never_beat_exact(
        topo_ix in 0usize..3,
        n in 4usize..=9,
        seed in 0u64..1_000,
        deadline_micros in 0u64..2_000,
        unit_delay_micros in 0u64..50,
    ) {
        let topo = [Topology::Chain, Topology::Star, Topology::Clique][topo_ix];
        let q = generate_query(&GenConfig::topology(n, topo), seed);
        let mut o = deadlined(Duration::from_micros(deadline_micros));
        if unit_delay_micros > 0 {
            o.fault_unit_delay = Some(Duration::from_micros(unit_delay_micros));
        }
        let run = optimize_adaptive_run(&q, &o);
        if let Err(e) = validate_complete_plan(&run.ctx, &run.memo, run.winner) {
            prop_assert!(
                false,
                "invalid deadlined plan ({topo:?} n={n} seed={seed} dl={deadline_micros}us): {e}"
            );
        }
        let exact = optimize_with(&q, Algorithm::EaPrune, &base());
        let (a, e) = (run.optimized.plan.cost, exact.plan.cost);
        prop_assert!(
            a >= e * (1.0 - 1e-9),
            "deadlined cost {a} beats the exact optimum {e} \
             ({topo:?} n={n} seed={seed} dl={deadline_micros}us)"
        );
    }
}

/// An already-expired deadline ships the guaranteed greedy plan and says
/// why: the ladder degrades, it never fails.
#[test]
fn expired_deadline_ships_the_greedy_plan() {
    let q = generate_query(&GenConfig::topology(12, Topology::Star), 0);
    let run = optimize_adaptive_run(&q, &deadlined(Duration::ZERO));
    let stats = run.optimized.memo;
    assert!(stats.degradation.deadline_aborted);
    assert_eq!(AdaptiveMode::Greedy, stats.adaptive_mode);
    validate_complete_plan(&run.ctx, &run.memo, run.winner).unwrap();
}

/// With ample time a deadline-only run completes the exact rung (the
/// huge [`dpnext_adaptive::DEADLINE_PLAN_BUDGET`] makes the clock the
/// only binding resource) and reproduces the EA-Prune optimum bit for
/// bit, with no degradation recorded.
#[test]
fn ample_deadline_still_reaches_the_exact_optimum() {
    let q = generate_query(&GenConfig::paper(6), 4);
    let run = optimize_adaptive_run(&q, &deadlined(Duration::from_secs(60)));
    let stats = run.optimized.memo;
    assert_eq!(AdaptiveMode::Exact, stats.adaptive_mode);
    assert!(!stats.degradation.any());
    let exact = optimize_with(&q, Algorithm::EaPrune, &base());
    assert_eq!(
        exact.plan.cost.to_bits(),
        run.optimized.plan.cost.to_bits(),
        "completed exact rung under a deadline must reproduce the optimum"
    );
}

/// The acceptance scenario: a 30-relation star (the expressible
/// enumeration worst case, `#ccp = 29·2^28`) under a short deadline
/// returns a valid plan close to the deadline — the exact rung is
/// aborted mid-stream by the clock, not run to exhaustion.
#[test]
fn thirty_relation_star_respects_its_deadline() {
    let q = generate_query(&GenConfig::topology(30, Topology::Star), 2);
    let deadline = Duration::from_millis(20);
    let start = Instant::now();
    let run = optimize_adaptive_run(&q, &deadlined(deadline));
    let elapsed = start.elapsed();
    let stats = run.optimized.memo;
    assert!(
        stats.degradation.deadline_aborted,
        "exact DP cannot finish 29·2^28 pairs in 20ms"
    );
    validate_complete_plan(&run.ctx, &run.memo, run.winner).unwrap();
    // Overshoot is bounded by one enumeration work unit plus finalize;
    // the budget here is deliberately loose for CI (robustness_smoke
    // measures the tight bound).
    assert!(
        elapsed < deadline + Duration::from_millis(500),
        "30-relation star blew far past its deadline: {elapsed:?}"
    );
}
